"""Unit tests for the app model (§4), rewriter (§5) and pipeline (§3)."""

import json

import pytest

from repro.compiler.model import AppModel
from repro.compiler.pipeline import baseline_compile, compile_app
from repro.compiler.rewriter import API_REPLACEMENTS, rewrite_source
from repro.errors import AnalysisError, RewriteError
from repro.poly.parser import parse_map

CUDA_HOST_SOURCE = """
int main() {
    float *d_in, *d_out;
    cudaMalloc(&d_in, N * sizeof(float));
    cudaMalloc(&d_out, N * sizeof(float));
    cudaMemcpy(d_in, h_in, N * sizeof(float), cudaMemcpyHostToDevice);
    for (int i = 0; i < ITERS; ++i) {
        stencil<<<dim3(N/16, N/16), dim3(16, 16)>>>(d_in, d_out, N);
        swap(d_in, d_out);
    }
    cudaMemcpy(h_out, d_in, N * sizeof(float), cudaMemcpyDeviceToHost);
    cudaDeviceSynchronize();
    cudaFree(d_in);
    cudaFree(d_out);
    return 0;
}
"""


class TestRewriter:
    def test_three_substitution_classes(self):
        result = rewrite_source(CUDA_HOST_SOURCE, kernel_names=["stencil"])
        assert result.header_insertions == 1
        assert result.source.startswith('#include "mgpu_runtime.h"')
        assert result.launch_substitutions == ["stencil"]
        assert result.api_substitutions["cudaMalloc"] == 2
        assert result.api_substitutions["cudaMemcpy"] == 2
        assert result.api_substitutions["cudaFree"] == 2
        assert result.api_substitutions["cudaDeviceSynchronize"] == 1

    def test_launch_expansion_form(self):
        result = rewrite_source(CUDA_HOST_SOURCE, kernel_names=["stencil"])
        assert 'mgpuLaunchKernel("stencil", dim3(N/16, N/16), dim3(16, 16), ' in result.source
        assert "MGPU_ARGS(d_in, d_out, N)" in result.source
        assert "<<<" not in result.source

    def test_all_api_names_replaced(self):
        src = "\n".join(f"{name}(x);" for name in API_REPLACEMENTS)
        out = rewrite_source(src).source
        for cuda_name, mgpu_name in API_REPLACEMENTS.items():
            assert cuda_name not in out.replace(mgpu_name, "")
            assert mgpu_name in out

    def test_memcpy_async_not_shadowed_by_memcpy(self):
        out = rewrite_source("cudaMemcpyAsync(a, b, n, k);").source
        assert "mgpuMemcpyAsync" in out
        assert "mgpuMemcpyAsyncAsync" not in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_source("foo<<<g, b>>>(x);", kernel_names=["bar"])

    def test_identifiers_containing_api_names_untouched(self):
        out = rewrite_source("int my_cudaMalloc_count = 0;").source
        assert "my_cudaMalloc_count" in out


class TestAppModel:
    def test_json_roundtrip(self, stencil_kernel, tmp_path):
        app = compile_app([stencil_kernel], model_path=tmp_path / "model.json")
        text = (tmp_path / "model.json").read_text()
        payload = json.loads(text)
        assert payload["version"] == 1
        loaded = AppModel.load(tmp_path / "model.json")
        km = loaded.get("stencil")
        assert km.partitionable
        assert km.strategy_axis == "y"
        assert km.unit_axes == ("z",)

    def test_maps_reparse_from_model(self, stencil_kernel, tmp_path):
        compile_app([stencil_kernel], model_path=tmp_path / "m.json")
        loaded = AppModel.load(tmp_path / "m.json")
        arg = next(a for a in loaded.get("stencil").args if a.name == "dst")
        m = arg.write.to_map()  # isl-notation round trip
        assert m.space.n_in == 6 and m.space.n_out == 2

    def test_unknown_kernel_raises(self):
        with pytest.raises(AnalysisError):
            AppModel().get("ghost")


class TestPipeline:
    def test_two_pass_structure(self, stencil_kernel):
        app = compile_app([stencil_kernel])
        assert app.timings.pass1 > 0 and app.timings.pass2 > 0
        ck = app.kernel("stencil")
        assert ck.partitionable and ck.partitioned is not None
        assert len(app.enumerators) == 2

    def test_rejected_kernel_recorded_not_fatal(self):
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder

        kb = KernelBuilder("bad")
        n = kb.scalar("n")
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[gi % 2,] = 1.0
        app = compile_app([kb.finish()])
        ck = app.kernel("bad")
        assert not ck.partitionable
        assert ck.partitioned is None
        assert ck.model.reject_reason

    def test_host_source_rewritten(self, stencil_kernel):
        app = compile_app([stencil_kernel], host_source="stencil<<<g, b>>>(a, b, n);")
        assert app.rewrite_result is not None
        assert app.rewrite_result.launch_substitutions == ["stencil"]

    def test_compile_time_exceeds_baseline(self, stencil_kernel):
        base = baseline_compile([stencil_kernel])
        app = compile_app([stencil_kernel])
        assert app.timings.total > base  # the paper reports 1.9x-2.2x

    def test_mixed_app(self, stencil_kernel, copy_kernel):
        app = compile_app([stencil_kernel, copy_kernel])
        assert app.kernel("stencil").partitionable
        assert app.kernel("copy1d").partitionable
