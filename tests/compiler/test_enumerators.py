"""Unit tests for access-set enumerators (§6) against brute-force oracles."""

import numpy as np
import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.enumerators import EnumeratorTable, build_enumerator, merge_ranges
from repro.compiler.strategy import Partition, choose_strategy
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder


def brute_access_set(n, part, block, accesses):
    """Element indices touched by all threads of a partition (flattened)."""
    out = set()
    for by in range(*part.y):
        for bx in range(*part.x):
            for ty in range(block.y):
                for tx in range(block.x):
                    gy = by * block.y + ty
                    gx = bx * block.x + tx
                    out |= accesses(gy, gx)
    return out


def cover(ranges):
    pts = set()
    for lo, hi in ranges:
        pts.update(range(lo, hi))
    return pts


class TestMergeRanges:
    def test_empty(self):
        assert merge_ranges([]) == []

    def test_overlap_and_adjacency(self):
        assert merge_ranges([(5, 8), (0, 3), (3, 5), (7, 9)]) == [(0, 9)]

    def test_disjoint_kept(self):
        assert merge_ranges([(10, 12), (0, 2)]) == [(0, 2), (10, 12)]

    def test_contained(self):
        assert merge_ranges([(0, 10), (3, 5)]) == [(0, 10)]


class TestStencilEnumerators:
    @pytest.fixture(scope="class")
    def setup(self, stencil_kernel):
        info = analyze_kernel(stencil_kernel)
        strat = choose_strategy(info)
        return info, strat

    @pytest.mark.parametrize("n_parts", [1, 2, 3, 4])
    def test_write_set_exact_for_all_partitions(self, setup, n_parts):
        info, strat = setup
        n = 64
        grid, block = Dim3(4, 4), Dim3(16, 16)
        enum = build_enumerator(info, "dst", "write")
        for part in strat.partitions(grid, n_parts):
            if part.is_empty:
                continue
            ranges, _ = enum.element_ranges(part, block, grid, {"n": n}, (n, n))

            def accesses(gy, gx):
                if 0 < gy < n - 1 and 0 < gx < n - 1:
                    return {gy * n + gx}
                return set()

            assert cover(ranges) == brute_access_set(n, part, block, accesses)

    def test_read_set_exact(self, setup):
        info, strat = setup
        n = 64
        grid, block = Dim3(4, 4), Dim3(16, 16)
        enum = build_enumerator(info, "src", "read")
        part = strat.partitions(grid, 4)[2]
        ranges, emitted = enum.element_ranges(part, block, grid, {"n": n}, (n, n))
        assert emitted > 0

        def accesses(gy, gx):
            if 0 < gy < n - 1 and 0 < gx < n - 1:
                return {
                    gy * n + gx,
                    (gy - 1) * n + gx,
                    (gy + 1) * n + gx,
                    gy * n + gx - 1,
                    gy * n + gx + 1,
                }
            return set()

        assert cover(ranges) == brute_access_set(n, part, block, accesses)

    def test_empty_partition_yields_nothing(self, setup):
        info, _ = setup
        enum = build_enumerator(info, "dst", "write")
        empty = Partition(z=(0, 1), y=(2, 2), x=(0, 4))
        ranges, emitted = enum.element_ranges(empty, Dim3(16, 16), Dim3(4, 4), {"n": 64}, (64, 64))
        assert ranges == [] and emitted == 0

    def test_caching_returns_same_result(self, setup):
        info, strat = setup
        enum = build_enumerator(info, "dst", "write")
        part = strat.partitions(Dim3(4, 4), 2)[0]
        a = enum.element_ranges(part, Dim3(16, 16), Dim3(4, 4), {"n": 64}, (64, 64))
        b = enum.element_ranges(part, Dim3(16, 16), Dim3(4, 4), {"n": 64}, (64, 64))
        assert a == b

    def test_interface_naming(self, setup):
        """The §6.2 interface: kernel__arg<i>__<mode>."""
        info, _ = setup
        enum_r = build_enumerator(info, "src", "read")
        enum_w = build_enumerator(info, "dst", "write")
        assert enum_r.name == "stencil__arg1__read"
        assert enum_w.name == "stencil__arg2__write"


class TestFlatMatmulEnumerators:
    def test_b_read_covers_whole_matrix(self):
        from repro.workloads.matmul import build_matmul_kernel

        n = 64
        info = analyze_kernel(build_matmul_kernel(n))
        strat = choose_strategy(info)
        enum = build_enumerator(info, "B", "read")
        grid, block = Dim3(4, 4), Dim3(16, 16)
        part = strat.partitions(grid, 4)[1]
        ranges, _ = enum.element_ranges(part, block, grid, {}, (n * n,))
        assert cover(ranges) == set(range(n * n))

    def test_c_write_is_row_band(self):
        from repro.workloads.matmul import build_matmul_kernel

        n = 64
        info = analyze_kernel(build_matmul_kernel(n))
        strat = choose_strategy(info)
        enum = build_enumerator(info, "C", "write")
        grid, block = Dim3(4, 4), Dim3(16, 16)
        parts = strat.partitions(grid, 4)
        for i, part in enumerate(parts):
            ranges, _ = enum.element_ranges(part, block, grid, {}, (n * n,))
            rows = range(part.y[0] * 16, part.y[1] * 16)
            assert cover(ranges) == {r * n + c for r in rows for c in range(n)}


class TestEnumeratorTable:
    def test_build_from_info(self, stencil_kernel):
        info = analyze_kernel(stencil_kernel)
        table = EnumeratorTable.build(info)
        assert len(table) == 2
        assert table.get("stencil", "src", "read") is not None
        assert table.get("stencil", "dst", "write") is not None
        assert table.get("stencil", "dst", "read") is None
        assert [e.array for e in table.for_kernel("stencil", "read")] == ["src"]
