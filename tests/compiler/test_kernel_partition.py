"""Unit tests for the kernel partitioning transform (§7)."""

import numpy as np
import pytest

from repro.compiler.kernel_partition import partition_kernel
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.exec.interpreter import run_kernel
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.kernel import partition_field_name
from repro.errors import PartitioningError


def _fields(part):
    names = ("min_z", "max_z", "min_y", "max_y", "min_x", "max_x")
    return {partition_field_name("partition", f): v for f, v in zip(names, part)}


class TestTransform:
    def test_appends_partition_param(self, copy_kernel):
        pk = partition_kernel(copy_kernel)
        assert pk.is_partitioned
        assert pk.name.endswith("__partitioned")
        assert not copy_kernel.is_partitioned  # original untouched

    def test_double_partition_rejected(self, copy_kernel):
        pk = partition_kernel(copy_kernel)
        with pytest.raises(PartitioningError):
            partition_kernel(pk)

    def test_partitioned_execution_matches_slice(self, rng):
        """The clone over partition [lo, hi) writes exactly what the
        original wrote for those blocks (Equations 8-10)."""
        kb = KernelBuilder("fill")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            out[gi,] = kb.blockIdx.x * 100 + kb.threadIdx.x
        k = kb.finish()
        pk = partition_kernel(k)

        n = 32
        full = np.full(n, -1, dtype=np.float32)
        run_kernel(k, Dim3(4), Dim3(8), {"n": n, "out": full})

        part = np.full(n, -1, dtype=np.float32)
        args = {"n": n, "out": part}
        args.update(_fields((0, 1, 0, 1, 1, 3)))  # blocks x in [1, 3)
        run_kernel(pk, Dim3(2), Dim3(8), args)

        assert np.array_equal(part[8:24], full[8:24])
        assert np.all(part[:8] == -1) and np.all(part[24:] == -1)

    def test_grid_dim_substituted(self):
        """gridDim references become partition.max (Equation 9)."""
        kb = KernelBuilder("gridref")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            out[gi,] = kb.gridDim.x
        pk = partition_kernel(kb.finish())
        out = np.zeros(16, dtype=np.float32)
        args = {"n": 16, "out": out}
        args.update(_fields((0, 1, 0, 1, 0, 4)))
        run_kernel(pk, Dim3(2), Dim3(8), args)
        assert np.all(out[:16] == 4.0)  # original grid extent, not local 2

    def test_union_of_partitions_equals_whole(self, rng):
        kb = KernelBuilder("sq")
        n = kb.scalar("n")
        src = kb.array("src", f32, (n,))
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            out[gi,] = src[gi,] * src[gi,]
        k = kb.finish()
        pk = partition_kernel(k)

        n = 48
        src = rng.random(n, dtype=np.float32)
        full = np.zeros(n, dtype=np.float32)
        run_kernel(k, Dim3(6), Dim3(8), {"n": n, "src": src, "out": full})

        stitched = np.zeros(n, dtype=np.float32)
        for lo, hi in ((0, 2), (2, 5), (5, 6)):
            args = {"n": n, "src": src, "out": stitched}
            args.update(_fields((0, 1, 0, 1, lo, hi)))
            run_kernel(pk, Dim3(hi - lo), Dim3(8), args)
        assert np.array_equal(stitched, full)
