"""Unit tests for the polyhedral access analysis (paper §4)."""

import pytest

from repro.compiler.access_analysis import GRID_PARAMS, IN_DIMS6, analyze_kernel
from repro.cuda.dtypes import f32, f64, i64
from repro.cuda.ir.builder import KernelBuilder


def _block_image(access, bo, bi, params):
    """Concrete image of one block under all disjuncts of an access map."""
    pts = set()
    for d in access.access_map.disjuncts:
        bs = d.bset
        values = dict(params)
        values.update(
            bo_z=bo[0], bo_y=bo[1], bo_x=bo[2], bi_z=bi[0], bi_y=bi[1], bi_x=bi[2]
        )
        for name, v in values.items():
            if bs.space.has(name):
                bs = bs.fix(name, v)
        pts |= set(bs.enumerate_points())
    return pts


class TestIdentityCopy:
    def test_one_to_one_write(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        assert info.partitionable
        assert set(info.reads) == {"src"} and set(info.writes) == {"dst"}
        w = info.writes["dst"]
        assert w.exact and not w.may is None
        params = dict(bd_z=1, bd_y=1, bd_x=8, gd_z=1, gd_y=1, gd_x=4, n=32)
        img = _block_image(w, (0, 0, 16), (0, 0, 2), params)
        assert img == {(i,) for i in range(16, 24)}

    def test_guard_clips_last_block(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        w = info.writes["dst"]
        params = dict(bd_z=1, bd_y=1, bd_x=8, gd_z=1, gd_y=1, gd_x=4, n=28)
        img = _block_image(w, (0, 0, 24), (0, 0, 3), params)
        assert img == {(i,) for i in range(24, 28)}

    def test_gid_map_available(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        assert info.writes["dst"].gid_map is not None


class TestStencil:
    def test_read_includes_halo(self, stencil_kernel):
        info = analyze_kernel(stencil_kernel)
        r = info.reads["src"]
        params = dict(bd_z=1, bd_y=4, bd_x=4, gd_z=1, gd_y=8, gd_x=8, n=32)
        img = _block_image(r, (0, 4, 4), (0, 1, 1), params)
        expect = set()
        for ty in range(4, 8):
            for tx in range(4, 8):
                for dy, dx in ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)):
                    expect.add((ty + dy, tx + dx))
        assert img == expect

    def test_write_is_interior_only(self, stencil_kernel):
        info = analyze_kernel(stencil_kernel)
        w = info.writes["dst"]
        params = dict(bd_z=1, bd_y=4, bd_x=4, gd_z=1, gd_y=8, gd_x=8, n=32)
        img = _block_image(w, (0, 0, 0), (0, 0, 0), params)
        assert img == {(y, x) for y in range(1, 4) for x in range(1, 4)}

    def test_write_under_guard_is_may(self, stencil_kernel):
        info = analyze_kernel(stencil_kernel)
        assert info.writes["dst"].may  # guarded by the interior condition


class TestLoops:
    def _rowsum(self):
        from repro.workloads.parametric import build_parametric_rowsum

        return build_parametric_rowsum()

    def test_loop_iterator_projected(self):
        info = analyze_kernel(self._rowsum())
        r = info.reads["A"]
        # Row gi, all columns 0..n-1.
        params = dict(bd_z=1, bd_y=1, bd_x=4, gd_z=1, gd_y=1, gd_x=2, n=8)
        img = _block_image(r, (0, 0, 4), (0, 0, 1), params)
        assert img == {(row, col) for row in range(4, 8) for col in range(8)}

    def test_write_unaffected_by_loop(self):
        info = analyze_kernel(self._rowsum())
        w = info.writes["S"]
        assert w.exact


class TestNonAffine:
    def test_nonaffine_read_overapproximates_to_whole_array(self):
        kb = KernelBuilder("gather")
        n = kb.scalar("n")
        idx = kb.array("idx", f32, (n,))  # float values as indices: non-affine
        src = kb.array("src", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            # value-dependent subscript (gather): not affine
            j = kb.let("j", (gi * gi) % 1 if False else gi % 2)
            dst[gi,] = src[j,]
        k = kb.finish()
        info = analyze_kernel(k)
        r = info.reads["src"]
        assert not r.exact
        params = dict(bd_z=1, bd_y=1, bd_x=4, gd_z=1, gd_y=1, gd_x=1, n=6)
        img = _block_image(r, (0, 0, 0), (0, 0, 0), params)
        assert img == {(i,) for i in range(6)}  # whole array

    def test_nonaffine_write_rejects_kernel(self):
        kb = KernelBuilder("scatter")
        n = kb.scalar("n")
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[gi % 3,] = 1.0
        info = analyze_kernel(kb.finish())
        assert not info.partitionable
        assert "non-affine" in info.reject_reason

    def test_nonaffine_guard_on_write_rejects(self):
        kb = KernelBuilder("guarded")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            with kb.if_(a[gi,] > 0.0):  # data-dependent condition
                dst[gi,] = 1.0
        info = analyze_kernel(kb.finish())
        assert not info.partitionable

    def test_nonaffine_guard_on_read_tolerated(self):
        kb = KernelBuilder("readguard")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            v = kb.let("v", kb.f32const(0.0))
            with kb.if_(a[gi,] > 0.0):
                kb.assign(v, a[gi,])
            dst[gi,] = v
        info = analyze_kernel(kb.finish())
        assert info.partitionable  # writes unconditional, reads approximate


class TestDisjunctions:
    def test_or_condition_produces_union(self):
        kb = KernelBuilder("bands")
        n = kb.scalar("n")
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_((gi < 4) | ((gi >= 8) & (gi < n))):
            dst[gi,] = 1.0
        info = analyze_kernel(kb.finish())
        w = info.writes["dst"]
        assert len(w.access_map.disjuncts) >= 2
        params = dict(bd_z=1, bd_y=1, bd_x=16, gd_z=1, gd_y=1, gd_x=1, n=12)
        img = _block_image(w, (0, 0, 0), (0, 0, 0), params)
        assert img == {(i,) for i in list(range(4)) + list(range(8, 12))}

    def test_else_branch_negation(self):
        kb = KernelBuilder("halves")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        b = kb.array("b", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            with kb.if_(gi < 4):
                a[gi,] = 1.0
            with kb.otherwise():
                b[gi,] = 2.0
        info = analyze_kernel(kb.finish())
        params = dict(bd_z=1, bd_y=1, bd_x=16, gd_z=1, gd_y=1, gd_x=1, n=10)
        img_a = _block_image(info.writes["a"], (0, 0, 0), (0, 0, 0), params)
        img_b = _block_image(info.writes["b"], (0, 0, 0), (0, 0, 0), params)
        assert img_a == {(i,) for i in range(4)}
        assert img_b == {(i,) for i in range(4, 10)}


class TestParams:
    def test_float_scalars_ignored_as_params(self):
        kb = KernelBuilder("floaty"); n = kb.scalar("n"); dt = kb.scalar("dt", f32)
        a = kb.array("a", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            a[gi,] = dt * 2.0
        info = analyze_kernel(kb.finish())
        w = info.writes["a"]
        assert "dt" not in w.access_map.space.params
        assert "n" in w.access_map.space.params

    def test_grid_params_present(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        for p in GRID_PARAMS:
            assert p in info.writes["dst"].access_map.space.params
