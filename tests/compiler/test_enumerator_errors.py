"""Error paths and edge cases of the enumerator layer."""

import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.enumerators import Enumerator, build_enumerator
from repro.compiler.strategy import Partition
from repro.cuda.dim3 import Dim3
from repro.errors import AnalysisError


class TestErrors:
    def test_unknown_access_rejected(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        with pytest.raises(AnalysisError, match="no write access"):
            build_enumerator(info, "src", "write")
        with pytest.raises(AnalysisError, match="no read access"):
            build_enumerator(info, "dst", "read")

    def test_missing_scalar_binding(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        enum = build_enumerator(info, "dst", "write")
        part = Partition.whole(Dim3(4))
        with pytest.raises(AnalysisError, match="no value for parameter"):
            enum.element_ranges(part, Dim3(8), Dim3(4), {}, (32,))  # n missing

    def test_exactness_flag_propagates(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        enum = build_enumerator(info, "dst", "write")
        assert enum.exact

    def test_cache_bounded(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        enum = build_enumerator(info, "dst", "write")
        grid, block = Dim3(4), Dim3(8)
        for n in range(40):
            part = Partition.whole(grid)
            enum.element_ranges(part, block, grid, {"n": n + 1}, (n + 1,))
        assert len(enum._cache) <= 4096


class TestDegenerateLaunches:
    def test_single_block_grid(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        enum = build_enumerator(info, "dst", "write")
        part = Partition.whole(Dim3(1))
        ranges, _ = enum.element_ranges(part, Dim3(8), Dim3(1), {"n": 5}, (5,))
        assert ranges == [(0, 5)]

    def test_oversized_grid_clipped_by_guard(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        enum = build_enumerator(info, "dst", "write")
        part = Partition.whole(Dim3(100))
        ranges, _ = enum.element_ranges(part, Dim3(8), Dim3(100), {"n": 12}, (12,))
        assert ranges == [(0, 12)]
