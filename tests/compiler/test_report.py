"""Tests for the compile-report renderer."""

import pytest

from repro.compiler.pipeline import compile_app
from repro.compiler.report import describe_app, describe_kernel


class TestDescribe:
    def test_partitionable_kernel_report(self, stencil_kernel):
        app = compile_app([stencil_kernel])
        text = describe_app(app)
        assert "## kernel `stencil`" in text
        assert "partition strategy" in text and "`y`" in text
        assert "read" in text and "write" in text
        assert "__global__ void stencil" in text

    def test_sources_included_when_requested(self, stencil_kernel):
        app = compile_app([stencil_kernel])
        text = describe_app(app, sources=True)
        assert "generated enumerators" in text
        assert "def _scan" in text  # the compiled Python scanner source

    def test_interpreted_scanners_noted(self, stencil_kernel):
        app = compile_app([stencil_kernel], use_codegen=False)
        text = describe_app(app, sources=True)
        assert "interpreted scanner" in text

    def test_rejected_kernel_report(self):
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder

        kb = KernelBuilder("bad")
        n = kb.scalar("n")
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[gi % 2,] = 1.0
        app = compile_app([kb.finish()])
        text = describe_app(app)
        assert "NOT partitionable" in text
        assert "single-GPU" in text

    def test_cli_verbose(self, capsys):
        from repro.cli import main

        assert main(["analyze", "matmul", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "# compile report" in out
        assert "def _scan" in out
