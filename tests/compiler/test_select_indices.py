"""Tests for piecewise-affine (select-bearing) subscripts."""

import numpy as np
import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.legality import check_partitionable
from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import PartitioningError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig


def _select_shift_kernel():
    """dst[gi < 16 ? gi : gi + 16] — a piecewise-affine, injective write."""
    kb = KernelBuilder("selshift")
    n = kb.scalar("n")
    src = kb.array("src", f32, (2 * n,))
    dst = kb.array("dst", f32, (2 * n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        target = kb.select(gi < 16, gi + 0, gi + 16)
        dst[target,] = src[gi,]
    return kb.finish()


class TestAnalysis:
    def test_select_write_is_exact_union(self):
        info = analyze_kernel(_select_shift_kernel())
        assert info.partitionable
        w = info.writes["dst"]
        assert w.exact
        assert len(w.access_map.disjuncts) == 2  # one per select branch

    def test_select_injectivity_provable(self):
        info = analyze_kernel(_select_shift_kernel())
        check_partitionable(info)  # branch images are provably disjoint

    def test_overlapping_select_branches_rejected(self):
        # dst[gi < 16 ? gi : gi - 16]: threads 0 and 16 collide.
        kb = KernelBuilder("collide")
        n = kb.scalar("n")
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[kb.select(gi < 16, gi + 0, gi - 16),] = 1.0
        info = analyze_kernel(kb.finish())
        with pytest.raises(PartitioningError):
            check_partitionable(info)

    def test_nonaffine_select_condition_still_rejected(self):
        kb = KernelBuilder("datadep")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[kb.select(a[gi,] > 0.0, gi + 0, gi + 0),] = 1.0
        info = analyze_kernel(kb.finish())
        assert not info.partitionable

    def test_nested_select(self):
        kb = KernelBuilder("nested")
        n = kb.scalar("n")
        dst = kb.array("dst", f32, (4 * n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            inner = kb.select(gi < 8, gi + 0, gi + n)
            dst[kb.select(gi < 4, inner + 2 * n, inner),] = 1.0
        info = analyze_kernel(kb.finish())
        w = info.writes["dst"]
        assert w.exact
        assert len(w.access_map.disjuncts) >= 3


class TestEndToEnd:
    def test_select_kernel_partitions_correctly(self, rng):
        k = _select_shift_kernel()
        app = compile_app([k])
        assert app.kernel("selshift").partitionable
        n = 64
        data = rng.random(n, dtype=np.float32)

        def host(api):
            d_src = api.cudaMalloc(2 * n * 4)
            d_dst = api.cudaMalloc(2 * n * 4)
            api.cudaMemcpy(d_src, np.concatenate([data, data]), 2 * n * 4, MemcpyKind.HostToDevice)
            api.cudaMemcpy(d_dst, np.zeros(2 * n, dtype=np.float32), 2 * n * 4, MemcpyKind.HostToDevice)
            api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
            out = np.zeros(2 * n, dtype=np.float32)
            api.cudaMemcpy(out, d_dst, 2 * n * 4, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        for g in (2, 4):
            api = MultiGpuApi(app, RuntimeConfig(n_gpus=g))
            got = host(api)
            assert np.array_equal(ref, got), g
            assert api.stats.fallback_launches == 0
