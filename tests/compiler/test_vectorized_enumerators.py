"""Vectorized enumerators are a pure speedup, never a semantic change.

Each enumerator can satisfy a scan request two ways: the vectorized numpy
program (``specialize=True``, the default) or the scalar tree-walking
scanner (``use_codegen=False``, the ablation path). These tests compile
every workload twice — once per backend — run identical functional inputs
through both, and require

* bitwise-identical workload outputs,
* identical per-enumerator scan results — same cache keys, same merged
  ranges, same emitted-range counts — element for element, and
* that the backends really were what they claim: the vectorized app's
  scans resolve through the numpy program, the interpreted app's never do.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS, functional_config

REGISTRY = {**ALL_WORKLOADS, **EXTRA_WORKLOADS}


def _run_both(name, n_gpus=3, seed=11):
    """One functional run per backend; returns (outputs, app) for each."""
    results = {}
    for use_codegen in (True, False):
        wl = REGISTRY[name](functional_config(name))
        app = compile_app(wl.build_kernels(), use_codegen=use_codegen)
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=n_gpus))
        outputs = wl.run(api, wl.make_inputs(seed=seed))
        results[use_codegen] = (outputs, app, api.stats)
    return results


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_backends_bitwise_equal_and_scan_identical(name):
    results = _run_both(name)
    (vec_out, vec_app, vec_stats) = results[True]
    (int_out, int_app, int_stats) = results[False]

    # Workload outputs are bitwise identical across backends.
    assert set(vec_out) == set(int_out)
    for key in sorted(vec_out):
        assert np.array_equal(vec_out[key], int_out[key]), (name, key)

    # Both compiles produced the same enumerator population ...
    vec_table = vec_app.enumerators._table
    int_table = int_app.enumerators._table
    assert set(vec_table) == set(int_table), name

    # ... and, having served the same launch stream, the same scans:
    # element-identical merged ranges and emitted counts per request.
    for key in sorted(vec_table):
        vec_cache = vec_table[key]._cache
        int_cache = int_table[key]._cache
        assert set(vec_cache) == set(int_cache), (name, key)
        for req, (v_ranges, v_count, v_vectorized) in vec_cache.items():
            i_ranges, i_count, i_vectorized = int_cache[req]
            assert v_ranges == i_ranges, (name, key)
            assert v_count == i_count, (name, key)
            assert not i_vectorized, (name, key)

    # The interpreted table pins the scalar scanner outright.
    assert all(not e.specialize for e in int_table.values()), name
    assert int_stats.enumerator_specialized == 0
    if int_table:
        assert int_stats.enumerator_fallback > 0

    # The vectorized app's partitionable kernels actually engaged the
    # numpy backend (no silent fallback on the benchmark kernels).
    if vec_table:
        assert vec_stats.enumerator_specialized > 0, name
        assert vec_stats.enumerator_fallback == 0, name
        assert any(
            vectorized
            for e in vec_table.values()
            for (_, _, vectorized) in e._cache.values()
        ), name


def test_imgpipe_nonaffine_kernel_has_no_enumerators():
    """imgpipe's histogram-style kernel is rejected by the partitioner, so
    it contributes no enumerators — the fallback path, not the scalar
    scanner, handles it (and the cache arithmetic in the overhead study
    relies on that)."""
    wl = REGISTRY["imgpipe"](functional_config("imgpipe"))
    app = compile_app(wl.build_kernels())
    rejected = [name for name, ck in app.kernels.items() if ck.partitioned is None]
    assert rejected, "expected at least one non-partitionable imgpipe kernel"
    for name in rejected:
        assert not app.enumerators.for_kernel(name, "read")
        assert not app.enumerators.for_kernel(name, "write")
