"""Unit tests for the analytical kernel cost model."""

import pytest

from repro.compiler.costmodel import KernelCostModel, ThreadCost
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.sim.topology import MachineSpec

SPEC = MachineSpec(n_gpus=1, flops_per_gpu=1e12, mem_bw_per_gpu=1e11, cache_reuse_factor=4.0)


def _stencil():
    kb = KernelBuilder("s")
    n = kb.scalar("n")
    a = kb.array("a", f32, (n, n))
    b = kb.array("b", f32, (n, n))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy > 0) & (gy < n - 1) & (gx > 0) & (gx < n - 1)):
        b[gy, gx] = a[gy - 1, gx] + a[gy + 1, gx] + a[gy, gx - 1] + a[gy, gx + 1]
    return kb.finish()


def _looped(trips_expr):
    kb = KernelBuilder("l")
    n = kb.scalar("n")
    a = kb.array("a", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("k", 0, trips_expr(n)) as k:
            kb.assign(acc, acc + a[gi,])
        a[gi,] = acc
    return kb.finish()


class TestThreadCost:
    def test_stencil_bytes(self):
        model = KernelCostModel(SPEC)
        cost = model.thread_cost(_stencil(), {"n": 64})
        # 4 loads + 1 store of f32 = 20 bytes (no loop, no reuse discount).
        assert cost.bytes == pytest.approx(20.0)
        assert cost.flops > 0

    def test_loop_multiplies_and_discounts(self):
        model = KernelCostModel(SPEC)
        k1 = _looped(lambda n: n * 0 + 1)
        k10 = _looped(lambda n: n * 0 + 10)
        c1 = model.thread_cost(k1, {"n": 8})
        c10 = model.thread_cost(k10, {"n": 8})
        # flops grow with the trip count (loop body repeated 10x).
        assert c10.flops > c1.flops * 3
        # loads inside the loop are reuse-discounted by the spec factor.
        loop_bytes_1 = c1.bytes - 4  # minus the store outside the loop
        loop_bytes_10 = c10.bytes - 4
        assert loop_bytes_10 == pytest.approx(10 * loop_bytes_1)
        assert loop_bytes_1 == pytest.approx(4 / SPEC.cache_reuse_factor)

    def test_symbolic_trip_count(self):
        model = KernelCostModel(SPEC)
        k = _looped(lambda n: n)
        c_small = model.thread_cost(k, {"n": 4})
        c_big = model.thread_cost(k, {"n": 400})
        assert c_big.flops > c_small.flops * 50


class TestLaunchTime:
    def test_roofline_max(self):
        model = KernelCostModel(SPEC)
        k = _stencil()
        t = model(k, 16, Dim3(16, 16), {"n": 64})
        n_threads = 16 * 256
        cost = model.thread_cost(k, {"n": 64})
        expect = max(
            cost.flops * n_threads / SPEC.flops_per_gpu,
            cost.bytes * n_threads / SPEC.mem_bw_per_gpu,
        )
        assert t == pytest.approx(expect)

    def test_scales_with_blocks(self):
        model = KernelCostModel(SPEC)
        k = _stencil()
        t1 = model(k, 10, Dim3(16, 16), {"n": 64})
        t2 = model(k, 20, Dim3(16, 16), {"n": 64})
        assert t2 == pytest.approx(2 * t1)

    def test_threadcost_algebra(self):
        a = ThreadCost(1.0, 2.0)
        b = ThreadCost(3.0, 4.0)
        assert (a + b).flops == 4.0 and (a + b).bytes == 6.0
        assert a.scaled(3).bytes == 6.0
