"""Tests for min/max expansion in affine guard conditions."""

import numpy as np
import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig


def _block_write_pts(info, array, params):
    pts = set()
    for d in info.writes[array].access_map.disjuncts:
        bs = d.bset
        for name, v in params.items():
            if bs.space.has(name):
                bs = bs.fix(name, v)
        pts |= set(bs.enumerate_points())
    return pts


PARAMS = dict(
    bd_z=1, bd_y=1, bd_x=32, gd_z=1, gd_y=1, gd_x=1,
    bo_z=0, bo_y=0, bo_x=0, bi_z=0, bi_y=0, bi_x=0,
)


class TestMinGuard:
    def test_lt_min_is_conjunction(self):
        kb = KernelBuilder("ltmin")
        n = kb.scalar("n")
        m = kb.scalar("m")
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < kb.minimum(n + 0, m + 0)):
            dst[gi,] = 1.0
        info = analyze_kernel(kb.finish())
        assert info.partitionable
        pts = _block_write_pts(info, "dst", {**PARAMS, "n": 10, "m": 6})
        assert pts == {(i,) for i in range(6)}

    def test_lt_max_is_disjunction(self):
        kb = KernelBuilder("ltmax")
        n = kb.scalar("n")
        m = kb.scalar("m")
        dst = kb.array("dst", f32, (30,))
        gi = kb.global_id("x")
        with kb.if_(gi < kb.maximum(n + 0, m + 0)):
            dst[gi,] = 1.0
        info = analyze_kernel(kb.finish())
        pts = _block_write_pts(info, "dst", {**PARAMS, "n": 10, "m": 6})
        assert pts == {(i,) for i in range(10)}

    def test_ge_min_is_disjunction(self):
        kb = KernelBuilder("gemin")
        n = kb.scalar("n")
        m = kb.scalar("m")
        dst = kb.array("dst", f32, (32,))
        gi = kb.global_id("x")
        with kb.if_((gi >= kb.minimum(n + 0, m + 0)) & (gi < 20)):
            dst[gi,] = 1.0
        info = analyze_kernel(kb.finish())
        pts = _block_write_pts(info, "dst", {**PARAMS, "n": 10, "m": 6})
        assert pts == {(i,) for i in range(6, 20)}

    def test_min_on_lhs(self):
        kb = KernelBuilder("lhsmin")
        n = kb.scalar("n")
        dst = kb.array("dst", f32, (32,))
        gi = kb.global_id("x")
        with kb.if_(kb.minimum(gi + 0, n + 0) > 4):
            with kb.if_(gi < 20):
                dst[gi,] = 1.0
        info = analyze_kernel(kb.finish())
        # min(gi, n) > 4 <=> gi > 4 and n > 4
        pts = _block_write_pts(info, "dst", {**PARAMS, "n": 10})
        assert pts == {(i,) for i in range(5, 20)}
        assert _block_write_pts(info, "dst", {**PARAMS, "n": 3}) == set()

    def test_negated_min_guard(self):
        # else-branch of (gi < min(n, m)): gi >= n or gi >= m.
        kb = KernelBuilder("negmin")
        n = kb.scalar("n")
        m = kb.scalar("m")
        a = kb.array("a", f32, (32,))
        b = kb.array("b", f32, (32,))
        gi = kb.global_id("x")
        with kb.if_(gi < 20):
            with kb.if_(gi < kb.minimum(n + 0, m + 0)):
                a[gi,] = 1.0
            with kb.otherwise():
                b[gi,] = 2.0
        info = analyze_kernel(kb.finish())
        pts_b = _block_write_pts(info, "b", {**PARAMS, "n": 10, "m": 6})
        assert pts_b == {(i,) for i in range(6, 20)}


class TestEndToEnd:
    def test_clamped_tail_kernel(self, rng):
        """The common `for the last partial tile` clamp pattern."""
        kb = KernelBuilder("clamp")
        n = kb.scalar("n")
        limit = kb.scalar("limit")
        src = kb.array("src", f32, (64,))
        dst = kb.array("dst", f32, (64,))
        gi = kb.global_id("x")
        with kb.if_(gi < kb.minimum(n + 0, limit + 0)):
            dst[gi,] = src[gi,]
        k = kb.finish()
        app = compile_app([k])
        assert app.kernel("clamp").partitionable
        data = rng.random(64, dtype=np.float32)

        def host(api):
            d_s = api.cudaMalloc(64 * 4)
            d_d = api.cudaMalloc(64 * 4)
            api.cudaMemcpy(d_s, data, 64 * 4, MemcpyKind.HostToDevice)
            api.cudaMemcpy(d_d, np.zeros(64, dtype=np.float32), 64 * 4, MemcpyKind.HostToDevice)
            api.launch(k, Dim3(8), Dim3(8), [50, 60, d_s, d_d])
            out = np.zeros(64, dtype=np.float32)
            api.cudaMemcpy(out, d_d, 64 * 4, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        got = host(MultiGpuApi(app, RuntimeConfig(n_gpus=4)))
        assert np.array_equal(ref, got)
