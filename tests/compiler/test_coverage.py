"""Unit tests for the launch-time coverage validation."""

import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.coverage import (
    CoverageDisjunct,
    CoverageSpec,
    CoverageTerm,
    GuardSpec,
    coverage_validates,
)
from repro.compiler.strategy import Partition
from repro.cuda.dim3 import Dim3

GRID = Dim3(x=4, y=4)
BLOCK = Dim3(x=16, y=16)
FULL = Partition.whole(GRID)


def _disjunct(terms, const=0, guards=()):
    return CoverageDisjunct(const, tuple(CoverageTerm(d, k) for d, k in terms), tuple(guards))


class TestProgressions:
    def test_unit_stride_row_major(self):
        # 64*(bo_y + ti_y) + bo_x + ti_x: full-width rows are contiguous.
        d = _disjunct([("bo_y", 64), ("ti_y", 64), ("bo_x", 1), ("ti_x", 1)])
        assert coverage_validates(CoverageSpec("C", (d,)), FULL, BLOCK, GRID)

    def test_gap_detected(self):
        # 64*row but columns only span 16 values: rows don't tile.
        d = _disjunct([("bo_y", 64), ("ti_y", 64), ("ti_x", 1)])
        assert not coverage_validates(CoverageSpec("C", (d,)), FULL, BLOCK, GRID)

    def test_strided_union_complete_residues(self):
        # N-Body float4 pattern: 4*gid + c for c in 0..3.
        ds = tuple(
            _disjunct([("bo_x", 4), ("ti_x", 4)], const=c) for c in range(4)
        )
        assert coverage_validates(CoverageSpec("pos", ds), FULL, BLOCK, GRID)

    def test_strided_union_missing_residue(self):
        ds = tuple(_disjunct([("bo_x", 4), ("ti_x", 4)], const=c) for c in (0, 1, 3))
        assert not coverage_validates(CoverageSpec("pos", ds), FULL, BLOCK, GRID)

    def test_pure_stride_without_union_fails(self):
        d = _disjunct([("bo_x", 2), ("ti_x", 2)])
        assert not coverage_validates(CoverageSpec("a", (d,)), FULL, BLOCK, GRID)

    def test_constant_only_write(self):
        d = _disjunct([])
        assert coverage_validates(CoverageSpec("a", (d,)), FULL, BLOCK, GRID)


class TestGuards:
    def test_proportional_guard_accepted(self):
        # guard: n - 1 - 4*gid >= 0 is proportional to index 4*gid.
        g = GuardSpec(1023, (CoverageTerm("bo_x", -4), CoverageTerm("ti_x", -4)))
        d = _disjunct([("bo_x", 4), ("ti_x", 4)], guards=[g])
        ds = tuple(
            CoverageDisjunct(c, d.terms, d.guards) for c in range(4)
        )
        assert coverage_validates(CoverageSpec("pos", ds), FULL, BLOCK, GRID)

    def test_redundant_guard_accepted(self):
        # col < 64 is redundant when the box tops out at 63.
        g = GuardSpec(63, (CoverageTerm("bo_x", -1), CoverageTerm("ti_x", -1)))
        d = _disjunct(
            [("bo_y", 64), ("ti_y", 64), ("bo_x", 1), ("ti_x", 1)], guards=[g]
        )
        assert coverage_validates(CoverageSpec("C", (d,)), FULL, BLOCK, GRID)

    def test_biting_partial_guard_rejected(self):
        # col < 32 cuts rows in half: gaps between rows -> reject.
        g = GuardSpec(31, (CoverageTerm("bo_x", -1), CoverageTerm("ti_x", -1)))
        d = _disjunct(
            [("bo_y", 64), ("ti_y", 64), ("bo_x", 1), ("ti_x", 1)], guards=[g]
        )
        assert not coverage_validates(CoverageSpec("C", (d,)), FULL, BLOCK, GRID)


class TestWorkloadSpecs:
    def test_matmul_spec_validates_aligned_launch(self):
        from repro.workloads.matmul import build_matmul_kernel

        info = analyze_kernel(build_matmul_kernel(64))
        spec = info.writes["C"].coverage
        assert spec is not None
        assert coverage_validates(spec, FULL, BLOCK, GRID)

    def test_nbody_spec_validates(self):
        from repro.workloads.nbody import build_nbody_kernel

        info = analyze_kernel(build_nbody_kernel(256))
        for arr in ("pos_out", "vel_out"):
            spec = info.writes[arr].coverage
            assert spec is not None
            assert coverage_validates(
                spec, Partition.whole(Dim3(x=2)), Dim3(x=128), Dim3(x=2)
            )

    def test_matmul_partition_bands_validate(self):
        from repro.compiler.strategy import PartitionStrategy
        from repro.workloads.matmul import build_matmul_kernel

        info = analyze_kernel(build_matmul_kernel(64))
        spec = info.writes["C"].coverage
        for part in PartitionStrategy(axis="y").partitions(GRID, 3):
            if not part.is_empty:
                assert coverage_validates(spec, part, BLOCK, GRID)
