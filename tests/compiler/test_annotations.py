"""Tests for programmer write-pattern annotations (paper §11)."""

import numpy as np
import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.annotations import apply_annotations, parse_write_annotation
from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import AnalysisError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig


def _obfuscated_copy():
    """dst[(2*gi)//2] = src[gi]: semantically the identity, but the fdiv
    makes the write subscript non-affine to the analysis."""
    kb = KernelBuilder("obfcopy")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        dst[(gi * 2) // 2,] = src[gi,]
    return kb.finish()


#: The true write map: each thread writes its own global index.
IDENTITY_ANNOTATION = (
    "[bd_x, n] -> { [bo_z, bo_y, bo_x, bi_z, bi_y, bi_x] -> [a0] :"
    " bo_x <= a0 < bo_x + bd_x and 0 <= a0 < n }"
)


class TestParsing:
    def test_valid_annotation(self):
        info = analyze_kernel(_obfuscated_copy())
        m = parse_write_annotation(info, "dst", IDENTITY_ANNOTATION)
        assert m.space.in_dims == ("bo_z", "bo_y", "bo_x", "bi_z", "bi_y", "bi_x")
        assert m.space.out_dims == ("a0",)

    def test_wrong_arity_rejected(self):
        info = analyze_kernel(_obfuscated_copy())
        with pytest.raises(AnalysisError, match="6 input dimensions"):
            parse_write_annotation(info, "dst", "{ [i] -> [a] : a = i }")

    def test_wrong_rank_rejected(self):
        info = analyze_kernel(_obfuscated_copy())
        with pytest.raises(AnalysisError, match="dimensions"):
            parse_write_annotation(
                info, "dst", "{ [a, b, c, d, e, f] -> [x, y] : x = a and y = b }"
            )

    def test_unknown_param_rejected(self):
        info = analyze_kernel(_obfuscated_copy())
        with pytest.raises(AnalysisError, match="unknown parameters"):
            parse_write_annotation(
                info, "dst", "[zzz] -> { [a, b, c, d, e, f] -> [x] : x = zzz }"
            )

    def test_unknown_array_rejected(self):
        info = analyze_kernel(_obfuscated_copy())
        with pytest.raises(Exception):
            apply_annotations(info, {"ghost": IDENTITY_ANNOTATION})


class TestApplication:
    def test_rejection_lifted(self):
        info = analyze_kernel(_obfuscated_copy())
        assert not info.partitionable
        assert info.nonaffine_write_arrays == frozenset({"dst"})
        apply_annotations(info, {"dst": IDENTITY_ANNOTATION})
        assert info.partitionable
        assert info.writes["dst"].annotated and info.writes["dst"].exact

    def test_partial_annotation_not_enough(self):
        kb = KernelBuilder("two_bad")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        b = kb.array("b", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            a[(gi * 2) // 2,] = 1.0
            b[(gi * 3) // 3,] = 2.0
        info = analyze_kernel(kb.finish())
        apply_annotations(info, {"a": IDENTITY_ANNOTATION.replace("n }", "n }")})
        assert not info.partitionable  # b still unmodelled


class TestEndToEnd:
    def test_annotated_kernel_partitions_and_is_correct(self, rng):
        k = _obfuscated_copy()
        app = compile_app(
            [k], write_annotations={"obfcopy": {"dst": IDENTITY_ANNOTATION}}
        )
        ck = app.kernel("obfcopy")
        assert ck.partitionable

        n = 64
        data = rng.random(n, dtype=np.float32)

        def host(api):
            d_src = api.cudaMalloc(n * 4)
            d_dst = api.cudaMalloc(n * 4)
            api.cudaMemcpy(d_src, data, n * 4, MemcpyKind.HostToDevice)
            api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
            out = np.zeros(n, dtype=np.float32)
            api.cudaMemcpy(out, d_dst, n * 4, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        for g in (2, 4):
            api = MultiGpuApi(app, RuntimeConfig(n_gpus=g))
            got = host(api)
            assert np.array_equal(ref, got)
            assert api.stats.fallback_launches == 0  # genuinely partitioned

    def test_without_annotation_falls_back(self, rng):
        k = _obfuscated_copy()
        app = compile_app([k])
        assert not app.kernel("obfcopy").partitionable
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        n = 64
        d_src = api.cudaMalloc(n * 4)
        d_dst = api.cudaMalloc(n * 4)
        api.cudaMemcpy(d_src, rng.random(n, dtype=np.float32), n * 4, MemcpyKind.HostToDevice)
        api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
        assert api.stats.fallback_launches == 1
