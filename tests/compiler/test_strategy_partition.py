"""Unit tests for strategy selection and grid partitions (§4, §7)."""

import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.strategy import Partition, PartitionStrategy, choose_strategy
from repro.cuda.dim3 import Dim3
from repro.errors import PartitioningError


class TestPartition:
    def test_whole(self):
        p = Partition.whole(Dim3(x=4, y=3, z=2))
        assert p.as_tuple() == (0, 2, 0, 3, 0, 4)
        assert p.n_blocks == 24 and not p.is_empty

    def test_grid_equation_10(self):
        p = Partition(z=(0, 1), y=(2, 5), x=(0, 4))
        assert p.grid() == Dim3(x=4, y=3, z=1)

    def test_empty_partition(self):
        p = Partition(z=(0, 1), y=(3, 3), x=(0, 4))
        assert p.is_empty and p.n_blocks == 0

    def test_range_of(self):
        p = Partition(z=(0, 1), y=(2, 5), x=(1, 4))
        assert p.range_of("y") == (2, 5) and p.range_of("x") == (1, 4)


class TestSplitting:
    def test_balanced_split(self):
        s = PartitionStrategy(axis="y")
        parts = s.partitions(Dim3(x=4, y=10), 3)
        assert [p.y for p in parts] == [(0, 4), (4, 7), (7, 10)]
        assert all(p.x == (0, 4) and p.z == (0, 1) for p in parts)

    def test_exact_division(self):
        s = PartitionStrategy(axis="x")
        parts = s.partitions(Dim3(x=16), 4)
        assert [p.x for p in parts] == [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_more_parts_than_blocks(self):
        s = PartitionStrategy(axis="x")
        parts = s.partitions(Dim3(x=2), 4)
        assert sum(not p.is_empty for p in parts) == 2
        assert sum(p.n_blocks for p in parts) == 2

    def test_single_part_is_whole_grid(self):
        s = PartitionStrategy(axis="y")
        (p,) = s.partitions(Dim3(x=3, y=5), 1)
        assert p == Partition.whole(Dim3(x=3, y=5))

    def test_partitions_tile_the_grid(self):
        s = PartitionStrategy(axis="y")
        grid = Dim3(x=2, y=13)
        parts = s.partitions(grid, 5)
        covered = []
        for p in parts:
            covered.extend(range(*p.y))
        assert covered == list(range(13))

    def test_invalid_part_count(self):
        with pytest.raises(PartitioningError):
            PartitionStrategy(axis="x").partitions(Dim3(4), 0)


class TestStrategyChoice:
    def test_2d_row_write_prefers_y(self, stencil_kernel):
        info = analyze_kernel(stencil_kernel)
        assert choose_strategy(info).axis == "y"

    def test_1d_kernel_prefers_x(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        assert choose_strategy(info).axis == "x"

    def test_no_writes_defaults_to_x(self):
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder

        kb = KernelBuilder("readonly")
        n = kb.scalar("n")
        kb.array("a", f32, (n,))
        info = analyze_kernel(kb.finish())
        assert choose_strategy(info).axis == "x"

    def test_transposed_write_couples_x_to_rows(self):
        # dst[gx, gy]: the x axis drives the slowest-varying written dim.
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder

        kb = KernelBuilder("transposed")
        n = kb.scalar("n")
        src = kb.array("src", f32, (n, n))
        dst = kb.array("dst", f32, (n, n))
        gy, gx = kb.global_id("y"), kb.global_id("x")
        with kb.if_((gy < n) & (gx < n)):
            dst[gx, gy] = src[gy, gx]
        info = analyze_kernel(kb.finish())
        assert choose_strategy(info).axis == "x"
