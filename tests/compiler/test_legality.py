"""Unit tests for partitioning legality (exactness + injectivity, §4)."""

import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.legality import (
    check_partitionable,
    check_write_access,
    involved_dims,
    is_map_injective,
    substitute_block_dims,
)
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import InjectivityError, PartitioningError
from repro.poly import parse_map


def _kernel(body_fn, name="k"):
    kb = KernelBuilder(name)
    n = kb.scalar("n")
    a = kb.array("a", f32, (n,))
    b = kb.array("b", f32, (n,))
    body_fn(kb, n, a, b)
    return kb.finish()


class TestInjectivity:
    def test_identity_write_is_injective(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        axes, cov = check_write_access(info.writes["dst"])
        assert not cov
        assert axes == frozenset({"y", "z"})  # 1-D kernel ignores y and z

    def test_all_to_one_requires_unit_grid(self):
        # Every thread writes cell 0: the write does not depend on any grid
        # axis, so legality demands unit extent on all three axes (i.e. a
        # single thread) — a multi-thread launch is then rejected.
        def body(kb, n, a, b):
            gi = kb.global_id("x")
            with kb.if_(gi < n):
                b[0,] = a[gi,]

        info = analyze_kernel(_kernel(body))
        axes, cov = check_write_access(info.writes["b"])
        assert axes == frozenset({"x", "y", "z"})

    def test_two_to_one_rejected(self):
        def body(kb, n, a, b):
            gi = kb.global_id("x")
            with kb.if_(gi < n):
                b[gi,] = 1.0
            with kb.if_((gi >= n) & (gi < 2 * n)):
                b[gi - n,] = 2.0  # second thread group hits the same cells

        info = analyze_kernel(_kernel(body))
        with pytest.raises(InjectivityError):
            check_write_access(info.writes["b"])

    def test_disjoint_branch_writes_accepted(self):
        def body(kb, n, a, b):
            gi = kb.global_id("x")
            with kb.if_(gi < n):
                with kb.if_(gi < 4):
                    b[gi,] = 1.0
                with kb.otherwise():
                    b[gi,] = 2.0

        info = analyze_kernel(_kernel(body))
        check_write_access(info.writes["b"])  # must not raise

    def test_shifted_write_injective(self):
        def body(kb, n, a, b):
            gi = kb.global_id("x")
            with kb.if_(gi < n - 5):
                b[gi + 5,] = a[gi,]

        info = analyze_kernel(_kernel(body))
        check_write_access(info.writes["b"])  # must not raise

    def test_strided_write_injective_with_runtime_coverage(self):
        # Stride-2 writes: injective, but the scan is over-approximated, so
        # legality defers exactness to the launch-time coverage check. The
        # bound must be a compile-time constant for the coverage spec (a
        # symbolic parameter in a guard disqualifies it).
        def body(kb, n, a, b):
            gi = kb.global_id("x")
            with kb.if_(2 * gi < 64):
                b[2 * gi,] = a[gi,]

        kb = KernelBuilder("strided")
        n = kb.scalar("n")
        a = kb.array("a", f32, (128,))
        b = kb.array("b", f32, (128,))
        body(kb, n, a, b)
        info = analyze_kernel(kb.finish())
        axes, cov = check_write_access(info.writes["b"])
        assert cov  # runtime coverage validation required


class TestInvolvedDims:
    def test_unused_axis_not_involved(self, copy_kernel):
        info = analyze_kernel(copy_kernel)
        gm = info.writes["dst"].gid_map
        assert involved_dims(gm, ("g_z", "g_y", "g_x")) == ("g_x",)

    def test_is_map_injective_direct(self):
        m = parse_map("{ [i] -> [o] : o = 2*i and 0 <= i }")
        assert is_map_injective(m, ("i",))
        m2 = parse_map("{ [i] -> [o] : o = 0 and 0 <= i < 10 }")
        assert not is_map_injective(m2, ("i",))


class TestBlockDimSpecialization:
    def test_block_granular_write(self):
        # One write per block by thread 0: injective over blocks only.
        def body(kb, n, a, b):
            with kb.if_((kb.threadIdx.x.eq(0)) & (kb.blockIdx.x < n)):
                b[kb.blockIdx.x,] = 1.0

        info = analyze_kernel(_kernel(body))
        access = info.writes["b"]
        assert access.gid_map is None  # blockIdx used directly
        specialized = substitute_block_dims(access, (1, 1, 64))
        assert is_map_injective(specialized, ("bi_x",))
        axes, _ = check_write_access(access, block_dim=(1, 1, 64))
        assert "z" in axes and "y" in axes

    def test_block_granular_requires_block_dim(self):
        def body(kb, n, a, b):
            with kb.if_((kb.threadIdx.x.eq(0)) & (kb.blockIdx.x < n)):
                b[kb.blockIdx.x,] = 1.0

        info = analyze_kernel(_kernel(body))
        with pytest.raises(InjectivityError, match="concrete block size"):
            check_write_access(info.writes["b"])


class TestCheckPartitionable:
    def test_whole_kernel(self, stencil_kernel):
        info = analyze_kernel(stencil_kernel)
        axes, cov = check_partitionable(info)
        assert axes == frozenset({"z"})
        assert not cov

    def test_rejected_kernel_raises(self):
        def body(kb, n, a, b):
            gi = kb.global_id("x")
            with kb.if_(gi < n):
                b[gi % 3,] = 1.0

        info = analyze_kernel(_kernel(body))
        with pytest.raises(PartitioningError):
            check_partitionable(info)

    def test_flat_kernel_needs_runtime_coverage(self):
        from repro.workloads.matmul import build_matmul_kernel

        info = analyze_kernel(build_matmul_kernel(64))
        axes, cov = check_partitionable(info)
        assert cov  # flat subscripts -> launch-time validation
