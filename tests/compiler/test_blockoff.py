"""Unit tests for the blockOff recognizer (paper §4.1)."""

from repro.compiler.blockoff import contains_blockoff, encapsulate_block_offsets
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.exprs import BinOp, GridIdx
from repro.cuda.ir.stmts import If, Store
from repro.cuda.ir.visitors import walk_body, walk_expr


def _all_exprs(kernel):
    for stmt in walk_body(kernel.body):
        for attr in ("value", "cond", "lo", "hi"):
            e = getattr(stmt, attr, None)
            if e is not None:
                yield from walk_expr(e)
        for e in getattr(stmt, "indices", ()):
            yield from walk_expr(e)


def _build(kernel_fn):
    kb = KernelBuilder("k")
    n = kb.scalar("n")
    a = kb.array("a", f32, (n,))
    kernel_fn(kb, n, a)
    return kb.finish()


class TestRecognition:
    def test_canonical_idiom_rewritten(self):
        def body(kb, n, a):
            gi = kb.global_id("x")  # blockIdx.x*blockDim.x + threadIdx.x
            with kb.if_(gi < n):
                a[gi,] = 1.0

        k = encapsulate_block_offsets(_build(body))
        assert contains_blockoff(k)
        # No blockIdx*blockDim product survives.
        for e in _all_exprs(k):
            if isinstance(e, BinOp) and e.op == "mul":
                regs = {
                    getattr(e.lhs, "register", None),
                    getattr(e.rhs, "register", None),
                }
                assert regs != {"blockIdx", "blockDim"}

    def test_swapped_operands_recognized(self):
        def body(kb, n, a):
            gi = kb.blockDim.x * kb.blockIdx.x + kb.threadIdx.x
            with kb.if_(gi < n):
                a[gi,] = 1.0

        k = encapsulate_block_offsets(_build(body))
        assert contains_blockoff(k)

    def test_mismatched_axes_left_alone(self):
        def body(kb, n, a):
            weird = kb.blockIdx.x * kb.blockDim.y + kb.threadIdx.x
            with kb.if_(weird < n):
                a[weird,] = 1.0

        k = encapsulate_block_offsets(_build(body))
        assert not contains_blockoff(k)

    def test_rewrite_in_loop_bounds_and_stores(self):
        def body(kb, n, a):
            gi = kb.global_id("x")
            with kb.if_(gi < n):
                with kb.for_range("j", 0, gi) as j:
                    a[j,] = 0.0

        k = encapsulate_block_offsets(_build(body))
        assert contains_blockoff(k)

    def test_idempotent(self):
        def body(kb, n, a):
            gi = kb.global_id("x")
            with kb.if_(gi < n):
                a[gi,] = 1.0

        once = encapsulate_block_offsets(_build(body))
        twice = encapsulate_block_offsets(once)
        assert once.body == twice.body

    def test_plain_kernel_unchanged(self):
        def body(kb, n, a):
            bi = kb.blockIdx.x
            with kb.if_(bi < n):
                a[bi,] = 1.0

        k = _build(body)
        rewritten = encapsulate_block_offsets(k)
        assert rewritten.body == k.body
        assert not contains_blockoff(rewritten)
