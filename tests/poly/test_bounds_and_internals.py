"""Tests for bound extraction, lane compaction and other internals."""

import pytest

from repro.poly import parse_basic_set
from repro.poly.basic_set import BasicSet, BoundSpec
from repro.poly.space import Space
from repro.sim.engine import _Lane


class TestBoundSpec:
    def test_bounds_from_inequalities(self):
        b = parse_basic_set("{ [x] : 2 <= x and x <= 9 }")
        spec = b.dim_bounds("x")
        point = (1, 0)
        assert spec.eval_lower(point) == 2
        assert spec.eval_upper(point) == 9

    def test_bounds_from_equality(self):
        b = parse_basic_set("{ [x] : 2*x = 6 }")
        spec = b.dim_bounds("x")
        point = (1, 0)
        assert spec.eval_lower(point) == 3
        assert spec.eval_upper(point) == 3

    def test_bounds_with_rounding(self):
        # 3x >= 7  =>  x >= ceil(7/3) = 3 ; 3x <= 11  =>  x <= floor(11/3) = 3
        b = parse_basic_set("{ [x] : 3*x >= 7 and 3*x <= 11 }")
        spec = b.dim_bounds("x")
        point = (1, 0)
        assert spec.eval_lower(point) == 3
        assert spec.eval_upper(point) == 3

    def test_unbounded_returns_none(self):
        b = parse_basic_set("{ [x] : x >= 0 }")
        spec = b.dim_bounds("x")
        point = (1, 0)
        assert spec.eval_lower(point) == 0
        assert spec.eval_upper(point) is None

    def test_parametric_bounds(self):
        b = parse_basic_set("[n] -> { [x] : n <= x and x < 2*n }")
        spec = b.dim_bounds("x")
        # column layout: (1, n, x); evaluate at n = 5 (x column unused).
        point = (1, 5, 0)
        assert spec.eval_lower(point) == 5
        assert spec.eval_upper(point) == 9


class TestEmptyPropagation:
    def test_projection_of_empty_is_empty(self):
        e = parse_basic_set("{ [x, y] : x >= 1 and x <= 0 }")
        assert e.project_out(["y"]).is_empty()

    def test_fix_of_empty_is_empty(self):
        e = parse_basic_set("{ [x, y] : x >= 1 and x <= 0 }")
        assert e.fix("y", 3).is_empty()

    def test_intersect_with_empty(self):
        e = BasicSet.empty(Space.set_space(["x"]))
        u = BasicSet.universe(Space.set_space(["x"]))
        assert u.intersect(e).is_empty()

    def test_empty_enumerates_nothing(self):
        e = parse_basic_set("{ [x, y] : x >= 1 and x <= 0 }")
        assert list(e.enumerate_points()) == []


class TestLaneCompaction:
    def test_compaction_preserves_semantics(self):
        lane = _Lane()
        for i in range(600):  # exceed the compaction threshold
            lane.reserve(float(2 * i), float(2 * i + 1))
        # After compaction the availability must be unchanged and gaps in
        # the retained tail must still be findable.
        assert lane.avail == pytest.approx(1199.0)
        assert len(lane.busy) < 600
        start = lane.next_fit(lane.avail, 5.0)
        assert start >= lane.avail

    def test_next_fit_respects_earliest(self):
        lane = _Lane()
        lane.reserve(10.0, 20.0)
        assert lane.next_fit(0.0, 5.0) == 0.0
        assert lane.next_fit(7.0, 5.0) == 20.0  # gap [7,10) too small
