"""Unit tests for constraint-system simplification."""

from repro.poly.constraint import Constraint, Kind
from repro.poly.simplify import simplify_system


def _ineq(*vec):
    return Constraint(Kind.INEQ, vec)


def _eq(*vec):
    return Constraint(Kind.EQ, vec)


class TestSimplify:
    def test_drops_tautologies(self):
        out = simplify_system([_ineq(5, 0), _eq(0, 0), _ineq(0, 1)])
        assert not out.empty
        assert out.constraints == [_ineq(0, 1)]

    def test_detects_constant_contradiction(self):
        assert simplify_system([_ineq(-1, 0)]).empty
        assert simplify_system([_eq(3, 0)]).empty

    def test_keeps_strongest_duplicate(self):
        # x >= 3 (vec (-3, 1)) is stronger than x >= 1.
        out = simplify_system([_ineq(-1, 1), _ineq(-3, 1)])
        assert out.constraints == [_ineq(-3, 1)]

    def test_opposed_pair_becomes_equality(self):
        # x >= 4 and x <= 4.
        out = simplify_system([_ineq(-4, 1), _ineq(4, -1)])
        assert len(out.constraints) == 1
        assert out.constraints[0].is_eq

    def test_opposed_pair_contradiction(self):
        # x >= 5 and x <= 4.
        assert simplify_system([_ineq(-5, 1), _ineq(4, -1)]).empty

    def test_equality_substituted_into_inequalities(self):
        # layout (const, x, y): y = 3, y >= x  =>  x <= 3.
        out = simplify_system([_eq(-3, 0, 1), _ineq(0, -1, 1)])
        assert not out.empty
        ineqs = [c for c in out.constraints if not c.is_eq]
        assert ineqs == [_ineq(3, -1, 0)]

    def test_parity_contradiction_through_echelon(self):
        # 2x = 2y + 1 (after echelon: gcd 2 does not divide 1).
        assert simplify_system([_eq(-1, 2, -2)]).empty

    def test_consistent_equalities_kept(self):
        out = simplify_system([_eq(0, 1, -1), _eq(-2, 1, 0)])  # x = y, x = 2
        assert not out.empty
        assert sum(1 for c in out.constraints if c.is_eq) == 2
