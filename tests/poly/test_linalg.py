"""Unit tests for exact integer vector helpers."""

import pytest

from repro.poly.linalg import (
    ceildiv,
    floordiv,
    vec_add,
    vec_combine,
    vec_dot,
    vec_gcd,
    vec_is_zero,
    vec_neg,
    vec_normalize,
    vec_scale,
    vec_sub,
)


class TestVectorOps:
    def test_add_sub_roundtrip(self):
        a, b = (1, -2, 3), (4, 5, -6)
        assert vec_sub(vec_add(a, b), b) == a

    def test_neg(self):
        assert vec_neg((1, 0, -7)) == (-1, 0, 7)

    def test_scale(self):
        assert vec_scale((1, -2), 3) == (3, -6)
        assert vec_scale((1, -2), 0) == (0, 0)

    def test_combine_is_linear(self):
        a, b = (2, 3), (5, -1)
        assert vec_combine(a, 2, b, -3) == (-11, 9)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            vec_add((1,), (1, 2))
        with pytest.raises(ValueError):
            vec_dot((1,), (1, 2))

    def test_dot(self):
        assert vec_dot((1, 2, 3), (4, 5, 6)) == 32

    def test_is_zero(self):
        assert vec_is_zero((0, 0))
        assert not vec_is_zero((0, 1))
        assert vec_is_zero(())


class TestGcdNormalize:
    def test_gcd_basic(self):
        assert vec_gcd((4, 6, 8)) == 2
        assert vec_gcd((0, 0)) == 0
        assert vec_gcd((7,)) == 7
        assert vec_gcd((3, 5)) == 1

    def test_normalize_plain(self):
        assert vec_normalize((4, 6, 8)) == (2, 3, 4)

    def test_normalize_skip_const_tightens(self):
        # 2x + 3 >= 0  =>  x >= -3/2  =>  x >= -1  =>  x + 1 >= 0
        assert vec_normalize((3, 2), skip_const=True) == (1, 1)

    def test_normalize_skip_const_floor_negative(self):
        # 2x - 3 >= 0  =>  x >= 3/2  =>  x >= 2  =>  x - 2 >= 0
        assert vec_normalize((-3, 2), skip_const=True) == (-2, 1)

    def test_normalize_unit_gcd_unchanged(self):
        assert vec_normalize((5, 3, 7), skip_const=True) == (5, 3, 7)


class TestDivision:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -4), (7, -2, -4), (-7, -2, 3), (6, 3, 2), (0, 5, 0)],
    )
    def test_floordiv(self, a, b, expected):
        assert floordiv(a, b) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 4), (-7, 2, -3), (7, -2, -3), (-7, -2, 4), (6, 3, 2), (0, 5, 0)],
    )
    def test_ceildiv(self, a, b, expected):
        assert ceildiv(a, b) == expected

    def test_floor_le_ceil(self):
        for a in range(-12, 13):
            for b in (1, 2, 3, 5, -1, -3):
                assert floordiv(a, b) <= ceildiv(a, b)
                # Match Python semantics for positive divisors.
                if b > 0:
                    assert floordiv(a, b) == a // b
