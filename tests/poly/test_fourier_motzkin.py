"""Unit tests for Fourier-Motzkin / Gaussian elimination."""

import pytest

from repro.poly import parse_basic_set
from repro.poly.constraint import Constraint, Kind
from repro.poly.fourier_motzkin import eliminate_column, project_columns


def _ineq(*vec):
    return Constraint(Kind.INEQ, vec)


def _eq(*vec):
    return Constraint(Kind.EQ, vec)


class TestEliminateColumn:
    # Column layout in these tests: (const, x, y)

    def test_fm_combines_lower_and_upper(self):
        # y >= x  and  y <= 5  =>  x <= 5
        cons = [_ineq(0, -1, 1), _ineq(5, 0, -1)]
        out, exact = eliminate_column(cons, 2)
        assert exact
        assert len(out) == 1
        assert out[0].vec == (5, -1, 0)

    def test_fm_exactness_flag_nonunit(self):
        # 2y >= x and 3y <= x: both coefficients non-unit.
        cons = [_ineq(0, -1, 2), _ineq(0, 1, -3)]
        out, exact = eliminate_column(cons, 2)
        assert not exact

    def test_fm_unit_on_one_side_is_exact(self):
        # y >= 2x (coeff 1 on lower side) and y <= 10.
        cons = [_ineq(0, -2, 1), _ineq(10, 0, -1)]
        out, exact = eliminate_column(cons, 2)
        assert exact
        assert out[0].vec == (5, -1, 0)  # 2x <= 10, normalized

    def test_one_sided_bounds_dropped(self):
        # Only lower bounds on y: projection is everything (for x).
        cons = [_ineq(0, -1, 1), _ineq(3, 0, 1)]
        out, exact = eliminate_column(cons, 2)
        assert exact and out == []

    def test_gauss_preferred_over_fm(self):
        # y = x + 2 present: substitution, not pairwise combination.
        cons = [_eq(2, 1, -1), _ineq(0, 0, 1), _ineq(10, 0, -1)]
        out, exact = eliminate_column(cons, 2)
        assert exact
        # y >= 0 -> x + 2 >= 0 ; y <= 10 -> x <= 8
        vecs = {c.vec for c in out}
        assert (2, 1, 0) in vecs and (8, -1, 0) in vecs

    def test_gauss_nonunit_pivot_inexact(self):
        cons = [_eq(0, 1, -2), _ineq(9, 0, -1)]  # 2y = x, y <= 9
        out, exact = eliminate_column(cons, 2)
        assert not exact

    def test_untouched_constraints_kept(self):
        cons = [_ineq(1, 1, 0), _ineq(0, -1, 1), _ineq(5, 0, -1)]
        out, _ = eliminate_column(cons, 2)
        assert _ineq(1, 1, 0) in out


class TestProjectColumns:
    def test_multi_column_projection(self):
        # Box 0<=x<=2, 0<=y<=3, z = x + y: project x and y.
        cons = [
            _ineq(0, 1, 0, 0),
            _ineq(2, -1, 0, 0),
            _ineq(0, 0, 1, 0),
            _ineq(3, 0, -1, 0),
            _eq(0, 1, 1, -1),
        ]
        out, exact = project_columns(cons, [1, 2])
        assert exact
        bounds = sorted(c.vec for c in out)
        # z in [0, 5]
        assert (0, 0, 0, 1) in bounds and (5, 0, 0, -1) in bounds

    def test_projection_preserves_feasibility(self):
        b = parse_basic_set("{ [x, y, z] : 0 <= x <= 4 and x <= y <= x + 2 and z = y - x }")
        p = b.project_out(["x", "y"])
        pts = set(p.enumerate_points())
        assert pts == {(0,), (1,), (2,)}
