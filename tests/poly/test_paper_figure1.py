"""Reproduction of the paper's Figure 1 / Equations (1)-(4).

S1 = { [y, x] : 0 <= y <= x and 0 <= x <= 4 }           (1)
M  = { [y, x] -> [y', x'] : y' = y + 1 and x' = x + 3 }  (2)
S2 = M(S1) = { [y, x] : 1 <= y <= x - 2 and 3 <= x <= 7 }(3)
U  = S1 union S2                                          (4)
"""

from repro.poly import parse_basic_map, parse_basic_set, parse_set


def _pts(obj):
    return set(obj.enumerate_points())


S1 = parse_basic_set("{ [y, x] : 0 <= y <= x and 0 <= x <= 4 }")
M = parse_basic_map("{ [y, x] -> [y + 1, x + 3] }")


def test_s1_is_the_triangle():
    assert _pts(S1) == {(y, x) for x in range(5) for y in range(x + 1)}


def test_image_matches_equation_3():
    s2 = M.image(S1)
    closed_form = parse_basic_set("{ [y, x] : 1 <= y <= x - 2 and 3 <= x <= 7 }")
    assert _pts(s2) == _pts(closed_form)
    assert _pts(s2) == {(y + 1, x + 3) for (y, x) in _pts(S1)}


def test_union_equation_4():
    u = parse_set(
        "{ [y, x] : 0 <= y <= x and 0 <= x <= 4 ;"
        "  [y, x] : 1 <= y <= x - 2 and 3 <= x <= 7 }"
    )
    s2 = M.image(S1)
    assert _pts(u) == _pts(S1) | _pts(s2)
    # The pieces overlap (e.g. (1, 3)), so the union is smaller than the sum.
    assert len(_pts(u)) < len(_pts(S1)) + len(_pts(s2))


def test_image_under_translation_preserves_cardinality():
    assert len(_pts(M.image(S1))) == len(_pts(S1))
