"""Unit tests for Set (unions) and Map operations."""

import pytest

from repro.errors import SpaceMismatchError
from repro.poly import (
    BasicMap,
    BasicSet,
    Map,
    Set,
    parse_basic_map,
    parse_basic_set,
    parse_map,
    parse_set,
)
from repro.poly.space import Space


class TestSetOps:
    def test_union_dedup(self):
        a = parse_basic_set("{ [x] : 0 <= x < 4 }")
        s = Set.from_basic(a).union(Set.from_basic(a))
        assert s.n_basic_sets == 1

    def test_union_points(self):
        u = parse_set("{ [x] : 0 <= x < 2 }").union(parse_set("{ [x] : 1 <= x < 4 }"))
        assert sorted(u.enumerate_points()) == [(0,), (1,), (2,), (3,)]

    def test_intersect_distributes(self):
        u = parse_set("{ [x] : 0 <= x < 3 ; [x] : 10 <= x < 13 }")
        v = parse_set("{ [x] : 2 <= x < 11 }")
        assert sorted(u.intersect(v).enumerate_points()) == [(2,), (10,)]

    def test_empty_union(self):
        e = Set.empty(Space.set_space(["x"]))
        assert e.is_empty()
        u = e.union(parse_set("{ [x] : x = 5 }"))
        assert sorted(u.enumerate_points()) == [(5,)]

    def test_universe(self):
        u = Set.universe(Space.set_space(["x"]))
        assert not u.is_empty()
        assert u.contains({"x": 12345})

    def test_project_out_union(self):
        u = parse_set("{ [x, y] : x = 0 and 0 <= y < 2 ; [x, y] : x = 5 and 0 <= y < 2 }")
        p = u.project_out(["y"])
        assert sorted(p.enumerate_points()) == [(0,), (5,)]

    def test_fix_union(self):
        u = parse_set("{ [x, y] : x = 0 and 0 <= y < 2 ; [x, y] : x = 5 and 3 <= y < 9 }")
        assert sorted(u.fix("x", 5).enumerate_points()) == [(y,) for y in range(3, 9)]

    def test_coalesce_drops_empty_disjuncts(self):
        u = parse_set("{ [x] : 0 <= x < 2 ; [x] : x >= 5 and x <= 4 }")
        assert u.coalesce().n_basic_sets == 1

    def test_exactness_aggregates(self):
        exact = parse_basic_set("{ [x] : 0 <= x < 4 }")
        inexact = exact.project_out([]) if True else exact
        s = Set.from_basic(exact)
        assert s.exact

    def test_space_mismatch(self):
        a = parse_set("{ [x] : x = 0 }")
        b = parse_set("{ [y] : y = 0 }")
        with pytest.raises(SpaceMismatchError):
            a.union(b)


class TestMapOps:
    def test_domain_and_range(self):
        m = parse_basic_map("{ [i] -> [o] : o = i + 5 and 0 <= i < 4 }")
        assert sorted(m.domain().enumerate_points()) == [(i,) for i in range(4)]
        assert sorted(m.range().enumerate_points()) == [(i + 5,) for i in range(4)]

    def test_reverse(self):
        m = parse_basic_map("{ [i] -> [o] : o = 2*i and 0 <= i < 3 }")
        r = m.reverse()
        assert r.contains({"o": 4, "i": 2})
        assert not r.contains({"o": 3, "i": 1})
        # Projecting out the (stride-2) input is over-approximate on Z: the
        # domain is the rational hull [0, 4], flagged inexact.
        dom = r.domain()
        assert not dom.exact
        assert set(dom.enumerate_points()) >= {(0,), (2,), (4,)}

    def test_wrap(self):
        m = parse_basic_map("{ [i] -> [o] : o = i and 0 <= i < 2 }")
        w = m.wrap()
        assert sorted(w.enumerate_points()) == [(0, 0), (1, 1)]

    def test_intersect_domain(self):
        m = parse_basic_map("{ [i] -> [o] : o = i }")
        dom = parse_basic_set("{ [i] : 3 <= i < 6 }")
        img = m.intersect_domain(dom).range()
        assert sorted(img.enumerate_points()) == [(3,), (4,), (5,)]

    def test_intersect_range(self):
        m = parse_basic_map("{ [i] -> [o] : o = i and 0 <= i < 10 }")
        rng_ = parse_basic_set("{ [o] : o >= 7 }")
        dom = m.intersect_range(rng_).domain()
        assert sorted(dom.enumerate_points()) == [(7,), (8,), (9,)]

    def test_map_union_image(self):
        m = parse_map("{ [i] -> [o] : o = i ; [i] -> [o] : o = i + 10 }")
        dom = parse_basic_set("{ [i] : i = 1 }")
        img = m.image(dom)
        assert sorted(img.enumerate_points()) == [(1,), (11,)]

    def test_from_affine_exprs(self):
        from repro.poly.affine import Aff

        space = Space.map_space(["i"], ["o0", "o1"])
        m = BasicMap.from_affine_exprs(
            space,
            [Aff.var(space, "i") + 1, Aff.var(space, "i") * 2],
        )
        assert m.contains({"i": 3, "o0": 4, "o1": 6})
        assert not m.contains({"i": 3, "o0": 4, "o1": 7})

    def test_add_params(self):
        m = parse_basic_map("{ [i] -> [o] : o = i }")
        m2 = m.add_params(["n"])
        assert "n" in m2.space.params

    def test_requires_map_space(self):
        with pytest.raises(SpaceMismatchError):
            BasicMap(Space.set_space(["x"]))

    def test_empty_map(self):
        m = parse_basic_map("{ [i] -> [o] : o = i and i >= 1 and i <= 0 }")
        assert m.is_empty()

    def test_map_equality_and_hash(self):
        a = parse_basic_map("{ [i] -> [o] : o = i }")
        b = parse_basic_map("{ [i] -> [o] : o = i }")
        assert a == b and hash(a) == hash(b)


class TestPrettyRoundtrips:
    @pytest.mark.parametrize(
        "text",
        [
            "{ [i] -> [o] : o = i + 1 and 0 <= i < 5 }",
            "[n] -> { [i] -> [o] : o = 2*i and 0 <= i < n }",
        ],
    )
    def test_map_roundtrip(self, text):
        m1 = parse_map(text)
        m2 = parse_map(repr(m1))
        probe = {"i": 2, "o": None, "n": 9}
        for o in range(12):
            vals = {"i": 2, "o": o}
            if m1.space.params:
                vals["n"] = 9
            assert m1.contains(vals) == m2.contains(vals)

    def test_empty_printing(self):
        s = parse_set("{ }")
        assert repr(s) == "{ }"
