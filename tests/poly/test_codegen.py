"""Unit tests for scanner AST construction and code generation."""

import pytest

from repro.errors import PolyhedralError
from repro.poly import parse_basic_set, parse_set
from repro.poly.ast import AFor, AGuard, ASeq, EVar, eval_expr, EConst, EMax, EMin, ECDiv, EFDiv, EMul, EAdd
from repro.poly.astbuild import build_scan_ast, build_scan_ast_union
from repro.poly.codegen import compile_scanner, interpreted_scanner, render_scanner_source


def scan_all(scanner, params):
    out = []
    scanner(tuple(params), lambda row, lo, hi: out.append((row, lo, hi)))
    return out


def points_of(ranges):
    pts = set()
    for row, lo, hi in ranges:
        for v in range(lo, hi + 1):
            pts.add(row + (v,))
    return pts


class TestScannerCorrectness:
    def test_box_2d(self):
        s = parse_basic_set("[n] -> { [y, x] : 0 <= y < 3 and 0 <= x < n }")
        scanner = compile_scanner(s, ["n"])
        assert scan_all(scanner, [4]) == [((y,), 0, 3) for y in range(3)]

    def test_matches_enumerate_points(self):
        s = parse_basic_set("[n] -> { [y, x] : 0 <= y <= x and x < n }")
        scanner = compile_scanner(s, ["n"])
        got = points_of(scan_all(scanner, [6]))
        want = set(s.fix("n", 6).enumerate_points())
        assert got == want

    def test_triangular_dependence(self):
        s = parse_basic_set("{ [y, x] : 0 <= y < 5 and y <= x <= 2*y }")
        scanner = compile_scanner(s, [])
        assert scan_all(scanner, []) == [((y,), y, 2 * y) for y in range(5)]

    def test_empty_rows_skipped(self):
        s = parse_basic_set("[a] -> { [y, x] : 0 <= y < 3 and a <= x < 2 }")
        scanner = compile_scanner(s, ["a"])
        assert scan_all(scanner, [5]) == []  # a=5 -> empty x range

    def test_one_dimensional(self):
        s = parse_basic_set("[lo, hi] -> { [i] : lo <= i < hi }")
        scanner = compile_scanner(s, ["lo", "hi"])
        assert scan_all(scanner, [2, 9]) == [((), 2, 8)]

    def test_stride_equality(self):
        s = parse_basic_set("{ [y, x] : 3*x = y and 0 <= y <= 9 }")
        scanner = compile_scanner(s, [])
        assert scan_all(scanner, []) == [((y,), y // 3, y // 3) for y in (0, 3, 6, 9)]

    def test_union_scans_each_piece(self):
        u = parse_set("{ [y, x] : y = 0 and 0 <= x < 4 ; [y, x] : y = 2 and 1 <= x < 3 }")
        scanner = compile_scanner(u, [])
        assert sorted(scan_all(scanner, [])) == [((0,), 0, 3), ((2,), 1, 2)]

    def test_parameter_only_guard(self):
        # The row y = 0 exists only when p <= 0 (cf. stencil boundary pieces).
        s = parse_basic_set("[p] -> { [y, x] : y = 0 and p <= 0 and 0 <= x < 4 }")
        scanner = compile_scanner(s, ["p"])
        assert scan_all(scanner, [0]) == [((0,), 0, 3)]
        assert scan_all(scanner, [1]) == []

    def test_unbounded_raises_at_build(self):
        s = parse_basic_set("{ [x] : x >= 0 }")
        with pytest.raises(PolyhedralError):
            compile_scanner(s, [])


class TestInterpretedEquivalence:
    @pytest.mark.parametrize(
        "text,params,values",
        [
            ("[n] -> { [y, x] : 0 <= y <= x and x < n }", ["n"], [7]),
            ("[a, b] -> { [i] : a <= i < b }", ["a", "b"], [3, 11]),
            ("{ [y, x] : 0 <= y < 4 and y <= x <= y + 2 }", [], []),
        ],
    )
    def test_compiled_equals_interpreted(self, text, params, values):
        s = parse_basic_set(text)
        compiled = scan_all(compile_scanner(s, params), values)
        interp = scan_all(interpreted_scanner(s, params), values)
        assert compiled == interp


class TestSourceRendering:
    def test_source_is_valid_python(self):
        s = parse_basic_set("[n] -> { [y, x] : 0 <= y < n and y <= x < n }")
        scanner = compile_scanner(s, ["n"])
        src = scanner.__poly_source__
        compile(src, "<test>", "exec")  # must not raise
        assert "for " in src and "_emit" in src

    def test_dotted_names_sanitized(self):
        s = parse_basic_set("[blockDim.x] -> { [a0] : 0 <= a0 < blockDim.x }")
        scanner = compile_scanner(s, ["blockDim.x"])
        assert scan_all(scanner, [3]) == [((), 0, 2)]


class TestAstNodes:
    def test_eval_expr_all_ops(self):
        env = {"x": 7}
        assert eval_expr(EAdd((EConst(1), EVar("x"))), env) == 8
        assert eval_expr(EMul(-2, EVar("x")), env) == -14
        assert eval_expr(EFDiv(EVar("x"), 2), env) == 3
        assert eval_expr(ECDiv(EVar("x"), 2), env) == 4
        assert eval_expr(EMin((EConst(3), EVar("x"))), env) == 3
        assert eval_expr(EMax((EConst(3), EVar("x"))), env) == 7

    def test_guard_node_generated_for_param_constraint(self):
        s = parse_basic_set("[p] -> { [x] : 0 <= x < 4 and p >= 2 }")
        ast = build_scan_ast(s)
        assert isinstance(ast, AGuard)
