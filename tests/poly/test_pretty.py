"""Tests for isl-notation printing."""

import pytest

from repro.poly import (
    parse_basic_map,
    parse_basic_set,
    parse_map,
    parse_set,
)
from repro.poly.pretty import (
    basic_map_to_str,
    basic_set_to_str,
    constraint_to_str,
    map_to_str,
    set_to_str,
)


class TestSetPrinting:
    def test_simple_set(self):
        s = parse_basic_set("{ [x] : 0 <= x <= 4 }")
        text = basic_set_to_str(s)
        assert text.startswith("{ [x] :")
        assert "x >= 0" in text or "x" in text

    def test_params_prefix(self):
        s = parse_basic_set("[n] -> { [x] : 0 <= x < n }")
        assert basic_set_to_str(s).startswith("[n] -> ")

    def test_universe(self):
        s = parse_basic_set("{ [x] }") if False else None
        from repro.poly.basic_set import BasicSet
        from repro.poly.space import Space

        u = BasicSet.universe(Space.set_space(["x"]))
        assert basic_set_to_str(u) == "{ [x] }"

    def test_empty_set_prints_braces(self):
        assert set_to_str(parse_set("{ }")) == "{ }"

    def test_union_printed_with_semicolons(self):
        u = parse_set("{ [x] : x = 0 ; [x] : x = 5 }")
        assert ";" in set_to_str(u)

    def test_coefficient_rendering_roundtrips(self):
        s = parse_basic_set("{ [x, y] : 3*x - 2*y >= 7 and -x + 5*y <= 40 }")
        text = basic_set_to_str(s)
        again = parse_basic_set(text)
        for x in range(-5, 6):
            for y in range(-5, 6):
                assert s.contains({"x": x, "y": y}) == again.contains({"x": x, "y": y})


class TestMapPrinting:
    def test_arrow_form(self):
        m = parse_basic_map("{ [i] -> [o] : o = i + 1 }")
        text = basic_map_to_str(m)
        assert "] -> [" in text

    def test_map_union(self):
        m = parse_map("{ [i] -> [o] : o = i ; [i] -> [o] : o = i + 1 }")
        assert ";" in map_to_str(m)

    def test_empty_map(self):
        from repro.poly.map_ import Map
        from repro.poly.space import Space

        m = Map(Space.map_space(["i"], ["o"]), [])
        assert map_to_str(m) == "{ }"


class TestConstraintPrinting:
    def test_eq_and_ineq_ops(self):
        s = parse_basic_set("{ [x, y] : x = 2 and y >= 3 }")
        texts = [constraint_to_str(c, s.space.all_names) for c in s.constraints]
        assert any("= 0" in t and ">= 0" not in t for t in texts)
        assert any(">= 0" in t for t in texts)
