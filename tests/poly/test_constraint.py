"""Unit tests for constraint normalization and predicates."""

import pytest

from repro.poly.affine import Aff
from repro.poly.constraint import Constraint, Kind
from repro.poly.space import Space

S = Space.set_space(["x"], params=["n"])


class TestNormalization:
    def test_ineq_gcd_tightening(self):
        # 2x + 3 >= 0 tightens to x + 1 >= 0 over the integers.
        c = Constraint.ineq(Aff.from_terms(S, {"x": 2}, 3))
        assert c.vec == (1, 0, 1)

    def test_eq_divisible_gcd(self):
        c = Constraint.eq(Aff.from_terms(S, {"x": 2}, 4))
        assert c.vec == (2, 0, 1)

    def test_eq_nondivisible_kept(self):
        # 2x + 1 == 0 has no integer solutions; normalization must NOT
        # round it (the emptiness check detects the contradiction).
        c = Constraint.eq(Aff.from_terms(S, {"x": 2}, 1))
        assert c.vec[2] == 2 and c.vec[0] == 1

    def test_eq_canonical_sign(self):
        a = Constraint.eq(Aff.from_terms(S, {"x": -1}, 5))
        b = Constraint.eq(Aff.from_terms(S, {"x": 1}, -5))
        assert a.vec == b.vec


class TestPredicates:
    def test_tautology(self):
        assert Constraint.ineq(Aff.const(S, 3)).is_tautology()
        assert Constraint.eq(Aff.const(S, 0)).is_tautology()
        assert not Constraint.ineq(Aff.var(S, "x")).is_tautology()

    def test_contradiction(self):
        assert Constraint.ineq(Aff.const(S, -1)).is_contradiction()
        assert Constraint.eq(Aff.const(S, 2)).is_contradiction()
        assert not Constraint.eq(Aff.var(S, "x")).is_contradiction()

    def test_satisfied_by(self):
        c = Constraint.ineq(Aff.from_terms(S, {"x": 1}, -3))  # x >= 3
        assert c.satisfied_by((1, 0, 3))
        assert not c.satisfied_by((1, 0, 2))

    def test_negated(self):
        c = Constraint.ineq(Aff.from_terms(S, {"x": 1}))  # x >= 0
        neg = c.negated()  # x <= -1
        assert neg.satisfied_by((1, 0, -1))
        assert not neg.satisfied_by((1, 0, 0))
        # Exactly one of c, neg holds for every integer x.
        for x in range(-3, 4):
            assert c.satisfied_by((1, 0, x)) != neg.satisfied_by((1, 0, x))

    def test_negate_equality_raises(self):
        with pytest.raises(ValueError):
            Constraint.eq(Aff.var(S, "x")).negated()
