"""Unit tests for affine expressions."""

import pytest

from repro.errors import NonAffineError, SpaceMismatchError
from repro.poly.affine import Aff
from repro.poly.space import Space

S = Space.set_space(["y", "x"], params=["n"])


class TestConstruction:
    def test_const(self):
        a = Aff.const(S, 5)
        assert a.is_constant() and a.const_term == 5

    def test_var(self):
        a = Aff.var(S, "x")
        assert a.coeff("x") == 1 and a.coeff("y") == 0

    def test_from_terms(self):
        a = Aff.from_terms(S, {"x": 2, "n": -1}, 7)
        assert a.coeff("x") == 2 and a.coeff("n") == -1 and a.const_term == 7

    def test_wrong_length_vector(self):
        with pytest.raises(SpaceMismatchError):
            Aff(S, (1, 2))


class TestArithmetic:
    def test_add_sub(self):
        x, y = Aff.var(S, "x"), Aff.var(S, "y")
        e = x + y - 3
        assert e.coeff("x") == 1 and e.coeff("y") == 1 and e.const_term == -3

    def test_radd_rsub(self):
        x = Aff.var(S, "x")
        assert (5 - x).coeff("x") == -1
        assert (5 - x).const_term == 5
        assert (5 + x).const_term == 5

    def test_neg(self):
        e = -(Aff.var(S, "x") + 1)
        assert e.coeff("x") == -1 and e.const_term == -1

    def test_mul_by_int(self):
        e = Aff.var(S, "x") * 3
        assert e.coeff("x") == 3
        assert (2 * Aff.var(S, "y")).coeff("y") == 2

    def test_mul_by_constant_aff(self):
        e = Aff.var(S, "x") * Aff.const(S, 4)
        assert e.coeff("x") == 4

    def test_nonaffine_product_raises(self):
        with pytest.raises(NonAffineError):
            Aff.var(S, "x") * Aff.var(S, "y")

    def test_space_mismatch(self):
        other = Space.set_space(["z"])
        with pytest.raises(SpaceMismatchError):
            Aff.var(S, "x") + Aff.var(other, "z")


class TestEvalRebind:
    def test_evaluate(self):
        e = Aff.from_terms(S, {"x": 2, "y": -1, "n": 1}, 3)
        assert e.evaluate({"x": 5, "y": 4, "n": 10}) == 2 * 5 - 4 + 10 + 3

    def test_rebind_to_superspace(self):
        sup = Space.set_space(["y", "x", "z"], params=["n", "m"])
        e = Aff.from_terms(S, {"x": 2}, 1).rebind(sup)
        assert e.space == sup and e.coeff("x") == 2 and e.const_term == 1

    def test_terms_only_nonzero(self):
        e = Aff.from_terms(S, {"x": 0, "y": 3})
        assert e.terms() == {"y": 3}

    def test_str_readable(self):
        e = Aff.from_terms(S, {"x": 1, "y": -2}, 4)
        s = str(e)
        assert "x" in s and "y" in s and "4" in s
