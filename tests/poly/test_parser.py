"""Unit tests for the isl-notation parser."""

import pytest

from repro.errors import ParseError
from repro.poly import parse_basic_map, parse_basic_set, parse_map, parse_set


class TestSets:
    def test_simple_box(self):
        s = parse_basic_set("{ [x] : 0 <= x and x <= 4 }")
        assert sorted(s.enumerate_points()) == [(i,) for i in range(5)]

    def test_chained_comparisons(self):
        s = parse_basic_set("{ [x] : 0 <= x <= 4 }")
        assert len(list(s.enumerate_points())) == 5

    def test_strict_comparisons(self):
        s = parse_basic_set("{ [x] : 0 < x < 4 }")
        assert sorted(s.enumerate_points()) == [(1,), (2,), (3,)]

    def test_params_prefix(self):
        s = parse_basic_set("[n, m] -> { [x] : m <= x < n }")
        assert s.space.params == ("n", "m")
        fixed = s.fix("n", 5).fix("m", 3)
        assert sorted(fixed.enumerate_points()) == [(3,), (4,)]

    def test_arithmetic_in_conditions(self):
        s = parse_basic_set("{ [x, y] : y = 2*x + 1 and 0 <= x < 3 }")
        assert sorted(s.enumerate_points()) == [(0, 1), (1, 3), (2, 5)]

    def test_parenthesized(self):
        s = parse_basic_set("{ [x] : 2*(x - 1) <= 4 and x >= 0 }")
        assert max(p[0] for p in s.enumerate_points()) == 3

    def test_union_with_semicolon(self):
        u = parse_set("{ [x] : 0 <= x < 2 ; [x] : 5 <= x < 7 }")
        assert u.n_basic_sets == 2
        assert sorted(u.enumerate_points()) == [(0,), (1,), (5,), (6,)]

    def test_empty_set(self):
        assert parse_set("{ }").is_empty()

    def test_equality(self):
        s = parse_basic_set("{ [x, y] : x = y and 0 <= x <= 2 }")
        assert sorted(s.enumerate_points()) == [(0, 0), (1, 1), (2, 2)]


class TestMaps:
    def test_translation_map(self):
        m = parse_basic_map("{ [y, x] -> [y + 1, x + 3] }")
        assert m.space.n_in == 2 and m.space.n_out == 2
        assert m.contains({"y": 0, "x": 0, "o0": 1, "o1": 3})
        assert not m.contains({"y": 0, "x": 0, "o0": 0, "o1": 3})

    def test_fresh_output_names(self):
        m = parse_basic_map("{ [i] -> [j] : j = i + 1 }")
        assert m.space.out_dims == ("j",)

    def test_identity_output_expression(self):
        m = parse_basic_map("{ [i] -> [i] }")
        assert m.contains({"i": 7, "o0": 7})
        assert not m.contains({"i": 7, "o0": 8})

    def test_map_with_conditions(self):
        m = parse_basic_map("[n] -> { [i] -> [o] : o = i and 0 <= i < n }")
        dom = m.domain().fix("n", 3)
        assert sorted(dom.enumerate_points()) == [(0,), (1,), (2,)]

    def test_negative_coefficients(self):
        m = parse_basic_map("{ [i] -> [-i] }")
        assert m.contains({"i": 4, "o0": -4})


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "{ [x] : x >= }",
            "{ [x : x >= 0 }",
            "{ [x] : y >= 0 }",  # undeclared name
            "[n] { [x] }",  # missing ->
            "{ [x] -> }",
            "{ [x] : x > 0 } trailing",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_set(text)

    def test_set_where_map_expected(self):
        with pytest.raises(ParseError):
            parse_basic_map("{ [x] : x >= 0 }")

    def test_union_where_single_expected(self):
        with pytest.raises(ParseError):
            parse_basic_set("{ [x] : x = 0 ; [x] : x = 1 }")


class TestRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "{ [x] : 0 <= x <= 4 }",
            "[n] -> { [y, x] : 0 <= y < n and y <= x < n }",
            "{ [y, x] : 1 <= y <= x - 2 and 3 <= x <= 7 }",
            "{ [x, y] : 2*x = y and 0 <= x <= 10 }",
        ],
    )
    def test_print_parse_same_points(self, text):
        s1 = parse_basic_set(text)
        s2 = parse_basic_set(repr(s1).replace("[n] -> ", "[n] -> "))
        if s1.space.params:
            s1 = s1.fix("n", 9)
            s2 = s2.fix("n", 9)
        assert set(s1.enumerate_points()) == set(s2.enumerate_points())
