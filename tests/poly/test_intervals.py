"""Interval algebra and MAIRS atomic decomposition (repro.poly.intervals).

Unit tests against hand-computed cases plus hypothesis properties against a
brute-force point-set oracle: each operation behaves like its set-theoretic
counterpart on integer points, and the atomic decomposition *exactly
partitions* the union of the per-reader range lists — atoms are pairwise
disjoint, byte-identical to the union, and each atom's reader set is
precisely the readers covering its points.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.intervals import (
    Atom,
    atomic_decomposition,
    intersect_intervals,
    normalize_intervals,
    subtract_intervals,
    total_bytes,
    union_intervals,
)


def points(ranges):
    out = set()
    for lo, hi in ranges:
        out.update(range(lo, hi))
    return out


ranges_strategy = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=6,
)


class TestAlgebra:
    def test_normalize_merges_overlap_and_abutment(self):
        assert normalize_intervals([(5, 9), (0, 3), (3, 5), (20, 22)]) == [
            (0, 9),
            (20, 22),
        ]

    def test_normalize_drops_empty_and_inverted(self):
        assert normalize_intervals([(4, 4), (9, 2)]) == []

    def test_subtract_splits_runs(self):
        assert subtract_intervals([(0, 10)], [(2, 4), (6, 8)]) == [
            (0, 2),
            (4, 6),
            (8, 10),
        ]

    def test_intersect_disjoint_is_empty(self):
        assert intersect_intervals([(0, 4)], [(4, 8)]) == []

    def test_total_bytes_deduplicates(self):
        assert total_bytes([(0, 4), (2, 6)]) == 6

    @given(a=ranges_strategy, b=ranges_strategy)
    @settings(max_examples=200, deadline=None)
    def test_ops_match_point_sets(self, a, b):
        assert points(union_intervals(a, b)) == points(a) | points(b)
        assert points(intersect_intervals(a, b)) == points(a) & points(b)
        assert points(subtract_intervals(a, b)) == points(a) - points(b)

    @given(a=ranges_strategy)
    @settings(max_examples=100, deadline=None)
    def test_normalize_is_canonical(self, a):
        norm = normalize_intervals(a)
        assert points(norm) == points(a)
        assert norm == sorted(norm)
        # Disjoint and non-adjacent: no two runs could merge further.
        assert all(norm[i][1] < norm[i + 1][0] for i in range(len(norm) - 1))


class TestAtomicDecomposition:
    def test_halo_example(self):
        """Two partitions sharing one halo row split into three atoms."""
        atoms = atomic_decomposition({0: [(0, 12)], 1: [(8, 20)]})
        assert atoms == [
            Atom(0, 8, frozenset({0})),
            Atom(8, 12, frozenset({0, 1})),
            Atom(12, 20, frozenset({1})),
        ]
        assert atoms[1].multiplicity == 2 and atoms[1].nbytes == 4

    def test_empty_readers_produce_no_atoms(self):
        assert atomic_decomposition({0: [], 1: []}) == []

    @given(
        read_sets=st.dictionaries(
            st.integers(0, 3), ranges_strategy, max_size=4
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_exactly_partitions_the_union(self, read_sets):
        """The MAIRS property: disjoint atoms, byte-identical union, and

        each atom's reader set equals the readers whose ranges cover it.
        """
        atoms = atomic_decomposition(read_sets)
        # Pairwise disjoint and sorted.
        for left, right in zip(atoms, atoms[1:]):
            assert left.hi <= right.lo
        # Union of atoms == union of all input ranges, byte for byte.
        all_ranges = [r for ranges in read_sets.values() for r in ranges]
        assert points((a.lo, a.hi) for a in atoms) == points(all_ranges)
        # Reader sets are exact at every point, and atoms are maximal:
        # adjacent atoms never share a reader set.
        by_reader = {r: points(ranges) for r, ranges in read_sets.items()}
        for atom in atoms:
            assert atom.readers  # an atom is read by someone by construction
            for x in range(atom.lo, atom.hi):
                assert atom.readers == frozenset(
                    r for r, pts in by_reader.items() if x in pts
                )
        for left, right in zip(atoms, atoms[1:]):
            if left.hi == right.lo:
                assert left.readers != right.readers


class TestSetSubtract:
    """BasicSet/Set.subtract added for the dataflow analyzer."""

    def _box(self, lo, hi):
        from repro.poly.basic_set import BasicSet
        from repro.poly.constraint import Constraint
        from repro.poly.affine import Aff
        from repro.poly.space import Space

        space = Space.set_space(("x",))
        x = Aff.var(space, "x")
        return BasicSet(
            space,
            [
                Constraint.ineq(x - Aff.const(space, lo)),
                Constraint.ineq(Aff.const(space, hi) - x),
            ],
        )

    def test_basic_set_subtract_points(self):
        pieces = self._box(0, 10).subtract(self._box(3, 6))
        got = {p[0] for bs in pieces for p in bs.enumerate_points()}
        assert got == set(range(0, 11)) - set(range(3, 7))

    def test_set_subtract_points(self):
        from repro.poly.set_ import Set

        space = self._box(0, 1).space
        a = Set(space, [self._box(0, 4), self._box(8, 12)])
        b = Set(space, [self._box(2, 9)])
        got = {p[0] for bs in a.subtract(b).disjuncts for p in bs.enumerate_points()}
        assert got == (set(range(0, 5)) | set(range(8, 13))) - set(range(2, 10))
