"""Unit tests for dimension spaces."""

import pytest

from repro.errors import SpaceMismatchError
from repro.poly.space import Space


class TestConstruction:
    def test_set_space(self):
        s = Space.set_space(["y", "x"], params=["n"])
        assert s.is_set
        assert s.out_dims == ("y", "x")
        assert s.params == ("n",)
        assert s.ncols == 4

    def test_map_space(self):
        s = Space.map_space(["i"], ["o1", "o2"], params=["n", "m"])
        assert not s.is_set
        assert s.n_in == 1 and s.n_out == 2 and s.n_params == 2
        assert s.ncols == 1 + 2 + 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpaceMismatchError):
            Space.set_space(["x", "x"])
        with pytest.raises(SpaceMismatchError):
            Space.map_space(["x"], ["x"])
        with pytest.raises(SpaceMismatchError):
            Space.set_space(["x"], params=["x"])


class TestColumns:
    def test_column_layout_order(self):
        s = Space.map_space(["i"], ["o"], params=["n"])
        assert s.column_of("n") == 1
        assert s.column_of("i") == 2
        assert s.column_of("o") == 3

    def test_name_of_inverse(self):
        s = Space.map_space(["i"], ["o"], params=["n"])
        for col in range(1, s.ncols):
            assert s.column_of(s.name_of(col)) == col
        assert s.name_of(0) == "1"

    def test_unknown_name(self):
        s = Space.set_space(["x"])
        with pytest.raises(SpaceMismatchError):
            s.column_of("nope")
        assert not s.has("nope")
        assert s.has("x")

    def test_column_ranges(self):
        s = Space.map_space(["i", "j"], ["o"], params=["n"])
        assert list(s.param_columns()) == [1]
        assert list(s.in_columns()) == [2, 3]
        assert list(s.out_columns()) == [4]
        assert list(s.dim_columns()) == [2, 3, 4]


class TestDerivedSpaces:
    def test_domain_range(self):
        s = Space.map_space(["i"], ["o"], params=["n"])
        assert s.domain() == Space.set_space(["i"], ["n"])
        assert s.range() == Space.set_space(["o"], ["n"])

    def test_reversed(self):
        s = Space.map_space(["i"], ["o"])
        assert s.reversed() == Space.map_space(["o"], ["i"])

    def test_drop_dims(self):
        s = Space.map_space(["i", "j"], ["o"])
        assert s.drop_dims(["j"]) == Space.map_space(["i"], ["o"])
        with pytest.raises(SpaceMismatchError):
            s.drop_dims(["zzz"])

    def test_drop_params(self):
        s = Space.set_space(["x"], params=["n", "m"])
        assert s.drop_params(["n"]) == Space.set_space(["x"], params=["m"])
        with pytest.raises(SpaceMismatchError):
            s.drop_params(["x"])  # a dim, not a param

    def test_add_params_idempotent(self):
        s = Space.set_space(["x"], params=["n"])
        s2 = s.add_params(["n", "m"])
        assert s2.params == ("n", "m")

    def test_rename(self):
        s = Space.map_space(["i"], ["o"], params=["n"])
        r = s.rename({"i": "a", "o": "b"})
        assert r.in_dims == ("a",) and r.out_dims == ("b",) and r.params == ("n",)

    def test_to_set_wraps(self):
        s = Space.map_space(["i"], ["o"], params=["n"])
        assert s.to_set() == Space.set_space(["i", "o"], ["n"])

    def test_check_compatible(self):
        a = Space.set_space(["x"])
        b = Space.set_space(["y"])
        with pytest.raises(SpaceMismatchError):
            a.check_compatible(b)
        a.check_compatible(Space.set_space(["x"]))
