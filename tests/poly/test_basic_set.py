"""Unit tests for BasicSet operations."""

import pytest

from repro.errors import PolyhedralError
from repro.poly import parse_basic_set
from repro.poly.affine import Aff
from repro.poly.basic_set import BasicSet
from repro.poly.space import Space


class TestBasics:
    def test_universe_not_empty(self):
        u = BasicSet.universe(Space.set_space(["x"]))
        assert u.is_universe() and not u.is_empty()

    def test_empty(self):
        e = BasicSet.empty(Space.set_space(["x"]))
        assert e.is_empty()

    def test_from_box(self):
        b = BasicSet.from_box(Space.set_space(["y", "x"]), {"y": (0, 3), "x": (1, 4)})
        assert sorted(b.enumerate_points()) == [
            (y, x) for y in range(3) for x in range(1, 4)
        ]

    def test_contains(self):
        b = parse_basic_set("{ [x] : 0 <= x < 10 }")
        assert b.contains({"x": 0}) and b.contains({"x": 9})
        assert not b.contains({"x": 10}) and not b.contains({"x": -1})

    def test_contains_missing_value(self):
        b = parse_basic_set("[n] -> { [x] : 0 <= x < n }")
        with pytest.raises(PolyhedralError):
            b.contains({"x": 1})

    def test_involves(self):
        b = parse_basic_set("[n] -> { [y, x] : 0 <= x < n }")
        assert b.involves("x") and b.involves("n")
        assert not b.involves("y")


class TestEmptiness:
    @pytest.mark.parametrize(
        "text,empty",
        [
            ("{ [x] : x >= 5 and x <= 4 }", True),
            ("{ [x] : x >= 5 and x <= 5 }", False),
            ("{ [x, y] : 2*x = 2*y + 1 }", True),  # parity
            ("{ [x, y] : 3*x = 3*y + 6 }", False),
            ("[n] -> { [x] : 0 <= x < n and n <= 0 }", True),
            ("[n] -> { [x] : 0 <= x < n and n <= 1 }", False),
            ("{ [x, y] : x + y >= 10 and x <= 4 and y <= 4 }", True),
            ("{ [x, y] : x + y >= 8 and x <= 4 and y <= 4 }", False),
        ],
    )
    def test_emptiness(self, text, empty):
        assert parse_basic_set(text).is_empty() == empty


class TestProjection:
    def test_project_out_exact_unit_coeff(self):
        b = parse_basic_set("{ [x, y] : y = x + 1 and 0 <= x < 5 }")
        p = b.project_out(["y"])
        assert p.exact
        assert sorted(p.enumerate_points()) == [(i,) for i in range(5)]

    def test_project_out_shadow(self):
        # x constrained only through y: x <= y <= 7, x >= 3.
        b = parse_basic_set("{ [x, y] : x <= y and y <= 7 and x >= 3 }")
        p = b.project_out(["y"])
        assert sorted(p.enumerate_points()) == [(i,) for i in range(3, 8)]

    def test_project_marks_inexact_for_nonunit_pairs(self):
        # Eliminating y from 2y >= x and 2y <= x+1 needs non-unit FM.
        b = parse_basic_set("{ [x, y] : 2*y >= x and 3*y <= x }")
        p = b.project_out(["y"])
        assert not p.exact

    def test_projection_is_superset_of_true_shadow(self):
        b = parse_basic_set("{ [x, y] : 3*y = x and 0 <= x <= 10 and 0 <= y <= 10 }")
        p = b.project_out(["y"])
        true_shadow = {(x,) for (x, y) in b.enumerate_points()}
        assert set(p.enumerate_points()) >= true_shadow


class TestSubstitution:
    def test_fix(self):
        b = parse_basic_set("{ [y, x] : 0 <= y <= x and x <= 4 }")
        f = b.fix("x", 3)
        assert sorted(f.enumerate_points()) == [(0,), (1,), (2,), (3,)]

    def test_fix_param(self):
        b = parse_basic_set("[n] -> { [x] : 0 <= x < n }")
        assert len(list(b.fix("n", 4).enumerate_points())) == 4

    def test_substitute_affine(self):
        b = parse_basic_set("{ [x, y] : 0 <= x <= 10 and 0 <= y <= 10 }")
        # y := x + 2
        s = b.substitute("y", Aff.from_terms(b.space, {"x": 1}, 2))
        assert sorted(s.enumerate_points()) == [(i,) for i in range(0, 9)]

    def test_substitute_self_reference_raises(self):
        b = parse_basic_set("{ [x] : x >= 0 }")
        with pytest.raises(PolyhedralError):
            b.substitute("x", Aff.from_terms(b.space, {"x": 1}, 1))


class TestIntersectRename:
    def test_intersect(self):
        a = parse_basic_set("{ [x] : x >= 0 }")
        b = parse_basic_set("{ [x] : x <= 5 }")
        assert sorted(a.intersect(b).enumerate_points()) == [(i,) for i in range(6)]

    def test_rename(self):
        b = parse_basic_set("{ [x] : 0 <= x < 3 }").rename({"x": "z"})
        assert b.space.out_dims == ("z",)
        assert sorted(b.enumerate_points()) == [(0,), (1,), (2,)]

    def test_align_superspace(self):
        b = parse_basic_set("{ [x] : 0 <= x < 3 }")
        sup = Space.set_space(["x", "w"], params=["n"])
        a = b.align(sup)
        assert a.space == sup
        assert a.contains({"x": 1, "w": 99, "n": 0})
        assert not a.contains({"x": 5, "w": 0, "n": 0})


class TestEnumeration:
    def test_unbounded_raises(self):
        b = parse_basic_set("{ [x] : x >= 0 }")
        with pytest.raises(PolyhedralError):
            list(b.enumerate_points())

    def test_parametric_raises(self):
        b = parse_basic_set("[n] -> { [x] : 0 <= x < n }")
        with pytest.raises(PolyhedralError):
            list(b.enumerate_points())

    def test_max_points_guard(self):
        b = parse_basic_set("{ [x] : 0 <= x < 1000 }")
        with pytest.raises(PolyhedralError):
            list(b.enumerate_points(max_points=10))

    def test_equality_stride(self):
        b = parse_basic_set("{ [x, y] : 2*y = x and 0 <= x <= 8 }")
        assert sorted(b.enumerate_points()) == [(x, x // 2) for x in range(0, 9, 2)]
