"""Property test: printing and re-parsing preserves semantics exactly."""

from hypothesis import given, settings, strategies as st

from repro.poly.basic_set import BasicSet
from repro.poly.constraint import Constraint, Kind
from repro.poly.parser import parse_basic_set, parse_set
from repro.poly.set_ import Set
from repro.poly.space import Space

SPACE = Space.set_space(["y", "x"], params=["n"])
BOX = 5


@st.composite
def random_sets(draw):
    n_cons = draw(st.integers(1, 4))
    cons = [
        Constraint(Kind.INEQ, (BOX, 0, 1, 0)),
        Constraint(Kind.INEQ, (BOX, 0, -1, 0)),
        Constraint(Kind.INEQ, (BOX, 0, 0, 1)),
        Constraint(Kind.INEQ, (BOX, 0, 0, -1)),
    ]
    for _ in range(n_cons):
        vec = (
            draw(st.integers(-6, 6)),
            draw(st.integers(-2, 2)),  # n
            draw(st.integers(-3, 3)),  # y
            draw(st.integers(-3, 3)),  # x
        )
        kind = draw(st.sampled_from([Kind.INEQ, Kind.INEQ, Kind.EQ]))
        cons.append(Constraint(kind, vec))
    return BasicSet(SPACE, cons)


def _points(s, n_value):
    fixed = s.fix("n", n_value)
    return set(fixed.enumerate_points())


@settings(max_examples=100, deadline=None)
@given(random_sets(), st.integers(-3, 3))
def test_basic_set_roundtrip(bset, n_value):
    text = repr(bset)
    if bset._trivially_empty:
        assert text.endswith("{ }")
        return
    again = parse_basic_set(text)
    assert _points(bset, n_value) == _points(again, n_value)


@settings(max_examples=60, deadline=None)
@given(random_sets(), random_sets(), st.integers(-2, 2))
def test_union_roundtrip(a, b, n_value):
    u = Set(SPACE, [a, b])
    text = repr(u)
    again = parse_set(text)
    assert _points(u, n_value) == _points(again, n_value)
