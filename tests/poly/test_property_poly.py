"""Property-based tests of the polyhedral core (hypothesis).

Invariants tested against brute-force oracles on random small systems:

* Fourier-Motzkin projection is a superset of the true integer shadow, and
  equals it when flagged exact.
* Scanners enumerate exactly the set's integer points.
* Intersection/union behave like set intersection/union on points.
* Emptiness is sound (never claims empty for a non-empty set).
"""

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.basic_set import BasicSet
from repro.poly.codegen import compile_scanner
from repro.poly.constraint import Constraint, Kind
from repro.poly.set_ import Set
from repro.poly.space import Space

DIMS = ("y", "x")
SPACE = Space.set_space(DIMS)
BOX = 6  # brute-force window: [-BOX, BOX]^2


def brute_points(constraints: List[Constraint]) -> set:
    pts = set()
    for y in range(-BOX, BOX + 1):
        for x in range(-BOX, BOX + 1):
            vec = (1, y, x)
            if all(c.satisfied_by(vec) for c in constraints):
                pts.add((y, x))
    return pts


@st.composite
def constraint_lists(draw):
    """Random constraint systems kept inside the brute-force window."""
    n = draw(st.integers(1, 5))
    cons = [
        # Window bounds so everything stays finite.
        Constraint(Kind.INEQ, (BOX, 1, 0)),
        Constraint(Kind.INEQ, (BOX, -1, 0)),
        Constraint(Kind.INEQ, (BOX, 0, 1)),
        Constraint(Kind.INEQ, (BOX, 0, -1)),
    ]
    for _ in range(n):
        c0 = draw(st.integers(-8, 8))
        cy = draw(st.integers(-3, 3))
        cx = draw(st.integers(-3, 3))
        kind = draw(st.sampled_from([Kind.INEQ, Kind.INEQ, Kind.EQ]))
        cons.append(Constraint(kind, (c0, cy, cx)))
    return cons


@settings(max_examples=120, deadline=None)
@given(constraint_lists())
def test_enumeration_matches_brute_force(cons):
    bset = BasicSet(SPACE, cons)
    assert set(bset.enumerate_points()) == brute_points(cons)


@settings(max_examples=120, deadline=None)
@given(constraint_lists())
def test_emptiness_is_sound(cons):
    """is_empty is sound: True always means truly empty.

    Completeness is NOT guaranteed (nor claimed): rationally-feasible
    systems with lattice gaps — e.g. ``2y = 3x + 8`` forcing ``x`` odd
    inside a window where only even ``x`` survives the inequalities — are
    conservatively reported non-empty. The compiler only relies on the
    sound direction (a "collision" that is rationally feasible but
    integer-empty merely rejects a kernel it could have accepted).
    """
    bset = BasicSet(SPACE, cons)
    truth = brute_points(cons)
    if bset.is_empty():
        assert truth == set()


def test_emptiness_incompleteness_example_documented():
    """The known-incomplete case: parity gap through an equality."""
    from repro.poly.constraint import Constraint, Kind

    cons = [
        Constraint(Kind.INEQ, (6, 1, 0)),
        Constraint(Kind.INEQ, (6, -1, 0)),
        Constraint(Kind.INEQ, (6, 0, 1)),
        Constraint(Kind.INEQ, (6, 0, -1)),
        Constraint(Kind.INEQ, (0, 3, -1)),
        Constraint(Kind.EQ, (-8, 2, -3)),
        Constraint(Kind.INEQ, (0, -1, 0)),
    ]
    bset = BasicSet(SPACE, cons)
    assert brute_points(cons) == set()  # truly empty over Z
    assert not bset.is_empty()  # ...but rational FM cannot prove it


@settings(max_examples=120, deadline=None)
@given(constraint_lists())
def test_projection_superset_and_exactness(cons):
    bset = BasicSet(SPACE, cons)
    truth = {(y,) for (y, x) in brute_points(cons)}
    projected = bset.project_out(["x"])
    got = set(projected.enumerate_points())
    assert got >= truth
    if projected.exact:
        assert got == truth


@settings(max_examples=100, deadline=None)
@given(constraint_lists())
def test_scanner_enumerates_exact_points(cons):
    bset = BasicSet(SPACE, cons)
    truth = brute_points(cons)
    scanner = compile_scanner(bset, [])
    got = set()
    def emit(row, lo, hi):
        for v in range(lo, hi + 1):
            got.add(row + (v,))
    scanner((), emit)
    assert got == truth


@settings(max_examples=80, deadline=None)
@given(constraint_lists(), constraint_lists())
def test_intersection_is_point_intersection(cons_a, cons_b):
    a = BasicSet(SPACE, cons_a)
    b = BasicSet(SPACE, cons_b)
    inter = a.intersect(b)
    assert set(inter.enumerate_points()) == brute_points(cons_a) & brute_points(cons_b)


@settings(max_examples=80, deadline=None)
@given(constraint_lists(), constraint_lists())
def test_union_is_point_union(cons_a, cons_b):
    a = BasicSet(SPACE, cons_a)
    b = BasicSet(SPACE, cons_b)
    union = Set(SPACE, [a]).union(Set(SPACE, [b]))
    assert set(union.enumerate_points()) == brute_points(cons_a) | brute_points(cons_b)


@settings(max_examples=80, deadline=None)
@given(constraint_lists(), st.integers(-3, 3), st.integers(-3, 3))
def test_contains_agrees_with_brute_force(cons, y, x):
    bset = BasicSet(SPACE, cons)
    assert bset.contains({"y": y, "x": x}) == ((y, x) in brute_points(cons))
