"""Property tests tying the race certificate to execution semantics.

Two directions:

* Soundness of the certificate: kernels the race detector certifies free of
  write–write and read–write conflicts must produce bitwise-identical
  results when executed whole-grid versus split into partitions (the §7
  transform) — on random affine kernels.
* Soundness of the witnesses: when the detector does report a race, the
  claimed thread pair must actually collide on the claimed cell under
  interpreter replay.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import lint_kernels
from repro.analysis.replay import confirm_witness, lane_id, run_whole_vs_split
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder

N = 48
GRID = Dim3(x=6)
BLOCK = Dim3(x=8)


@st.composite
def kernel_specs(draw):
    """Random 1-D kernels with guarded affine reads and an injective write."""
    n_reads = draw(st.integers(1, 3))
    read_offsets = [draw(st.integers(-3, 3)) for _ in range(n_reads)]
    guard_lo = draw(st.integers(0, 8))
    guard_hi = draw(st.integers(N - 8, N))
    write_offset = draw(st.integers(-2, 2))
    branch = draw(st.booleans())
    return (tuple(read_offsets), guard_lo, guard_hi, write_offset, branch)


def _build(spec):
    read_offsets, guard_lo, guard_hi, write_offset, branch = spec
    kb = KernelBuilder("rand")
    src = kb.array("src", f32, (N,))
    dst = kb.array("dst", f32, (N,))
    gi = kb.global_id("x")
    lo_r = max(0, -min(read_offsets), -write_offset)
    hi_r = min(N, N - max(0, max(read_offsets), write_offset))
    guard = (gi >= max(guard_lo, lo_r)) & (gi < min(guard_hi, hi_r))
    with kb.if_(guard):
        acc = kb.let("acc", kb.f32const(0.0))
        for off in read_offsets:
            kb.assign(acc, acc + src[gi + off,])
        if branch:
            with kb.if_(gi < N // 2):
                dst[gi + write_offset,] = acc
            with kb.otherwise():
                dst[gi + write_offset,] = acc * 2.0
        else:
            dst[gi + write_offset,] = acc
    return kb.finish()


@settings(max_examples=25, deadline=None)
@given(kernel_specs(), st.integers(2, 4))
def test_race_free_certificate_implies_partition_equivalence(spec, n_parts):
    kernel = _build(spec)
    report = lint_kernels(
        [kernel], grid=GRID, block=BLOCK, passes=["races"], replay=False
    )
    races = [d for d in report.diagnostics if d.code in ("RP101", "RP102")]
    # The write is injective over threads and src is read-only: certified.
    assert races == [], [d.message for d in races]
    rng = np.random.default_rng(abs(hash(spec)) % 2**32)
    args = {
        "src": rng.random(N, dtype=np.float32),
        "dst": np.zeros(N, dtype=np.float32),
    }
    assert run_whole_vs_split(kernel, GRID, BLOCK, args, axis="x", n_parts=n_parts)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, N - 1))
def test_reported_witness_collides_on_replay(cell):
    """Every witness the detector produces must survive dynamic replay."""
    kb = KernelBuilder("racy")
    dst = kb.array("dst", f32, (N,))
    dst[cell,] = 1.0  # every thread stores to the drawn cell
    kernel = kb.finish()
    report = lint_kernels([kernel], grid=GRID, block=BLOCK, passes=["races"])
    (d,) = [d for d in report.diagnostics if d.code == "RP101"]
    w = d.witness
    assert w["cell"] == [cell]
    assert w["confirmed"] is True
    # The two claimed threads are distinct lanes.
    la = lane_id(w["thread_a"]["block"], w["thread_a"]["thread"], GRID, BLOCK)
    lb = lane_id(w["thread_b"]["block"], w["thread_b"]["thread"], GRID, BLOCK)
    assert la != lb
    # confirm_witness is idempotent on an already-confirmed witness.
    assert confirm_witness(kernel, GRID, BLOCK, {}, dict(w), kind="ww") is True


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 4))
def test_rw_witness_collides_on_replay(offset):
    kb = KernelBuilder("shift")
    dst = kb.array("dst", f32, (N + offset,))
    gi = kb.global_id("x")
    dst[gi,] = dst[gi + offset,]
    report = lint_kernels([kb.finish()], grid=GRID, block=BLOCK, passes=["races"])
    (d,) = [d for d in report.diagnostics if d.code == "RP102"]
    assert d.witness["confirmed"] is True
