"""Cross-launch dataflow analyzer: RP6xx lints + the transfer simulation.

Covers the three diagnostics on their engineered trigger kernels (the
decimating stencil for RP601/RP602, the capped column gather for RP603),
the irredundant remedy emptying the report, per-partition deduplication,
and — the load-bearing invariant — that the analyzer's byte classification
equals the runtime's measured counters, flat and clustered.
"""

import numpy as np
import pytest

from repro.analysis import lint_kernels
from repro.analysis.dataflow import (
    ExactReadOracle,
    analyze_transfers,
    exact_read_ranges,
)
from repro.analysis.passes import PassManager, registered_passes
from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.pipeline import compile_app
from repro.cuda import f32
from repro.cuda.dim3 import Dim3
from repro.cuda.ir import KernelBuilder
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.workloads.common import functional_config
from repro.workloads.dstencil import BLOCK, DStencilWorkload, build_dstencil_kernel
from repro.workloads.hotspot import HotspotWorkload

ALL_PASSES = ["partitionability", "races", "bounds", "dataflow"]


def column_gather_kernel(n=128, m=16):
    """Reads column 0 of all rows, writes columns >= 1 of its own row:

    n single-element read runs blow the 64-run event cap, but the exact
    read/write sets are disjoint — the RP603 trigger.
    """
    kb = KernelBuilder("column_gather")
    a = kb.array("a", f32, (n, m))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < n) & (gx < m - 1)):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("j", 0, n) as j:
            kb.assign(acc, acc + a[j, 0])
        a[gy, gx + 1] = acc
    return kb.finish()


def lint_stencil(**kwargs):
    wl = DStencilWorkload(functional_config("dstencil"))
    grid, block = wl.launch_config()
    return lint_kernels([wl.kernel], grid=grid, block=block, passes=ALL_PASSES, **kwargs)


class TestPassRegistration:
    def test_dataflow_registered_but_not_default(self):
        passes = registered_passes()
        assert "dataflow" in passes
        assert passes["dataflow"].default is False

    def test_default_manager_excludes_dataflow(self):
        assert "dataflow" not in [type(p).name for p in PassManager(None).passes]


class TestDiagnostics:
    def test_stencil_emits_rp601_and_rp602(self):
        report = lint_stencil()
        codes = [d.code for d in report.diagnostics]
        assert codes.count("RP601") == 4  # one per partition
        assert codes.count("RP602") == 4
        for d in report.diagnostics:
            if d.code in ("RP601", "RP602"):
                assert d.witness["bytes"] > 0
                assert d.witness["lo"] < d.witness["hi"]

    def test_irredundant_remedy_empties_the_report(self):
        report = lint_stencil(irredundant=True)
        assert not {"RP601", "RP602"} & {d.code for d in report.diagnostics}

    def test_hotspot_halo_rp601_byte_counts(self):
        """The worked example of docs/static-analysis.md: 62 interior halo

        cells x 4 B = 248 bytes for the edge partitions, twice that for the
        interior ones (a halo row on each side).
        """
        wl = HotspotWorkload(functional_config("hotspot"))
        grid, block = wl.launch_config()
        report = lint_kernels(
            wl.build_kernels(), grid=grid, block=block, passes=ALL_PASSES
        )
        by_part = {
            d.witness["partition"]: d.witness["bytes"]
            for d in report.diagnostics
            if d.code == "RP601"
        }
        assert by_part == {0: 248, 1: 496, 2: 496, 3: 248}
        # Full-width rows leave no bounding slack: no RP602.
        assert "RP602" not in {d.code for d in report.diagnostics}

    def test_column_gather_emits_rp603_deduplicated(self):
        report = lint_kernels(
            [column_gather_kernel()], grid=(1, 8), block=(16, 16), passes=ALL_PASSES
        )
        serial = [d for d in report.deduplicated() if d.code == "RP603"]
        assert len(serial) == 1  # four identical findings collapse into one
        assert serial[0].witness["partitions"] == [0, 1, 2, 3]
        assert "[4 partitions]" in serial[0].message
        assert serial[0].witness["bytes"] > 0

    def test_rp603_absent_when_ranges_fit_the_cap(self):
        """A plain stencil's reads stay under the run cap: no phantom edges."""
        report = lint_stencil()
        assert "RP603" not in {d.code for d in report.diagnostics}


class TestExactReadOracle:
    def test_strided_read_has_slack(self):
        """dstencil reads only even columns: the exact set is ~half the

        bounding range the enumerators would ship.
        """
        n = 64
        info = analyze_kernel(build_dstencil_kernel(n))
        from repro.compiler.strategy import choose_strategy

        strategy = choose_strategy(info)
        grid = Dim3(x=n // BLOCK.x, y=n // BLOCK.y)
        parts = strategy.partitions(grid, 4)
        extents = (n + 1, 2 * n + 2)
        ranges = exact_read_ranges(
            info, "src", extents, 4, parts[0], grid, BLOCK, {}
        )
        assert ranges is not None
        covered = sum(hi - lo for lo, hi in ranges)
        rows = 17  # 16 own rows + 1 halo row
        bounding = rows * (2 * n + 1) * 4  # cols 0..2n inclusive, per row
        assert covered < 0.6 * bounding
        # Only even columns (and the 2gx+2 successor evens) are read.
        for lo, hi in ranges:
            assert lo % 4 == 0 and hi % 4 == 0

    def test_oracle_memoizes(self):
        n = 64
        info = analyze_kernel(build_dstencil_kernel(n))
        from repro.compiler.strategy import choose_strategy

        strategy = choose_strategy(info)
        grid = Dim3(x=n // BLOCK.x, y=n // BLOCK.y)
        part = strategy.partitions(grid, 4)[0]
        oracle = ExactReadOracle(info)
        first = oracle.read_ranges("src", (n + 1, 2 * n + 2), 4, part, grid, BLOCK, {})
        second = oracle.read_ranges("src", (n + 1, 2 * n + 2), 4, part, grid, BLOCK, {})
        assert first is second  # cached object, not a recomputation


class TestAnalyzerMatchesRuntime:
    """The analyzer simulates exactly what the runtime executes."""

    @pytest.mark.parametrize("irredundant", [False, True])
    def test_totals_equal_measured_stats(self, irredundant):
        wl = DStencilWorkload(functional_config("dstencil"))
        grid, block = wl.launch_config()
        info = analyze_kernel(wl.kernel)
        launches = wl.cfg.iterations
        summary = analyze_transfers(
            info,
            n_gpus=4,
            launches=launches,
            grid=grid,
            block=block,
            scalars={},
            irredundant=irredundant,
        )
        api = MultiGpuApi(
            compile_app([wl.kernel]),
            RuntimeConfig(
                n_gpus=4, shared_copies=True, irredundant_transfers=irredundant
            ),
        )
        wl.run(api, wl.make_inputs(0))
        assert summary.total("required") == api.stats.sync_bytes
        assert summary.total("redundant") == api.stats.redundant_bytes_avoided
        assert summary.total("overapprox") == api.stats.overapprox_bytes_avoided

    def test_cluster_tier_split_matches(self):
        from repro.cluster.engine import ClusterSimMachine
        from repro.harness.calibration import k80_cluster

        wl = DStencilWorkload(functional_config("dstencil"))
        grid, block = wl.launch_config()
        cluster = k80_cluster(2, 2)
        summary = analyze_transfers(
            analyze_kernel(wl.kernel),
            n_gpus=4,
            launches=wl.cfg.iterations,
            grid=grid,
            block=block,
            scalars={},
            irredundant=True,
            cluster=cluster,
        )
        api = MultiGpuApi(
            compile_app([wl.kernel]),
            RuntimeConfig(n_gpus=4, shared_copies=True, irredundant_transfers=True),
            machine=ClusterSimMachine(cluster),
        )
        wl.run(api, wl.make_inputs(0))
        assert summary.total("redundant_inter") == api.stats.redundant_bytes_avoided_inter
        assert summary.total("overapprox_inter") == api.stats.overapprox_bytes_avoided_inter
        assert 0 < summary.total("overapprox_inter") < summary.total("overapprox")

    def test_atoms_cover_shared_halo(self):
        wl = DStencilWorkload(functional_config("dstencil"))
        grid, block = wl.launch_config()
        summary = analyze_transfers(
            analyze_kernel(wl.kernel),
            n_gpus=4,
            launches=2,
            grid=grid,
            block=block,
            scalars={},
        )
        atoms = summary.atoms["src"]
        # Adjacent partitions share the seam halo rows: some atoms must
        # have multiplicity > 1, and the atoms tile without overlap.
        assert any(a.multiplicity > 1 for a in atoms)
        for left, right in zip(atoms, atoms[1:]):
            assert left.hi <= right.lo
