"""Unit tests for diagnostics, the code registry and the pass framework."""

import pytest

from repro.analysis import (
    Diagnostic,
    LintReport,
    PassManager,
    REGISTRY,
    Severity,
    code_info,
    make_diagnostic,
    registered_passes,
)
from repro.analysis.passes import _REGISTRY, AnalysisPass, register_pass
from repro.errors import LintError


class TestSeverity:
    def test_ordering(self):
        assert Severity.ADVICE < Severity.WARNING < Severity.ERROR

    def test_labels_round_trip(self):
        for sev in Severity:
            assert Severity.from_label(sev.label) is sev

    def test_unknown_label(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_label("fatal")


class TestCodeRegistry:
    def test_codes_match_keys_and_groups(self):
        for code, info in REGISTRY.items():
            assert info.code == code
            assert code.startswith("RP") and code[2:].isdigit()
            assert info.title and info.hint

    def test_known_defaults(self):
        assert code_info("RP101").severity == Severity.ERROR
        assert code_info("RP102").severity == Severity.WARNING
        assert code_info("RP204").severity == Severity.ADVICE
        assert code_info("RP401").severity == Severity.WARNING

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            code_info("RP999")


class TestDiagnostic:
    def test_make_fills_defaults_from_registry(self):
        d = make_diagnostic("RP301", "oops", kernel="k", array="a")
        assert d.title == code_info("RP301").title
        assert d.severity == Severity.ERROR
        assert d.hint == code_info("RP301").hint

    def test_severity_override(self):
        d = make_diagnostic("RP101", "m", kernel="k", severity=Severity.WARNING)
        assert d.severity == Severity.WARNING

    def test_format_and_location(self):
        d = make_diagnostic("RP302", "bad read", kernel="k", array="src")
        assert d.location() == "k/src"
        line = d.format()
        assert "RP302" in line and "k/src" in line and "bad read" in line

    def test_to_dict_field_set(self):
        d = make_diagnostic("RP103", "m", kernel="k", pass_name="races")
        doc = d.to_dict()
        assert set(doc) == {
            "code", "title", "severity", "kernel", "array",
            "message", "hint", "witness", "pass",
        }
        assert doc["severity"] == "advice" and doc["pass"] == "races"


class TestLintReport:
    def _report(self, *sevs):
        rep = LintReport(kernels=["k"])
        for i, s in enumerate(sevs):
            rep.diagnostics.append(
                make_diagnostic("RP103", f"m{i}", kernel="k", severity=s)
            )
        return rep

    def test_counts_and_max(self):
        rep = self._report(Severity.ERROR, Severity.ADVICE, Severity.ADVICE)
        assert rep.count(Severity.ERROR) == 1
        assert rep.count(Severity.ADVICE) == 2
        assert rep.max_severity() == Severity.ERROR
        assert LintReport().max_severity() is None

    def test_failed_thresholds(self):
        rep = self._report(Severity.WARNING)
        assert rep.failed(Severity.WARNING)
        assert rep.failed(Severity.ADVICE)
        assert not rep.failed(Severity.ERROR)
        assert not rep.failed(None)

    def test_sorted_most_severe_first(self):
        rep = self._report(Severity.ADVICE, Severity.ERROR, Severity.WARNING)
        sevs = [d.severity for d in rep.sorted()]
        assert sevs == sorted(sevs, reverse=True)

    def test_extend_merges_kernels_once(self):
        a = self._report(Severity.ADVICE)
        b = self._report(Severity.ERROR)
        a.extend(b)
        assert a.kernels == ["k"] and len(a.diagnostics) == 2


class TestPassManager:
    def test_builtin_passes_registered(self):
        names = set(registered_passes())
        assert {"races", "bounds", "partitionability"} <= names

    def test_unknown_pass_rejected(self):
        with pytest.raises(LintError, match="unknown analysis pass"):
            PassManager(["no-such-pass"])

    def test_failing_pass_becomes_rp501(self):
        from repro.compiler.access_analysis import analyze_kernel
        from repro.analysis.passes import LaunchContext
        from repro.cuda.dim3 import Dim3
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder

        class Exploding(AnalysisPass):
            name = "exploding-test-pass"

            def run(self, info, launch):
                raise RuntimeError("kaboom")

        register_pass(Exploding)
        try:
            kb = KernelBuilder("k")
            dst = kb.array("dst", f32, (8,))
            dst[kb.global_id("x"),] = 1.0
            info = analyze_kernel(kb.finish())
            launch = LaunchContext(grid=Dim3(x=1), block=Dim3(x=8))
            report = PassManager(["exploding-test-pass"]).run([info], launch)
        finally:
            _REGISTRY.pop("exploding-test-pass", None)
        assert [d.code for d in report.diagnostics] == ["RP501"]
        assert "kaboom" in report.diagnostics[0].message
        assert report.diagnostics[0].severity == Severity.ERROR

    def test_duplicate_registration_rejected(self):
        class Dup(AnalysisPass):
            name = "races"  # already taken by the builtin race detector

            def run(self, info, launch):  # pragma: no cover
                return []

        with pytest.raises(LintError, match="duplicate analysis pass"):
            register_pass(Dup)
