"""Race-detector tests: witnesses, replay confirmation, clean kernels."""

import pytest

from repro.analysis import Severity, lint_kernels
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder

GRID, BLOCK = (4,), (16,)
N = 64  # grid * block threads along x


def _lint(kernel, *, replay=True, passes=("races",), grid=GRID, block=BLOCK):
    return lint_kernels([kernel], grid=grid, block=block, replay=replay, passes=list(passes))


def _same_cell_kernel():
    kb = KernelBuilder("racy")
    dst = kb.array("dst", f32, (N,))
    dst[0,] = 1.0  # every thread stores to cell 0
    return kb.finish()


def _cross_block_kernel():
    kb = KernelBuilder("crossblock")
    dst = kb.array("dst", f32, (N,))
    dst[kb.threadIdx.x,] = 1.0  # same threadIdx in different blocks collide
    return kb.finish()


def _injective_kernel():
    kb = KernelBuilder("clean")
    src = kb.array("src", f32, (N,))
    dst = kb.array("dst", f32, (N,))
    gi = kb.global_id("x")
    dst[gi,] = src[gi,] + 1.0
    return kb.finish()


class TestWriteWriteRaces:
    def test_same_cell_race_found_and_confirmed(self):
        report = _lint(_same_cell_kernel())
        races = [d for d in report.diagnostics if d.code == "RP101"]
        assert len(races) == 1
        d = races[0]
        assert d.severity == Severity.ERROR
        assert d.array == "dst"
        assert "confirmed by interpreter replay" in d.message
        w = d.witness
        assert w["cell"] == [0]
        assert w["confirmed"] is True
        assert w["thread_a"] != w["thread_b"]

    def test_witness_is_lexmin(self):
        # Enumeration is lexicographic, so the first witness pair is the two
        # lexically smallest distinct threads.
        w = _lint(_same_cell_kernel()).diagnostics[0].witness
        assert w["thread_a"] == {"block": [0, 0, 0], "thread": [0, 0, 0]}
        assert w["thread_b"] == {"block": [0, 0, 0], "thread": [0, 0, 1]}

    def test_cross_block_witness_confirmed_by_partition_replay(self):
        report = _lint(_cross_block_kernel())
        (d,) = [d for d in report.diagnostics if d.code == "RP101"]
        w = d.witness
        assert w["confirmed"] is True
        # The two threads live in different blocks, so the two-partition
        # replay applies and must also see both halves write the cell.
        assert w["thread_a"]["block"] != w["thread_b"]["block"]
        assert w["partition_replay"] is True

    def test_no_replay_leaves_witness_unconfirmed(self):
        report = _lint(_same_cell_kernel(), replay=False)
        (d,) = [d for d in report.diagnostics if d.code == "RP101"]
        assert d.witness["confirmed"] is None
        assert "replay" not in d.message

    def test_injective_kernel_is_race_free(self):
        report = _lint(_injective_kernel())
        assert [d for d in report.diagnostics if d.code in ("RP101", "RP102")] == []


class TestReadWriteRaces:
    def test_neighbour_read_is_rw_race(self):
        kb = KernelBuilder("shift")
        dst = kb.array("dst", f32, (N + 1,))
        gi = kb.global_id("x")
        dst[gi,] = dst[gi + 1,]  # thread i reads the cell thread i+1 writes
        report = _lint(kb.finish())
        rw = [d for d in report.diagnostics if d.code == "RP102"]
        assert len(rw) == 1
        d = rw[0]
        assert d.severity == Severity.WARNING
        assert d.witness["confirmed"] is True
        assert "write/read" in d.message

    def test_private_read_is_not_a_race(self):
        kb = KernelBuilder("private")
        dst = kb.array("dst", f32, (N,))
        gi = kb.global_id("x")
        dst[gi,] = dst[gi,] * 2.0  # each thread touches only its own cell
        report = _lint(kb.finish())
        assert [d for d in report.diagnostics if d.code in ("RP101", "RP102")] == []


class TestNonAffineWrites:
    def test_non_affine_subscript_reported_as_skipped(self):
        kb = KernelBuilder("nonaffine")
        dst = kb.array("dst", f32, (N * N,))
        gi = kb.global_id("x")
        dst[gi * gi,] = 1.0
        report = _lint(kb.finish())
        codes = [d.code for d in report.diagnostics]
        assert codes == ["RP103"]
        assert report.diagnostics[0].severity == Severity.ADVICE


class TestGuards:
    def test_guard_removes_the_race(self):
        # Only thread (0,0,0) of block (0,0,0) writes: a single writer cannot
        # race with itself.
        kb = KernelBuilder("guarded")
        dst = kb.array("dst", f32, (N,))
        gi = kb.global_id("x")
        with kb.if_(gi < 1):
            dst[0,] = 1.0
        report = _lint(kb.finish())
        assert [d for d in report.diagnostics if d.code == "RP101"] == []

    def test_two_guarded_writers_still_race(self):
        kb = KernelBuilder("two_writers")
        dst = kb.array("dst", f32, (N,))
        gi = kb.global_id("x")
        with kb.if_(gi < 2):
            dst[0,] = 1.0
        report = _lint(kb.finish())
        (d,) = [d for d in report.diagnostics if d.code == "RP101"]
        assert d.witness["confirmed"] is True
