"""Partitionability-lint tests and agreement with the compiler pipeline."""

from repro.analysis import Severity, lint_kernels
from repro.compiler.pipeline import compile_app
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder

N = 64


def _lint(kernel, grid=(4,), block=(16,)):
    return lint_kernels([kernel], grid=grid, block=block, passes=["partitionability"])


def _clean_kernel():
    kb = KernelBuilder("clean")
    src = kb.array("src", f32, (N,))
    dst = kb.array("dst", f32, (N,))
    gi = kb.global_id("x")
    dst[gi,] = src[gi,] + 1.0
    return kb.finish()


def _non_affine_kernel():
    kb = KernelBuilder("sq")
    dst = kb.array("dst", f32, (N * N,))
    gi = kb.global_id("x")
    dst[gi * gi,] = 1.0
    return kb.finish()


class TestVerdicts:
    def test_clean_kernel_has_no_errors(self):
        report = _lint(_clean_kernel())
        assert report.max_severity() in (None, Severity.ADVICE)

    def test_unmodellable_write_is_rp202_plus_fallback(self):
        report = _lint(_non_affine_kernel())
        codes = sorted(d.code for d in report.diagnostics)
        assert codes == ["RP202", "RP401"]
        (rej,) = [d for d in report.diagnostics if d.code == "RP202"]
        assert rej.severity == Severity.ERROR
        (fb,) = [d for d in report.diagnostics if d.code == "RP401"]
        assert fb.severity == Severity.WARNING and "single GPU" in fb.message

    def test_unit_axis_advice_vs_violation(self):
        # A kernel indexing only along x leaves y/z unit-extent requirements.
        kernel = _clean_kernel()
        ok = _lint(kernel, grid=(4,), block=(16,))
        advice = [d for d in ok.diagnostics if d.code == "RP204"]
        assert advice and all(d.severity == Severity.ADVICE for d in advice)
        assert all("satisfied" in d.message for d in advice)
        # Launching with grid extent 2 along y violates the requirement.
        bad = _lint(kernel, grid=(4, 2), block=(16,))
        violated = [
            d for d in bad.diagnostics
            if d.code == "RP204" and d.severity == Severity.ERROR
        ]
        assert len(violated) == 1 and "VIOLATED" in violated[0].message


class TestPipelineAgreement:
    def test_reject_reason_carries_the_same_code(self):
        kernel = _non_affine_kernel()
        app = compile_app([kernel])
        ck = app.kernel(kernel.name)
        assert not ck.partitionable
        assert ck.model.reject_reason.startswith("RP202")
        report = _lint(kernel)
        (rej,) = [d for d in report.diagnostics if d.code == "RP202"]
        # Same underlying reason text (the pipeline adds code/kernel prefixes).
        assert rej.message in ck.model.reject_reason
