"""Bounds-prover tests: safe kernels, witness extraction, undecidable cases."""

from repro.analysis import Severity, lint_kernels
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder

GRID, BLOCK = (4,), (16,)
N = 64


def _lint(kernel, grid=GRID, block=BLOCK):
    return lint_kernels([kernel], grid=grid, block=block, passes=["bounds"])


def _codes(report):
    return sorted(d.code for d in report.diagnostics)


class TestSafeKernels:
    def test_exact_fit_is_clean(self):
        kb = KernelBuilder("fit")
        src = kb.array("src", f32, (N,))
        dst = kb.array("dst", f32, (N,))
        gi = kb.global_id("x")
        dst[gi,] = src[gi,]
        assert _codes(_lint(kb.finish())) == []

    def test_guard_makes_overhang_safe(self):
        # 64 threads, extent 40, guarded — no finding.
        kb = KernelBuilder("guarded")
        dst = kb.array("dst", f32, (40,))
        gi = kb.global_id("x")
        with kb.if_(gi < 40):
            dst[gi,] = 1.0
        assert _codes(_lint(kb.finish())) == []


class TestViolations:
    def test_oob_write_with_witness(self):
        kb = KernelBuilder("oobw")
        dst = kb.array("dst", f32, (N,))
        gi = kb.global_id("x")
        dst[gi + 1,] = 1.0  # last thread writes index 64, extent 64
        report = _lint(kb.finish())
        assert _codes(report) == ["RP301"]
        d = report.diagnostics[0]
        assert d.severity == Severity.ERROR
        w = d.witness
        assert w["index"] == N and w["extent"] == N and w["dim"] == 0
        # The witness thread really evaluates the subscript to 64.
        g = w["thread"]["block"][2] * BLOCK[0] + w["thread"]["thread"][2]
        assert g + 1 == N

    def test_negative_index_read(self):
        kb = KernelBuilder("oobr")
        src = kb.array("src", f32, (N,))
        dst = kb.array("dst", f32, (N,))
        gi = kb.global_id("x")
        dst[gi,] = src[gi - 1,]  # thread 0 reads index -1
        report = _lint(kb.finish())
        assert "RP302" in _codes(report)
        (d,) = [d for d in report.diagnostics if d.code == "RP302"]
        assert d.witness["index"] == -1
        assert d.witness["thread"] == {"block": [0, 0, 0], "thread": [0, 0, 0]}

    def test_missing_guard_overhang(self):
        # extent 40 < 64 threads and no guard: overhanging threads trip it.
        kb = KernelBuilder("nogap")
        dst = kb.array("dst", f32, (40,))
        gi = kb.global_id("x")
        dst[gi,] = 1.0
        report = _lint(kb.finish())
        assert _codes(report) == ["RP301"]
        assert report.diagnostics[0].witness["index"] == 40

    def test_2d_violation_names_the_dimension(self):
        kb = KernelBuilder("two")
        a = kb.array("a", f32, (8, 8))
        gy, gx = kb.global_id("y"), kb.global_id("x")
        with kb.if_((gy < 8) & (gx < 8)):
            a[gy + 1, gx] = 1.0  # rows overflow, columns are fine
        report = _lint(kb.finish(), grid=(1, 1), block=(8, 8))
        assert _codes(report) == ["RP301"]
        assert report.diagnostics[0].witness["dim"] == 0


class TestUndecidable:
    def test_non_affine_subscript_is_advice(self):
        kb = KernelBuilder("sq")
        dst = kb.array("dst", f32, (N * N,))
        gi = kb.global_id("x")
        dst[gi * gi,] = 1.0
        report = _lint(kb.finish())
        assert _codes(report) == ["RP303"]
        assert report.diagnostics[0].severity == Severity.ADVICE
