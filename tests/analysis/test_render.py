"""Renderer tests: text output, the JSON schema and its validator."""

import json

import pytest

from repro.analysis import lint_kernels, render_json, render_text, validate_report_json
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import LintError


def _report():
    kb = KernelBuilder("racy")
    dst = kb.array("dst", f32, (64,))
    dst[0,] = 1.0
    return lint_kernels([kb.finish()], grid=(4,), block=(16,))


def _doc():
    return json.loads(render_json(_report()))


class TestTextRenderer:
    def test_findings_and_summary(self):
        report = _report()
        text = render_text(report)
        assert "RP101" in text
        assert "witness:" in text and "hint:" in text
        last = text.splitlines()[-1]
        assert last.startswith("1 kernel(s):") and "error(s)" in last

    def test_clean_report_renders_summary_only(self):
        kb = KernelBuilder("noop")
        dst = kb.array("dst", f32, (64,))
        dst[kb.global_id("x"),] = 1.0
        report = lint_kernels([kb.finish()], grid=(4,), block=(16,), passes=["races", "bounds"])
        assert render_text(report) == "1 kernel(s): 0 error(s), 0 warning(s), 0 advice"


class TestJsonSchema:
    def test_rendered_report_validates(self):
        doc = _doc()
        validate_report_json(doc)  # must not raise
        assert doc["version"] == 1 and doc["tool"] == "repro-lint"
        assert doc["summary"]["errors"] >= 1
        codes = [d["code"] for d in doc["diagnostics"]]
        assert "RP101" in codes

    def test_diagnostics_sorted_most_severe_first(self):
        order = {"error": 0, "warning": 1, "advice": 2}
        ranks = [order[d["severity"]] for d in _doc()["diagnostics"]]
        assert ranks == sorted(ranks)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.update(version=99), "version"),
            (lambda d: d.update(tool="other"), "tool"),
            (lambda d: d.pop("summary"), "summary"),
            (lambda d: d["summary"].update(errors="1"), "summary.errors"),
            (lambda d: d["diagnostics"][0].update(code="RP999"), "not registered"),
            (lambda d: d["diagnostics"][0].update(severity="fatal"), "invalid"),
            (lambda d: d["diagnostics"][0].pop("message"), "message"),
            (lambda d: d["diagnostics"][0].update(witness="str"), "witness"),
            (lambda d: d["diagnostics"].pop(), "does not match"),
        ],
    )
    def test_invalid_documents_rejected(self, mutate, match):
        doc = _doc()
        mutate(doc)
        with pytest.raises(LintError, match=match):
            validate_report_json(doc)

    def test_non_object_rejected(self):
        with pytest.raises(LintError, match="JSON object"):
            validate_report_json([1, 2])


class TestDeduplication:
    """Identical per-partition findings collapse before rendering."""

    def _partition_diag(self, partition, lo=0, hi=248, code="RP601"):
        from repro.analysis.diagnostics import make_diagnostic

        return make_diagnostic(
            code,
            "every launch re-transfers 248 bytes",
            kernel="k",
            array="src",
            witness={"partition": partition, "lo": lo, "hi": hi, "bytes": hi - lo},
            pass_name="dataflow",
        )

    def _report_with(self, diags):
        from repro.analysis.passes import LintReport

        return LintReport(diagnostics=list(diags), kernels=["k"])

    def test_identical_intervals_collapse(self):
        report = self._report_with(self._partition_diag(p) for p in range(4))
        (merged,) = report.deduplicated()
        assert merged.message.endswith("[4 partitions]")
        assert merged.witness["partitions"] == [0, 1, 2, 3]
        assert merged.witness["partition"] == 0  # schema keeps the scalar key

    def test_distinct_intervals_stay_separate(self):
        report = self._report_with(
            [self._partition_diag(0, 0, 248), self._partition_diag(1, 300, 548)]
        )
        deduped = report.deduplicated()
        assert len(deduped) == 2
        assert all("partitions" not in (d.witness or {}) for d in deduped)
        assert all("[" not in d.message for d in deduped)

    def test_non_partition_findings_pass_through(self):
        from repro.analysis.diagnostics import make_diagnostic

        plain = make_diagnostic(
            "RP103", "skipped", kernel="k", array="a", pass_name="races"
        )
        report = self._report_with([plain, *(self._partition_diag(p) for p in range(2))])
        deduped = report.deduplicated()
        assert len(deduped) == 2  # plain + one merged
        assert any(d.code == "RP103" and d.witness is None for d in deduped)

    def test_renderers_count_deduplicated_findings(self):
        report = self._report_with(self._partition_diag(p) for p in range(4))
        text = render_text(report)
        assert text.count("RP601") == 1
        assert "[4 partitions]" in text
        doc = json.loads(render_json(report))
        validate_report_json(doc)
        assert doc["summary"]["warnings"] == 1
        assert len(doc["diagnostics"]) == 1
        assert doc["diagnostics"][0]["witness"]["partitions"] == [0, 1, 2, 3]
