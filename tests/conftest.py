"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder


@pytest.fixture(scope="session")
def stencil_kernel():
    """A guarded 5-point stencil (the canonical analyzable kernel)."""
    kb = KernelBuilder("stencil")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n, n))
    dst = kb.array("dst", f32, (n, n))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy > 0) & (gy < n - 1) & (gx > 0) & (gx < n - 1)):
        c = src[gy, gx]
        acc = src[gy - 1, gx] + src[gy + 1, gx] + src[gy, gx - 1] + src[gy, gx + 1]
        dst[gy, gx] = c + 0.1 * (acc - 4.0 * c)
    return kb.finish()


@pytest.fixture(scope="session")
def copy_kernel():
    """1-D identity copy: the simplest 1:1 write pattern."""
    kb = KernelBuilder("copy1d")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        dst[gi,] = src[gi,]
    return kb.finish()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
