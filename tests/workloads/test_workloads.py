"""Functional tests of the three benchmark workloads (Table 1 scaled down)."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.workloads import ALL_WORKLOADS, functional_config
from repro.workloads.common import TABLE1, ProblemConfig, table1_configs


class TestTable1:
    def test_all_nine_configs(self):
        cfgs = table1_configs()
        assert len(cfgs) == 9
        assert {c.workload for c in cfgs} == {"hotspot", "nbody", "matmul"}

    def test_paper_sizes(self):
        assert TABLE1["hotspot"]["large"].size == 36_864
        assert TABLE1["hotspot"]["large"].iterations == 1_500
        assert TABLE1["nbody"]["medium"].size == 131_072
        assert TABLE1["nbody"]["medium"].iterations == 96
        assert TABLE1["matmul"]["large"].size == 30_656

    def test_functional_configs_small(self):
        for name in ALL_WORKLOADS:
            cfg = functional_config(name)
            assert cfg.size <= 256

    def test_config_workload_mismatch_rejected(self):
        from repro.workloads.hotspot import HotspotWorkload

        with pytest.raises(ValueError):
            HotspotWorkload(ProblemConfig("nbody", "small", 64, 1))


@pytest.fixture(scope="module", params=sorted(ALL_WORKLOADS))
def workload_setup(request):
    name = request.param
    wl = ALL_WORKLOADS[name](functional_config(name))
    inputs = wl.make_inputs(seed=11)
    reference_api = wl.run(CudaApi(), inputs)
    app = compile_app(wl.build_kernels())
    return wl, inputs, reference_api, app


class TestFunctionalCorrectness:
    def test_kernel_matches_numpy_reference(self, workload_setup):
        wl, inputs, ref_api, _ = workload_setup
        ref_np = wl.reference(inputs)
        tol = 2e-3 if wl.name == "nbody" else 2e-4
        for key in ref_np:
            assert np.allclose(ref_api[key], ref_np[key], atol=tol, rtol=tol), key

    def test_kernel_is_partitionable(self, workload_setup):
        wl, _, _, app = workload_setup
        ck = app.kernel(wl.build_kernels()[0].name)
        assert ck.partitionable, ck.model.reject_reason

    @pytest.mark.parametrize("n_gpus", [2, 3, 5, 8, 16])
    def test_multi_gpu_bitwise_equal(self, workload_setup, n_gpus):
        wl, inputs, ref_api, app = workload_setup
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=n_gpus))
        got = wl.run(api, inputs)
        for key in got:
            assert np.array_equal(got[key], ref_api[key]), (wl.name, n_gpus, key)
        assert api.stats.fallback_launches == 0

    def test_expected_strategy(self, workload_setup):
        wl, _, _, app = workload_setup
        ck = app.kernel(wl.build_kernels()[0].name)
        expected_axis = {"hotspot": "y", "nbody": "x", "matmul": "y"}[wl.name]
        assert ck.strategy.axis == expected_axis

    def test_single_gpu_partitioned_equal(self, workload_setup):
        wl, inputs, ref_api, app = workload_setup
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=1))
        got = wl.run(api, inputs)
        for key in got:
            assert np.array_equal(got[key], ref_api[key])
        assert api.stats.sync_bytes == 0  # nothing is ever stale on 1 GPU


class TestWorkloadBehaviours:
    def test_matmul_redistributes_b(self):
        """§9.1: B is read column-wise but distributed linearly, so every
        GPU must fetch most of B before the kernel starts."""
        wl = ALL_WORKLOADS["matmul"](functional_config("matmul"))
        inputs = wl.make_inputs(seed=1)
        app = compile_app(wl.build_kernels())
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        wl.run(api, inputs)
        n = wl.cfg.size
        b_bytes = n * n * 4
        # Each of the 4 GPUs pulls ~3/4 of B (plus a strip of A).
        assert api.stats.sync_bytes >= 0.7 * 3 * b_bytes

    def test_hotspot_steady_state_transfers_are_halos(self):
        wl = ALL_WORKLOADS["hotspot"](functional_config("hotspot"))
        inputs = wl.make_inputs(seed=1)
        app = compile_app(wl.build_kernels())
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        wl.run(api, inputs)
        n = wl.cfg.size
        iters = wl.cfg.iterations
        halo_bytes_per_iter = 2 * 3 * n * 4  # 2 rows per interior boundary
        # Within 2x of the analytic steady-state halo traffic.
        assert api.stats.sync_bytes <= 2 * halo_bytes_per_iter * iters

    def test_nbody_gathers_positions_every_step(self):
        wl = ALL_WORKLOADS["nbody"](functional_config("nbody"))
        inputs = wl.make_inputs(seed=1)
        app = compile_app(wl.build_kernels())
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        wl.run(api, inputs)
        n = wl.cfg.size
        per_step = 3 * (n * 16 // 4) * 4  # each GPU pulls 3/4 of positions... per gpu
        # At least one full position-array gather per step (minus warmup).
        assert api.stats.sync_bytes >= (wl.cfg.iterations - 1) * n * 16 * 3 // 4

    def test_nbody_requires_coverage_validation(self):
        wl = ALL_WORKLOADS["nbody"](functional_config("nbody"))
        app = compile_app(wl.build_kernels())
        assert app.kernel("nbody").model.runtime_coverage

    def test_hotspot_is_statically_exact(self):
        wl = ALL_WORKLOADS["hotspot"](functional_config("hotspot"))
        app = compile_app(wl.build_kernels())
        assert not app.kernel("hotspot").model.runtime_coverage


class TestParametricVariants:
    @pytest.mark.parametrize(
        "builder_name",
        ["build_parametric_stencil", "build_parametric_matmul", "build_parametric_rowsum"],
    )
    def test_parametric_kernels_partitionable(self, builder_name):
        import repro.workloads.parametric as par

        kernel = getattr(par, builder_name)()
        app = compile_app([kernel])
        assert app.kernel(kernel.name).partitionable

    def test_parametric_stencil_end_to_end(self, rng):
        from repro.cuda.api import MemcpyKind
        from repro.cuda.dim3 import Dim3
        from repro.workloads.parametric import build_parametric_stencil

        k = build_parametric_stencil()
        app = compile_app([k])
        n = 48
        temp = rng.random((n, n), dtype=np.float32)
        power = rng.random((n, n), dtype=np.float32)

        def host(api):
            nbytes = n * n * 4
            d_s = api.cudaMalloc(nbytes)
            d_p = api.cudaMalloc(nbytes)
            d_d = api.cudaMalloc(nbytes)
            api.cudaMemcpy(d_s, temp, nbytes, MemcpyKind.HostToDevice)
            api.cudaMemcpy(d_p, power, nbytes, MemcpyKind.HostToDevice)
            api.launch(k, Dim3(3, 3), Dim3(16, 16), [n, d_s, d_p, d_d])
            out = np.zeros((n, n), dtype=np.float32)
            api.cudaMemcpy(out, d_d, nbytes, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        for g in (2, 5):
            got = host(MultiGpuApi(app, RuntimeConfig(n_gpus=g)))
            assert np.array_equal(ref, got)

    def test_transpose_read_full_redistribution(self, rng):
        """The transpose-read kernel maximally mismatches the linear H2D
        distribution — the §8.3 redundant-transfer worst case."""
        from repro.cuda.api import MemcpyKind
        from repro.cuda.dim3 import Dim3
        from repro.workloads.parametric import build_parametric_transpose_read

        k = build_parametric_transpose_read()
        app = compile_app([k])
        n = 32
        src = rng.random((n, n), dtype=np.float32)

        def host(api):
            nbytes = n * n * 4
            d_s = api.cudaMalloc(nbytes)
            d_d = api.cudaMalloc(nbytes)
            api.cudaMemcpy(d_s, src, nbytes, MemcpyKind.HostToDevice)
            api.launch(k, Dim3(2, 2), Dim3(16, 16), [n, d_s, d_d])
            out = np.zeros((n, n), dtype=np.float32)
            api.cudaMemcpy(out, d_d, nbytes, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        assert np.array_equal(ref, src.T)
        got = host(MultiGpuApi(app, RuntimeConfig(n_gpus=2)))
        assert np.array_equal(got, src.T)
