"""The decimating-stencil workload (EXTRA_WORKLOADS, not Table 1).

Functional correctness against the NumPy reference, bitwise equality
across GPU counts, and the partitioning shape the transfer-waste studies
depend on (row split, inexact read enumerator for ``src``).
"""

import numpy as np
import pytest

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.pipeline import compile_app
from repro.compiler.strategy import choose_strategy
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS
from repro.workloads.common import functional_config
from repro.workloads.dstencil import DStencilWorkload, build_dstencil_kernel, src_shape


@pytest.fixture(scope="module")
def workload():
    return DStencilWorkload(functional_config("dstencil"))


class TestRegistration:
    def test_extra_not_table1(self):
        """The paper-faithful three-workload tables stay untouched."""
        assert EXTRA_WORKLOADS["dstencil"] is DStencilWorkload
        assert "dstencil" not in ALL_WORKLOADS


class TestFunctional:
    def test_matches_reference_single_gpu(self, workload):
        inputs = workload.make_inputs(3)
        api = MultiGpuApi(compile_app([workload.kernel]), RuntimeConfig(n_gpus=1))
        out = workload.run(api, inputs)["out"]
        assert np.array_equal(out, workload.reference(inputs)["out"])

    @pytest.mark.parametrize("n_gpus", [2, 4])
    def test_bitwise_across_gpu_counts(self, workload, n_gpus):
        inputs = workload.make_inputs(0)
        ref = workload.reference(inputs)["out"]
        api = MultiGpuApi(
            compile_app([workload.kernel]), RuntimeConfig(n_gpus=n_gpus)
        )
        out = workload.run(api, inputs)["out"]
        assert np.array_equal(out, ref)

    def test_reference_is_float32(self, workload):
        out = workload.reference(workload.make_inputs(0))["out"]
        assert out.dtype == np.float32


class TestPartitioningShape:
    def test_row_split_with_inexact_src_enumerator(self):
        """The workload's raison d'etre: partitionable along y, while the

        strided ``2*gx`` subscript leaves the ``src`` read enumerator
        inexact (bounding) — the RP602 slack source.
        """
        n = 64
        from repro.compiler.enumerators import EnumeratorTable

        info = analyze_kernel(build_dstencil_kernel(n))
        strategy = choose_strategy(info)
        assert strategy.axis == "y"
        enums = EnumeratorTable.build(info)
        src_read = enums.get("dstencil", "src", "read")
        assert src_read is not None and not src_read.exact
        assert src_shape(n) == (n + 1, 2 * n + 2)
