"""Extra coverage for workload configuration plumbing."""

import pytest

from repro.workloads import ALL_WORKLOADS, functional_config
from repro.workloads.common import ProblemConfig, table1_configs


class TestFunctionalConfig:
    def test_size_override(self):
        cfg = functional_config("hotspot", size=128)
        assert cfg.size == 128 and cfg.size_label == "functional"

    def test_iterations_override(self):
        cfg = functional_config("nbody", iterations=2)
        assert cfg.iterations == 2

    def test_str(self):
        assert str(functional_config("matmul")) == "matmul/functional(48)"


class TestTable1Filtering:
    def test_filter_by_workload(self):
        cfgs = table1_configs("nbody")
        assert len(cfgs) == 3
        assert all(c.workload == "nbody" for c in cfgs)

    def test_all_sizes_distinct(self):
        for name in ALL_WORKLOADS:
            sizes = [c.size for c in table1_configs(name)]
            assert len(set(sizes)) == 3
            assert sizes == sorted(sizes)


class TestLaunchConfigs:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_grid_covers_problem(self, name):
        wl = ALL_WORKLOADS[name](functional_config(name))
        grid, block = wl.launch_config()
        threads_x = grid.x * block.x
        assert threads_x >= wl.cfg.size or name != "nbody"
        if name in ("hotspot", "matmul"):
            assert grid.y * block.y >= wl.cfg.size

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_inputs_deterministic_per_seed(self, name):
        wl = ALL_WORKLOADS[name](functional_config(name))
        a = wl.make_inputs(seed=5)
        b = wl.make_inputs(seed=5)
        c = wl.make_inputs(seed=6)
        import numpy as np

        for k in a:
            assert np.array_equal(a[k], b[k])
        assert any(not np.array_equal(a[k], c[k]) for k in a)
