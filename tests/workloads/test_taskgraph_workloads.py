"""Functional checks of the task-graph workloads (cholesky, imgpipe)."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.workloads import EXTRA_WORKLOADS, functional_config
from repro.workloads.cholesky import CholeskyWorkload, tile_size
from repro.workloads.imgpipe import ImgPipeWorkload, band_size


def _run(wl, mode="graph", n_gpus=4, **cfg_kwargs):
    inputs = wl.make_inputs(seed=3)
    app = compile_app(wl.build_kernels())
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=n_gpus, **cfg_kwargs))
    got = wl.run(api, inputs, mode=mode)
    return got, inputs, api


class TestRegistration:
    def test_both_registered_as_extra_workloads(self):
        assert EXTRA_WORKLOADS["cholesky"] is CholeskyWorkload
        assert EXTRA_WORKLOADS["imgpipe"] is ImgPipeWorkload

    def test_tiling_helpers_reject_indivisible_sizes(self):
        with pytest.raises(ValueError):
            tile_size(100)
        with pytest.raises(ValueError):
            band_size(100)


class TestCholesky:
    def test_matches_numpy_cholesky(self):
        wl = CholeskyWorkload(functional_config("cholesky", size=32))
        got, inputs, _ = _run(wl)
        ref = wl.reference(inputs)["factor"]
        assert np.allclose(got["factor"], ref, atol=2e-4, rtol=2e-4)

    def test_graph_matches_serialized_bitwise(self):
        wl = CholeskyWorkload(functional_config("cholesky", size=32))
        graph, _, _ = _run(wl, mode="graph", schedule="overlap+p2p", pipeline_window=4)
        serial, _, _ = _run(wl, mode="serialized", schedule="overlap+p2p", pipeline_window=4)
        assert np.array_equal(graph["factor"], serial["factor"])

    def test_graph_structure(self):
        wl = CholeskyWorkload(functional_config("cholesky", size=32))
        _run(wl)
        g = wl.last_graph
        nt = wl.n_tiles
        # potrf: nt, trsm/syrk: nt(nt-1)/2 each, gemm: nt(nt-1)(nt-2)/6.
        expected = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6
        assert g.stats.tasks == expected
        assert g.stats.nonaffine_tasks == 0
        assert g.stats.waves > 0 and g.stats.ready_peak > 1
        assert not g.report.diagnostics  # fully affine: no RP701/RP702


class TestImgPipe:
    def test_matches_reference_pipeline(self):
        wl = ImgPipeWorkload(functional_config("imgpipe", size=64))
        got, inputs, _ = _run(wl)
        ref = wl.reference(inputs)
        assert np.array_equal(got["out"], ref["out"])
        assert np.allclose(got["diag_sum"], ref["diag_sum"], atol=1e-4)

    def test_graph_matches_serialized_bitwise(self):
        wl = ImgPipeWorkload(functional_config("imgpipe", size=64))
        graph, _, _ = _run(wl, mode="graph", schedule="overlap", pipeline_window=4)
        serial, _, _ = _run(wl, mode="serialized", schedule="overlap", pipeline_window=4)
        assert np.array_equal(graph["out"], serial["out"])
        assert np.array_equal(graph["diag_sum"], serial["diag_sum"])

    def test_opaque_stats_task_degrades_with_diagnostics(self):
        wl = ImgPipeWorkload(functional_config("imgpipe", size=64))
        _, _, api = _run(wl)
        g = wl.last_graph
        codes = {d.code for d in g.report.diagnostics}
        assert {"RP701", "RP702"} <= codes
        assert g.stats.nonaffine_tasks == 1
        assert g.stats.whole_buffer_syncs == 1
        # The gx*gx store also trips the kernel-level single-GPU fallback.
        assert api.stats.fallback_launches >= 1

    def test_halo_edges_overlap_neighbouring_bands(self):
        wl = ImgPipeWorkload(functional_config("imgpipe", size=64))
        _run(wl)
        g = wl.last_graph
        by_dst = {}
        for e in g.edges:
            by_dst.setdefault(e.dst, set()).add(e.src)
        by_name = {t.name: t.index for t in g.tasks}
        # An interior gradient band depends on exactly its three blur
        # producers (the band and both halo neighbours).
        dst = by_name["grad[0,1]"]
        blur_preds = {
            s for s in by_dst[dst] if g.tasks[s].name.startswith("blur[")
        }
        assert blur_preds == {by_name[f"blur[0,{s}]"] for s in (0, 1, 2)}
