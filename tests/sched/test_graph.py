"""Structure of the per-launch task DAG (repro.sched.graph)."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.graph import build_launch_plan
from repro.sched.policy import select_policy
from repro.workloads.hotspot import BLOCK, build_hotspot_kernel

N = 64
N_GPUS = 4


def _prepared_api(**cfg):
    """An api with a hotspot buffer pair scattered across the devices."""
    kernel = build_hotspot_kernel(N)
    app = compile_app([kernel])
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=N_GPUS, **cfg))
    a = api.cudaMalloc(N * N * 4)
    b = api.cudaMalloc(N * N * 4)
    data = np.random.default_rng(0).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, N * N * 4, MemcpyKind.HostToDevice)
    return api, app.kernel(kernel.name), a, b


def _grid():
    from repro.cuda.dim3 import Dim3

    return Dim3(x=(N + BLOCK.x - 1) // BLOCK.x, y=(N + BLOCK.y - 1) // BLOCK.y)


def test_plan_structure_and_validation():
    api, ck, a, b = _prepared_api()
    plan = build_launch_plan(api, ck, _grid(), BLOCK, [a, b])
    plan.validate()

    # One kernel task per non-empty partition, each on its own device.
    assert len(plan.kernels) == N_GPUS
    assert sorted(k.gpu for k in plan.kernels) == sorted(
        d.device_id for d in api.devices
    )

    # The linear H2D scatter misaligns with the stencil's row bands, so the
    # boundary partitions need halo transfers; each transfer lands on the
    # device of the kernel that depends on it.
    transfers = {t.node: t for t in plan.transfers}
    assert transfers, "expected halo transfers after a linear scatter"
    for k in plan.kernels:
        for dep in k.transfer_deps:
            assert transfers[dep].gpu == k.gpu
            assert dep < k.node  # topological numbering

    # Every transfer belongs to exactly one kernel's read set.
    claimed = [dep for k in plan.kernels for dep in k.transfer_deps]
    assert sorted(claimed) == sorted(transfers)

    # Writes cover the full output array: one WriteUpdate per partition.
    assert [len(ups) for ups in plan.updates] == [1] * N_GPUS
    assert all(ups[0].array == "temp_out" for ups in plan.updates)


def test_plan_build_is_pure():
    """Building the plan must not move data, charge time, or touch trackers."""
    api, ck, a, b = _prepared_api()
    segs_before = [(s.start, s.end, s.owner) for s in a.tracker.query(0, a.nbytes)]
    stats_before = vars(api.stats).copy()
    build_launch_plan(api, ck, _grid(), BLOCK, [a, b])
    assert [(s.start, s.end, s.owner) for s in a.tracker.query(0, a.nbytes)] == segs_before
    assert vars(api.stats) == stats_before


def test_plan_skips_reads_when_tracking_disabled():
    """γ configuration: no enumerator scans, no transfers, bare kernel tasks."""
    api, ck, a, b = _prepared_api(tracking_enabled=False, transfers_enabled=False)
    plan = build_launch_plan(api, ck, _grid(), BLOCK, [a, b])
    assert plan.transfers == []
    assert all(not syncs for syncs in plan.reads)
    assert all(not ups for ups in plan.updates)
    assert len(plan.kernels) == N_GPUS


def test_validate_rejects_cross_device_edge():
    api, ck, a, b = _prepared_api()
    plan = build_launch_plan(api, ck, _grid(), BLOCK, [a, b])
    bad = next(k for k in plan.kernels if k.transfer_deps)
    victim = {t.node: t for t in plan.transfers}[bad.transfer_deps[0]]
    victim.gpu = victim.gpu + 1  # corrupt: transfer lands on the wrong device
    with pytest.raises(AssertionError, match="depends on transfer into"):
        plan.validate()


def test_policy_table():
    seq = select_policy("sequential")
    assert seq.barrier and not seq.overlap and not seq.p2p
    ovl = select_policy("overlap")
    assert not ovl.barrier and ovl.overlap and not ovl.p2p
    p2p = select_policy("overlap+p2p")
    assert not p2p.barrier and p2p.overlap and p2p.p2p
    from repro.errors import RuntimeApiError

    with pytest.raises(RuntimeApiError):
        select_policy("eager")
    with pytest.raises(RuntimeApiError):
        RuntimeConfig(schedule="eager")
