"""The adaptive ``schedule="auto"`` policy selection."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import RuntimeApiError
from repro.harness.calibration import K80_NODE_SPEC
from repro.harness.experiments import run_timed
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.policy import (
    AUTO_P2P_MIN_RATIO,
    AUTO_SEQUENTIAL_MAX_RATIO,
    SCHEDULES,
    auto_schedule_name,
)
from repro.sim.engine import SimMachine
from repro.workloads.common import table1_configs

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)


class TestDecisionBoundary:
    """Pin the exact thresholds: this is the satellite's unit test."""

    def test_no_transfers_stays_sequential(self):
        assert auto_schedule_name(0.0, 1.0) == "sequential"
        assert auto_schedule_name(-1.0, 0.0) == "sequential"

    def test_no_compute_goes_p2p(self):
        assert auto_schedule_name(1e-9, 0.0) == "overlap+p2p"

    def test_sequential_boundary(self):
        c = 1.0
        assert auto_schedule_name(AUTO_SEQUENTIAL_MAX_RATIO * c, c) == "sequential"
        assert (
            auto_schedule_name(AUTO_SEQUENTIAL_MAX_RATIO * c * 1.0000001, c)
            == "overlap"
        )

    def test_p2p_boundary(self):
        c = 1.0
        assert auto_schedule_name(AUTO_P2P_MIN_RATIO * c, c) == "overlap+p2p"
        assert (
            auto_schedule_name(AUTO_P2P_MIN_RATIO * c * 0.9999999, c) == "overlap"
        )

    def test_midrange_overlaps(self):
        assert auto_schedule_name(0.1, 1.0) == "overlap"

    @pytest.mark.parametrize("ratio,expected", [
        (0.001, "sequential"),
        (0.02, "sequential"),
        (0.05, "overlap"),
        (0.49, "overlap"),
        (0.5, "overlap+p2p"),
        (10.0, "overlap+p2p"),
    ])
    def test_ratio_table(self, ratio, expected):
        assert auto_schedule_name(ratio, 1.0) == expected

    def test_every_outcome_is_a_registered_schedule(self):
        for ratio in (0.0, 0.01, 0.1, 1.0, 100.0):
            assert auto_schedule_name(ratio, 1.0) in SCHEDULES


class TestConfig:
    def test_auto_accepted(self):
        assert RuntimeConfig(n_gpus=2, schedule="auto").schedule == "auto"

    def test_unknown_schedule_lists_auto(self):
        with pytest.raises(RuntimeApiError) as exc:
            RuntimeConfig(n_gpus=2, schedule="speculative")
        assert "auto" in str(exc.value)


def _stencil():
    kb = KernelBuilder("st")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy >= 1) & (gy < N - 1) & (gx >= 1) & (gx < N - 1)):
        dst[gy, gx] = src[gy - 1, gx] + src[gy + 1, gx]
    return kb.finish()


def _run(schedule, n_gpus=4, iterations=3, seed=0):
    kernel = _stencil()
    app = compile_app([kernel])
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=n_gpus, schedule=schedule),
        machine=SimMachine(K80_NODE_SPEC.with_gpus(n_gpus)),
    )
    nbytes = N * N * 4
    a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
    data = np.random.default_rng(seed).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    src, dst = a, b
    for _ in range(iterations):
        api.launch(kernel, GRID, BLOCK, [src, dst])
        src, dst = dst, src
    out = np.zeros((N, N), dtype=np.float32)
    api.cudaMemcpy(out, b, nbytes, MemcpyKind.DeviceToHost)
    trackers = [
        [(s.start, s.end, s.owner) for s in vb.tracker.query(0, vb.nbytes)]
        for vb in (a, b)
    ]
    return out, trackers, api


class TestAutoRuns:
    def test_auto_bitwise_equals_concrete_schedules(self):
        ref_out, ref_trackers, _ = _run("sequential")
        out, trackers, _ = _run("auto")
        assert np.array_equal(ref_out, out)
        assert trackers == ref_trackers

    def test_auto_records_its_choices(self):
        _, _, api = _run("auto", iterations=3)
        choices = api.stats.auto_choices
        assert sum(choices.values()) == 3
        assert set(choices) <= set(SCHEDULES)

    def test_concrete_schedules_record_no_choices(self):
        for schedule in SCHEDULES:
            _, _, api = _run(schedule, iterations=2)
            assert api.stats.auto_choices == {}

    def test_auto_never_slower_than_sequential_on_workload(self):
        cfg = next(c for c in table1_configs("hotspot") if c.size_label == "small")
        t_seq, _ = run_timed(cfg, 4, schedule="sequential")
        t_auto, auto_api = run_timed(cfg, 4, schedule="auto")
        assert t_auto <= t_seq + 1e-9
        assert sum(auto_api.stats.auto_choices.values()) > 0


class TestEstimateCache:
    """Plan-time estimates are memoized per (kernel, grid, config) shape."""

    def test_pingpong_reestimates_nothing_after_warmup(self):
        # Ping-pong directions have mirrored transfer shapes; buffer
        # identity is deliberately excluded from the fingerprint, so the
        # whole loop converges to at most one slot per parity and every
        # launch after warm-up is a hit.
        _, _, api = _run("auto", iterations=5)
        assert 1 <= api.stats.estimate_cache_misses <= 2
        assert (
            api.stats.estimate_cache_hits
            == 5 - api.stats.estimate_cache_misses
        )
        assert sum(api.stats.auto_choices.values()) == 5

    def test_concrete_schedules_never_estimate(self):
        for schedule in SCHEDULES:
            _, _, api = _run(schedule, iterations=3)
            assert api.stats.estimate_cache_hits == 0
            assert api.stats.estimate_cache_misses == 0

    def test_cached_estimate_is_bit_identical(self):
        from repro.runtime.fingerprint import plan_estimate_key
        from repro.sched.graph import build_launch_plan
        from repro.sched.policy import estimate_plan_times

        kernel = _stencil()
        app = compile_app([kernel])
        api = MultiGpuApi(
            app,
            RuntimeConfig(n_gpus=4, schedule="auto"),
            machine=SimMachine(K80_NODE_SPEC.with_gpus(4)),
        )
        nbytes = N * N * 4
        a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
        api.cudaMemset(a, 0, nbytes)
        api.cudaMemset(b, 0, nbytes)
        ck = app.kernel(kernel.name)
        plan_ab = build_launch_plan(api, ck, GRID, BLOCK, [a, b])
        plan_ba = build_launch_plan(api, ck, GRID, BLOCK, [b, a])
        # Buffer identity does not enter the key: a symmetric stencil's two
        # ping-pong directions share one cache slot.
        assert plan_estimate_key(plan_ab) == plan_estimate_key(plan_ba)

        first = estimate_plan_times(api, plan_ab)
        assert api.stats.estimate_cache_misses == 1
        again = estimate_plan_times(api, plan_ab)
        assert api.stats.estimate_cache_hits == 1
        assert again == first  # bit-identical, not approximately equal

    def test_window_estimate_sums_per_plan(self):
        from repro.sched.graph import build_launch_plan
        from repro.sched.policy import estimate_plan_times, estimate_window_times

        kernel = _stencil()
        app = compile_app([kernel])
        api = MultiGpuApi(
            app,
            RuntimeConfig(n_gpus=4, schedule="auto"),
            machine=SimMachine(K80_NODE_SPEC.with_gpus(4)),
        )
        nbytes = N * N * 4
        a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
        api.cudaMemset(a, 0, nbytes)
        api.cudaMemset(b, 0, nbytes)
        ck = app.kernel(kernel.name)
        plan = build_launch_plan(api, ck, GRID, BLOCK, [a, b])
        t1, c1 = estimate_plan_times(api, plan)
        tw, cw = estimate_window_times(api, [plan, plan, plan])
        assert tw == pytest.approx(3 * t1)
        assert cw == pytest.approx(3 * c1)
