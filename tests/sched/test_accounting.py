"""Timing-accounting invariants of the scheduled simulation.

The paper's α/β/γ overhead methodology (§9.2) subtracts whole-run times, so
it only works if the scheduler preserves the accounting identities:

* α ≥ β ≥ γ (disabling work never makes the run slower),
* the derived Application/Transfers/Patterns fractions sum to one,
* β and γ runs record zero TRANSFERS busy time, and γ drops the
  enumerator/tracker PATTERNS work down to the bare partition setup,
* the overlap refinement ``hidden + exposed == busy_time(TRANSFERS)``.

Plus the scheduler's own ordering guarantee: overlap is never slower than
sequential, and overlap+p2p never slower than overlap.
"""

import pytest

from repro.harness.experiments import measure_breakdown, run_timed
from repro.runtime.config import RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.trace import Category
from repro.workloads.common import table1_configs

CFG = next(c for c in table1_configs("hotspot") if c.size_label == "small")
N_GPUS = 4


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_alpha_beta_gamma_identities(schedule):
    row = measure_breakdown(CFG, N_GPUS, schedule=schedule)
    assert row.alpha >= row.beta >= row.gamma > 0
    assert row.t_application + row.t_transfers + row.t_patterns == pytest.approx(1.0)
    assert row.t_transfers >= 0 and row.t_patterns >= 0


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_disabled_categories_record_no_time(schedule):
    base = RuntimeConfig(n_gpus=N_GPUS, schedule=schedule)
    _, beta_api = run_timed(CFG, N_GPUS, config=base.beta())
    assert beta_api.machine.trace.busy_time(Category.TRANSFERS) == 0.0
    _, gamma_api = run_timed(CFG, N_GPUS, config=base.gamma())
    assert gamma_api.machine.trace.busy_time(Category.TRANSFERS) == 0.0
    # γ keeps only the per-partition setup charge (the launch replacement
    # itself); all enumerator/tracker-query work must be gone.
    beta_patterns = beta_api.machine.trace.busy_time(Category.PATTERNS)
    gamma_patterns = gamma_api.machine.trace.busy_time(Category.PATTERNS)
    assert 0.0 < gamma_patterns < beta_patterns


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_exposure_partitions_transfer_time(schedule):
    _, api = run_timed(CFG, N_GPUS, schedule=schedule)
    trace = api.machine.trace
    exposure = trace.transfer_exposure()
    assert exposure["hidden"] >= 0 and exposure["exposed"] >= 0
    assert exposure["hidden"] + exposure["exposed"] == pytest.approx(
        trace.busy_time(Category.TRANSFERS)
    )


def test_overlap_never_slower():
    times = {s: run_timed(CFG, N_GPUS, schedule=s)[0] for s in SCHEDULES}
    eps = 1e-9
    assert times["overlap"] <= times["sequential"] + eps
    assert times["overlap+p2p"] <= times["overlap"] + eps
    # With real coherence traffic the DAG schedule hides most of it.
    _, seq_api = run_timed(CFG, N_GPUS, schedule="sequential")
    _, ovl_api = run_timed(CFG, N_GPUS, schedule="overlap")
    seq_x = seq_api.machine.trace.transfer_exposure()
    ovl_x = ovl_api.machine.trace.transfer_exposure()
    assert seq_x["hidden"] + seq_x["exposed"] > 0
    seq_frac = seq_x["hidden"] / (seq_x["hidden"] + seq_x["exposed"])
    ovl_frac = ovl_x["hidden"] / (ovl_x["hidden"] + ovl_x["exposed"])
    assert ovl_frac > seq_frac
