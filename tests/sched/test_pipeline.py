"""Cross-launch pipelining: fused windows, edge precision, flush points.

Three layers of guarantees:

* :class:`~repro.sched.graph.PipelinedPlan` derives *interval-precise*
  cross-launch edges — on a 1-halo stencil, launch k+1 depends on another
  device's launch-k work only through the thin seam transfers, never
  kernel-to-kernel;
* ``pipeline_window=1`` replays the legacy per-launch ``execute_plan``
  trace event for event (the refactor into functional-submit +
  simulated-flush halves is observationally invisible);
* every host-visible operation is a flush point, so buffered launches can
  never leak past an observation of the simulated clock or tracker state.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.device import HOST
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.executor import apply_plan_functional, execute_plan
from repro.sched.graph import PipelinedPlan, build_launch_plan
from repro.sched.policy import select_policy
from repro.sim.engine import SimMachine
from repro.workloads.hotspot import BLOCK, build_hotspot_kernel

N = 64
N_GPUS = 4
NBYTES = N * N * 4
ROW = N * 4  # bytes per stencil row


def _grid():
    from repro.cuda.dim3 import Dim3

    return Dim3(x=(N + BLOCK.x - 1) // BLOCK.x, y=(N + BLOCK.y - 1) // BLOCK.y)


def _prepared_api(**cfg):
    kernel = build_hotspot_kernel(N)
    app = compile_app([kernel])
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=N_GPUS, **cfg))
    a = api.cudaMalloc(NBYTES)
    b = api.cudaMalloc(NBYTES)
    data = np.random.default_rng(0).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, NBYTES, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, NBYTES)
    return api, app.kernel(kernel.name), a, b


def _two_launch_window(api, ck, a, b):
    """Plans for two ping-pong launches, functional state applied between."""
    plan0 = build_launch_plan(api, ck, _grid(), BLOCK, [a, b])
    apply_plan_functional(api, plan0)
    plan1 = build_launch_plan(api, ck, _grid(), BLOCK, [b, a])
    apply_plan_functional(api, plan1)
    window = PipelinedPlan()
    window.append(plan0, 0)
    window.append(plan1, 1)
    return plan0, plan1, window


def test_cross_launch_edges_are_seam_thin():
    """1-halo stencil: cross-launch coupling is exactly the halo exchange.

    Launch 1's kernels may depend on launch 0 only on their *own* device
    (the partition they overwrite); every cross-*device* dependency runs
    through a transfer whose byte interval is a thin seam row, so interior
    bytes carry zero cross-launch edges to remote work.
    """
    api, ck, a, b = _prepared_api()
    plan0, plan1, window = _two_launch_window(api, ck, a, b)
    window.validate()
    edges = window.cross_launch_edges()
    assert edges, "ping-pong launches must be coupled"
    assert all(e.src_launch == 0 and e.dst_launch == 1 for e in edges)

    kernel_nodes0 = {k.node: k for k in plan0.kernels}
    kernel_nodes1 = {k.node: k for k in plan1.kernels}
    transfer_nodes1 = {t.node: t for t in plan1.transfers}
    assert transfer_nodes1, "expected halo transfers in the second launch"

    for e in edges:
        if e.dst_node in kernel_nodes1 and e.src_node in kernel_nodes0:
            # Kernel-to-kernel coupling never crosses devices: remote
            # launch-0 results reach a launch-1 kernel only via transfers.
            assert kernel_nodes0[e.src_node].gpu == kernel_nodes1[e.dst_node].gpu, e
        if e.dst_node in transfer_nodes1 and e.kind == "raw":
            t = transfer_nodes1[e.dst_node]
            # The producing write lives on the transfer's source instance.
            assert e.dev == t.owner, e
            # Interval precision: the dependency covers (part of) the
            # transferred seam bytes, nothing wider.
            assert t.start <= e.lo < e.hi <= t.end, e

    # Seam thinness: the entire cross-device coupling (the launch-1 halo
    # transfers) moves at most two rows per internal partition boundary.
    halo_bytes = sum(t.nbytes for t in plan1.transfers if t.owner != HOST)
    assert 0 < halo_bytes <= 2 * (N_GPUS - 1) * ROW


def test_pipelined_plan_append_rejects_reordered_launches():
    api, ck, a, b = _prepared_api()
    plan = build_launch_plan(api, ck, _grid(), BLOCK, [a, b])
    window = PipelinedPlan()
    window.append(plan, 5)
    with pytest.raises(AssertionError):
        window.append(plan, 5)
    with pytest.raises(AssertionError):
        window.append(plan, 3)
    window.clear()
    window.append(plan, 0)  # fresh after clear
    assert len(window) == 1


@pytest.mark.parametrize("schedule", ["sequential", "overlap", "overlap+p2p"])
def test_window_one_matches_legacy_execute_plan(schedule):
    """The submit/flush split replays ``execute_plan`` event for event."""
    iterations = 3

    def run_pipelined():
        machine = SimMachine(K80_NODE_SPEC.with_gpus(N_GPUS))
        kernel = build_hotspot_kernel(N)
        app = compile_app([kernel])
        api = MultiGpuApi(
            app,
            RuntimeConfig(n_gpus=N_GPUS, schedule=schedule, pipeline_window=1),
            machine=machine,
        )
        a = api.cudaMalloc(NBYTES)
        b = api.cudaMalloc(NBYTES)
        data = np.random.default_rng(1).random((N, N)).astype(np.float32)
        api.cudaMemcpy(a, data, NBYTES, MemcpyKind.HostToDevice)
        api.cudaMemset(b, 0, NBYTES)
        src, dst = a, b
        for _ in range(iterations):
            api.launch(kernel, _grid(), BLOCK, [src, dst])
            src, dst = dst, src
        return api, machine

    def run_legacy():
        machine = SimMachine(K80_NODE_SPEC.with_gpus(N_GPUS))
        kernel = build_hotspot_kernel(N)
        app = compile_app([kernel])
        api = MultiGpuApi(
            app, RuntimeConfig(n_gpus=N_GPUS, schedule=schedule), machine=machine
        )
        a = api.cudaMalloc(NBYTES)
        b = api.cudaMalloc(NBYTES)
        data = np.random.default_rng(1).random((N, N)).astype(np.float32)
        api.cudaMemcpy(a, data, NBYTES, MemcpyKind.HostToDevice)
        api.cudaMemset(b, 0, NBYTES)
        ck = app.kernel(kernel.name)
        policy = select_policy(schedule)
        src, dst = a, b
        for i in range(iterations):
            # The pre-pipelining launch path: build the plan, execute it
            # monolithically, per launch.
            api._launch_index = next(api._launch_counter)
            plan = build_launch_plan(api, ck, _grid(), BLOCK, [src, dst])
            execute_plan(api, plan, policy)
            src, dst = dst, src
        return api, machine

    api_p, machine_p = run_pipelined()
    api_l, machine_l = run_legacy()
    assert machine_p.trace.intervals == machine_l.trace.intervals
    assert machine_p.elapsed() == machine_l.elapsed()
    assert api_p.stats.sync_bytes == api_l.stats.sync_bytes
    assert api_p.stats.partition_launches == api_l.stats.partition_launches


def test_host_visible_ops_flush_the_window():
    """Every observation point drains buffered launches first."""
    machine = SimMachine(K80_NODE_SPEC.with_gpus(N_GPUS))
    kernel = build_hotspot_kernel(N)
    app = compile_app([kernel])
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=N_GPUS, schedule="overlap+p2p", pipeline_window=8),
        machine=machine,
    )
    a = api.cudaMalloc(NBYTES)
    b = api.cudaMalloc(NBYTES)
    data = np.random.default_rng(2).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, NBYTES, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, NBYTES)

    api.launch(kernel, _grid(), BLOCK, [a, b])
    api.launch(kernel, _grid(), BLOCK, [b, a])
    assert api.pipeline.depth == 2, "window of 8 must buffer both launches"
    events_before = len(machine.trace)

    # A user tracker query is host-visible: it must drain the window.
    a.coherence_state()
    assert api.pipeline.depth == 0
    assert len(machine.trace) > events_before
    assert api.stats.pipeline_max_batch == 2

    # D2H memcpy flushes too (and the result reflects both launches).
    api.launch(kernel, _grid(), BLOCK, [a, b])
    assert api.pipeline.depth == 1
    out = np.zeros((N, N), dtype=np.float32)
    api.cudaMemcpy(out, b, NBYTES, MemcpyKind.DeviceToHost)
    assert api.pipeline.depth == 0

    # cudaDeviceSynchronize and elapsed() are drain points as well.
    api.launch(kernel, _grid(), BLOCK, [b, a])
    assert api.pipeline.depth == 1
    api.cudaDeviceSynchronize()
    assert api.pipeline.depth == 0
    api.launch(kernel, _grid(), BLOCK, [a, b])
    api.elapsed()
    assert api.pipeline.depth == 0

    # Flushing an empty pipeline is a no-op, not an error.
    before = len(machine.trace)
    api.pipeline.flush()
    assert len(machine.trace) == before


def test_window_flushes_when_full():
    machine = SimMachine(K80_NODE_SPEC.with_gpus(N_GPUS))
    kernel = build_hotspot_kernel(N)
    app = compile_app([kernel])
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=N_GPUS, schedule="overlap", pipeline_window=2),
        machine=machine,
    )
    a = api.cudaMalloc(NBYTES)
    b = api.cudaMalloc(NBYTES)
    api.cudaMemset(a, 0, NBYTES)
    api.cudaMemset(b, 0, NBYTES)
    src, dst = a, b
    for i in range(4):
        api.launch(kernel, _grid(), BLOCK, [src, dst])
        src, dst = dst, src
        assert api.pipeline.depth == (i + 1) % 2
    assert api.stats.pipeline_flushes == 2
    assert api.stats.pipeline_max_batch == 2


def test_pipeline_window_validation():
    from repro.errors import RuntimeApiError

    with pytest.raises(RuntimeApiError):
        RuntimeConfig(n_gpus=2, pipeline_window=0)
    with pytest.raises(RuntimeApiError):
        RuntimeConfig(n_gpus=2, pipeline_window=-1)
    with pytest.raises(RuntimeApiError):
        RuntimeConfig(n_gpus=2, pipeline_window=2.5)
