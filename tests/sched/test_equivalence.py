"""Bitwise equivalence of the three launch-scheduler policies.

The scheduler only re-orders *device* work: functional copies, kernel
interpretation and tracker updates happen identically in every policy. This
property test drives randomly generated parametric 2-D stencil workloads
(random tap sets, random iteration counts, random GPU counts) through all
three schedules and requires

* bitwise-identical host-visible buffers, and
* identical final tracker state (segment boundaries and owners),

so a schedule can never be observed functionally.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.engine import SimMachine

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)

#: Stencil taps: (dy, dx, coefficient). Offsets up to ±2 make the halo
#: exchange span multiple partition bands at small N.
taps_strategy = st.lists(
    st.tuples(
        st.integers(-2, 2),
        st.integers(-2, 2),
        st.sampled_from([0.25, 0.5, 1.0, -0.5]),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda t: (t[0], t[1]),
)


def _build_stencil(taps):
    radius = max(max(abs(dy), abs(dx)) for dy, dx, _ in taps)
    kb = KernelBuilder("randst")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < N) & (gx < N)):
        with kb.if_(
            (gy >= radius) & (gy < N - radius) & (gx >= radius) & (gx < N - radius)
        ):
            dy0, dx0, c0 = taps[0]
            acc = src[gy + dy0, gx + dx0] * c0
            for dy, dx, c in taps[1:]:
                acc = acc + src[gy + dy, gx + dx] * c
            dst[gy, gx] = acc
        with kb.otherwise():
            dst[gy, gx] = src[gy, gx]
    return kb.finish()


def _run(app, kernel, schedule, n_gpus, iterations, seed):
    machine = SimMachine(K80_NODE_SPEC.with_gpus(n_gpus))
    api = MultiGpuApi(
        app, RuntimeConfig(n_gpus=n_gpus, schedule=schedule), machine=machine
    )
    nbytes = N * N * 4
    a = api.cudaMalloc(nbytes)
    b = api.cudaMalloc(nbytes)
    data = np.random.default_rng(seed).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    src, dst = a, b
    for _ in range(iterations):
        api.launch(kernel, GRID, BLOCK, [src, dst])
        src, dst = dst, src
    out_a = np.zeros((N, N), dtype=np.float32)
    out_b = np.zeros((N, N), dtype=np.float32)
    api.cudaMemcpy(out_a, a, nbytes, MemcpyKind.DeviceToHost)
    api.cudaMemcpy(out_b, b, nbytes, MemcpyKind.DeviceToHost)
    trackers = [
        [(s.start, s.end, s.owner) for s in vb.tracker.query(0, vb.nbytes)]
        for vb in (a, b)
    ]
    return (out_a, out_b), trackers, api.elapsed()


@settings(max_examples=15, deadline=None)
@given(
    taps=taps_strategy,
    n_gpus=st.sampled_from([2, 3, 4, 8]),
    iterations=st.integers(1, 3),
    seed=st.integers(0, 9),
)
def test_schedules_bitwise_equivalent(taps, n_gpus, iterations, seed):
    kernel = _build_stencil(taps)
    app = compile_app([kernel])
    results = {s: _run(app, kernel, s, n_gpus, iterations, seed) for s in SCHEDULES}

    (ref_a, ref_b), ref_trackers, _ = results["sequential"]
    for sched in SCHEDULES[1:]:
        (got_a, got_b), got_trackers, _ = results[sched]
        assert np.array_equal(ref_a, got_a), (sched, taps, n_gpus, iterations)
        assert np.array_equal(ref_b, got_b), (sched, taps, n_gpus, iterations)
        assert got_trackers == ref_trackers, (sched, taps, n_gpus, iterations)

    # Relaxing the barrier (and routing copies peer-to-peer) never makes the
    # simulated execution slower: each policy's dependency set is a subset
    # of the previous one's, and the p2p route's cost dominates the staged
    # route's.
    eps = 1e-9
    assert results["overlap"][2] <= results["sequential"][2] + eps
    assert results["overlap+p2p"][2] <= results["overlap"][2] + eps
