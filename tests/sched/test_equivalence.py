"""Bitwise equivalence of the launch-scheduler policies.

The scheduler only re-orders *device* work: functional copies, kernel
interpretation and tracker updates happen identically in every policy. This
property test drives randomly generated parametric 2-D stencil workloads
(random tap sets, random iteration counts, random GPU counts) through all
schedules — with shared-copy coherence tracking both off and on — and
requires

* bitwise-identical host-visible buffers,
* identical final tracker state (segment boundaries, owners, *and* sharer
  sets), and
* that shared-copy tracking never transfers more coherence bytes,

so neither a schedule nor the coherence mode can ever be observed
functionally.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.engine import SimMachine

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)

#: Stencil taps: (dy, dx, coefficient). Offsets up to ±2 make the halo
#: exchange span multiple partition bands at small N.
taps_strategy = st.lists(
    st.tuples(
        st.integers(-2, 2),
        st.integers(-2, 2),
        st.sampled_from([0.25, 0.5, 1.0, -0.5]),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda t: (t[0], t[1]),
)


def _build_stencil(taps):
    radius = max(max(abs(dy), abs(dx)) for dy, dx, _ in taps)
    kb = KernelBuilder("randst")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < N) & (gx < N)):
        with kb.if_(
            (gy >= radius) & (gy < N - radius) & (gx >= radius) & (gx < N - radius)
        ):
            dy0, dx0, c0 = taps[0]
            acc = src[gy + dy0, gx + dx0] * c0
            for dy, dx, c in taps[1:]:
                acc = acc + src[gy + dy, gx + dx] * c
            dst[gy, gx] = acc
        with kb.otherwise():
            dst[gy, gx] = src[gy, gx]
    return kb.finish()


def _run(
    app, kernel, schedule, n_gpus, iterations, seed, shared_copies=False,
    pipeline_window=1,
):
    machine = SimMachine(K80_NODE_SPEC.with_gpus(n_gpus))
    api = MultiGpuApi(
        app,
        RuntimeConfig(
            n_gpus=n_gpus,
            schedule=schedule,
            shared_copies=shared_copies,
            pipeline_window=pipeline_window,
        ),
        machine=machine,
    )
    nbytes = N * N * 4
    a = api.cudaMalloc(nbytes)
    b = api.cudaMalloc(nbytes)
    data = np.random.default_rng(seed).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    src, dst = a, b
    for _ in range(iterations):
        api.launch(kernel, GRID, BLOCK, [src, dst])
        src, dst = dst, src
    out_a = np.zeros((N, N), dtype=np.float32)
    out_b = np.zeros((N, N), dtype=np.float32)
    api.cudaMemcpy(out_a, a, nbytes, MemcpyKind.DeviceToHost)
    api.cudaMemcpy(out_b, b, nbytes, MemcpyKind.DeviceToHost)
    trackers = [vb.coherence_state() for vb in (a, b)]
    return (out_a, out_b), trackers, api.elapsed(), api.stats, machine.trace


@settings(max_examples=15, deadline=None)
@given(
    taps=taps_strategy,
    n_gpus=st.sampled_from([2, 3, 4, 8]),
    iterations=st.integers(1, 3),
    seed=st.integers(0, 9),
)
def test_schedules_bitwise_equivalent(taps, n_gpus, iterations, seed):
    kernel = _build_stencil(taps)
    app = compile_app([kernel])
    results = {s: _run(app, kernel, s, n_gpus, iterations, seed) for s in SCHEDULES}

    (ref_a, ref_b), ref_trackers, _, _, _ = results["sequential"]
    for sched in SCHEDULES[1:]:
        (got_a, got_b), got_trackers, _, _, _ = results[sched]
        assert np.array_equal(ref_a, got_a), (sched, taps, n_gpus, iterations)
        assert np.array_equal(ref_b, got_b), (sched, taps, n_gpus, iterations)
        assert got_trackers == ref_trackers, (sched, taps, n_gpus, iterations)

    # Relaxing the barrier (and routing copies peer-to-peer) never makes the
    # simulated execution slower: each policy's dependency set is a subset
    # of the previous one's, and the p2p route's cost dominates the staged
    # route's.
    eps = 1e-9
    assert results["overlap"][2] <= results["sequential"][2] + eps
    assert results["overlap+p2p"][2] <= results["overlap"][2] + eps


ALL_POLICIES = tuple(SCHEDULES) + ("auto",)


@settings(max_examples=10, deadline=None)
@given(
    taps=taps_strategy,
    n_gpus=st.sampled_from([2, 4, 8]),
    iterations=st.integers(2, 3),
    seed=st.integers(0, 9),
)
def test_shared_copies_bitwise_equivalent(taps, n_gpus, iterations, seed):
    """Shared-copy tracking x every policy: one functional behaviour.

    All eight (policy, shared flag) combinations must produce identical
    buffers; within a flag setting every policy must also land on the same
    final tracker state including sharer sets, and shared-copy runs must
    never transfer more coherence bytes than sole-owner runs.
    """
    kernel = _build_stencil(taps)
    app = compile_app([kernel])
    results = {
        (s, shared): _run(app, kernel, s, n_gpus, iterations, seed, shared)
        for s in ALL_POLICIES
        for shared in (False, True)
    }

    (ref_a, ref_b), _, _, _, _ = results[("sequential", False)]
    for key, ((got_a, got_b), _, _, _, _) in results.items():
        assert np.array_equal(ref_a, got_a), (key, taps, n_gpus, iterations)
        assert np.array_equal(ref_b, got_b), (key, taps, n_gpus, iterations)

    for shared in (False, True):
        ref_trackers = results[("sequential", shared)][1]
        for sched in ALL_POLICIES[1:]:
            assert results[(sched, shared)][1] == ref_trackers, (sched, shared)

    for sched in ALL_POLICIES:
        off = results[(sched, False)][3]
        on = results[(sched, True)][3]
        # A ping-pong stencil re-reads only freshly written halo bands, so
        # shared copies cannot *reduce* its traffic — but they must never
        # add any.
        assert on.sync_bytes <= off.sync_bytes, (sched, taps, n_gpus)
        assert off.redundant_bytes_avoided == 0 and off.tracker_share_ops == 0

    # Sole-owner runs must not report sharers in the final state.
    for sched in ALL_POLICIES:
        for state in results[(sched, False)][1]:
            assert all(sharers == () for *_rest, sharers in state), sched


@settings(max_examples=10, deadline=None)
@given(
    taps=taps_strategy,
    n_gpus=st.sampled_from([2, 4, 8]),
    window=st.sampled_from([2, 4, 8]),
    shared=st.booleans(),
    iterations=st.integers(2, 4),
    seed=st.integers(0, 9),
)
def test_pipelining_functionally_invisible(taps, n_gpus, window, shared, iterations, seed):
    """pipeline_window x policy x shared copies: one functional behaviour.

    Fusing launch windows may only delay *simulated* issue — buffers,
    tracker state (including sharer sets) and coherence traffic must be
    bitwise-identical to per-launch orchestration under every policy. On a
    flat (single-node) machine there is no transfer-tier reordering either,
    so the trace itself must replay event for event: same intervals, same
    resources, same launch attribution — only flush bookkeeping differs.
    """
    kernel = _build_stencil(taps)
    app = compile_app([kernel])
    for sched in ALL_POLICIES:
        base = _run(app, kernel, sched, n_gpus, iterations, seed, shared)
        piped = _run(
            app, kernel, sched, n_gpus, iterations, seed, shared,
            pipeline_window=window,
        )
        key = (sched, window, shared, taps, n_gpus, iterations)
        assert np.array_equal(base[0][0], piped[0][0]), key
        assert np.array_equal(base[0][1], piped[0][1]), key
        assert base[1] == piped[1], key
        assert base[3].sync_bytes == piped[3].sync_bytes, key
        assert base[3].sync_transfers == piped[3].sync_transfers, key
        assert base[3].tracker_share_ops == piped[3].tracker_share_ops, key
        assert base[3].tracker_invalidate_ops == piped[3].tracker_invalidate_ops, key
        if sched != "auto":
            # Auto may legitimately fuse to a different policy over a
            # window than it picks launch by launch; concrete policies
            # must replay the exact event sequence.
            assert piped[4].intervals == base[4].intervals, key
            assert piped[2] == base[2], key
        # Windowing shows up only in the flush bookkeeping.
        assert piped[3].pipeline_max_batch <= window, key
        assert piped[3].pipeline_flushes <= base[3].pipeline_flushes, key


def _build_broadcast():
    """Every thread also reads element 0 — shared data a sole-owner tracker
    re-broadcasts every launch (§8.3)."""
    kb = KernelBuilder("bcast")
    table = kb.array("table", f32, (N * N,))
    out = kb.array("out", f32, (N * N,))
    gi = kb.global_id("x")
    with kb.if_(gi < N * N):
        out[gi,] = table[gi,] + table[0,]
    return kb.finish()


def test_shared_copies_pay_off_on_broadcast_reads():
    """Repeated broadcast reads: sharers cut traffic, all policies agree."""
    kernel = _build_broadcast()
    app = compile_app([kernel])
    nbytes = N * N * 4
    grid, block = Dim3(x=(N * N) // 64), Dim3(x=64)
    data = np.arange(N * N, dtype=np.float32)

    results = {}
    for sched in ALL_POLICIES:
        for shared in (False, True):
            machine = SimMachine(K80_NODE_SPEC.with_gpus(4))
            api = MultiGpuApi(
                app,
                RuntimeConfig(n_gpus=4, schedule=sched, shared_copies=shared),
                machine=machine,
            )
            table = api.cudaMalloc(nbytes)
            out = api.cudaMalloc(nbytes)
            api.cudaMemcpy(table, data, nbytes, MemcpyKind.HostToDevice)
            api.cudaMemset(out, 0, nbytes)
            for _ in range(3):
                api.launch(kernel, grid, block, [table, out])
            got = np.zeros(N * N, dtype=np.float32)
            api.cudaMemcpy(got, out, nbytes, MemcpyKind.DeviceToHost)
            results[(sched, shared)] = (got, [table.coherence_state(), out.coherence_state()], api.stats)

    ref, _, _ = results[("sequential", False)]
    for key, (got, _, _) in results.items():
        assert np.array_equal(ref, got), key
    for shared in (False, True):
        ref_state = results[("sequential", shared)][1]
        for sched in ALL_POLICIES[1:]:
            assert results[(sched, shared)][1] == ref_state, (sched, shared)
    for sched in ALL_POLICIES:
        off, on = results[(sched, False)][2], results[(sched, True)][2]
        # Element 0 is re-fetched by 3 remote GPUs on every launch without
        # sharers; with them only the first launch pays.
        assert on.redundant_bytes_avoided > 0, sched
        assert on.sync_bytes < off.sync_bytes, sched
        assert on.tracker_share_ops > 0 and off.tracker_share_ops == 0, sched
