"""The saved application model drives a faithful reload (paper §4).

The paper's pass 1 writes the model to disk; pass 2 (a separate compiler
invocation) reads it back. These tests assert the JSON model is a lossless
hand-off: maps re-parse to relations with identical membership, and a
pipeline decision (strategy, legality, unit axes) taken from the reloaded
model matches the in-memory one.
"""

import itertools

import pytest

from repro.compiler.model import AppModel
from repro.compiler.pipeline import compile_app
from repro.workloads import ALL_WORKLOADS, functional_config


@pytest.fixture(scope="module", params=sorted(ALL_WORKLOADS))
def saved_model(request, tmp_path_factory):
    name = request.param
    wl = ALL_WORKLOADS[name](functional_config(name))
    path = tmp_path_factory.mktemp("models") / f"{name}.json"
    app = compile_app(wl.build_kernels(), model_path=path)
    return name, app, AppModel.load(path)


class TestModelRoundtrip:
    def test_decisions_survive(self, saved_model):
        name, app, reloaded = saved_model
        kernel_name = next(iter(app.kernels))
        km_live = app.model.get(kernel_name)
        km_disk = reloaded.get(kernel_name)
        assert km_disk.partitionable == km_live.partitionable
        assert km_disk.strategy_axis == km_live.strategy_axis
        assert km_disk.unit_axes == km_live.unit_axes
        assert km_disk.runtime_coverage == km_live.runtime_coverage

    def test_write_maps_semantically_equal(self, saved_model):
        name, app, reloaded = saved_model
        kernel_name = next(iter(app.kernels))
        info = app.kernel(kernel_name).info
        for arg in reloaded.get(kernel_name).args:
            if arg.kind != "array" or arg.write is None:
                continue
            disk_map = arg.write.to_map()
            live_map = info.writes[arg.name].access_map
            # Probe a lattice of points across both relations.
            space = live_map.space
            names = space.params + space.in_dims + space.out_dims
            base = {
                "bd_z": 1, "bd_y": 4, "bd_x": 4, "gd_z": 1, "gd_y": 2, "gd_x": 2,
                "bo_z": 0, "bi_z": 0,
            }
            for bo_y, bo_x, a0 in itertools.product((0, 4), (0, 4), range(0, 12, 3)):
                vals = dict(base)
                vals.update(bo_y=bo_y, bo_x=bo_x, bi_y=bo_y // 4, bi_x=bo_x // 4)
                for out_dim in space.out_dims:
                    vals[out_dim] = a0
                probe = {k: v for k, v in vals.items() if k in names}
                if set(probe) != set(names):
                    continue  # maps with extra scalar params: skip probe
                assert disk_map.contains(probe) == live_map.contains(probe), probe

    def test_arg_records_complete(self, saved_model):
        name, app, reloaded = saved_model
        kernel_name = next(iter(app.kernels))
        kernel = app.kernel(kernel_name).kernel
        disk_args = {a.name: a for a in reloaded.get(kernel_name).args}
        for p in kernel.params:
            assert p.name in disk_args
            assert disk_args[p.name].kind == ("array" if p.is_array else "scalar")
