"""End-to-end coherence fuzzing.

Hypothesis drives random *programs* — interleaved launches of several
kernels (including a non-partitionable one that exercises the fallback
path) and host<->device memcopies over shared buffers — and checks that the
multi-GPU runtime stays bitwise identical to the single-GPU reference at
every observation point. This is the broadest invariant the system has:
whatever the interleaving, the virtual-buffer coherence protocol must be
invisible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig

N = 64
GRID, BLOCK = Dim3(8), Dim3(8)


def _shift(name, offset):
    kb = KernelBuilder(name)
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    lo = max(0, -offset)
    hi = min(N, N - offset)
    with kb.if_((gi >= lo) & (gi < hi) & (gi < n)):
        dst[gi + offset,] = src[gi,] + 1.0
    return kb.finish()


def _stencil1d():
    kb = KernelBuilder("st1d")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_((gi > 0) & (gi < n - 1)):
        dst[gi,] = (src[gi - 1,] + src[gi,] + src[gi + 1,]) * 0.25
    return kb.finish()


def _scatter_fallback():
    kb = KernelBuilder("scat")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        dst[(gi * 3) // 3,] = src[gi,] * 0.5  # non-affine: single-GPU fallback
    return kb.finish()


KERNELS = [_shift("shl", -1), _shift("shr", 2), _stencil1d(), _scatter_fallback()]
APP = compile_app(KERNELS)

#: One program step: ("launch", kernel_idx, src_buf, dst_buf) or
#: ("h2d", buf, seed) or ("d2h", buf) — buffers are indices into a pool of 3.
steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("launch"), st.integers(0, len(KERNELS) - 1),
            st.integers(0, 2), st.integers(0, 2),
        ),
        st.tuples(st.just("h2d"), st.integers(0, 2), st.integers(0, 99)),
        st.tuples(st.just("d2h"), st.integers(0, 2), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


def _execute(api, program):
    nbytes = N * 4
    bufs = [api.cudaMalloc(nbytes) for _ in range(3)]
    rng_cache = {}
    # Deterministic initial contents everywhere.
    for i, b in enumerate(bufs):
        api.cudaMemcpy(b, np.full(N, float(i), dtype=np.float32), nbytes, MemcpyKind.HostToDevice)
    observations = []
    for step in program:
        if step[0] == "launch":
            _, ki, si, di = step
            if si == di:
                continue  # aliasing src/dst is undefined even on one GPU
            kernel = KERNELS[ki]
            api.launch(kernel, GRID, BLOCK, [N, bufs[si], bufs[di]])
        elif step[0] == "h2d":
            _, bi, seed = step
            data = rng_cache.setdefault(
                seed, np.random.default_rng(seed).random(N).astype(np.float32)
            )
            api.cudaMemcpy(bufs[bi], data, nbytes, MemcpyKind.HostToDevice)
        else:
            _, bi, _ = step
            out = np.zeros(N, dtype=np.float32)
            api.cudaMemcpy(out, bufs[bi], nbytes, MemcpyKind.DeviceToHost)
            observations.append(out)
    # Final observation of every buffer.
    for b in bufs:
        out = np.zeros(N, dtype=np.float32)
        api.cudaMemcpy(out, b, nbytes, MemcpyKind.DeviceToHost)
        observations.append(out)
    return observations


@settings(max_examples=40, deadline=None)
@given(program=steps, n_gpus=st.sampled_from([2, 3, 4, 8]))
def test_random_programs_bitwise_equal(program, n_gpus):
    ref = _execute(CudaApi(), program)
    api = MultiGpuApi(APP, RuntimeConfig(n_gpus=n_gpus))
    got = _execute(api, program)
    assert len(ref) == len(got)
    for i, (a, b) in enumerate(zip(ref, got)):
        assert np.array_equal(a, b), (i, program, n_gpus)


@settings(max_examples=10, deadline=None)
@given(program=steps)
def test_random_programs_survive_write_audit(program):
    api = MultiGpuApi(APP, RuntimeConfig(n_gpus=3, debug_validate_writes=True))
    _execute(api, program)  # audit raises on any scan/execution divergence
