"""Cross-module integration tests: the full compile-and-run story."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig


def _pipeline_app():
    """A 3-kernel image pipeline: blur -> scale -> threshold count prep."""
    n_sym = None

    def blur():
        kb = KernelBuilder("blur")
        n = kb.scalar("n")
        src = kb.array("src", f32, (n, n))
        dst = kb.array("dst", f32, (n, n))
        gy, gx = kb.global_id("y"), kb.global_id("x")
        with kb.if_((gy < n) & (gx < n)):
            with kb.if_((gy > 0) & (gy < n - 1)):
                dst[gy, gx] = (src[gy - 1, gx] + src[gy, gx] + src[gy + 1, gx]) / 3.0
            with kb.otherwise():
                dst[gy, gx] = src[gy, gx]
        return kb.finish()

    def scale():
        kb = KernelBuilder("scale")
        n = kb.scalar("n")
        factor = kb.scalar("factor", f32)
        buf = kb.array("buf", f32, (n, n))
        out = kb.array("out", f32, (n, n))
        gy, gx = kb.global_id("y"), kb.global_id("x")
        with kb.if_((gy < n) & (gx < n)):
            out[gy, gx] = buf[gy, gx] * factor
        return kb.finish()

    return blur(), scale()


class TestMultiKernelPipeline:
    def test_chained_kernels_across_gpu_counts(self, rng):
        blur, scale = _pipeline_app()
        app = compile_app([blur, scale])
        n = 64
        img = rng.random((n, n), dtype=np.float32)

        def host(api):
            nbytes = n * n * 4
            d_a = api.cudaMalloc(nbytes)
            d_b = api.cudaMalloc(nbytes)
            d_c = api.cudaMalloc(nbytes)
            api.cudaMemcpy(d_a, img, nbytes, MemcpyKind.HostToDevice)
            grid, block = Dim3(4, 4), Dim3(16, 16)
            api.launch(blur, grid, block, [n, d_a, d_b])
            api.launch(scale, grid, block, [n, np.float32(2.0), d_b, d_c])
            api.launch(blur, grid, block, [n, d_c, d_a])
            out = np.zeros((n, n), dtype=np.float32)
            api.cudaMemcpy(out, d_a, nbytes, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        for g in (2, 4, 7):
            got = host(MultiGpuApi(app, RuntimeConfig(n_gpus=g)))
            assert np.array_equal(ref, got), g

    def test_interleaved_memcpys_and_launches(self, rng):
        blur, scale = _pipeline_app()
        app = compile_app([blur, scale])
        n = 32
        nbytes = n * n * 4
        a0 = rng.random((n, n), dtype=np.float32)
        a1 = rng.random((n, n), dtype=np.float32)

        def host(api):
            d_a = api.cudaMalloc(nbytes)
            d_b = api.cudaMalloc(nbytes)
            api.cudaMemcpy(d_a, a0, nbytes, MemcpyKind.HostToDevice)
            api.launch(blur, Dim3(2, 2), Dim3(16, 16), [n, d_a, d_b])
            # Overwrite the input mid-stream and blur again.
            api.cudaMemcpy(d_a, a1, nbytes, MemcpyKind.HostToDevice)
            mid = np.zeros((n, n), dtype=np.float32)
            api.cudaMemcpy(mid, d_b, nbytes, MemcpyKind.DeviceToHost)
            api.launch(blur, Dim3(2, 2), Dim3(16, 16), [n, d_a, d_b])
            out = np.zeros((n, n), dtype=np.float32)
            api.cudaMemcpy(out, d_b, nbytes, MemcpyKind.DeviceToHost)
            return mid, out

        ref_mid, ref_out = host(CudaApi())
        got_mid, got_out = host(MultiGpuApi(app, RuntimeConfig(n_gpus=3)))
        assert np.array_equal(ref_mid, got_mid)
        assert np.array_equal(ref_out, got_out)


class TestTimingIntegration:
    def test_functional_and_timing_together(self, rng):
        """One run can execute functionally AND produce simulated timing."""
        from repro.compiler.costmodel import KernelCostModel
        from repro.sim.engine import SimMachine
        from repro.sim.topology import MachineSpec

        blur, _ = _pipeline_app()
        app = compile_app([blur])
        spec = MachineSpec(n_gpus=4)
        machine = SimMachine(spec)
        api = MultiGpuApi(
            app,
            RuntimeConfig(n_gpus=4),
            machine=machine,
            functional=True,
            kernel_cost=KernelCostModel(spec),
        )
        n = 64
        nbytes = n * n * 4
        img = rng.random((n, n), dtype=np.float32)
        d_a = api.cudaMalloc(nbytes)
        d_b = api.cudaMalloc(nbytes)
        api.cudaMemcpy(d_a, img, nbytes, MemcpyKind.HostToDevice)
        api.launch(blur, Dim3(4, 4), Dim3(16, 16), [n, d_a, d_b])
        out = np.zeros((n, n), dtype=np.float32)
        api.cudaMemcpy(out, d_b, nbytes, MemcpyKind.DeviceToHost)
        api.cudaDeviceSynchronize()

        ref = CudaApi()
        r_a = ref.cudaMalloc(nbytes)
        r_b = ref.cudaMalloc(nbytes)
        ref.cudaMemcpy(r_a, img, nbytes, MemcpyKind.HostToDevice)
        ref.launch(blur, Dim3(4, 4), Dim3(16, 16), [n, r_a, r_b])
        expect = np.zeros((n, n), dtype=np.float32)
        ref.cudaMemcpy(expect, r_b, nbytes, MemcpyKind.DeviceToHost)

        assert np.array_equal(out, expect)
        assert machine.elapsed() > 0
        assert machine.trace.busy_time() > 0

    def test_alpha_beta_gamma_ordering(self):
        """α >= β >= γ by construction (each disables strictly more work)."""
        from repro.harness.experiments import measure_breakdown
        from repro.sim.topology import MachineSpec
        from repro.workloads.common import ProblemConfig

        cfg = ProblemConfig("hotspot", "functional", 512, 12)
        spec = MachineSpec(n_gpus=8)
        row = measure_breakdown(cfg, 8, spec)
        assert row.alpha >= row.beta >= row.gamma > 0
        assert 0 <= row.t_patterns <= 1
        assert abs(row.t_application + row.t_transfers + row.t_patterns - 1.0) < 1e-9


class TestModelDrivenRecompile:
    def test_model_saved_and_reloaded_pipeline(self, tmp_path, stencil_kernel):
        from repro.compiler.model import AppModel

        app = compile_app([stencil_kernel], model_path=tmp_path / "model.json")
        reloaded = AppModel.load(tmp_path / "model.json")
        km = reloaded.get("stencil")
        assert km.strategy().axis == app.kernel("stencil").strategy.axis
        assert km.partitionable
