"""Property tests: the polyhedral analysis vs. instrumented execution.

The strongest soundness check available: generate random (affine) kernels,
execute them with the tracing interpreter to get the *ground-truth* accessed
elements, and compare against what the compiler's access maps + generated
enumerators claim:

* read scans must be a superset of the traced reads (over-approximation is
  allowed, §4), and equal when flagged exact;
* write scans must equal the traced writes exactly (per partition!) —
  anything else would corrupt the trackers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.access_analysis import analyze_kernel
from repro.compiler.enumerators import build_enumerator
from repro.compiler.strategy import PartitionStrategy
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.exec.interpreter import AccessTrace, run_kernel
from repro.cuda.ir.builder import KernelBuilder

N = 48  # array extent
GRID = Dim3(x=6)
BLOCK = Dim3(x=8)


@st.composite
def kernel_specs(draw):
    """Random 1-D kernels: guarded reads at affine offsets, 1:1 write."""
    n_reads = draw(st.integers(1, 4))
    read_offsets = [draw(st.integers(-3, 3)) for _ in range(n_reads)]
    guard_lo = draw(st.integers(0, 8))
    guard_hi = draw(st.integers(N - 8, N))
    write_offset = draw(st.integers(-2, 2))
    branch = draw(st.booleans())
    return (tuple(read_offsets), guard_lo, guard_hi, write_offset, branch)


def _build(spec):
    read_offsets, guard_lo, guard_hi, write_offset, branch = spec
    kb = KernelBuilder("rand")
    src = kb.array("src", f32, (N,))
    dst = kb.array("dst", f32, (N,))
    gi = kb.global_id("x")
    lo_r = max(0, -min(read_offsets), -write_offset)
    hi_r = min(N, N - max(0, max(read_offsets), write_offset))
    guard = (gi >= max(guard_lo, lo_r)) & (gi < min(guard_hi, hi_r))
    with kb.if_(guard):
        acc = kb.let("acc", kb.f32const(0.0))
        for off in read_offsets:
            kb.assign(acc, acc + src[gi + off,])
        if branch:
            with kb.if_(gi < N // 2):
                dst[gi + write_offset,] = acc
            with kb.otherwise():
                dst[gi + write_offset,] = acc * 2.0
        else:
            dst[gi + write_offset,] = acc
    return kb.finish()


def _traced_execution(kernel):
    trace = AccessTrace()
    src = np.ones(N, dtype=np.float32)
    dst = np.zeros(N, dtype=np.float32)
    run_kernel(kernel, GRID, BLOCK, {"src": src, "dst": dst}, trace=trace)
    return trace


def _scanned(info, array, mode, partition):
    enum = build_enumerator(info, array, mode)
    ranges, _ = enum.element_ranges(partition, BLOCK, GRID, {}, (N,))
    out = set()
    for lo, hi in ranges:
        out.update(range(lo, hi))
    return out


@settings(max_examples=40, deadline=None)
@given(kernel_specs())
def test_read_scan_superset_of_truth(spec):
    kernel = _build(spec)
    info = analyze_kernel(kernel)
    trace = _traced_execution(kernel)
    whole = PartitionStrategy(axis="x").partitions(GRID, 1)[0]
    scanned = _scanned(info, "src", "read", whole)
    truth = trace.reads.get("src", set())
    assert scanned >= truth
    if info.reads["src"].exact:
        assert scanned == truth


@settings(max_examples=40, deadline=None)
@given(kernel_specs())
def test_write_scan_exact_per_partition(spec):
    kernel = _build(spec)
    info = analyze_kernel(kernel)
    assert info.partitionable
    # Ground truth per partition: execute the partitioned clone per band.
    from repro.compiler.kernel_partition import partition_kernel
    from repro.cuda.ir.kernel import partition_field_name

    pk = partition_kernel(kernel)
    for n_parts in (1, 2, 3):
        parts = PartitionStrategy(axis="x").partitions(GRID, n_parts)
        for part in parts:
            if part.is_empty:
                continue
            trace = AccessTrace()
            args = {
                "src": np.ones(N, dtype=np.float32),
                "dst": np.zeros(N, dtype=np.float32),
            }
            for f, v in zip(
                ("min_z", "max_z", "min_y", "max_y", "min_x", "max_x"),
                part.as_tuple(),
            ):
                args[partition_field_name("partition", f)] = v
            run_kernel(pk, part.grid(), BLOCK, args, trace=trace)
            truth = trace.writes.get("dst", set())
            scanned = _scanned(info, "dst", "write", part)
            assert scanned == truth, (spec, part)


M = 24  # 2-D array side
GRID2 = Dim3(x=3, y=3)
BLOCK2 = Dim3(x=8, y=8)


@st.composite
def kernel_specs_2d(draw):
    """Random 2-D stencil-like kernels with interior guards."""
    n_reads = draw(st.integers(1, 3))
    offsets = [
        (draw(st.integers(-2, 2)), draw(st.integers(-2, 2))) for _ in range(n_reads)
    ]
    margin_y = draw(st.integers(0, 3))
    margin_x = draw(st.integers(0, 3))
    select_write = draw(st.booleans())
    return (tuple(offsets), margin_y, margin_x, select_write)


def _build_2d(spec):
    offsets, margin_y, margin_x, select_write = spec
    pad = 3  # covers every offset
    kb = KernelBuilder("rand2d")
    src = kb.array("src", f32, (M, M))
    dst = kb.array("dst", f32, (M, M))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    lo_y, hi_y = max(pad, margin_y), M - max(pad, margin_y)
    lo_x, hi_x = max(pad, margin_x), M - max(pad, margin_x)
    guard = (gy >= lo_y) & (gy < hi_y) & (gx >= lo_x) & (gx < hi_x)
    with kb.if_(guard):
        acc = kb.let("acc", kb.f32const(0.0))
        for dy, dx in offsets:
            kb.assign(acc, acc + src[gy + dy, gx + dx])
        if select_write:
            dst[gy, kb.select(gx < M // 2, gx + 0, gx + 0)] = acc
        else:
            dst[gy, gx] = acc
    return kb.finish()


@settings(max_examples=30, deadline=None)
@given(kernel_specs_2d())
def test_2d_scans_match_traced_execution(spec):
    kernel = _build_2d(spec)
    info = analyze_kernel(kernel)
    assert info.partitionable
    trace = AccessTrace()
    src = np.ones((M, M), dtype=np.float32)
    dst = np.zeros((M, M), dtype=np.float32)
    run_kernel(kernel, GRID2, BLOCK2, {"src": src, "dst": dst}, trace=trace)
    whole = PartitionStrategy(axis="y").partitions(GRID2, 1)[0]

    def scanned(array, mode):
        enum = build_enumerator(info, array, mode)
        ranges, _ = enum.element_ranges(whole, BLOCK2, GRID2, {}, (M, M))
        out = set()
        for lo, hi in ranges:
            out.update(range(lo, hi))
        return out

    truth_r = trace.reads.get("src", set())
    truth_w = trace.writes.get("dst", set())
    got_r = scanned("src", "read")
    got_w = scanned("dst", "write")
    assert got_r >= truth_r
    if info.reads["src"].exact:
        assert got_r == truth_r
    assert got_w == truth_w


@settings(max_examples=25, deadline=None)
@given(kernel_specs(), st.integers(2, 5))
def test_union_of_partition_writes_tiles_full_write_set(spec, n_parts):
    kernel = _build(spec)
    info = analyze_kernel(kernel)
    whole = PartitionStrategy(axis="x").partitions(GRID, 1)[0]
    full = _scanned(info, "dst", "write", whole)
    parts = PartitionStrategy(axis="x").partitions(GRID, n_parts)
    union = set()
    for part in parts:
        if not part.is_empty:
            piece = _scanned(info, "dst", "write", part)
            # partitions write disjoint cells (injectivity)
            assert not (union & piece)
            union |= piece
    assert union == full
