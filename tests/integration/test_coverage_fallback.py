"""Launch-time coverage validation: the sound fallback path.

Flat-indexed kernels defer write-scan exactness to launch time. When the
launch configuration breaks the proof (e.g. a guard genuinely cuts inside
rows because the problem size is not block-aligned), the runtime must fall
back to single-GPU execution — and stay correct — rather than partition
unsoundly.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig


def _flat_rowcol_kernel(n_rows, n_cols, row_stride):
    """out[row*row_stride + col] with guards row < n_rows, col < n_cols."""
    kb = KernelBuilder("flat2d")
    out = kb.array("out", f32, (n_rows * row_stride,))
    row, col = kb.global_id("y"), kb.global_id("x")
    with kb.if_((row < n_rows) & (col < n_cols)):
        out[row * row_stride + col,] = row * 1000.0 + col
    return kb.finish()


def _host(api, kernel, total, grid, block):
    nbytes = total * 4
    d = api.cudaMalloc(nbytes)
    api.cudaMemcpy(d, np.zeros(total, dtype=np.float32), nbytes, MemcpyKind.HostToDevice)
    api.launch(kernel, grid, block, [d])
    out = np.zeros(total, dtype=np.float32)
    api.cudaMemcpy(out, d, nbytes, MemcpyKind.DeviceToHost)
    return out


class TestAlignedLaunchPartitions:
    def test_full_rows_partition_normally(self):
        # cols == stride == block-aligned: coverage proof succeeds.
        k = _flat_rowcol_kernel(64, 64, 64)
        app = compile_app([k])
        assert app.kernel("flat2d").model.runtime_coverage
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        ref = _host(CudaApi(), k, 64 * 64, Dim3(4, 4), Dim3(16, 16))
        got = _host(api, k, 64 * 64, Dim3(4, 4), Dim3(16, 16))
        assert np.array_equal(ref, got)
        assert api.stats.fallback_launches == 0
        assert api.stats.partition_launches == 4


class TestBitingGuardFallsBack:
    def test_partial_rows_fall_back_soundly(self):
        # cols (40) < stride (64): rows have written prefixes and unwritten
        # tails -> the flat write set has gaps no interval scan can express;
        # the coverage check must reject and the launch must fall back.
        k = _flat_rowcol_kernel(64, 40, 64)
        app = compile_app([k])
        ck = app.kernel("flat2d")
        assert ck.partitionable  # statically plausible...
        assert ck.model.runtime_coverage  # ...pending launch-time proof
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        ref = _host(CudaApi(), k, 64 * 64, Dim3(4, 4), Dim3(16, 16))
        got = _host(api, k, 64 * 64, Dim3(4, 4), Dim3(16, 16))
        assert np.array_equal(ref, got)  # correct EITHER way
        assert api.stats.fallback_launches == 1  # ...but via the fallback
        assert api.stats.partition_launches == 0

    def test_unaligned_problem_size_falls_back(self):
        # 60 is not a multiple of the 16-wide blocks: the col guard bites
        # into the last block's rows -> reject at launch, fall back.
        k = _flat_rowcol_kernel(60, 60, 60)
        app = compile_app([k])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        grid = Dim3(4, 4)  # 64x64 threads for a 60x60 problem
        ref = _host(CudaApi(), k, 60 * 60, grid, Dim3(16, 16))
        got = _host(api, k, 60 * 60, grid, Dim3(16, 16))
        assert np.array_equal(ref, got)
        assert api.stats.fallback_launches == 1


class TestNbodyStyleUnionValidates:
    def test_strided_field_union_partitions(self):
        # Four interleaved field writes (float4 layout): residues complete,
        # coverage validates, the kernel partitions.
        kb = KernelBuilder("fields")
        n = 256
        out = kb.array("out", f32, (n * 4,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            for c in range(4):
                out[gi * 4 + c,] = float(c)
        k = kb.finish()
        app = compile_app([k])
        assert app.kernel("fields").model.runtime_coverage
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        ref = _host(CudaApi(), k, n * 4, Dim3(2), Dim3(128), )
        got = _host(api, k, n * 4, Dim3(2), Dim3(128))
        assert np.array_equal(ref, got)
        assert api.stats.fallback_launches == 0
