"""Coverage for reporting helpers and the calibration surface."""

import pytest

from repro.harness.calibration import GPU_COUNTS, K80_NODE_SPEC
from repro.harness.report import ascii_series, format_table, to_csv


class TestGpuCounts:
    def test_matches_paper_axis(self):
        assert GPU_COUNTS == (1, 2, 4, 6, 8, 10, 12, 14, 16)


class TestSpecRelationships:
    def test_bandwidth_ordering(self):
        # device memory >> host staging bus >= a single PCIe lane
        assert K80_NODE_SPEC.mem_bw_per_gpu > K80_NODE_SPEC.host_bus_bw
        assert K80_NODE_SPEC.host_bus_bw >= K80_NODE_SPEC.pcie_bw

    def test_staging_is_modeled(self):
        assert not K80_NODE_SPEC.p2p_enabled
        assert K80_NODE_SPEC.staging_factor == 2.0
        assert K80_NODE_SPEC.staging_latency > K80_NODE_SPEC.pcie_latency

    def test_host_costs_are_microseconds(self):
        for name in (
            "issue_overhead",
            "enumerator_call_cost",
            "tracker_op_cost",
            "partition_setup_cost",
            "sync_overhead",
        ):
            assert 0 < getattr(K80_NODE_SPEC, name) < 1e-3, name


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["abcdef", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert set(lines[1]) <= {"-", " "}
        # All rows padded to the same width
        assert len(lines[2]) == len(lines[3]) or lines[3].startswith("b")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestAsciiSeries:
    def test_bars_scale_to_peak(self):
        out = ascii_series({"s": {1: 1.0, 2: 4.0}}, width=8)
        lines = [l for l in out.splitlines() if "#" in l]
        assert lines[1].count("#") == 8
        assert lines[0].count("#") == 2

    def test_multiple_series(self):
        out = ascii_series({"a": {1: 1.0}, "b": {1: 2.0}})
        assert "[a]" in out and "[b]" in out

    def test_empty_series(self):
        assert ascii_series({}) == ""


class TestCsv:
    def test_quoting_free_values(self):
        out = to_csv(["a", "b"], [[1.5, "x"]])
        assert out == "a,b\n1.5,x\n"
