"""The launch-overhead study: profiler coverage, self-checks, invisibility.

``repro bench overhead`` ships with exit-1 self-checks
(:func:`repro.harness.overhead.overhead_failures`) and an identity sweep
(:func:`repro.harness.overhead.identity_sweep`). These tests run a reduced
study for real — asserting the profiler's launch accounting and the cache
arithmetic line up — and then doctor one field at a time to prove every
self-check branch actually fires.
"""

import dataclasses

from repro.harness.overhead import (
    MIN_NOCACHE_REDUCTION,
    MIN_WARM_REDUCTION,
    OverheadPoint,
    identity_sweep,
    launch_overhead_study,
    overhead_failures,
)


def _small_study():
    return launch_overhead_study(
        workloads=["hotspot"], n_gpus=4, sizes={"hotspot": (256, 8)}
    )


class TestStudy:
    def test_profiler_accounting(self):
        (point,) = _small_study()
        assert point.workload == "hotspot"
        # One fingerprint for the whole ping-pong loop: the first launch
        # misses (cold), the remaining seven hit (warm).
        assert point.cold_launches == 1
        assert point.warm_launches == 7
        assert point.counters["plan_cache_misses"] == point.cold_launches
        assert point.counters["plan_cache_hits"] == point.warm_launches
        assert point.counters["plan_cache_evictions"] == 0
        assert point.counters["enumerator_specialized"] > 0
        assert point.counters["enumerator_fallback"] == 0
        # A cache hit never rebuilds the skeleton.
        assert point.warm_us["skeleton"] == 0.0
        for stage in ("fingerprint", "skeleton", "residual", "submit", "total"):
            assert stage in point.cold_us and stage in point.warm_us

    def test_real_study_passes_own_checks(self):
        points = _small_study()
        assert overhead_failures(points) == []

    def test_as_dict_round_trip(self):
        (point,) = _small_study()
        row = point.as_dict()
        assert row["warm_reduction"] == point.warm_reduction
        assert row["nocache_reduction"] == point.nocache_reduction
        assert row["counters"] == point.counters


class TestSelfChecks:
    """Each failure branch must fire on a point doctored to violate it."""

    def _good_point(self):
        stages = {"fingerprint": 1.0, "skeleton": 0.0, "residual": 2.0, "submit": 3.0}
        return OverheadPoint(
            workload="hotspot",
            size=256,
            iterations=8,
            cold_launches=1,
            warm_launches=7,
            cold_us={**stages, "skeleton": 90.0, "total": 100.0},
            warm_us={**stages, "total": 6.0},
            nocache_us={**stages, "total": 10.0},
            counters={
                "plan_cache_hits": 7,
                "plan_cache_misses": 1,
                "plan_cache_evictions": 0,
                "enumerator_specialized": 8,
                "enumerator_fallback": 0,
            },
        )

    def test_good_point_passes(self):
        assert overhead_failures([self._good_point()]) == []

    def test_empty_study_fails(self):
        assert overhead_failures([]) == ["overhead study produced no points"]

    def test_missing_path_coverage(self):
        p = dataclasses.replace(self._good_point(), warm_launches=0)
        (failure,) = overhead_failures([p])
        assert failure.startswith("coverage:")

    def test_headline_reduction(self):
        p = self._good_point()
        slow = dict(p.warm_us)
        slow["total"] = p.cold_us["total"] / (MIN_WARM_REDUCTION - 1.0)
        (failure, *rest) = overhead_failures([dataclasses.replace(p, warm_us=slow)])
        assert failure.startswith("headline:")

    def test_nocache_baseline_reduction(self):
        p = self._good_point()
        fast = dict(p.nocache_us)
        fast["total"] = p.warm_us["total"] * (MIN_NOCACHE_REDUCTION - 0.1)
        (failure,) = overhead_failures([dataclasses.replace(p, nocache_us=fast)])
        assert failure.startswith("baseline:")

    def test_cache_arithmetic(self):
        p = self._good_point()
        bad = {**p.counters, "plan_cache_hits": 6}
        (failure,) = overhead_failures([dataclasses.replace(p, counters=bad)])
        assert failure.startswith("arithmetic:")

    def test_evictions(self):
        p = self._good_point()
        bad = {**p.counters, "plan_cache_evictions": 2}
        (failure,) = overhead_failures([dataclasses.replace(p, counters=bad)])
        assert failure.startswith("capacity:")

    def test_vectorized_backend_engaged(self):
        p = self._good_point()
        bad = {**p.counters, "enumerator_specialized": 0}
        (failure,) = overhead_failures([dataclasses.replace(p, counters=bad)])
        assert failure.startswith("backend:")

    def test_warm_skeleton_stage_zero(self):
        p = self._good_point()
        slow = {**p.warm_us, "skeleton": 0.5}
        (failure,) = overhead_failures([dataclasses.replace(p, warm_us=slow)])
        assert failure.startswith("staging:")


class TestIdentitySweep:
    def test_flat_subset_is_clean(self):
        assert (
            identity_sweep(
                workload="hotspot",
                windows=(1,),
                schedules=("sequential",),
                cluster_shape=None,
            )
            == []
        )

    def test_rejects_mismatched_cluster_shape(self):
        import pytest

        with pytest.raises(ValueError, match="must total n_gpus"):
            identity_sweep(n_gpus=4, cluster_shape=(3, 2))
