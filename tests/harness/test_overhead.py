"""The launch-overhead study: profiler coverage, self-checks, invisibility.

``repro bench overhead`` ships with exit-1 self-checks
(:func:`repro.harness.overhead.overhead_failures`), an identity sweep
(:func:`repro.harness.overhead.identity_sweep`) and an adversarial mutation
sweep (:func:`repro.harness.overhead.mutation_identity_failures`). These
tests run a reduced study for real — asserting the profiler's launch
accounting and both caches' arithmetic line up — and then doctor one field
at a time to prove every self-check branch actually fires.
"""

import dataclasses

from repro.harness.overhead import (
    MIN_NOCACHE_REDUCTION,
    MIN_REPLAY_REDUCTION,
    MIN_WARM_REDUCTION,
    OverheadPoint,
    identity_sweep,
    launch_overhead_study,
    mutation_identity_failures,
    overhead_failures,
)


def _small_study():
    return launch_overhead_study(
        workloads=["hotspot"], n_gpus=4, sizes={"hotspot": (256, 8)}
    )


class TestStudy:
    def test_profiler_accounting(self):
        (point,) = _small_study()
        assert point.workload == "hotspot"
        # One fingerprint for the whole ping-pong loop: the first launch
        # misses (cold), and the converged coherence state makes the
        # remaining seven replay the memoized residual.
        assert point.cold_launches == 1
        assert point.warm_launches == 0
        assert point.replay_launches == 7
        assert point.counters["plan_cache_misses"] == point.cold_launches
        assert point.counters["plan_cache_hits"] == 7
        assert point.counters["plan_cache_evictions"] == 0
        assert point.counters["residual_cache_misses"] == 1
        assert point.counters["residual_cache_hits"] == 7
        assert point.counters["residual_cache_evictions"] == 0
        assert point.counters["enumerator_specialized"] > 0
        assert point.counters["enumerator_fallback"] == 0
        # A cache hit never rebuilds the skeleton, on either hit path.
        assert point.warm_us["skeleton"] == 0.0
        assert point.replay_us["skeleton"] == 0.0
        for stage in ("fingerprint", "skeleton", "residual", "submit", "total"):
            assert stage in point.cold_us and stage in point.warm_us
            assert stage in point.replay_us and stage in point.nocache_us

    def test_real_study_passes_own_checks(self):
        points = _small_study()
        assert overhead_failures(points) == []

    def test_as_dict_round_trip(self):
        (point,) = _small_study()
        row = point.as_dict()
        assert row["warm_reduction"] == point.warm_reduction
        assert row["nocache_reduction"] == point.nocache_reduction
        assert row["replay_residual_reduction"] == point.replay_residual_reduction
        assert row["counters"] == point.counters


class TestSelfChecks:
    """Each failure branch must fire on a point doctored to violate it."""

    def _good_point(self):
        stages = {"fingerprint": 1.0, "skeleton": 0.0, "residual": 2.0, "submit": 3.0}
        return OverheadPoint(
            workload="hotspot",
            size=256,
            iterations=8,
            cold_launches=1,
            warm_launches=2,
            replay_launches=5,
            cold_us={**stages, "skeleton": 90.0, "total": 100.0},
            warm_us={**stages, "total": 6.0},
            replay_us={**stages, "residual": 0.5, "total": 4.5},
            nocache_us={**stages, "skeleton": 20.0, "total": 26.0},
            counters={
                "plan_cache_hits": 7,
                "plan_cache_misses": 1,
                "plan_cache_evictions": 0,
                "residual_cache_hits": 5,
                "residual_cache_misses": 3,
                "residual_cache_evictions": 0,
                "enumerator_specialized": 8,
                "enumerator_fallback": 0,
            },
        )

    def test_good_point_passes(self):
        assert overhead_failures([self._good_point()]) == []

    def test_empty_study_fails(self):
        assert overhead_failures([]) == ["overhead study produced no points"]

    def test_missing_path_coverage(self):
        p = dataclasses.replace(
            self._good_point(), warm_launches=0, replay_launches=0
        )
        (failure,) = overhead_failures([p])
        assert failure.startswith("coverage:")

    def test_headline_reduction(self):
        p = self._good_point()
        slow = dict(p.warm_us)
        slow["total"] = p.cold_us["total"] / (MIN_WARM_REDUCTION - 1.0)
        (failure, *rest) = overhead_failures([dataclasses.replace(p, warm_us=slow)])
        assert failure.startswith("headline:")

    def test_nocache_baseline_reduction(self):
        p = self._good_point()
        fast = dict(p.nocache_us)
        fast["total"] = p.warm_us["total"] * (MIN_NOCACHE_REDUCTION - 0.1)
        (failure,) = overhead_failures([dataclasses.replace(p, nocache_us=fast)])
        assert failure.startswith("baseline:")

    def test_replay_must_engage_on_hotspot(self):
        p = self._good_point()
        bad_counters = {
            **p.counters, "residual_cache_hits": 0, "residual_cache_misses": 8
        }
        p = dataclasses.replace(
            p, replay_launches=0, replay_us={}, warm_launches=7,
            counters=bad_counters,
        )
        (failure,) = overhead_failures([p])
        assert failure.startswith("replay:")
        assert "never hit" in failure

    def test_replay_residual_reduction(self):
        p = self._good_point()
        slow = dict(p.replay_us)
        slow["residual"] = p.warm_us["residual"] / (MIN_REPLAY_REDUCTION - 1.0)
        (failure,) = overhead_failures([dataclasses.replace(p, replay_us=slow)])
        assert failure.startswith("replay:")
        assert "residual stage" in failure

    def test_plan_cache_arithmetic(self):
        p = self._good_point()
        bad = {**p.counters, "plan_cache_hits": 6}
        (failure,) = overhead_failures([dataclasses.replace(p, counters=bad)])
        assert failure.startswith("arithmetic:")
        assert "plan cache" in failure

    def test_residual_cache_arithmetic(self):
        p = self._good_point()
        bad = {**p.counters, "residual_cache_hits": 4}
        (failure,) = overhead_failures([dataclasses.replace(p, counters=bad)])
        assert failure.startswith("arithmetic:")
        assert "residual cache" in failure

    def test_evictions(self):
        p = self._good_point()
        for counter in ("plan_cache_evictions", "residual_cache_evictions"):
            bad = {**p.counters, counter: 2}
            (failure,) = overhead_failures([dataclasses.replace(p, counters=bad)])
            assert failure.startswith("capacity:")

    def test_vectorized_backend_engaged(self):
        p = self._good_point()
        bad = {**p.counters, "enumerator_specialized": 0}
        (failure,) = overhead_failures([dataclasses.replace(p, counters=bad)])
        assert failure.startswith("backend:")

    def test_warm_skeleton_stage_zero(self):
        p = self._good_point()
        for column in ("warm_us", "replay_us"):
            slow = {**getattr(p, column), "skeleton": 0.5}
            (failure,) = overhead_failures([dataclasses.replace(p, **{column: slow})])
            assert failure.startswith("staging:")


class TestIdentitySweep:
    def test_flat_subset_is_clean(self):
        assert (
            identity_sweep(
                workload="hotspot",
                windows=(1,),
                schedules=("sequential",),
                cluster_shape=None,
            )
            == []
        )

    def test_rejects_mismatched_cluster_shape(self):
        import pytest

        with pytest.raises(ValueError, match="must total n_gpus"):
            identity_sweep(n_gpus=4, cluster_shape=(3, 2))


class TestMutationSweep:
    def test_adversarial_interleavings_are_clean(self):
        assert mutation_identity_failures(size=96, iterations=10) == []
