"""Tests of the experiment harness (scaled-down timing runs)."""

import pytest

from repro.harness.calibration import GPU_COUNTS, K80_NODE_SPEC
from repro.harness.experiments import (
    BreakdownRow,
    SpeedupPoint,
    compile_time_ratio,
    figure6,
    measure_breakdown,
    reference_time,
    run_timed,
    single_gpu_overhead,
    table1_rows,
)
from repro.harness.report import ascii_series, format_table, to_csv
from repro.workloads.common import TABLE1, ProblemConfig

# Scaled-down configs keep the timing tests fast; shapes still hold.
SMALL_HOTSPOT = ProblemConfig("hotspot", "functional", 2048, 40)
SMALL_NBODY = ProblemConfig("nbody", "functional", 32768, 6)
SMALL_MATMUL = ProblemConfig("matmul", "functional", 1024, 1)


class TestTimingRuns:
    def test_reference_time_positive_and_deterministic(self):
        a = reference_time(SMALL_HOTSPOT)
        b = reference_time(SMALL_HOTSPOT)
        assert a > 0 and a == b

    def test_speedup_multi_gpu(self):
        ref = reference_time(SMALL_NBODY)
        t4, api = run_timed(SMALL_NBODY, 4)
        assert api.stats.fallback_launches == 0
        assert ref / t4 > 2.0  # real scaling at 4 GPUs

    def test_speedup_monotone_small_counts(self):
        ref = reference_time(SMALL_NBODY)
        t1, _ = run_timed(SMALL_NBODY, 1)
        t2, _ = run_timed(SMALL_NBODY, 2)
        assert t1 > t2
        assert abs(t1 - ref) / ref < 0.2  # 1-GPU overhead is small

    def test_extrapolation_consistency(self):
        """Extrapolated long run == direct simulation of the same count."""
        from repro.harness import experiments as ex

        direct_cfg = ProblemConfig("hotspot", "functional", 1024, ex._EXTRAPOLATE_M1 + 9)
        t_direct, _ = ex.run_timed(
            ProblemConfig("hotspot", "functional", 1024, ex._EXTRAPOLATE_M1), 4
        )
        t_extra, _ = ex.run_timed(direct_cfg, 4)
        # Manually simulate the direct count by monkeypatching the cap.
        saved = ex._EXTRAPOLATE_M1, ex._EXTRAPOLATE_M2
        try:
            ex._EXTRAPOLATE_M1 = direct_cfg.iterations + 1  # force direct run
            t_true, _ = ex.run_timed(direct_cfg, 4)
        finally:
            ex._EXTRAPOLATE_M1, ex._EXTRAPOLATE_M2 = saved
        assert t_extra == pytest.approx(t_true, rel=1e-6)


class TestBreakdown:
    def test_alpha_beta_gamma_shares_sum_to_one(self):
        row = measure_breakdown(SMALL_HOTSPOT, 4)
        assert row.alpha >= row.beta >= row.gamma
        total = row.t_application + row.t_transfers + row.t_patterns
        assert total == pytest.approx(1.0)

    def test_transfer_share_grows_with_gpus(self):
        r2 = measure_breakdown(SMALL_MATMUL, 2)
        r8 = measure_breakdown(SMALL_MATMUL, 8)
        assert r8.t_transfers > r2.t_transfers

    def test_patterns_small(self):
        row = measure_breakdown(SMALL_NBODY, 8)
        assert row.t_patterns < 0.15


class TestHeadlineExperiments:
    def test_figure6_point_structure(self):
        pts = figure6(workloads=["nbody"], sizes=["functional"] if False else ["small"],
                      gpu_counts=(1, 2), spec=K80_NODE_SPEC)
        assert len(pts) == 2
        assert all(isinstance(p, SpeedupPoint) for p in pts)
        assert pts[0].n_gpus == 1 and pts[0].speedup == pytest.approx(1.0, rel=0.05)

    def test_single_gpu_overhead_small(self):
        rows = single_gpu_overhead(sizes=("small",))
        assert len(rows) == 3
        for cfg, frac in rows:
            assert -0.02 < frac < 0.10, (cfg, frac)

    def test_compile_time_ratio_in_band(self):
        ratios = compile_time_ratio(repeats=2)
        assert set(ratios) == {"hotspot", "nbody", "matmul"}
        for name, r in ratios.items():
            assert 1.05 < r < 3.0, (name, r)  # paper band: 1.9x - 2.2x (wall-clock; wide band for CI noise)

    def test_table1_rows(self):
        rows = table1_rows()
        assert ("hotspot", 8192, 16384, 36864, "1500") in rows
        assert ("matmul", 8192, 16384, 30656, "N/A") in rows


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in out and "bb" in out and "2.5" in out

    def test_ascii_series(self):
        out = ascii_series({"s": {1: 1.0, 2: 2.0}}, width=10, y_label="x")
        assert "[s]" in out and "#" in out

    def test_to_csv(self):
        out = to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert out.splitlines() == ["a,b", "1,2", "3,4"]
