"""Tests for the exception hierarchy and package surface."""

import pytest

import repro.errors as E


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in E.__all__:
            exc = getattr(E, name)
            if not isinstance(exc, type):
                continue  # helper functions (exit_code_for, format_with_code)
            assert issubclass(exc, E.ReproError), name

    def test_analysis_family(self):
        assert issubclass(E.LintError, E.AnalysisError)

    def test_polyhedral_family(self):
        for exc in (E.NonAffineError, E.SpaceMismatchError, E.ParseError):
            assert issubclass(exc, E.PolyhedralError)

    def test_partitioning_family(self):
        assert issubclass(E.InjectivityError, E.PartitioningError)

    def test_runtime_family(self):
        for exc in (E.UnsupportedMemcpyError, E.TrackerError):
            assert issubclass(exc, E.RuntimeApiError)

    def test_simulation_family(self):
        assert issubclass(E.CalibrationError, E.SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(E.ReproError):
            raise E.InjectivityError("x")


class TestPackageSurface:
    def test_poly_exports(self):
        import repro.poly as P

        for name in P.__all__:
            assert hasattr(P, name), name

    def test_cuda_exports(self):
        import repro.cuda as C

        for name in C.__all__:
            assert hasattr(C, name), name

    def test_compiler_exports(self):
        import repro.compiler as K

        for name in K.__all__:
            assert hasattr(K, name), name

    def test_runtime_exports(self):
        import repro.runtime as R

        for name in R.__all__:
            assert hasattr(R, name), name

    def test_paper_expectations_module(self):
        from repro.harness import paper

        assert paper.MAX_SPEEDUP["nbody"] == 12.4
        assert paper.COMPILE_TIME_RATIO == (1.9, 2.2)
        assert 0 < paper.NON_TRANSFER_OVERHEAD_MAX < 0.1
