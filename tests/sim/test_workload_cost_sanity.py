"""Sanity checks tying the cost model to the workloads' roofline behaviour."""

import pytest

from repro.compiler.costmodel import KernelCostModel
from repro.cuda.dim3 import Dim3
from repro.harness.calibration import K80_NODE_SPEC
from repro.workloads.hotspot import BLOCK as HS_BLOCK, build_hotspot_kernel
from repro.workloads.matmul import BLOCK as MM_BLOCK, build_matmul_kernel
from repro.workloads.nbody import BLOCK as NB_BLOCK, build_nbody_kernel

MODEL = KernelCostModel(K80_NODE_SPEC)


def test_hotspot_is_memory_bound():
    n = 1024
    cost = MODEL.thread_cost(build_hotspot_kernel(n), {})
    flop_time = cost.flops / K80_NODE_SPEC.flops_per_gpu
    mem_time = cost.bytes / K80_NODE_SPEC.mem_bw_per_gpu
    assert mem_time > flop_time  # stencils stream memory


def test_nbody_is_compute_bound():
    n = 4096
    cost = MODEL.thread_cost(build_nbody_kernel(n), {})
    flop_time = cost.flops / K80_NODE_SPEC.flops_per_gpu
    mem_time = cost.bytes / K80_NODE_SPEC.mem_bw_per_gpu
    assert flop_time > mem_time  # O(n) flops per thread, cached reads


def test_matmul_is_compute_bound_with_reuse():
    n = 1024
    cost = MODEL.thread_cost(build_matmul_kernel(n), {})
    flop_time = cost.flops / K80_NODE_SPEC.flops_per_gpu
    mem_time = cost.bytes / K80_NODE_SPEC.mem_bw_per_gpu
    assert flop_time > mem_time  # tiled kernels reuse loads


def test_kernel_time_scales_with_problem():
    t_small = MODEL(build_matmul_kernel(256), 16 * 16, MM_BLOCK, {})
    t_big = MODEL(build_matmul_kernel(512), 32 * 32, MM_BLOCK, {})
    # 4x threads x 2x k-loop = ~8x work
    assert 6 < t_big / t_small < 10


def test_single_gpu_times_plausible():
    """Medium hotspot: ~tens of ms per iteration on a K80 (32 GB streamed
    at ~170 GB/s); medium matmul: seconds total."""
    n = 16384
    blocks = (n // 16) ** 2
    t_iter = MODEL(build_hotspot_kernel(n), blocks, HS_BLOCK, {})
    assert 0.01 < t_iter < 0.2
    t_mm = MODEL(build_matmul_kernel(n), blocks, MM_BLOCK, {})
    assert 1.0 < t_mm < 60.0
