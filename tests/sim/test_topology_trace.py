"""Unit tests for machine specs and traces."""

import pytest

from repro.constants import HOST
from repro.errors import CalibrationError
from repro.sim.topology import MachineSpec
from repro.sim.trace import Category, Interval, Trace


class TestMachineSpec:
    def test_defaults_valid(self):
        spec = MachineSpec()
        assert spec.n_gpus == 16

    def test_with_gpus(self):
        spec = MachineSpec().with_gpus(4)
        assert spec.n_gpus == 4
        # other fields preserved
        assert spec.pcie_bw == MachineSpec().pcie_bw

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_gpus": 0},
            {"flops_per_gpu": 0},
            {"pcie_bw": -1},
            {"staging_factor": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(CalibrationError):
            MachineSpec(**kwargs)

    def test_transfer_time_staging(self):
        spec = MachineSpec(pcie_bw=1e9, pcie_latency=0.0, staging_factor=2.0, p2p_enabled=False)
        assert spec.transfer_time(0, 1, int(1e9)) == pytest.approx(2.0)
        assert spec.transfer_time(HOST, 1, int(1e9)) == pytest.approx(1.0)
        assert spec.transfer_time(1, HOST, int(1e9)) == pytest.approx(1.0)

    def test_transfer_time_latency_floor(self):
        spec = MachineSpec(pcie_latency=1e-5)
        assert spec.transfer_time(HOST, 0, 1) >= 1e-5


class TestTrace:
    def test_record_and_aggregate(self):
        t = Trace()
        t.record("gpu0", 0.0, 1.0, Category.APPLICATION)
        t.record("gpu0", 1.0, 1.5, Category.TRANSFERS)
        t.record("host", 0.0, 0.25, Category.PATTERNS)
        assert len(t) == 3
        assert t.busy_time() == pytest.approx(1.75)
        assert t.busy_time(Category.APPLICATION) == pytest.approx(1.0)
        assert t.by_resource()["gpu0"] == pytest.approx(1.5)

    def test_backwards_interval_rejected(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.record("gpu0", 2.0, 1.0, Category.APPLICATION)

    def test_interval_duration(self):
        iv = Interval("r", 1.0, 3.5, Category.HOST)
        assert iv.duration == pytest.approx(2.5)


class TestLaunchAttribution:
    """Per-launch transfer exposure: interleave-safe, exactly partitioning.

    The pipelined executor issues copies from several launches back to
    back, so attribution rides on each interval's ``launch`` field rather
    than on trace position. The four (tier, hidden/exposed) buckets —
    summed over every launch key — must reproduce
    ``busy_time(TRANSFERS)`` to the bit, and a transfer second counts as
    hidden exactly when some kernel runs concurrently.
    """

    def _interleaved_trace(self) -> Trace:
        t = Trace()
        # Kernels (the compute union): [1, 3) and [5, 6).
        t.record("gpu0", 1.0, 3.0, Category.APPLICATION, launch=0)
        t.record("gpu1", 5.0, 6.0, Category.APPLICATION, launch=1)
        # Launch 0's copies interleaved with launch 1's: an intra copy
        # half inside the compute union, and a net copy fully exposed.
        t.record("pcie0", 0.0, 2.0, Category.TRANSFERS, launch=0)
        t.record("net", 3.0, 5.0, Category.TRANSFERS, launch=1)
        t.record("pcie1", 2.0, 4.0, Category.TRANSFERS, launch=1)
        t.record("net", 5.0, 5.5, Category.TRANSFERS, launch=0)
        # A copy that belongs to no launch (e.g. a user memcpy).
        t.record("pcie0", 6.0, 7.0, Category.TRANSFERS)
        # Non-transfer noise must not leak into the attribution.
        t.record("host", 0.0, 10.0, Category.PATTERNS, launch=0)
        return t

    def test_buckets_partition_transfer_busy_time(self):
        t = self._interleaved_trace()
        by_launch = t.transfer_exposure_by_launch()
        total = sum(
            per[tier][kind]
            for per in by_launch.values()
            for tier in ("intra", "inter")
            for kind in ("hidden", "exposed")
        )
        assert total == pytest.approx(t.busy_time(Category.TRANSFERS))

    def test_attribution_is_by_originating_launch(self):
        by_launch = self._interleaved_trace().transfer_exposure_by_launch()
        assert set(by_launch) == {0, 1, None}
        # Launch 0: pcie [0,2) overlaps compute [1,3) for 1s; net [5,5.5)
        # overlaps compute [5,6) entirely.
        assert by_launch[0]["intra"] == {
            "hidden": pytest.approx(1.0),
            "exposed": pytest.approx(1.0),
        }
        assert by_launch[0]["inter"] == {
            "hidden": pytest.approx(0.5),
            "exposed": pytest.approx(0.0),
        }
        # Launch 1: net [3,5) is fully exposed; pcie [2,4) overlaps [1,3)
        # for 1s. The compute union is global — launch 1's copies hide
        # behind launch 0's kernels, which is the whole point of fusing.
        assert by_launch[1]["inter"] == {
            "hidden": pytest.approx(0.0),
            "exposed": pytest.approx(2.0),
        }
        assert by_launch[1]["intra"] == {
            "hidden": pytest.approx(1.0),
            "exposed": pytest.approx(1.0),
        }
        # The anonymous memcpy lands under None, not under any launch.
        assert by_launch[None]["intra"]["exposed"] == pytest.approx(1.0)

    def test_by_tier_sums_the_per_launch_attribution(self):
        t = self._interleaved_trace()
        tiers = t.transfer_exposure_by_tier()
        assert tiers["inter"] == {
            "hidden": pytest.approx(0.5),
            "exposed": pytest.approx(2.0),
        }
        assert tiers["intra"] == {
            "hidden": pytest.approx(2.0),
            "exposed": pytest.approx(3.0),
        }
        flat = t.transfer_exposure()
        assert flat["hidden"] == pytest.approx(2.5)
        assert flat["exposed"] == pytest.approx(5.0)

    def test_empty_trace(self):
        t = Trace()
        assert t.transfer_exposure_by_launch() == {}
        assert t.transfer_exposure_by_tier() == {
            "intra": {"hidden": 0.0, "exposed": 0.0},
            "inter": {"hidden": 0.0, "exposed": 0.0},
        }
