"""Unit tests for machine specs and traces."""

import pytest

from repro.constants import HOST
from repro.errors import CalibrationError
from repro.sim.topology import MachineSpec
from repro.sim.trace import Category, Interval, Trace


class TestMachineSpec:
    def test_defaults_valid(self):
        spec = MachineSpec()
        assert spec.n_gpus == 16

    def test_with_gpus(self):
        spec = MachineSpec().with_gpus(4)
        assert spec.n_gpus == 4
        # other fields preserved
        assert spec.pcie_bw == MachineSpec().pcie_bw

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_gpus": 0},
            {"flops_per_gpu": 0},
            {"pcie_bw": -1},
            {"staging_factor": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(CalibrationError):
            MachineSpec(**kwargs)

    def test_transfer_time_staging(self):
        spec = MachineSpec(pcie_bw=1e9, pcie_latency=0.0, staging_factor=2.0, p2p_enabled=False)
        assert spec.transfer_time(0, 1, int(1e9)) == pytest.approx(2.0)
        assert spec.transfer_time(HOST, 1, int(1e9)) == pytest.approx(1.0)
        assert spec.transfer_time(1, HOST, int(1e9)) == pytest.approx(1.0)

    def test_transfer_time_latency_floor(self):
        spec = MachineSpec(pcie_latency=1e-5)
        assert spec.transfer_time(HOST, 0, 1) >= 1e-5


class TestTrace:
    def test_record_and_aggregate(self):
        t = Trace()
        t.record("gpu0", 0.0, 1.0, Category.APPLICATION)
        t.record("gpu0", 1.0, 1.5, Category.TRANSFERS)
        t.record("host", 0.0, 0.25, Category.PATTERNS)
        assert len(t) == 3
        assert t.busy_time() == pytest.approx(1.75)
        assert t.busy_time(Category.APPLICATION) == pytest.approx(1.0)
        assert t.by_resource()["gpu0"] == pytest.approx(1.5)

    def test_backwards_interval_rejected(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.record("gpu0", 2.0, 1.0, Category.APPLICATION)

    def test_interval_duration(self):
        iv = Interval("r", 1.0, 3.5, Category.HOST)
        assert iv.duration == pytest.approx(2.5)
