"""Unit tests for the timing engine (scheduler, lanes, staging bus)."""

import pytest

from repro.constants import HOST
from repro.errors import SimulationError
from repro.sim.engine import SimMachine, _Lane
from repro.sim.topology import MachineSpec
from repro.sim.trace import Category

SPEC = MachineSpec(
    n_gpus=4,
    pcie_bw=1e9,
    host_bus_bw=2e9,
    pcie_latency=0.0,
    staging_latency=0.0,
    issue_overhead=0.0,
    sync_overhead=0.0,
    staging_factor=2.0,
    p2p_enabled=False,
)


class TestLane:
    def test_next_fit_empty(self):
        lane = _Lane()
        assert lane.next_fit(3.0, 1.0) == 3.0

    def test_backfill_into_gap(self):
        lane = _Lane()
        lane.reserve(0.0, 1.0)
        lane.reserve(5.0, 6.0)
        assert lane.next_fit(0.0, 2.0) == 1.0  # gap [1, 5)
        assert lane.next_fit(0.0, 5.0) == 6.0  # too big for the gap

    def test_avail(self):
        lane = _Lane()
        assert lane.avail == 0.0
        lane.reserve(2.0, 4.0)
        assert lane.avail == 4.0


class TestKernels:
    def test_kernels_on_different_devices_overlap(self):
        m = SimMachine(SPEC)
        m.launch_kernel(0, 1.0)
        m.launch_kernel(1, 1.0)
        m.synchronize()
        assert m.now == pytest.approx(1.0)

    def test_kernels_on_same_device_serialize(self):
        m = SimMachine(SPEC)
        m.launch_kernel(0, 1.0)
        m.launch_kernel(0, 1.0)
        m.synchronize()
        assert m.now == pytest.approx(2.0)

    def test_bad_device_rejected(self):
        m = SimMachine(SPEC)
        with pytest.raises(SimulationError):
            m.launch_kernel(9, 1.0)
        with pytest.raises(SimulationError):
            m.launch_kernel(0, -1.0)


class TestTransfers:
    def test_h2d_duration(self):
        m = SimMachine(SPEC)
        m.transfer(HOST, 0, int(1e9), synchronous=True)
        assert m.now == pytest.approx(1.0)

    def test_d2d_staging_inflation(self):
        m = SimMachine(SPEC)
        m.transfer(0, 1, int(1e9), synchronous=True)
        # 2x staging over a 1 GB/s lane.
        assert m.now == pytest.approx(2.0)

    def test_p2p_avoids_staging(self):
        spec = MachineSpec(
            n_gpus=2, pcie_bw=1e9, p2p_enabled=True, pcie_latency=0.0,
            issue_overhead=0.0, sync_overhead=0.0, host_bus_bw=1e12,
        )
        m = SimMachine(spec)
        m.transfer(0, 1, int(1e9), synchronous=True)
        assert m.now == pytest.approx(1.0)

    def test_disjoint_pairs_overlap(self):
        m = SimMachine(SPEC)
        m.transfer(0, 1, int(1e9))
        m.transfer(2, 3, int(1e9))
        m.synchronize()
        # Two staged 2s copies; the 2 GB/s bus carries 2 GB each => the bus
        # serializes them: 2 + 2 = 4s? No: bus time per copy = 2GB/2GBps = 1s
        # but lane time is 2s; the bus slots can overlap lanes differently.
        # Lane-bound: both lanes busy 2s in parallel; bus: 1s + 1s.
        assert m.elapsed() <= 4.0 + 1e-9
        assert m.elapsed() >= 2.0

    def test_same_lane_serializes(self):
        m = SimMachine(SPEC)
        m.transfer(HOST, 0, int(1e9))
        m.transfer(HOST, 0, int(1e9))
        m.synchronize()
        assert m.now >= 2.0

    def test_backfill_no_lane_cascade(self):
        m = SimMachine(SPEC)
        # Staged big copy: lanes 0,1 busy 4s, bus busy 2s. An independent
        # pair must wait only for the *bus* (shared), not for lanes 0/1 —
        # the naive "max of availability times" scheduler would cascade to 4s.
        m.transfer(0, 1, int(2e9))
        m.transfer(2, 3, int(1e8))
        t_end = min(iv.end for iv in m.trace.intervals if iv.resource == "lane2")
        assert t_end < 2.5  # bus frees at 2.0; 0.2s lane time after that

    def test_transfer_waits_for_producing_kernel(self):
        m = SimMachine(SPEC)
        m.launch_kernel(0, 5.0)
        m.transfer(0, 1, int(1e8))
        end = max(iv.end for iv in m.trace.intervals if iv.category is Category.TRANSFERS)
        assert end >= 5.0

    def test_zero_bytes_is_free(self):
        m = SimMachine(SPEC)
        m.transfer(0, 1, 0, synchronous=True)
        assert m.now == 0.0

    def test_negative_bytes_rejected(self):
        m = SimMachine(SPEC)
        with pytest.raises(SimulationError):
            m.transfer(0, 1, -1)


class TestHostAndSync:
    def test_host_compute_advances_clock(self):
        m = SimMachine(SPEC)
        m.host_compute(0.5, Category.PATTERNS)
        assert m.now == pytest.approx(0.5)
        assert m.trace.busy_time(Category.PATTERNS) == pytest.approx(0.5)

    def test_sync_specific_devices(self):
        m = SimMachine(SPEC)
        m.launch_kernel(0, 1.0)
        m.launch_kernel(1, 3.0)
        m.synchronize([0])
        assert m.now == pytest.approx(1.0)
        m.synchronize()
        assert m.now == pytest.approx(3.0)

    def test_wait_device(self):
        m = SimMachine(SPEC)
        m.launch_kernel(2, 2.0)
        m.wait_device(2)
        assert m.now == pytest.approx(2.0)

    def test_elapsed_includes_all_resources(self):
        m = SimMachine(SPEC)
        m.transfer(HOST, 3, int(1e9))
        assert m.now == 0.0  # async
        assert m.elapsed() == pytest.approx(1.0)

    def test_issue_overhead_accounted(self):
        spec = MachineSpec(n_gpus=1, issue_overhead=1e-3, sync_overhead=0.0)
        m = SimMachine(spec)
        m.launch_kernel(0, 0.0)
        assert m.now == pytest.approx(1e-3)


class TestTrace:
    def test_categories_recorded(self):
        m = SimMachine(SPEC)
        m.launch_kernel(0, 1.0, label="k")
        m.transfer(0, 1, int(1e6), label="t")
        m.host_compute(0.1, Category.PATTERNS)
        by = m.trace.by_category()
        assert by[Category.APPLICATION] == pytest.approx(1.0)
        assert by[Category.TRANSFERS] > 0
        assert by[Category.PATTERNS] == pytest.approx(0.1)

    def test_by_resource(self):
        m = SimMachine(SPEC)
        m.launch_kernel(2, 1.0)
        assert "gpu2" in m.trace.by_resource()
