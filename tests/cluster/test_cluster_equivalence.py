"""A 1-node cluster is indistinguishable from the single-node path.

The satellite acceptance property: a ``ClusterSimMachine`` over a 1xG
cluster must be **bitwise identical** to the flat ``SimMachine`` path —
host-visible buffers, final tracker state, and even the simulated clock —
under every schedule. Clustering, like scheduling, only re-routes device
work; with one node there is nothing to re-route.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.topology import ClusterSpec
from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.harness.calibration import K80_NODE_SPEC, k80_cluster
from repro.harness.experiments import run_timed, run_timed_cluster
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.engine import SimMachine
from repro.workloads.common import table1_configs

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)

ALL_SCHEDULES = tuple(SCHEDULES) + ("auto",)

taps_strategy = st.lists(
    st.tuples(
        st.integers(-2, 2),
        st.integers(-2, 2),
        st.sampled_from([0.25, 0.5, 1.0, -0.5]),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda t: (t[0], t[1]),
)


def _build_stencil(taps):
    radius = max(max(abs(dy), abs(dx)) for dy, dx, _ in taps)
    kb = KernelBuilder("randst")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < N) & (gx < N)):
        with kb.if_(
            (gy >= radius) & (gy < N - radius) & (gx >= radius) & (gx < N - radius)
        ):
            dy0, dx0, c0 = taps[0]
            acc = src[gy + dy0, gx + dx0] * c0
            for dy, dx, c in taps[1:]:
                acc = acc + src[gy + dy, gx + dx] * c
            dst[gy, gx] = acc
        with kb.otherwise():
            dst[gy, gx] = src[gy, gx]
    return kb.finish()


def _run(app, kernel, schedule, machine, n_gpus, iterations, seed):
    api = MultiGpuApi(
        app, RuntimeConfig(n_gpus=n_gpus, schedule=schedule), machine=machine
    )
    nbytes = N * N * 4
    a = api.cudaMalloc(nbytes)
    b = api.cudaMalloc(nbytes)
    data = np.random.default_rng(seed).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    src, dst = a, b
    for _ in range(iterations):
        api.launch(kernel, GRID, BLOCK, [src, dst])
        src, dst = dst, src
    out_a = np.zeros((N, N), dtype=np.float32)
    out_b = np.zeros((N, N), dtype=np.float32)
    api.cudaMemcpy(out_a, a, nbytes, MemcpyKind.DeviceToHost)
    api.cudaMemcpy(out_b, b, nbytes, MemcpyKind.DeviceToHost)
    trackers = [
        [(s.start, s.end, s.owner) for s in vb.tracker.query(0, vb.nbytes)]
        for vb in (a, b)
    ]
    return (out_a, out_b), trackers, api.elapsed()


@settings(max_examples=10, deadline=None)
@given(
    taps=taps_strategy,
    n_gpus=st.sampled_from([2, 4, 8]),
    iterations=st.integers(1, 3),
    seed=st.integers(0, 9),
)
def test_one_node_cluster_bitwise_identical(taps, n_gpus, iterations, seed):
    kernel = _build_stencil(taps)
    app = compile_app([kernel])
    spec = K80_NODE_SPEC.with_gpus(n_gpus)
    cluster = ClusterSpec(n_nodes=1, node=spec)
    for schedule in ALL_SCHEDULES:
        flat = _run(app, kernel, schedule, SimMachine(spec), n_gpus, iterations, seed)
        clus = _run(
            app, kernel, schedule, ClusterSimMachine(cluster), n_gpus, iterations, seed
        )
        (fa, fb), ft, f_elapsed = flat
        (ca, cb), ct, c_elapsed = clus
        assert np.array_equal(fa, ca), (schedule, taps)
        assert np.array_equal(fb, cb), (schedule, taps)
        assert ct == ft, (schedule, taps)
        # Identical resources -> identical simulated clock, to the bit.
        assert c_elapsed == f_elapsed, (schedule, taps)


@pytest.mark.parametrize("workload", ["hotspot", "matmul", "nbody"])
@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_acceptance_workloads_match_single_node(workload, schedule):
    cfg = next(c for c in table1_configs(workload) if c.size_label == "small")
    t_flat, flat_api = run_timed(cfg, 8, schedule=schedule)
    t_clus, clus_api = run_timed_cluster(cfg, k80_cluster(1, 8), schedule=schedule)
    assert t_clus == t_flat
    assert clus_api.stats.inter_node_transfers == 0
    assert clus_api.stats.inter_node_bytes == 0
    tiers = clus_api.machine.trace.transfer_exposure_by_tier()
    assert tiers["inter"] == {"hidden": 0.0, "exposed": 0.0}
