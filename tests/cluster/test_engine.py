"""ClusterSimMachine: routing, congestion, and 1-node identity."""

import pytest

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.topology import ClusterSpec
from repro.constants import HOST
from repro.sim.engine import SimMachine
from repro.sim.topology import MachineSpec
from repro.sim.trace import Category

MB = 1 << 20


def _cluster(n_nodes=2, gpus_per_node=4, **kw) -> ClusterSpec:
    return ClusterSpec(n_nodes=n_nodes, node=MachineSpec(n_gpus=gpus_per_node), **kw)


def _net_intervals(machine):
    return [iv for iv in machine.trace.intervals if iv.resource == "net"]


class TestOneNodeIdentity:
    def test_copies_time_identically_to_flat_machine(self):
        spec = MachineSpec(n_gpus=8)
        flat = SimMachine(spec)
        clustered = ClusterSimMachine(ClusterSpec(n_nodes=1, node=spec))

        def drive(m):
            events = [
                m.transfer(HOST, 0, 4 * MB),
                m.transfer(0, 5, 2 * MB),
                m.stream_transfer(3, HOST, MB),
                m.stream_transfer(1, 2, MB, p2p=True),
            ]
            m.launch_kernel(0, 1e-3, deps=[events[0]])
            m.synchronize()
            return events, m.elapsed()

        assert drive(flat) == drive(clustered)
        assert not _net_intervals(clustered)

    def test_one_node_trace_matches_flat_machine(self):
        spec = MachineSpec(n_gpus=4)
        flat, clustered = SimMachine(spec), ClusterSimMachine(_cluster(1, 4))
        for m in (flat, clustered):
            m.transfer(HOST, 0, MB)
            m.transfer(0, 3, MB)
        assert [
            (iv.resource, iv.start, iv.end) for iv in flat.trace.intervals
        ] == [(iv.resource, iv.start, iv.end) for iv in clustered.trace.intervals]


class TestCrossNodeCopies:
    def test_cross_node_copy_lands_on_net_resource(self):
        m = ClusterSimMachine(_cluster(2, 4))
        m.transfer(0, 4, MB)
        (iv,) = _net_intervals(m)
        assert iv.category is Category.TRANSFERS
        tiers = m.trace.transfer_exposure_by_tier()
        assert tiers["inter"]["exposed"] == pytest.approx(iv.duration)
        assert tiers["intra"] == {"hidden": 0.0, "exposed": 0.0}

    def test_cross_node_slower_than_intra_node_p2p(self):
        # The NIC bottlenecks the pipelined network path below direct
        # peer-DMA rate.  (Staged intra-node D2D is store-and-forward over
        # two PCIe legs and can legitimately be *slower* than the pipeline.)
        intra = ClusterSimMachine(_cluster(2, 4))
        inter = ClusterSimMachine(_cluster(2, 4))
        t_intra = intra.stream_transfer(0, 1, 8 * MB, p2p=True)
        t_inter = inter.stream_transfer(0, 4, 8 * MB)
        assert t_inter > t_intra

    def test_duration_covers_network_transfer_time(self):
        c = _cluster(2, 4)
        m = ClusterSimMachine(c)
        end = m.transfer(3, 7, 5 * MB)
        (iv,) = _net_intervals(m)
        assert end >= iv.start + c.network_transfer_time(5 * MB)

    def test_host_to_remote_node_is_network(self):
        m = ClusterSimMachine(_cluster(2, 4))
        m.transfer(HOST, 4, MB)  # head node is 0; GPU 4 lives on node 1
        assert len(_net_intervals(m)) == 1

    def test_host_to_head_node_is_local(self):
        m = ClusterSimMachine(_cluster(2, 4))
        m.transfer(HOST, 0, MB)
        assert not _net_intervals(m)


class TestCongestion:
    def test_fabric_serializes_concurrent_cross_node_copies(self):
        c = _cluster(4, 2, fabric_bw=7e9)  # fabric as slow as the NIC
        serial = ClusterSimMachine(c)
        e1 = serial.stream_transfer(0, 2, 32 * MB)  # node 0 -> node 1
        e2 = serial.stream_transfer(4, 6, 32 * MB)  # node 2 -> node 3
        # Disjoint endpoints, NICs, and buses — only the fabric is shared,
        # so the copies can't fully overlap.
        lone = ClusterSimMachine(c)
        alone = lone.stream_transfer(4, 6, 32 * MB)
        assert max(e1, e2) > alone
        fabric_busy = sum(
            iv.duration for iv in serial.trace.intervals if iv.resource == "net"
        )
        assert fabric_busy > 0

    def test_nic_lanes_relieve_nic_contention(self):
        # Two copies out of node 0 to two different nodes: with one NIC lane
        # they queue on the source NIC; with two lanes they overlap better.
        shapes = {}
        for lanes in (1, 2):
            # Fat host bus + fat fabric so the source NIC is the only
            # contended resource.
            node = MachineSpec(n_gpus=2, host_bus_bw=1e13)
            c = ClusterSpec(n_nodes=3, node=node, nic_lanes=lanes, fabric_bw=1e12)
            m = ClusterSimMachine(c)
            e1 = m.stream_transfer(0, 2, 64 * MB)  # node 0 -> node 1
            e2 = m.stream_transfer(1, 4, 64 * MB)  # node 0 -> node 2
            shapes[lanes] = max(e1, e2)
        assert shapes[2] < shapes[1]

    def test_per_node_buses_do_not_contend(self):
        # Staged D2D copies on *different* nodes use different buses: the
        # pair finishes like a single copy. On the same node they share one
        # bus and PCIe fabric-side lanes, so the pair takes longer.
        c = _cluster(2, 4)
        both_nodes = ClusterSimMachine(c)
        a = both_nodes.stream_transfer(0, 1, 64 * MB)
        b = both_nodes.stream_transfer(4, 5, 64 * MB)
        same_node = ClusterSimMachine(c)
        x = same_node.stream_transfer(0, 1, 64 * MB)
        y = same_node.stream_transfer(2, 3, 64 * MB)
        assert max(a, b) < max(x, y)


class TestBarriers:
    def test_synchronize_drains_network_lanes(self):
        m = ClusterSimMachine(_cluster(2, 4))
        end = m.stream_transfer(0, 4, 16 * MB)
        m.synchronize()
        assert m.host_time >= end
        assert m.elapsed() >= end

    def test_elapsed_covers_in_flight_cross_node_copy(self):
        m = ClusterSimMachine(_cluster(2, 4))
        end = m.stream_transfer(0, 4, 16 * MB)
        assert m.elapsed() >= end
