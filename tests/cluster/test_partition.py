"""Hierarchical two-level grid partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.partition import (
    balanced_intervals,
    hierarchical_partitions,
    node_intervals,
)
from repro.cluster.topology import ClusterSpec
from repro.compiler.strategy import PartitionStrategy
from repro.cuda.dim3 import Dim3
from repro.sim.topology import MachineSpec


def _cluster(n_nodes, gpus_per_node) -> ClusterSpec:
    return ClusterSpec(n_nodes=n_nodes, node=MachineSpec(n_gpus=gpus_per_node))


@given(extent=st.integers(0, 200), k=st.integers(1, 20))
def test_balanced_intervals_cover_exactly(extent, k):
    ivs = balanced_intervals(0, extent, k)
    assert len(ivs) == k
    assert ivs[0][0] == 0 and ivs[-1][1] == extent
    for (a, b), (c, d) in zip(ivs, ivs[1:]):
        assert b == c and b >= a and d >= c
    sizes = [b - a for a, b in ivs]
    assert max(sizes) - min(sizes) <= 1
    # Larger shares come first (divmod rule).
    assert sizes == sorted(sizes, reverse=True)


@given(
    extent=st.integers(1, 128),
    n_nodes=st.integers(1, 5),
    gpus_per_node=st.integers(1, 6),
    axis=st.sampled_from(["x", "y", "z"]),
)
def test_hierarchical_covers_grid_in_device_order(extent, n_nodes, gpus_per_node, axis):
    strategy = PartitionStrategy(axis=axis)
    grid = Dim3(**{axis: extent})
    cluster = _cluster(n_nodes, gpus_per_node)
    parts = hierarchical_partitions(strategy, grid, cluster)
    assert len(parts) == cluster.total_gpus
    # Contiguous, ordered, and covering the whole extent along the axis.
    cursor = 0
    for p in parts:
        lo, hi = p.range_of(axis)
        assert lo == cursor and hi >= lo
        cursor = hi
    assert cursor == extent
    # Off-axis ranges are always the full grid.
    for p in parts:
        for other in "xyz":
            if other != axis:
                assert p.range_of(other) == (0, grid.axis(other))


@given(extent=st.integers(1, 128), gpus=st.integers(1, 16))
def test_one_node_equals_flat_split(extent, gpus):
    strategy = PartitionStrategy(axis="y")
    grid = Dim3(x=4, y=extent)
    flat = strategy.partitions(grid, gpus)
    hier = hierarchical_partitions(strategy, grid, _cluster(1, gpus))
    assert hier == flat


def test_node_intervals_align_with_partitions():
    strategy = PartitionStrategy(axis="y")
    grid = Dim3(x=2, y=29)
    cluster = _cluster(3, 4)
    intervals = node_intervals(strategy, grid, cluster)
    parts = hierarchical_partitions(strategy, grid, cluster)
    assert len(intervals) == 3
    for node, (lo, hi) in enumerate(intervals):
        mine = parts[node * 4 : (node + 1) * 4]
        assert mine[0].y[0] == lo and mine[-1].y[1] == hi
        # A node's partitions never leak outside its interval.
        for p in mine:
            assert lo <= p.y[0] <= p.y[1] <= hi


def test_short_axis_leaves_trailing_empty_partitions():
    strategy = PartitionStrategy(axis="y")
    grid = Dim3(x=1, y=3)
    parts = hierarchical_partitions(strategy, grid, _cluster(2, 4))
    assert len(parts) == 8
    non_empty = [p for p in parts if not p.is_empty]
    assert len(non_empty) == 3
    # Work lands on the leading GPUs of each node interval.
    assert sum(p.n_blocks for p in parts) == 3
