"""Accounting identities on cluster runs.

The α/β/γ methodology and the overlap-exposure refinement must survive the
cluster machine: the new ``net`` resource only *re-buckets* transfer time
(intra vs inter), it never invents or loses any. Plus the acceptance
sanity check — at equal total GPUs, a multi-node shape never reports less
inter-node exposed transfer time than the (network-free) 1-node shape.
"""

import pytest

from repro.harness.calibration import k80_cluster
from repro.harness.experiments import run_timed_cluster
from repro.runtime.config import RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.trace import Category
from repro.workloads.common import table1_configs

CFG = next(c for c in table1_configs("hotspot") if c.size_label == "small")


def _tiers(api):
    return api.machine.trace.transfer_exposure_by_tier()


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_tiers_partition_transfer_busy_time(schedule):
    _, api = run_timed_cluster(CFG, k80_cluster(2, 4), schedule=schedule)
    trace = api.machine.trace
    tiers = _tiers(api)
    total = sum(b for tier in tiers.values() for b in tier.values())
    assert total == pytest.approx(trace.busy_time(Category.TRANSFERS))
    # The flat exposure split is the tier split, summed.
    exposure = trace.transfer_exposure()
    assert exposure["hidden"] == pytest.approx(
        tiers["intra"]["hidden"] + tiers["inter"]["hidden"]
    )
    assert exposure["exposed"] == pytest.approx(
        tiers["intra"]["exposed"] + tiers["inter"]["exposed"]
    )
    # A 2-node hotspot run genuinely crosses the network.
    assert tiers["inter"]["hidden"] + tiers["inter"]["exposed"] > 0
    assert api.stats.inter_node_transfers > 0
    assert api.stats.inter_node_bytes > 0


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_multi_node_inter_exposure_dominates_one_node(schedule):
    _, one = run_timed_cluster(CFG, k80_cluster(1, 8), schedule=schedule)
    _, two = run_timed_cluster(CFG, k80_cluster(2, 4), schedule=schedule)
    assert _tiers(one)["inter"] == {"hidden": 0.0, "exposed": 0.0}
    assert _tiers(two)["inter"]["exposed"] >= _tiers(one)["inter"]["exposed"]


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_beta_cluster_runs_record_no_transfers(schedule):
    base = RuntimeConfig(n_gpus=8, schedule=schedule)
    _, api = run_timed_cluster(CFG, k80_cluster(2, 4), config=base.beta())
    assert api.machine.trace.busy_time(Category.TRANSFERS) == 0.0
    # Like sync_bytes, the inter-node counters tally the *logical* coherence
    # traffic, which the β run still computes (it only skips simulating it).
    assert api.stats.inter_node_bytes > 0
    tiers = _tiers(api)
    assert tiers["intra"] == {"hidden": 0.0, "exposed": 0.0}
    assert tiers["inter"] == {"hidden": 0.0, "exposed": 0.0}


def test_overlap_hides_inter_node_halos():
    _, seq = run_timed_cluster(CFG, k80_cluster(2, 4), schedule="sequential")
    _, ovl = run_timed_cluster(CFG, k80_cluster(2, 4), schedule="overlap")
    seq_inter = _tiers(seq)["inter"]
    ovl_inter = _tiers(ovl)["inter"]
    seq_total = seq_inter["hidden"] + seq_inter["exposed"]
    ovl_total = ovl_inter["hidden"] + ovl_inter["exposed"]
    assert seq_total > 0 and ovl_total > 0
    # The DAG schedule hides a larger fraction of the network traffic.
    assert ovl_inter["hidden"] / ovl_total > seq_inter["hidden"] / seq_total
