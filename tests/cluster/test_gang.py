"""Gang projection of launch plans: per-node DAGs + halo exchange."""

import numpy as np
import pytest

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.gang import build_gang_plan
from repro.cluster.topology import ClusterSpec
from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import SimulationError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.graph import build_launch_plan
from repro.sim.topology import MachineSpec

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)


def _stencil():
    kb = KernelBuilder("five")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy >= 1) & (gy < N - 1) & (gx >= 1) & (gx < N - 1)):
        dst[gy, gx] = (
            src[gy, gx]
            + src[gy - 1, gx]
            + src[gy + 1, gx]
            + src[gy, gx - 1]
            + src[gy, gx + 1]
        ) * 0.2
    return kb.finish()


def _cluster(n_nodes, gpus_per_node) -> ClusterSpec:
    return ClusterSpec(n_nodes=n_nodes, node=MachineSpec(n_gpus=gpus_per_node))


def _plan_on(cluster):
    """A second-iteration stencil plan (every partition seam needs a halo)."""
    kernel = _stencil()
    app = compile_app([kernel])
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=cluster.total_gpus),
        machine=ClusterSimMachine(cluster),
        functional=True,
    )
    nbytes = N * N * 4
    a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
    data = np.random.default_rng(0).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    api.launch(kernel, GRID, BLOCK, [a, b])
    return build_launch_plan(api, app.kernel("five"), GRID, BLOCK, [b, a]), api


class TestProjection:
    def test_validates_and_partitions_the_plan(self):
        cluster = _cluster(2, 4)
        plan, _ = _plan_on(cluster)
        gang = build_gang_plan(plan, cluster)
        gang.validate()
        n_local = sum(len(np_.local_transfers) for np_ in gang.nodes)
        assert n_local + len(gang.halo_transfers) == len(plan.transfers)
        assert sum(len(np_.kernels) for np_ in gang.nodes) == len(plan.kernels)

    def test_classification_matches_topology(self):
        cluster = _cluster(2, 4)
        plan, _ = _plan_on(cluster)
        gang = build_gang_plan(plan, cluster)
        for np_ in gang.nodes:
            for t in np_.local_transfers:
                assert cluster.same_node(t.owner, t.gpu)
            for t in np_.halo_in:
                assert not cluster.same_node(t.owner, t.gpu)
                assert cluster.endpoint_node(t.gpu) == np_.node
            for t in np_.halo_out:
                assert cluster.endpoint_node(t.owner) == np_.node
            for k in np_.kernels:
                assert cluster.node_of(k.gpu) == np_.node

    def test_halo_objects_are_shared_not_copied(self):
        cluster = _cluster(2, 4)
        plan, _ = _plan_on(cluster)
        gang = build_gang_plan(plan, cluster)
        outs = {id(t) for np_ in gang.nodes for t in np_.halo_out}
        ins = {id(t) for np_ in gang.nodes for t in np_.halo_in}
        assert outs == ins  # the same TransferTask objects, a view not a copy
        plan_ids = {id(t) for t in plan.transfers}
        assert ins <= plan_ids

    def test_stencil_on_two_nodes_has_one_halo_each_way(self):
        # A 1-D row split puts exactly one partition seam on the node
        # boundary; the 5-point stencil exchanges one halo per direction.
        cluster = _cluster(2, 4)
        plan, _ = _plan_on(cluster)
        gang = build_gang_plan(plan, cluster)
        assert [len(np_.halo_in) for np_ in gang.nodes] == [1, 1]
        assert [len(np_.halo_out) for np_ in gang.nodes] == [1, 1]
        assert gang.halo_bytes == sum(t.nbytes for t in gang.halo_transfers)
        assert gang.halo_bytes > 0

    def test_one_node_cluster_has_no_halos(self):
        cluster = _cluster(1, 8)
        plan, _ = _plan_on(cluster)
        gang = build_gang_plan(plan, cluster)
        assert gang.halo_transfers == []
        assert gang.halo_bytes == 0
        assert len(gang.nodes[0].local_transfers) == len(plan.transfers)


class TestValidate:
    def test_rejects_misclassified_halo(self):
        cluster = _cluster(2, 4)
        plan, _ = _plan_on(cluster)
        gang = build_gang_plan(plan, cluster)
        # Corrupt the projection: pretend a halo is node-local.
        victim = gang.nodes[0].halo_in.pop()
        gang.nodes[0].local_transfers.append(victim)
        with pytest.raises(SimulationError):
            gang.validate()

    def test_rejects_lost_transfer(self):
        cluster = _cluster(2, 4)
        plan, _ = _plan_on(cluster)
        gang = build_gang_plan(plan, cluster)
        gang.nodes[0].local_transfers.pop()
        with pytest.raises(SimulationError):
            gang.validate()


class TestHaloTierSummary:
    """halo_tier_summary: per-tier classification of one plan's bytes."""

    def _dstencil_api(self, cluster, irredundant):
        from repro.workloads.common import functional_config
        from repro.workloads.dstencil import DStencilWorkload, src_shape

        wl = DStencilWorkload(functional_config("dstencil"))
        app = compile_app([wl.kernel])
        api = MultiGpuApi(
            app,
            RuntimeConfig(
                n_gpus=cluster.total_gpus,
                shared_copies=True,
                irredundant_transfers=irredundant,
            ),
            machine=ClusterSimMachine(cluster),
            functional=True,
        )
        n = wl.cfg.size
        rows, cols = src_shape(n)
        grid, block = wl.launch_config()
        d_src = api.cudaMalloc(rows * cols * 4)
        d_out = api.cudaMalloc(n * n * 4)
        src = np.random.default_rng(0).random((rows, cols)).astype(np.float32)
        api.cudaMemcpy(d_src, src, rows * cols * 4, MemcpyKind.HostToDevice)
        plan = lambda: build_launch_plan(  # noqa: E731
            api, app.kernel(wl.kernel.name), grid, block, [d_src, d_out]
        )
        launch = lambda: api.launch(wl.kernel, grid, block, [d_src, d_out])  # noqa: E731
        return plan, launch

    def _tie_out(self, summary, plan, cluster):
        """Every bucket equals its recomputation from the plan's tasks."""
        intra = sum(
            t.nbytes for t in plan.transfers if cluster.same_node(t.owner, t.gpu)
        )
        inter = sum(
            t.nbytes for t in plan.transfers if not cluster.same_node(t.owner, t.gpu)
        )
        reads = [rs for syncs in plan.reads for rs in syncs]
        assert summary.intra_bytes == intra
        assert summary.inter_bytes == inter
        assert summary.transferred == intra + inter
        assert summary.avoided_intra + summary.avoided_inter == sum(
            rs.avoided for rs in reads
        )
        assert summary.avoided_inter == sum(rs.avoided_inter for rs in reads)
        assert summary.trimmed_intra + summary.trimmed_inter == sum(
            rs.overapprox for rs in reads
        )
        assert summary.trimmed_inter == sum(rs.overapprox_inter for rs in reads)

    def test_cold_plan_ships_trimmed_halos_per_tier(self):
        from repro.cluster.gang import HaloTierSummary, halo_tier_summary

        cluster = _cluster(2, 2)
        plan_at, _ = self._dstencil_api(cluster, irredundant=True)
        plan = plan_at()
        summary = halo_tier_summary(plan, cluster)
        self._tie_out(summary, plan, cluster)
        # The first launch ships the (trimmed) linear-distribution mismatch
        # and halo: exactly half the bounding bytes survive per tier (the
        # strided read keeps even columns only), nothing is avoided yet.
        assert summary == HaloTierSummary(
            intra_bytes=512,
            inter_bytes=256,
            avoided_intra=0,
            avoided_inter=0,
            trimmed_intra=504,
            trimmed_inter=252,
        )

    def test_warm_plan_avoids_everything_still_reporting_slack(self):
        from repro.cluster.gang import HaloTierSummary, halo_tier_summary

        cluster = _cluster(2, 2)
        plan_at, launch = self._dstencil_api(cluster, irredundant=True)
        launch()
        plan = plan_at()
        summary = halo_tier_summary(plan, cluster)
        self._tie_out(summary, plan, cluster)
        # Steady state: shared copies hold every previously shipped byte
        # (the cold transfers reappear tier-for-tier as avoided), while the
        # trimmed slack — never shipped, hence never shared — is re-planned
        # and re-trimmed each launch.
        assert summary == HaloTierSummary(
            intra_bytes=0,
            inter_bytes=0,
            avoided_intra=512,
            avoided_inter=256,
            trimmed_intra=504,
            trimmed_inter=252,
        )

    def test_without_irredundant_nothing_is_trimmed(self):
        from repro.cluster.gang import halo_tier_summary

        cluster = _cluster(2, 2)
        plan_at, launch = self._dstencil_api(cluster, irredundant=False)
        cold = halo_tier_summary(plan_at(), cluster)
        launch()
        warm = halo_tier_summary(plan_at(), cluster)
        for summary in (cold, warm):
            assert summary.trimmed_intra == 0 and summary.trimmed_inter == 0
        # Untrimmed cold transfers carry the slack: double the irredundant
        # bytes per tier, minus the four seam bytes the linear distribution
        # already places correctly.
        assert (cold.intra_bytes, cold.inter_bytes) == (1016, 508)
        assert (warm.avoided_intra, warm.avoided_inter) == (1016, 508)
        assert warm.transferred == 0
