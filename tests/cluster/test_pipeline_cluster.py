"""Pipelining on a cluster: bitwise invisibility and halo-first issue.

On a :class:`~repro.cluster.engine.ClusterSimMachine`, window > 1 may
legally *reorder* transfer issue (inter-node halo copies first) and so
produce a different trace from window = 1 — but the functional half is
untouched: buffers, trackers, and sharer state stay bitwise identical
across every window x schedule x shared-copies combination, and the
reorder is only ever allowed to *reduce* exposed transfer time under the
overlap schedules. The halo-majority gate keeps the reorder away from
broadcast-style plans where hoisting the network leg would backfire.
"""

import numpy as np
import pytest

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.gang import transfer_priority_tiers
from repro.cluster.topology import ClusterSpec
from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.graph import build_launch_plan
from repro.sched.policy import SCHEDULES
from repro.sim.trace import Category
from repro.workloads.hotspot import BLOCK, build_hotspot_kernel

N = 64
NBYTES = N * N * 4
GRID = Dim3(x=(N + BLOCK.x - 1) // BLOCK.x, y=(N + BLOCK.y - 1) // BLOCK.y)

ALL_SCHEDULES = tuple(SCHEDULES) + ("auto",)


def _cluster(n_nodes=2, gpus_per_node=2) -> ClusterSpec:
    return ClusterSpec(
        n_nodes=n_nodes, node=K80_NODE_SPEC.with_gpus(gpus_per_node)
    )


def _run(cluster, schedule, *, window=1, shared=False, iterations=4, seed=0):
    kernel = build_hotspot_kernel(N)
    app = compile_app([kernel])
    machine = ClusterSimMachine(cluster)
    api = MultiGpuApi(
        app,
        RuntimeConfig(
            n_gpus=cluster.total_gpus,
            schedule=schedule,
            pipeline_window=window,
            shared_copies=shared,
        ),
        machine=machine,
    )
    a = api.cudaMalloc(NBYTES)
    b = api.cudaMalloc(NBYTES)
    data = np.random.default_rng(seed).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, NBYTES, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, NBYTES)
    src, dst = a, b
    for _ in range(iterations):
        api.launch(kernel, GRID, BLOCK, [src, dst])
        src, dst = dst, src
    out_a = np.zeros((N, N), dtype=np.float32)
    out_b = np.zeros((N, N), dtype=np.float32)
    api.cudaMemcpy(out_a, a, NBYTES, MemcpyKind.DeviceToHost)
    api.cudaMemcpy(out_b, b, NBYTES, MemcpyKind.DeviceToHost)
    trackers = [vb.coherence_state() for vb in (a, b)]
    return (out_a, out_b), trackers, api


@pytest.mark.parametrize("shared", [False, True])
@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_cluster_pipelining_bitwise_invisible(schedule, shared):
    cluster = _cluster(2, 2)
    base = _run(cluster, schedule, window=1, shared=shared)
    for window in (2, 4):
        piped = _run(cluster, schedule, window=window, shared=shared)
        (ba, bb), bt, base_api = base
        (pa, pb), pt, piped_api = piped
        assert np.array_equal(ba, pa), (schedule, shared, window)
        assert np.array_equal(bb, pb), (schedule, shared, window)
        assert pt == bt, (schedule, shared, window)
        assert piped_api.stats.sync_bytes == base_api.stats.sync_bytes
        assert (
            piped_api.stats.inter_node_bytes == base_api.stats.inter_node_bytes
        )
        assert (
            piped_api.stats.tracker_share_ops == base_api.stats.tracker_share_ops
        )
        assert piped_api.stats.pipeline_max_batch <= window


def test_exposed_transfer_time_never_worse_with_wider_windows():
    """The only trace-level change a wider window may make is halo-first
    reordering, and that must not increase exposed transfer time.

    Strict for ``overlap+p2p`` — the direct-route schedule the halo-first
    priority targets (and the one ``repro bench pipeline`` enforces at
    paper sizes). The staged ``overlap`` route bounces copies through the
    head node, where reordering can shuffle sub-microsecond lane gaps
    either way, so it only gets a no-regression bound in the noise margin.
    """
    cluster = _cluster(2, 2)
    exposure = {}
    for schedule in ("overlap", "overlap+p2p"):
        for window in (1, 2, 4):
            api = _run(cluster, schedule, window=window, iterations=6)[2]
            tiers = api.machine.trace.transfer_exposure_by_tier()
            exposure[(schedule, window)] = sum(
                v["exposed"] for v in tiers.values()
            )
    for window in (2, 4):
        strict = exposure[("overlap+p2p", window)]
        assert strict <= exposure[("overlap+p2p", 1)] + 1e-12, exposure
        loose = exposure[("overlap", window)]
        assert loose <= exposure[("overlap", 1)] * 1.001, exposure


def _pipelined_api(cluster, window):
    kernel = build_hotspot_kernel(N)
    app = compile_app([kernel])
    api = MultiGpuApi(
        app,
        RuntimeConfig(
            n_gpus=cluster.total_gpus,
            schedule="overlap+p2p",
            pipeline_window=window,
        ),
        machine=ClusterSimMachine(cluster),
    )
    a = api.cudaMalloc(NBYTES)
    b = api.cudaMalloc(NBYTES)
    data = np.random.default_rng(3).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, NBYTES, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, NBYTES)
    # One launch so the second plan (which has halo read-syncs) exists.
    api.launch(kernel, GRID, BLOCK, [a, b])
    api.pipeline.flush()
    ck = app.kernel(kernel.name)
    plan = build_launch_plan(api, ck, GRID, BLOCK, [b, a])
    return api, plan


def test_transfer_order_is_halo_first_on_seam_stencil():
    cluster = _cluster(2, 2)
    api, plan = _pipelined_api(cluster, window=4)
    tiers = transfer_priority_tiers(plan, cluster)
    assert 0 in tiers.values(), "a 2-node seam stencil must cross the fabric"
    order = api.pipeline._transfer_order(plan)
    assert order is not None
    ranks = [tiers[t.node] for _, t in order]
    # Non-decreasing tiers: every inter-node halo copy precedes every
    # interior copy in the fused issue order.
    assert ranks == sorted(ranks)
    assert ranks[0] == 0
    # Order is a permutation of the plan's (read-sync, transfer) pairs.
    assert sorted(t.node for _, t in order) == sorted(
        t.node for t in plan.transfers
    )


def test_transfer_order_gates():
    cluster = _cluster(2, 2)

    # window=1 never reorders, even on a cluster.
    api, plan = _pipelined_api(cluster, window=1)
    assert api.pipeline._transfer_order(plan) is None

    # A flat (non-cluster) machine never reorders regardless of window.
    kernel = build_hotspot_kernel(N)
    app = compile_app([kernel])
    from repro.sim.engine import SimMachine

    flat = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=4, schedule="overlap+p2p", pipeline_window=4),
        machine=SimMachine(K80_NODE_SPEC.with_gpus(4)),
    )
    a = flat.cudaMalloc(NBYTES)
    b = flat.cudaMalloc(NBYTES)
    flat.cudaMemset(a, 0, NBYTES)
    flat.cudaMemset(b, 0, NBYTES)
    flat.launch(kernel, GRID, BLOCK, [a, b])
    flat.pipeline.flush()
    flat_plan = build_launch_plan(flat, app.kernel(kernel.name), GRID, BLOCK, [b, a])
    assert flat.pipeline._transfer_order(flat_plan) is None

    # Halo-majority gate: if node-crossing bytes dominate, keep plan order
    # (hoisting the whole network leg would delay the intra-node copies).
    api, plan = _pipelined_api(cluster, window=4)
    assert api.pipeline._transfer_order(plan) is not None
    api.pipeline.HALO_MAJORITY_RATIO = 0.0  # every halo byte now "dominates"
    assert api.pipeline._transfer_order(plan) is None


def test_net_transfers_issue_before_intra_within_fused_launch():
    """In the trace of a fused window, each launch's inter-node copies are
    queued before its intra-node sync copies (halo-first priority)."""
    cluster = _cluster(2, 2)
    api = _run(cluster, "overlap+p2p", window=4, iterations=4)[2]
    by_launch = {}
    for iv in api.machine.trace.intervals:
        if iv.category is not Category.TRANSFERS or iv.launch is None:
            continue
        by_launch.setdefault(iv.launch, []).append(iv)
    fused = {k: ivs for k, ivs in by_launch.items() if len(ivs) > 1}
    assert fused, "expected launches with both net and intra transfers"
    saw_mixed = False
    for ivs in fused.values():
        net = [iv for iv in ivs if iv.resource == "net"]
        intra = [iv for iv in ivs if iv.resource != "net"]
        if not net or not intra:
            continue
        saw_mixed = True
        # Issue order is record order; the earliest net copy of the launch
        # is recorded no later than the earliest intra copy.
        first_net = min(iv.start for iv in net)
        first_intra = min(iv.start for iv in intra)
        assert first_net <= first_intra + 1e-12, ivs
    assert saw_mixed
