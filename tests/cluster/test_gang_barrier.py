"""Per-node gang barriers under the sequential policy.

The sequential policy's Figure-4 barrier used to be global: every device
waited out every transfer, so one node's *interior* copies (both endpoints
on that node) serialized all other nodes' kernels. On a multi-node cluster
the barrier is now per node: each gang waits only for its own resources
and for the plan's copies touching its node. These tests pin the new
overlap — a transfer-free node starts computing while another node's
interior copy is still in flight — and that the change is invisible both
functionally (bitwise vs the flat machine) and to single-node clusters.
"""

import numpy as np
import pytest

from repro.cluster.engine import ClusterSimMachine
from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.harness.calibration import K80_NODE_SPEC, k80_cluster
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sim.engine import SimMachine
from repro.sim.trace import Category

# Large enough that the interior copy (N/4 floats = 1 MiB) is in flight for
# far longer than the host's per-launch issue overheads.
N = 1 << 20
BLOCK = 256


def _pull_kernel():
    """Partition 0 pulls its right neighbour's band; others are read-free.

    On a 2x2 cluster (devices {0,1} on node 0, {2,3} on node 1) the single
    stale-segment copy this produces is gpu1 -> gpu0: interior to node 0.
    Node 1's kernels have no transfer dependencies at all.
    """
    kb = KernelBuilder("pull_left")
    n = kb.scalar("n")
    quarter = kb.scalar("quarter")
    a = kb.array("a", f32, (n,))
    out = kb.array("out", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < quarter):
        out[gi,] = a[gi + quarter,] * 2.0
    return kb.finish()


KERNEL = _pull_kernel()
APP = compile_app([KERNEL])


def _run(machine):
    api = MultiGpuApi(APP, RuntimeConfig(n_gpus=4, schedule="sequential"), machine=machine)
    a = np.linspace(1.0, 2.0, N, dtype=np.float32)
    out = np.zeros(N, dtype=np.float32)
    da = api.cudaMalloc(a.nbytes)
    api.cudaMemcpy(da, a, a.nbytes, MemcpyKind.HostToDevice)
    dout = api.cudaMalloc(out.nbytes)
    api.cudaMemcpy(dout, out, out.nbytes, MemcpyKind.HostToDevice)
    before = len(machine.trace.intervals) if machine else 0
    api.launch(KERNEL, Dim3(N // BLOCK), Dim3(BLOCK), [N, N // 4, da, dout])
    api.cudaDeviceSynchronize()
    result = np.zeros(N, dtype=np.float32)
    api.cudaMemcpy(result, dout, result.nbytes, MemcpyKind.DeviceToHost)
    launch_intervals = machine.trace.intervals[before:] if machine else []
    return result, launch_intervals


@pytest.fixture(scope="module")
def cluster_run():
    return _run(ClusterSimMachine(k80_cluster(2, 2)))


def test_transfer_free_node_overlaps_interior_copy(cluster_run):
    _, intervals = cluster_run
    copies = [
        iv
        for iv in intervals
        if iv.category is Category.TRANSFERS and iv.label.startswith("sync:")
    ]
    assert len(copies) == 1, "expected exactly one interior stale-segment copy"
    copy = copies[0]

    kernels = [iv for iv in intervals if iv.category is Category.APPLICATION]
    node0 = [iv for iv in kernels if iv.resource in ("gpu0", "gpu1")]
    node1 = [iv for iv in kernels if iv.resource in ("gpu2", "gpu3")]
    assert len(node0) == len(node1) == 2

    # The un-serialization: node 1 starts while node 0's copy is in flight.
    assert min(iv.start for iv in node1) < copy.end
    # Node 0's own gang still observes its barrier: its kernels wait for
    # the copy into gpu0.
    assert min(iv.start for iv in node0) >= copy.end


def test_gang_sync_replaces_global_sync(cluster_run):
    _, intervals = cluster_run
    first_kernel = min(
        iv.start for iv in intervals if iv.category is Category.APPLICATION
    )
    pre_kernel_host = [
        iv
        for iv in intervals
        if iv.resource == "host" and iv.start < first_kernel
    ]
    labels = {iv.label for iv in pre_kernel_host}
    assert "gang-sync" in labels
    assert "sync" not in labels  # the global barrier is gone from the launch


def test_bitwise_equal_to_flat_machine(cluster_run):
    cluster_result, _ = cluster_run
    flat_result, _ = _run(SimMachine(K80_NODE_SPEC.with_gpus(4)))
    assert np.array_equal(cluster_result, flat_result)
    expected = np.zeros(N, dtype=np.float32)
    a = np.linspace(1.0, 2.0, N, dtype=np.float32)
    expected[: N // 4] = a[N // 4 : N // 2] * 2.0
    assert np.array_equal(cluster_result, expected)


def test_single_node_cluster_keeps_global_barrier():
    """A 1-node cluster must still trace identically to the flat machine."""
    _, flat_intervals = _run(SimMachine(K80_NODE_SPEC.with_gpus(4)))
    _, one_node_intervals = _run(ClusterSimMachine(k80_cluster(1, 4)))
    assert one_node_intervals == flat_intervals
    assert any(iv.label == "sync" for iv in flat_intervals if iv.resource == "host")
    assert not any(iv.label == "gang-sync" for iv in one_node_intervals)


def test_node_resource_avail_tracks_device_work():
    machine = ClusterSimMachine(k80_cluster(2, 2))
    base0 = machine.node_resource_avail(0)
    base1 = machine.node_resource_avail(1)
    end = machine.launch_kernel(3, 1.0, label="busy")
    assert machine.node_resource_avail(1) >= end
    # Node 0 is unaffected by node 1's compute (modulo the host issue time).
    assert machine.node_resource_avail(0) == pytest.approx(
        max(base0, machine.host_time)
    )
    assert base1 <= end
