"""Shared-copy coherence on clusters: nearest-copy routing and halo shrink.

Three layers of the same claim — a valid intra-node copy beats a
cross-fabric owner:

* :func:`~repro.runtime.sync.pick_source` ranks an intra-node sharer above
  the remote owner (unit);
* a broadcast-read workload on a 2x2 cluster moves strictly fewer
  inter-node bytes (and less network-tier transfer time) with shared
  copies on, with bitwise-identical results (integration);
* the gang plan's interval-keyed halo view shrinks to nothing once every
  node holds a sharer copy (plan-level).
"""

import numpy as np
import pytest

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.gang import build_gang_plan
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.harness.calibration import k80_cluster
from repro.harness.experiments import _redundancy_kernels
from repro.compiler.pipeline import compile_app
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.runtime.sync import pick_source
from repro.runtime.tracker import Segment
from repro.sched.graph import build_launch_plan
from repro.sim.trace import Category

N = 1024
NBYTES = N * 4


class TestPickSource:
    def test_no_cluster_returns_owner(self):
        seg = Segment(0, 100, 1, frozenset({0, 3}))
        assert pick_source(seg, 2, None) == 1

    def test_prefers_intra_node_sharer_over_remote_owner(self):
        cluster = k80_cluster(2, 2)  # node 0: {0, 1}; node 1: {2, 3}
        seg = Segment(0, 100, 0, frozenset({2}))
        # GPU 3 fetches: sharer 2 is on its own node, owner 0 is not.
        assert pick_source(seg, 3, cluster) == 2
        # GPU 1 fetches: the owner itself is intra-node.
        assert pick_source(seg, 1, cluster) == 0

    def test_owner_breaks_intra_node_ties(self):
        cluster = k80_cluster(2, 2)
        seg = Segment(0, 100, 1, frozenset({0}))
        # Both owner and sharer are on GPU 0's node: prefer the owner.
        assert pick_source(seg, 0, cluster) == 1

    def test_lowest_device_breaks_remaining_ties(self):
        cluster = k80_cluster(2, 2)
        seg = Segment(0, 100, 0, frozenset({2, 3}))
        # HOST endpoints live on the head node (node 0) — owner 0 is local.
        assert pick_source(seg, -1, cluster) == 0
        # For GPU 2, sharers 2 and 3 are both local and neither owns.
        assert pick_source(seg, 2, cluster) == 2


def _run_broadcast(shared, iterations=4):
    aligned, broadcast = _redundancy_kernels(N)
    app = compile_app([broadcast])
    machine = ClusterSimMachine(k80_cluster(2, 2))
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=4, schedule="sequential", shared_copies=shared),
        machine=machine,
    )
    table = api.cudaMalloc(NBYTES)
    out = api.cudaMalloc(NBYTES)
    api.cudaMemcpy(
        table, np.linspace(0.0, 1.0, N, dtype=np.float32), NBYTES, MemcpyKind.HostToDevice
    )
    api.cudaMemset(out, 0, NBYTES)
    grid, block = Dim3(N // 128), Dim3(128)
    for _ in range(iterations):
        api.launch(broadcast, grid, block, [table, out])
    result = np.zeros(N, dtype=np.float32)
    api.cudaMemcpy(result, out, NBYTES, MemcpyKind.DeviceToHost)
    return api, broadcast, (table, out), grid, block, result


class TestClusterTraffic:
    def test_inter_node_bytes_and_tier_time_drop(self):
        api_off, *_, ref = _run_broadcast(shared=False)
        api_on, *_, got = _run_broadcast(shared=True)
        assert np.array_equal(ref, got)
        assert api_on.stats.inter_node_bytes < api_off.stats.inter_node_bytes
        assert api_on.stats.inter_node_transfers < api_off.stats.inter_node_transfers
        assert api_on.stats.redundant_bytes_avoided > 0
        tiers_off = api_off.machine.trace.transfer_exposure_by_tier()
        tiers_on = api_on.machine.trace.transfer_exposure_by_tier()
        inter_off = tiers_off["inter"]["hidden"] + tiers_off["inter"]["exposed"]
        inter_on = tiers_on["inter"]["hidden"] + tiers_on["inter"]["exposed"]
        assert inter_on < inter_off

    def test_one_node_cluster_identical_to_flat_with_shared_copies(self):
        """The 1-node bitwise/clock equivalence must survive the new flag."""
        aligned, broadcast = _redundancy_kernels(N)
        app = compile_app([broadcast])
        outs = []
        for machine in (None, ClusterSimMachine(k80_cluster(1, 4))):
            api = MultiGpuApi(
                app,
                RuntimeConfig(n_gpus=4, shared_copies=True),
                machine=machine,
            )
            table = api.cudaMalloc(NBYTES)
            out = api.cudaMalloc(NBYTES)
            api.cudaMemcpy(
                table,
                np.linspace(0.0, 1.0, N, dtype=np.float32),
                NBYTES,
                MemcpyKind.HostToDevice,
            )
            api.cudaMemset(out, 0, NBYTES)
            for _ in range(3):
                api.launch(broadcast, Dim3(N // 128), Dim3(128), [table, out])
            result = np.zeros(N, dtype=np.float32)
            api.cudaMemcpy(result, out, NBYTES, MemcpyKind.DeviceToHost)
            outs.append((result, [table.coherence_state(), out.coherence_state()]))
        assert np.array_equal(outs[0][0], outs[1][0])
        assert outs[0][1] == outs[1][1]


class TestGangHaloView:
    def test_halo_intervals_shrink_once_shared(self):
        api, kernel, (table, out), grid, block, _ = _run_broadcast(shared=True)
        cluster = api.cluster
        ck = api.app.kernel(kernel.name)
        # A fresh plan after warm-up: every node already shares the table,
        # so the interval-keyed halo view must be empty.
        plan = build_launch_plan(api, ck, grid, block, [table, out])
        gang = build_gang_plan(plan, cluster)
        gang.validate()
        assert gang.halo_bytes == 0
        assert gang.halo_intervals() == {}

        api_off, kernel_off, (table_off, out_off), grid, block, _ = _run_broadcast(
            shared=False
        )
        ck_off = api_off.app.kernel(kernel_off.name)
        plan_off = build_launch_plan(api_off, ck_off, grid, block, [table_off, out_off])
        gang_off = build_gang_plan(plan_off, api_off.cluster)
        gang_off.validate()
        assert gang_off.halo_bytes > 0
        intervals = gang_off.halo_intervals()
        assert table_off.vb_id in intervals
        for lo, hi in intervals[table_off.vb_id]:
            assert 0 <= lo < hi <= NBYTES
