"""ClusterSpec: validation, device mapping, and routing."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.constants import HOST
from repro.errors import CalibrationError
from repro.sim.topology import MachineSpec


def _cluster(n_nodes=2, gpus_per_node=4, **kw) -> ClusterSpec:
    return ClusterSpec(n_nodes=n_nodes, node=MachineSpec(n_gpus=gpus_per_node), **kw)


class TestValidation:
    def test_defaults_are_valid(self):
        c = ClusterSpec()
        assert c.n_nodes == 2
        assert c.total_gpus == 2 * c.node.n_gpus

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_nodes": 0},
            {"nic_lanes": 0},
            {"nic_bw": 0.0},
            {"fabric_bw": -1.0},
            {"net_latency": -1e-6},
            {"head_node": 2},
            {"head_node": -1},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(CalibrationError):
            ClusterSpec(node=MachineSpec(n_gpus=4), **kw)

    def test_with_shape(self):
        c = _cluster().with_shape(4, 2)
        assert (c.n_nodes, c.gpus_per_node, c.total_gpus) == (4, 2, 8)
        # Node spec fields other than the GPU count are preserved.
        assert c.node.pcie_bw == _cluster().node.pcie_bw


class TestMapping:
    def test_round_trip(self):
        c = _cluster(3, 4)
        for dev in range(c.total_gpus):
            node, local = c.node_of(dev), c.local_of(dev)
            assert c.global_device(node, local) == dev
            assert dev in c.devices_of(node)

    def test_devices_of_is_contiguous(self):
        c = _cluster(2, 4)
        assert c.devices_of(0) == (0, 1, 2, 3)
        assert c.devices_of(1) == (4, 5, 6, 7)

    def test_out_of_range_rejected(self):
        c = _cluster(2, 4)
        with pytest.raises(CalibrationError):
            c.node_of(8)
        with pytest.raises(CalibrationError):
            c.global_device(2, 0)
        with pytest.raises(CalibrationError):
            c.global_device(0, 4)
        with pytest.raises(CalibrationError):
            c.devices_of(2)

    def test_host_lives_on_head_node(self):
        assert _cluster().endpoint_node(HOST) == 0
        c = ClusterSpec(n_nodes=2, node=MachineSpec(n_gpus=4), head_node=1)
        assert c.endpoint_node(HOST) == 1
        assert c.same_node(HOST, 4) and not c.same_node(HOST, 0)


class TestRouting:
    def test_same_node_delegates_to_node_spec(self):
        c = _cluster(2, 4)
        assert c.route(0, 1) == c.node.route(0, 1)
        assert c.route(4, 5, p2p=True).kind == "p2p"
        assert c.route(HOST, 0).kind == "host"

    def test_cross_node_is_network(self):
        c = _cluster(2, 4)
        r = c.route(0, 4)
        assert r.kind == "network" and r.network and not r.staged
        assert r.net_factor == 1.0
        # No peer DMA across the fabric: the p2p flag changes nothing.
        assert c.route(0, 4, p2p=True) == r
        # H2D into a non-head node crosses the network too.
        assert c.route(HOST, 4).network

    def test_network_transfer_time_monotone_and_latency_bound(self):
        c = _cluster()
        base = c.network_transfer_time(0)
        assert base == pytest.approx(
            c.node.pcie_latency + c.node.staging_latency + c.net_latency
        )
        assert c.network_transfer_time(1 << 20) > base
        # The slowest pipeline stage bounds the streaming rate.
        slow = c.network_transfer_time(1 << 24) - base
        assert slow == pytest.approx((1 << 24) / min(c.node.pcie_bw, c.nic_bw))

    def test_network_slower_than_intra_node_p2p(self):
        c = _cluster()
        nbytes = 1 << 22
        # The NIC (6.8 GB/s) is the narrowest pipe: a cross-node copy is
        # always slower than a direct peer-DMA copy inside a node.
        assert c.network_transfer_time(nbytes) > c.node.transfer_time(
            0, 1, nbytes, p2p=True
        )
