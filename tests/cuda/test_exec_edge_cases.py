"""Edge-case tests for the vectorized interpreter and the access tracer."""

import numpy as np
import pytest

from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32, f64, i64
from repro.cuda.exec.interpreter import AccessTrace, run_kernel
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.exprs import GridIdx
from repro.cuda.ir.stmts import Store
from repro.cuda.ir.kernel import Kernel
from repro.errors import ExecutionError


class TestBlockOffRegister:
    def test_blockoff_equals_product(self):
        """The synthetic blockOff register evaluates to blockIdx*blockDim."""
        body = (
            Store(
                "out",
                (GridIdx("blockIdx", "x"),),
                GridIdx("blockOff", "x"),
            ),
        )
        from repro.cuda.ir.exprs import Const
        from repro.cuda.ir.kernel import ArrayParam

        k = Kernel("bo", (ArrayParam("out", f32, (Const(8, i64),)),), body)
        out = np.zeros(8, dtype=np.float32)
        run_kernel(k, Dim3(8), Dim3(4), {"out": out})
        assert np.array_equal(out, np.arange(8, dtype=np.float32) * 4)


class TestSelectAndMath:
    def test_select(self):
        kb = KernelBuilder("sel")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            out[gi,] = kb.select(gi < 4, 1.0, -1.0)
        k = kb.finish()
        out = np.zeros(8, dtype=np.float32)
        run_kernel(k, Dim3(1), Dim3(8), {"n": 8, "out": out})
        assert np.array_equal(out, np.where(np.arange(8) < 4, 1.0, -1.0).astype(np.float32))

    def test_min_max(self):
        kb = KernelBuilder("mm")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            v = kb.minimum(gi + 0.0 if False else kb.f32const(0.0) + gi, 5.0)
            out[gi,] = kb.maximum(v, 2.0)
        k = kb.finish()
        out = np.zeros(10, dtype=np.float32)
        run_kernel(k, Dim3(2), Dim3(5), {"n": 10, "out": out})
        assert np.array_equal(out, np.clip(np.arange(10), 2, 5).astype(np.float32))

    def test_pow_exp_log(self):
        kb = KernelBuilder("mth")
        n = kb.scalar("n")
        a = kb.array("a", f64, (n,))
        out = kb.array("out", f64, (n,))
        gi = kb.global_id("x")
        from repro.cuda.ir.exprs import Call

        with kb.if_(gi < n):
            from repro.cuda.ir.builder import Val

            x = a[gi,]
            out[gi,] = Val(Call("pow", (x.expr, x.expr))) + Val(Call("exp", (x.expr,))) + Val(
                Call("log", (x.expr,))
            )
        k = kb.finish()
        vals = np.array([1.0, 2.0, 3.0], dtype=np.float64)
        out = np.zeros(3, dtype=np.float64)
        run_kernel(k, Dim3(1), Dim3(3), {"n": 3, "a": vals, "out": out})
        assert np.allclose(out, vals**vals + np.exp(vals) + np.log(vals))


class TestTracer:
    def test_trace_reads_and_writes(self):
        kb = KernelBuilder("tr")
        n = kb.scalar("n")
        src = kb.array("src", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_((gi > 0) & (gi < n)):
            dst[gi,] = src[gi - 1,]
        k = kb.finish()
        trace = AccessTrace()
        src_a = np.ones(16, dtype=np.float32)
        dst_a = np.zeros(16, dtype=np.float32)
        run_kernel(k, Dim3(2), Dim3(8), {"n": 16, "src": src_a, "dst": dst_a}, trace=trace)
        assert trace.reads["src"] == set(range(0, 15))
        assert trace.writes["dst"] == set(range(1, 16))

    def test_trace_2d_flattened(self):
        kb = KernelBuilder("tr2")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n, n))
        gy, gx = kb.global_id("y"), kb.global_id("x")
        with kb.if_((gy < n) & (gx < n)):
            a[gy, gx] = 1.0
        k = kb.finish()
        trace = AccessTrace()
        arr = np.zeros((4, 4), dtype=np.float32)
        run_kernel(k, Dim3(2, 2), Dim3(2, 2), {"n": 4, "a": arr}, trace=trace)
        assert trace.writes["a"] == set(range(16))

    def test_trace_unmasked_kernel(self):
        kb = KernelBuilder("tr3")
        out = kb.array("out", f32, (16,))
        gi = kb.global_id("x")
        out[gi,] = 2.0
        k = kb.finish()
        trace = AccessTrace()
        arr = np.zeros(16, dtype=np.float32)
        run_kernel(k, Dim3(2), Dim3(8), {"out": arr}, trace=trace)
        assert trace.writes["out"] == set(range(16))
        assert "out" not in trace.reads


class TestZAxisAndVolume:
    def test_3d_grid_execution(self):
        kb = KernelBuilder("three")
        out = kb.array("out", f32, (2, 3, 4))
        gz = kb.global_id("z")
        gy = kb.global_id("y")
        gx = kb.global_id("x")
        out[gz, gy, gx] = gz * 100 + gy * 10 + gx
        k = kb.finish()
        arr = np.zeros((2, 3, 4), dtype=np.float32)
        run_kernel(k, Dim3(x=2, y=3, z=2), Dim3(x=2), {"out": arr})
        for z in range(2):
            for y in range(3):
                for x in range(4):
                    assert arr[z, y, x] == z * 100 + y * 10 + x

    def test_empty_loop_body_ok(self):
        kb = KernelBuilder("loop0")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            with kb.for_range("i", 5, 5):
                pass
            out[gi,] = 1.0
        k = kb.finish()
        arr = np.zeros(4, dtype=np.float32)
        run_kernel(k, Dim3(1), Dim3(4), {"n": 4, "out": arr})
        assert np.all(arr == 1.0)
