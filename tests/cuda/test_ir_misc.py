"""Tests for IR visitors, kernel introspection and partition params."""

import pytest

from repro.compiler.kernel_partition import partition_kernel
from repro.cuda.dtypes import f32, i64
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.exprs import BinOp, Const, GridIdx, Load, Param
from repro.cuda.ir.kernel import (
    ArrayParam,
    Kernel,
    PartitionParam,
    ScalarParam,
    partition_field_name,
)
from repro.cuda.ir.printer import kernel_to_cuda
from repro.cuda.ir.stmts import Store
from repro.cuda.ir.visitors import map_exprs_in_body, transform_kernel, walk_body, walk_expr
from repro.errors import ValidationError


def _kernel():
    kb = KernelBuilder("k")
    n = kb.scalar("n")
    a = kb.array("a", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        acc = kb.let("acc", a[gi,] + 1.0)
        with kb.for_range("i", 0, 3):
            kb.assign(acc, acc * 2.0)
        a[gi,] = acc
    return kb.finish()


class TestKernelIntrospection:
    def test_param_lookup(self):
        k = _kernel()
        assert k.param("n").name == "n"
        assert k.param_index("a") == 1
        with pytest.raises(ValidationError):
            k.param("ghost")
        with pytest.raises(ValidationError):
            k.param_index("ghost")

    def test_param_kind_properties(self):
        k = _kernel()
        assert [p.name for p in k.scalar_params] == ["n"]
        assert [p.name for p in k.array_params] == ["a"]
        assert k.partition_param is None and not k.is_partitioned

    def test_partition_param_fields(self):
        p = PartitionParam("partition")
        names = p.field_names()
        assert len(names) == 6
        assert partition_field_name("partition", "min_x") in names
        assert not p.is_array

    def test_duplicate_param_names_rejected(self):
        with pytest.raises(ValidationError):
            Kernel("k", (ScalarParam("n"), ScalarParam("n")), ())

    def test_str_renders_cuda(self):
        assert "__global__" in str(_kernel())


class TestVisitors:
    def test_walk_expr_counts_nodes(self):
        k = _kernel()
        cond = k.body[0].cond
        nodes = list(walk_expr(cond))
        assert sum(isinstance(n, GridIdx) for n in nodes) == 3  # bi, bd, ti

    def test_walk_body_recurses(self):
        k = _kernel()
        stmts = list(walk_body(k.body))
        kinds = {type(s).__name__ for s in stmts}
        assert kinds == {"If", "Let", "For", "Assign", "Store"}

    def test_identity_transform_preserves_body(self):
        k = _kernel()
        same = transform_kernel(k, lambda e: e)
        assert same.body == k.body
        assert same.params == k.params

    def test_transform_rewrites_everywhere(self):
        k = _kernel()

        def bump_consts(e):
            if isinstance(e, Const) and e._dtype is i64 and e.value == 3:
                return Const(5, i64)
            return e

        rewritten = transform_kernel(k, bump_consts)
        texts = kernel_to_cuda(rewritten)
        assert "i < 5" in texts

    def test_transform_can_add_params(self):
        k = _kernel()
        extra = ScalarParam("extra")
        out = transform_kernel(k, lambda e: e, name="k2", extra_params=(extra,))
        assert out.name == "k2"
        assert out.param("extra") is extra


class TestPartitionedPrinter:
    def test_partitioned_kernel_renders(self):
        pk = partition_kernel(_kernel())
        src = kernel_to_cuda(pk)
        assert "partition_t partition" in src
        assert "__partition_min_x" in src
