"""Unit tests for scalar types and dim3."""

import numpy as np
import pytest

from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import boolean, f32, f64, i32, i64, promote


class TestDTypes:
    def test_numpy_mapping(self):
        assert f32.to_numpy() == np.dtype("float32")
        assert i64.to_numpy() == np.dtype("int64")
        assert boolean.to_numpy() == np.dtype("bool")

    def test_sizes(self):
        assert f32.size == 4 and f64.size == 8 and i32.size == 4 and i64.size == 8

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (i32, i64, i64),
            (i64, f32, f32),
            (f32, f64, f64),
            (boolean, i32, i32),
            (f32, f32, f32),
        ],
    )
    def test_promotion(self, a, b, expected):
        assert promote(a, b) is expected
        assert promote(b, a) is expected


class TestDim3:
    def test_defaults(self):
        d = Dim3(4)
        assert (d.x, d.y, d.z) == (4, 1, 1)

    def test_of_coercions(self):
        assert Dim3.of(5) == Dim3(5)
        assert Dim3.of((2, 3)) == Dim3(x=2, y=3)
        assert Dim3.of((2, 3, 4)) == Dim3(x=2, y=3, z=4)
        d = Dim3(7)
        assert Dim3.of(d) is d

    def test_volume(self):
        assert Dim3(2, 3, 4).volume == 24

    def test_zyx_order(self):
        assert Dim3(x=1, y=2, z=3).zyx() == (3, 2, 1)

    def test_axis_accessor(self):
        d = Dim3(x=5, y=6, z=7)
        assert d.axis("x") == 5 and d.axis("y") == 6 and d.axis("z") == 7

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            Dim3(bad)
