"""Unit tests for simulated devices and the single-device CUDA API."""

import numpy as np
import pytest

from repro.cuda.api import CudaApi, MemcpyKind, host_bytes
from repro.cuda.device import DevPtr, Device
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import RuntimeApiError
from repro.sim.engine import SimMachine
from repro.sim.topology import MachineSpec


class TestDevice:
    def test_alloc_free_accounting(self):
        d = Device(0)
        p = d.alloc(1024)
        assert d.bytes_allocated == 1024
        d.free(p)
        assert d.bytes_allocated == 0

    def test_use_after_free(self):
        d = Device(0)
        p = d.alloc(64)
        d.free(p)
        with pytest.raises(RuntimeApiError):
            d.bytes_view(p)

    def test_wrong_device_pointer(self):
        d0, d1 = Device(0), Device(1)
        p = d0.alloc(64)
        with pytest.raises(RuntimeApiError):
            d1.bytes_view(p)

    def test_typed_view_shares_memory(self):
        d = Device(0)
        p = d.alloc(64)
        view = d.typed_view(p, np.dtype("float32"), (4, 4))
        view[1, 2] = 7.0
        raw = d.bytes_view(p).view(np.float32)
        assert raw[6] == 7.0

    def test_typed_view_too_large(self):
        d = Device(0)
        p = d.alloc(64)
        with pytest.raises(RuntimeApiError):
            d.typed_view(p, np.dtype("float32"), (5, 5))

    def test_timing_only_device_has_no_bytes(self):
        d = Device(0, functional=False)
        p = d.alloc(1 << 32)  # 4 GiB bookkept, not materialized
        assert d.bytes_allocated == 1 << 32
        with pytest.raises(RuntimeApiError):
            d.bytes_view(p)

    def test_nonpositive_alloc(self):
        with pytest.raises(RuntimeApiError):
            Device(0).alloc(0)


class TestHostBytes:
    def test_noncontiguous_rejected(self):
        a = np.zeros((8, 8), dtype=np.float32)[:, ::2]
        with pytest.raises(RuntimeApiError):
            host_bytes(a)

    def test_view_is_shared(self):
        a = np.zeros(4, dtype=np.float32)
        host_bytes(a)[:4] = np.frombuffer(np.float32(1.0).tobytes(), dtype=np.uint8)
        assert a[0] == 1.0


class TestCudaApi:
    def test_memcpy_roundtrip(self, rng):
        api = CudaApi()
        src = rng.random(16, dtype=np.float32)
        dst = np.zeros(16, dtype=np.float32)
        p = api.cudaMalloc(64)
        api.cudaMemcpy(p, src, 64, MemcpyKind.HostToDevice)
        api.cudaMemcpy(dst, p, 64, MemcpyKind.DeviceToHost)
        assert np.array_equal(src, dst)

    def test_d2d_on_single_device(self, rng):
        api = CudaApi()
        src = rng.random(16, dtype=np.float32)
        a = api.cudaMalloc(64)
        b = api.cudaMalloc(64)
        api.cudaMemcpy(a, src, 64, MemcpyKind.HostToDevice)
        api.cudaMemcpy(b, a, 64, MemcpyKind.DeviceToDevice)
        out = np.zeros(16, dtype=np.float32)
        api.cudaMemcpy(out, b, 64, MemcpyKind.DeviceToHost)
        assert np.array_equal(out, src)

    def test_device_count_is_one(self):
        assert CudaApi().cudaGetDeviceCount() == 1

    def test_launch_with_timing_machine(self, rng):
        machine = SimMachine(MachineSpec(n_gpus=1))
        api = CudaApi(machine=machine, kernel_cost=lambda k, nb, b, s: 1e-3)
        kb = KernelBuilder("noop")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            a[gi,] = 0.0
        k = kb.finish()
        p = api.cudaMalloc(64)
        api.launch(k, Dim3(2), Dim3(8), [16, p])
        api.cudaDeviceSynchronize()
        assert machine.elapsed() >= 1e-3

    def test_launch_arity_checked(self):
        api = CudaApi()
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        k = kb.finish()
        with pytest.raises(RuntimeApiError):
            api.launch(k, Dim3(1), Dim3(1), [])

    def test_array_arg_must_be_devptr(self):
        api = CudaApi()
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        kb.array("a", f32, (n,))
        k = kb.finish()
        with pytest.raises(RuntimeApiError):
            api.launch(k, Dim3(1), Dim3(1), [4, np.zeros(4, dtype=np.float32)])
