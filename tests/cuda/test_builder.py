"""Unit tests for the kernel builder DSL."""

import pytest

from repro.cuda.dtypes import boolean, f32, i64
from repro.cuda.ir.builder import KernelBuilder, Val
from repro.cuda.ir.exprs import BinOp, Const, GridIdx, Load, Param
from repro.cuda.ir.stmts import Assign, For, If, Let, Store
from repro.errors import ValidationError


class TestParameters:
    def test_scalar_param(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        assert isinstance(n.expr, Param)
        k = kb.finish()
        assert [p.name for p in k.scalar_params] == ["n"]

    def test_array_param_with_symbolic_shape(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n, n * 2))
        k = kb.finish()
        assert k.array_params[0].ndim == 2

    def test_duplicate_params_rejected(self):
        kb = KernelBuilder("k")
        kb.scalar("n")
        kb.scalar("n")
        with pytest.raises(ValidationError):
            kb.finish()


class TestExpressions:
    def test_global_id_emits_literal_idiom(self):
        kb = KernelBuilder("k")
        g = kb.global_id("x")
        e = g.expr
        assert isinstance(e, BinOp) and e.op == "add"
        assert isinstance(e.lhs, BinOp) and e.lhs.op == "mul"
        regs = {e.lhs.lhs.register, e.lhs.rhs.register}
        assert regs == {"blockIdx", "blockDim"}
        assert e.rhs.register == "threadIdx"

    def test_operator_overloads_produce_ir(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        e = (n + 1) * 2 - n
        assert isinstance(e.expr, BinOp)

    def test_float_literal_inherits_dtype(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        v = a[n - 1] * 0.5
        # literal coerced to f32 so arithmetic stays f32
        assert v.dtype is f32

    def test_comparisons_are_boolean(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        assert (n < 5).dtype is boolean
        assert ((n < 5) & (n > 0)).dtype is boolean

    def test_invert(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        assert (~(n < 5)).dtype is boolean


class TestStatements:
    def test_store_via_setitem(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            a[gi,] = 1.0
        k = kb.finish()
        assert isinstance(k.body[0], If)
        assert isinstance(k.body[0].then[0], Store)

    def test_wrong_rank_rejected(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n, n))
        with pytest.raises(ValidationError):
            a[n]  # 1 index for 2-d array

    def test_let_and_assign(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        s = kb.array("s", f32, (n,))
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("i", 0, n) as i:
            kb.assign(acc, acc + 1.0)
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            s[gi,] = acc
        k = kb.finish()
        kinds = [type(st) for st in k.body]
        assert kinds == [Let, For, If]

    def test_assign_requires_local(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        with pytest.raises(ValidationError):
            kb.assign(n, 5)

    def test_otherwise_pairs_with_if(self):
        kb = KernelBuilder("k")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            a[gi,] = 1.0
        with kb.otherwise():
            pass
        k = kb.finish()
        assert isinstance(k.body[-1], If)

    def test_otherwise_without_if_rejected(self):
        kb = KernelBuilder("k")
        with pytest.raises(ValidationError):
            with kb.otherwise():
                pass

    def test_unclosed_block_detected(self):
        kb = KernelBuilder("k")
        kb._blocks.append([])  # simulate an unclosed context
        with pytest.raises(ValidationError):
            kb.finish()
