"""Unit tests for the vectorized kernel interpreter."""

import numpy as np
import pytest

from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32, f64, i64
from repro.cuda.exec.interpreter import eval_scalar_expr, run_kernel
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.exprs import BinOp, Const, Param
from repro.errors import ExecutionError


def _copy_kernel(guarded=True):
    kb = KernelBuilder("copy")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    if guarded:
        with kb.if_(gi < n):
            dst[gi,] = src[gi,]
    else:
        dst[gi,] = src[gi,]
    return kb.finish()


class TestBasicExecution:
    def test_copy_exact_grid(self, rng):
        k = _copy_kernel()
        src = rng.random(32, dtype=np.float32)
        dst = np.zeros(32, dtype=np.float32)
        run_kernel(k, Dim3(4), Dim3(8), {"n": 32, "src": src, "dst": dst})
        assert np.array_equal(dst, src)

    def test_guard_masks_overhang(self, rng):
        k = _copy_kernel()
        src = rng.random(30, dtype=np.float32)
        dst = np.zeros(30, dtype=np.float32)
        # 4 blocks x 8 threads = 32 threads for 30 elements.
        run_kernel(k, Dim3(4), Dim3(8), {"n": 30, "src": src, "dst": dst})
        assert np.array_equal(dst, src)

    def test_unguarded_overhang_raises(self, rng):
        k = _copy_kernel(guarded=False)
        src = rng.random(30, dtype=np.float32)
        dst = np.zeros(30, dtype=np.float32)
        with pytest.raises(ExecutionError, match="out-of-bounds"):
            run_kernel(k, Dim3(4), Dim3(8), {"n": 30, "src": src, "dst": dst})

    def test_missing_argument_raises(self):
        k = _copy_kernel()
        with pytest.raises(ExecutionError, match="missing argument"):
            run_kernel(k, Dim3(1), Dim3(8), {"n": 8})

    def test_grid_intrinsics(self):
        kb = KernelBuilder("grid")
        out = kb.array("out", f32, (64,))
        gi = kb.global_id("x")
        v = kb.gridDim.x * 1000 + kb.blockDim.x * 10 + kb.blockIdx.x
        with kb.if_(gi < 64):
            out[gi,] = v
        k = kb.finish()
        out = np.zeros(64, dtype=np.float32)
        run_kernel(k, Dim3(8), Dim3(8), {"out": out})
        assert out[0] == 8 * 1000 + 8 * 10 + 0
        assert out[63] == 8 * 1000 + 8 * 10 + 7


class TestControlFlow:
    def test_if_else_lanes(self):
        kb = KernelBuilder("sel")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            with kb.if_(gi % 2 .__eq__(0) if False else (gi % 2).eq(0)):
                out[gi,] = 1.0
            with kb.otherwise():
                out[gi,] = 2.0
        k = kb.finish()
        out = np.zeros(16, dtype=np.float32)
        run_kernel(k, Dim3(2), Dim3(8), {"n": 16, "out": out})
        assert np.array_equal(out, np.where(np.arange(16) % 2 == 0, 1.0, 2.0).astype(np.float32))

    def test_masked_assign_accumulator(self):
        # acc += 1 only under a condition; inactive lanes keep their value.
        kb = KernelBuilder("acc")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            acc = kb.let("acc", kb.f32const(0.0))
            with kb.for_range("i", 0, 4) as i:
                with kb.if_(gi >= i):
                    kb.assign(acc, acc + 1.0)
            out[gi,] = acc
        k = kb.finish()
        out = np.zeros(8, dtype=np.float32)
        run_kernel(k, Dim3(1), Dim3(8), {"n": 8, "out": out})
        assert np.array_equal(out, np.minimum(np.arange(8) + 1, 4).astype(np.float32))

    def test_lane_varying_loop_bounds(self):
        # Triangular loop: each lane sums gi ones.
        kb = KernelBuilder("tri")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            acc = kb.let("acc", kb.f32const(0.0))
            with kb.for_range("i", 0, gi) as i:
                kb.assign(acc, acc + 1.0)
            out[gi,] = acc
        k = kb.finish()
        out = np.zeros(8, dtype=np.float32)
        run_kernel(k, Dim3(1), Dim3(8), {"n": 8, "out": out})
        assert np.array_equal(out, np.arange(8, dtype=np.float32))

    def test_loop_scope_cleanup(self):
        # The loop variable disappears after the loop body.
        kb = KernelBuilder("scope")
        n = kb.scalar("n")
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            with kb.for_range("i", 0, 2) as i:
                kb.let("tmp", i + 0)
            out[gi,] = 5.0
        k = kb.finish()
        out = np.zeros(4, dtype=np.float32)
        run_kernel(k, Dim3(1), Dim3(4), {"n": 4, "out": out})
        assert np.all(out == 5.0)


class TestMathAndTypes:
    def test_math_intrinsics(self):
        kb = KernelBuilder("math")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            out[gi,] = kb.sqrt(a[gi,]) + kb.rsqrt(a[gi,]) + kb.abs(-a[gi,])
        k = kb.finish()
        a = np.array([1.0, 4.0, 9.0, 16.0], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        run_kernel(k, Dim3(1), Dim3(4), {"n": 4, "a": a, "out": out})
        expect = np.sqrt(a) + 1 / np.sqrt(a) + np.abs(a)
        assert np.allclose(out, expect)

    def test_f32_stays_f32(self, rng):
        kb = KernelBuilder("f32k")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        out = kb.array("out", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            out[gi,] = a[gi,] * 0.1 + 3.0
        k = kb.finish()
        a = rng.random(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        run_kernel(k, Dim3(1), Dim3(8), {"n": 8, "a": a, "out": out})
        # Bitwise f32 arithmetic, not f64-then-round.
        assert np.array_equal(out, a * np.float32(0.1) + np.float32(3.0))

    def test_eval_scalar_expr(self):
        e = BinOp("add", BinOp("mul", Param("n", i64), Const(4, i64)), Const(2, i64))
        assert eval_scalar_expr(e, {"n": 10}) == 42
