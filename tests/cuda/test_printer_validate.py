"""Unit tests for the CUDA-like printer and the IR validator."""

import pytest

from repro.cuda.dtypes import boolean, f32, i64
from repro.cuda.ir.builder import KernelBuilder
from repro.cuda.ir.exprs import Const, Load, LocalRef, Param
from repro.cuda.ir.kernel import ArrayParam, Kernel, ScalarParam
from repro.cuda.ir.printer import kernel_to_cuda
from repro.cuda.ir.stmts import If, Let, Store
from repro.cuda.ir.validate import validate_kernel
from repro.errors import ValidationError


def _simple_kernel():
    kb = KernelBuilder("demo")
    n = kb.scalar("n")
    a = kb.array("a", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        acc = kb.let("acc", a[gi,] * 2.0)
        with kb.for_range("i", 0, 3) as i:
            kb.assign(acc, acc + 1.0)
        a[gi,] = acc
    return kb.finish()


class TestPrinter:
    def test_renders_signature(self):
        src = kernel_to_cuda(_simple_kernel())
        assert src.startswith("__global__ void demo(")
        assert "long long n" in src and "float* a" in src

    def test_renders_control_flow(self):
        src = kernel_to_cuda(_simple_kernel())
        assert "if (" in src and "for (long long i = 0; i < 3; ++i)" in src

    def test_renders_grid_intrinsics(self):
        src = kernel_to_cuda(_simple_kernel())
        assert "blockIdx.x" in src and "blockDim.x" in src and "threadIdx.x" in src

    def test_f32_literal_suffix(self):
        src = kernel_to_cuda(_simple_kernel())
        assert "2.0f" in src

    def test_flat_index_for_2d(self):
        kb = KernelBuilder("two")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n, n))
        gy, gx = kb.global_id("y"), kb.global_id("x")
        with kb.if_((gy < n) & (gx < n)):
            a[gy, gx] = 0.0
        src = kernel_to_cuda(kb.finish())
        assert "a_dim1" in src  # row-major flattening


class TestValidator:
    def _kernel(self, body, params=()):
        return Kernel("k", tuple(params), tuple(body))

    def test_unknown_local(self):
        k = self._kernel([Let("x", LocalRef("nope", f32))])
        with pytest.raises(ValidationError, match="used before definition"):
            validate_kernel(k)

    def test_unknown_scalar(self):
        k = self._kernel([Let("x", Param("ghost", i64))])
        with pytest.raises(ValidationError, match="unknown scalar"):
            validate_kernel(k)

    def test_store_unknown_array(self):
        k = self._kernel([Store("ghost", (Const(0, i64),), Const(0.0, f32))])
        with pytest.raises(ValidationError, match="unknown array"):
            validate_kernel(k)

    def test_rank_mismatch(self):
        a = ArrayParam("a", f32, (Const(4, i64), Const(4, i64)))
        k = self._kernel([Store("a", (Const(0, i64),), Const(0.0, f32))], [a])
        with pytest.raises(ValidationError, match="dims"):
            validate_kernel(k)

    def test_float_index_rejected(self):
        a = ArrayParam("a", f32, (Const(4, i64),))
        k = self._kernel([Store("a", (Const(0.5, f32),), Const(0.0, f32))], [a])
        with pytest.raises(ValidationError, match="float-typed index"):
            validate_kernel(k)

    def test_nonboolean_condition(self):
        k = self._kernel([If(Const(1, i64), (), ())])
        with pytest.raises(ValidationError, match="not boolean"):
            validate_kernel(k)

    def test_redefined_local(self):
        k = self._kernel([Let("x", Const(1, i64)), Let("x", Const(2, i64))])
        with pytest.raises(ValidationError, match="redefined"):
            validate_kernel(k)

    def test_branch_locals_do_not_leak(self):
        cond = Const(True, None) if False else None
        kb = KernelBuilder("leak")
        n = kb.scalar("n")
        a = kb.array("a", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            kb.let("tmp", kb.f32const(1.0))
        # tmp must not be visible here: building a reference to it by hand
        # and validating must fail.
        k = kb.finish()
        bad = Kernel(k.name, k.params, k.body + (Let("y", LocalRef("tmp", f32)),))
        with pytest.raises(ValidationError):
            validate_kernel(bad)

    def test_array_extent_cannot_use_locals(self):
        a = ArrayParam("a", f32, (LocalRef("x", i64),))
        k = self._kernel([], [a])
        with pytest.raises(ValidationError, match="extent"):
            validate_kernel(k)


class TestValidatorGaps:
    """Gaps closed alongside the static-analysis layer: duplicate parameter
    names, ``Let`` rebinding across scopes, and loads/stores that name a
    scalar parameter as if it were an array."""

    @staticmethod
    def _forged(params, body=()):
        # Bypass the Kernel constructor (which also rejects duplicates) so
        # validate_kernel's own check is exercised.
        k = object.__new__(Kernel)
        object.__setattr__(k, "name", "k")
        object.__setattr__(k, "params", tuple(params))
        object.__setattr__(k, "body", tuple(body))
        return k

    def test_constructor_rejects_duplicate_params(self):
        with pytest.raises(ValidationError, match="duplicate parameter"):
            Kernel("k", (ScalarParam("n", i64), ScalarParam("n", i64)), ())

    def test_validator_rejects_duplicate_params(self):
        k = self._forged([ScalarParam("n", i64), ScalarParam("n", i64)])
        with pytest.raises(ValidationError, match="duplicate parameter name 'n'"):
            validate_kernel(k)

    def test_validator_rejects_scalar_array_name_clash(self):
        a = ArrayParam("n", f32, (Const(4, i64),))
        k = self._forged([ScalarParam("n", i64), a])
        with pytest.raises(ValidationError, match="duplicate parameter name 'n'"):
            validate_kernel(k)

    def test_let_rebinding_inside_branch(self):
        body = [
            Let("x", Const(1, i64)),
            If(Const(True, boolean), (Let("x", Const(2, i64)),), ()),
        ]
        k = Kernel("k", (), tuple(body))
        with pytest.raises(ValidationError, match="redefined"):
            validate_kernel(k)

    def test_store_to_scalar_parameter(self):
        k = Kernel(
            "k",
            (ScalarParam("n", i64),),
            (Store("n", (Const(0, i64),), Const(0.0, f32)),),
        )
        with pytest.raises(ValidationError, match="store to scalar parameter 'n'"):
            validate_kernel(k)

    def test_load_from_scalar_parameter(self):
        k = Kernel(
            "k",
            (ScalarParam("n", i64),),
            (Let("x", Load("n", (Const(0, i64),), f32)),),
        )
        with pytest.raises(ValidationError, match="load from scalar parameter 'n'"):
            validate_kernel(k)
