"""Tests for the cudaMemset replacement (§8.4's 'as required' API growth)."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import RuntimeApiError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig


def test_single_device_memset():
    api = CudaApi()
    p = api.cudaMalloc(64)
    api.cudaMemset(p, 0xAB, 64)
    assert np.all(api.device.bytes_view(p) == 0xAB)


def test_multi_gpu_memset_roundtrip():
    app = compile_app([])
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=3))
    vb = api.cudaMalloc(48)
    api.cudaMemset(vb, 0, 48)
    api.cudaMemset(vb, 0x7F, 30)
    out = np.zeros(48, dtype=np.uint8)
    api.cudaMemcpy(out, vb, 48, MemcpyKind.DeviceToHost)
    assert np.all(out[:30] == 0x7F) and np.all(out[30:] == 0)


def test_memset_updates_trackers():
    app = compile_app([])
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
    vb = api.cudaMalloc(100)
    api.cudaMemset(vb, 1, 100)
    owners = {s.owner for s in vb.tracker.segments()}
    assert owners == {0, 1, 2, 3}


def test_memset_then_kernel_reads_correctly(rng):
    """A kernel launched after memset must see the set values everywhere."""
    kb = KernelBuilder("inc")
    n = kb.scalar("n")
    buf = kb.array("buf", f32, (n,))
    out = kb.array("out", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        out[gi,] = buf[gi,] + 1.0
    k = kb.finish()
    app = compile_app([k])

    def host(api):
        nvals = 32
        d_buf = api.cudaMalloc(nvals * 4)
        d_out = api.cudaMalloc(nvals * 4)
        api.cudaMemset(d_buf, 0, nvals * 4)  # all-zero floats
        api.launch(k, Dim3(4), Dim3(8), [nvals, d_buf, d_out])
        res = np.zeros(nvals, dtype=np.float32)
        api.cudaMemcpy(res, d_out, nvals * 4, MemcpyKind.DeviceToHost)
        return res

    ref = host(CudaApi())
    got = host(MultiGpuApi(app, RuntimeConfig(n_gpus=4)))
    assert np.array_equal(ref, got)
    assert np.all(got == 1.0)


def test_memset_oversize_rejected():
    app = compile_app([])
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=2))
    vb = api.cudaMalloc(16)
    with pytest.raises(RuntimeApiError):
        api.cudaMemset(vb, 0, 32)
