"""API misuse paths and async/sync memcpy timing semantics."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.device import Device
from repro.errors import RuntimeApiError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sim.engine import SimMachine
from repro.sim.topology import MachineSpec


class TestMisuse:
    def test_free_requires_virtual_buffer(self):
        api = MultiGpuApi(compile_app([]), RuntimeConfig(n_gpus=2))
        with pytest.raises(RuntimeApiError):
            api.cudaFree(object())

    def test_double_free(self):
        api = MultiGpuApi(compile_app([]), RuntimeConfig(n_gpus=2))
        vb = api.cudaMalloc(16)
        api.cudaFree(vb)
        with pytest.raises(RuntimeApiError):
            api.cudaFree(vb)

    def test_use_after_free(self, rng):
        api = MultiGpuApi(compile_app([]), RuntimeConfig(n_gpus=2))
        vb = api.cudaMalloc(16)
        api.cudaFree(vb)
        with pytest.raises(RuntimeApiError):
            api.cudaMemcpy(vb, np.zeros(4, dtype=np.float32), 16, MemcpyKind.HostToDevice)

    def test_machine_gpu_count_mismatch(self):
        machine = SimMachine(MachineSpec(n_gpus=2))
        with pytest.raises(RuntimeApiError):
            MultiGpuApi(
                compile_app([]), RuntimeConfig(n_gpus=4), machine=machine, functional=False
            )

    def test_launch_unknown_kernel(self):
        from repro.cuda.dim3 import Dim3
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder
        from repro.errors import PartitioningError

        kb = KernelBuilder("ghost")
        kb.scalar("n")
        ghost = kb.finish()
        api = MultiGpuApi(compile_app([]), RuntimeConfig(n_gpus=2))
        with pytest.raises(PartitioningError, match="no kernel"):
            api.launch(ghost, Dim3(1), Dim3(1), [1])


class TestAsyncTiming:
    def _timed_api(self):
        spec = MachineSpec(
            n_gpus=1, pcie_bw=1e9, pcie_latency=0.0, issue_overhead=0.0,
            sync_overhead=0.0, host_bus_bw=1e12,
        )
        machine = SimMachine(spec)
        return CudaApi(Device(0, functional=False), machine=machine, functional=False), machine

    def test_sync_memcpy_blocks_host(self):
        api, machine = self._timed_api()
        p = api.cudaMalloc(int(1e9))
        api.cudaMemcpy(p, None, int(1e9), MemcpyKind.HostToDevice)
        assert machine.now == pytest.approx(1.0)

    def test_async_memcpy_returns_immediately(self):
        api, machine = self._timed_api()
        p = api.cudaMalloc(int(1e9))
        api.cudaMemcpyAsync(p, None, int(1e9), MemcpyKind.HostToDevice)
        assert machine.now == pytest.approx(0.0)
        assert machine.elapsed() == pytest.approx(1.0)
        api.cudaDeviceSynchronize()
        assert machine.now == pytest.approx(1.0)

    def test_multi_gpu_h2d_chunks_overlap(self):
        spec = MachineSpec(
            n_gpus=4, pcie_bw=1e9, pcie_latency=0.0, issue_overhead=0.0,
            sync_overhead=0.0, host_bus_bw=1e12,
        )
        machine = SimMachine(spec)
        api = MultiGpuApi(
            compile_app([]), RuntimeConfig(n_gpus=4), machine=machine, functional=False
        )
        vb = api.cudaMalloc(int(4e9))
        api.cudaMemcpyAsync(vb, None, int(4e9), MemcpyKind.HostToDevice)
        # Four 1 GB chunks on four independent lanes: ~1 s, not 4 s.
        assert machine.elapsed() == pytest.approx(1.0, rel=0.05)

    def _multi_api(self, schedule):
        spec = MachineSpec(
            n_gpus=2, pcie_bw=1e9, pcie_latency=0.0, issue_overhead=0.0,
            sync_overhead=0.0, host_bus_bw=1e12,
        )
        machine = SimMachine(spec)
        api = MultiGpuApi(
            compile_app([]),
            RuntimeConfig(n_gpus=2, schedule=schedule),
            machine=machine,
            functional=False,
        )
        return api, machine

    @pytest.mark.parametrize("schedule", ["sequential", "overlap", "overlap+p2p"])
    def test_stream_synchronize_is_the_completion_point(self, schedule):
        api, machine = self._multi_api(schedule)
        vb = api.cudaMalloc(int(2e9))
        stream = api.cudaStreamCreate()
        api.cudaMemcpyAsync(vb, None, int(2e9), MemcpyKind.HostToDevice, stream=stream)
        assert machine.now < 1e-4  # enqueue returns immediately (host bookkeeping only)
        api.cudaStreamSynchronize(stream)
        assert machine.now == pytest.approx(1.0, rel=1e-3)  # two 1 GB chunks, two lanes

    @pytest.mark.parametrize("schedule", ["sequential", "overlap"])
    def test_default_stream_collects_unassigned_copies(self, schedule):
        api, machine = self._multi_api(schedule)
        vb = api.cudaMalloc(int(2e9))
        api.cudaMemcpyAsync(vb, None, int(2e9), MemcpyKind.HostToDevice)
        other = api.cudaStreamCreate()
        api.cudaStreamSynchronize(other)  # empty stream: no wait
        assert machine.now < 1e-4
        api.cudaStreamSynchronize()  # default stream: the copies' completion
        assert machine.now == pytest.approx(1.0, rel=1e-3)
