"""Unit tests for virtual buffers and translated memcopies (§8.1-8.2)."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.device import Device
from repro.errors import RuntimeApiError, UnsupportedMemcpyError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.runtime.memcpy import linear_chunks
from repro.runtime.vbuffer import VirtualBuffer


def _api(n_gpus=4, kernels=()):
    app = compile_app(list(kernels))
    return MultiGpuApi(app, RuntimeConfig(n_gpus=n_gpus))


class TestVirtualBuffer:
    def test_instance_per_device(self):
        devices = [Device(i) for i in range(3)]
        vb = VirtualBuffer(1, 256, devices)
        assert sorted(vb.instances) == [0, 1, 2]
        assert vb.tracker.n_segments == 1

    def test_instances_are_independent(self):
        devices = [Device(i) for i in range(2)]
        vb = VirtualBuffer(1, 16, devices)
        vb.bytes_on(0)[:] = 1
        assert np.all(vb.bytes_on(1) == 0)

    def test_free(self):
        devices = [Device(i) for i in range(2)]
        vb = VirtualBuffer(1, 16, devices)
        vb.free()
        with pytest.raises(RuntimeApiError):
            vb.bytes_on(0)
        assert devices[0].bytes_allocated == 0

    def test_unknown_device(self):
        vb = VirtualBuffer(1, 16, [Device(0)])
        with pytest.raises(RuntimeApiError):
            vb.instance(5)


class TestLinearChunks:
    def test_balanced(self):
        assert linear_chunks(10, 3) == [(0, 0, 4), (1, 4, 7), (2, 7, 10)]

    def test_exact(self):
        assert linear_chunks(8, 4) == [(0, 0, 2), (1, 2, 4), (2, 4, 6), (3, 6, 8)]

    def test_more_parts_than_bytes(self):
        chunks = linear_chunks(2, 4)
        assert chunks == [(0, 0, 1), (1, 1, 2)]

    def test_covers_everything_in_order(self):
        chunks = linear_chunks(1234, 7)
        assert chunks[0][1] == 0 and chunks[-1][2] == 1234
        for (_, _, e), (_, s, _) in zip(chunks, chunks[1:]):
            assert e == s


class TestTranslatedMemcpy:
    def test_h2d_scatters_linearly(self, rng):
        api = _api(4)
        data = rng.integers(0, 255, 64, dtype=np.uint8)
        vb = api.cudaMalloc(64)
        api.cudaMemcpy(vb, data, 64, MemcpyKind.HostToDevice)
        # Each device holds its linear slice; tracker records ownership.
        for dev, lo, hi in linear_chunks(64, 4):
            assert np.array_equal(vb.bytes_on(dev)[lo:hi], data[lo:hi])
            assert vb.tracker.owner_at(lo) == dev

    def test_d2h_gathers_via_tracker(self, rng):
        api = _api(3)
        vb = api.cudaMalloc(30)
        # Scatter manually with funny ownership.
        vb.bytes_on(2)[0:10] = 7
        vb.bytes_on(0)[10:20] = 8
        vb.bytes_on(1)[20:30] = 9
        vb.tracker.update(0, 10, 2)
        vb.tracker.update(10, 20, 0)
        vb.tracker.update(20, 30, 1)
        out = np.zeros(30, dtype=np.uint8)
        api.cudaMemcpy(out, vb, 30, MemcpyKind.DeviceToHost)
        assert np.all(out[0:10] == 7) and np.all(out[10:20] == 8) and np.all(out[20:30] == 9)

    def test_h2d_d2h_roundtrip(self, rng):
        api = _api(5)
        data = rng.random(25).astype(np.float32)
        vb = api.cudaMalloc(100)
        api.cudaMemcpy(vb, data, 100, MemcpyKind.HostToDevice)
        out = np.zeros(25, dtype=np.float32)
        api.cudaMemcpy(out, vb, 100, MemcpyKind.DeviceToHost)
        assert np.array_equal(out, data)

    def test_d2d_unsupported(self):
        api = _api(2)
        a = api.cudaMalloc(16)
        b = api.cudaMalloc(16)
        with pytest.raises(UnsupportedMemcpyError):
            api.cudaMemcpy(a, b, 16, MemcpyKind.DeviceToDevice)

    def test_h2h_passthrough(self, rng):
        api = _api(2)
        src = rng.random(8).astype(np.float32)
        dst = np.zeros(8, dtype=np.float32)
        api.cudaMemcpy(dst, src, 32, MemcpyKind.HostToHost)
        assert np.array_equal(src, dst)

    def test_oversized_memcpy_rejected(self, rng):
        api = _api(2)
        vb = api.cudaMalloc(16)
        with pytest.raises(RuntimeApiError):
            api.cudaMemcpy(vb, np.zeros(8, dtype=np.float32), 32, MemcpyKind.HostToDevice)

    def test_api_prototype_parity(self):
        """§8.4: replacements share prototypes with the single-device API."""
        from repro.cuda.api import CudaApi

        for name in (
            "cudaMalloc",
            "cudaFree",
            "cudaMemcpy",
            "cudaMemcpyAsync",
            "cudaDeviceSynchronize",
            "cudaGetDeviceCount",
            "launch",
        ):
            assert hasattr(MultiGpuApi, name) and hasattr(CudaApi, name)

    def test_device_count_lies(self):
        """§8.4: cudaGetDeviceCount always returns 1."""
        assert _api(8).cudaGetDeviceCount() == 1
