"""Irredundant transfers (`RuntimeConfig.irredundant_transfers`).

Trimming planned synchronization copies to the exact polyhedral read set
must be *functionally invisible*: bitwise-identical host-visible buffers
and identical final tracker state (segments, owners, sharer sets) across
every schedule policy, shared-copy mode and pipeline window — while
strictly reducing sync traffic on the decimating stencil whose strided
reads leave bounding-range slack, flat and across a cluster's inter-node
tier. Kernels whose enumerators are exact short-circuit the oracle and pay
nothing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.engine import ClusterSimMachine
from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.harness.calibration import K80_NODE_SPEC, k80_cluster
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.engine import SimMachine
from repro.workloads.common import functional_config
from repro.workloads.dstencil import DStencilWorkload, src_shape
from repro.workloads.hotspot import HotspotWorkload

ALL_POLICIES = tuple(SCHEDULES) + ("auto",)


def _run_dstencil(
    wl,
    inputs,
    *,
    n_gpus=4,
    schedule="sequential",
    shared=True,
    window=1,
    irredundant=False,
    machine=None,
):
    api = MultiGpuApi(
        compile_app([wl.kernel]),
        RuntimeConfig(
            n_gpus=n_gpus,
            schedule=schedule,
            shared_copies=shared,
            pipeline_window=window,
            irredundant_transfers=irredundant,
        ),
        machine=machine,
    )
    n = wl.cfg.size
    rows, cols = src_shape(n)
    grid, block = wl.launch_config()
    d_src = api.cudaMalloc(rows * cols * 4)
    d_out = api.cudaMalloc(n * n * 4)
    api.cudaMemcpy(d_src, inputs["src"], rows * cols * 4, MemcpyKind.HostToDevice)
    api.cudaMemset(d_out, 0, n * n * 4)
    for _ in range(wl.cfg.iterations):
        api.launch(wl.kernel, grid, block, [d_src, d_out])
    out = np.zeros((n, n), dtype=np.float32)
    api.cudaMemcpy(out, d_out, n * n * 4, MemcpyKind.DeviceToHost)
    api.cudaDeviceSynchronize()
    trackers = [vb.coherence_state() for vb in (d_src, d_out)]
    return out, trackers, api.stats


@pytest.fixture(scope="module")
def workload():
    wl = DStencilWorkload(functional_config("dstencil"))
    return wl, wl.make_inputs(0)


def _owner_map(state):
    """Canonical per-byte owner assignment of each buffer's state.

    Segment *boundaries* legitimately differ between runs (sharer
    registration fragments them), so adjacent same-owner runs are merged
    before comparing.
    """
    out = []
    for segs in state:
        merged = []
        for lo, hi, owner, _sharers in segs:
            if merged and merged[-1][1] == lo and merged[-1][2] == owner:
                merged[-1] = (merged[-1][0], hi, owner)
            else:
                merged.append((lo, hi, owner))
        out.append(merged)
    return out


def _sharer_bytes(state):
    """The set of (buffer, byte, gpu) sharer registrations."""
    out = set()
    for b, segs in enumerate(state):
        for lo, hi, _owner, sharers in segs:
            for gpu in sharers:
                out.update((b, x, gpu) for x in range(lo, hi))
    return out


class TestFunctionallyInvisible:
    @settings(max_examples=12, deadline=None)
    @given(
        schedule=st.sampled_from(ALL_POLICIES),
        shared=st.booleans(),
        window=st.sampled_from([1, 4]),
        n_gpus=st.sampled_from([2, 4]),
    )
    def test_bitwise_identical_and_tracker_sound(
        self, workload, schedule, shared, window, n_gpus
    ):
        """The satellite property: toggling the flag changes nothing

        functionally observable under every (schedule, shared, window,
        gpu-count) combination — bitwise-identical outputs, identical
        per-byte ownership — while the trimmed run's sharer registrations
        are a strict subset of the untrimmed run's (a sharer is only ever
        recorded for bytes that were actually copied; trimmed bytes stay
        stale and unregistered, which is exactly why trimming is sound).
        """
        wl, inputs = workload
        base_out, base_trk, base_stats = _run_dstencil(
            wl, inputs, n_gpus=n_gpus, schedule=schedule, shared=shared,
            window=window, irredundant=False,
        )
        irr_out, irr_trk, irr_stats = _run_dstencil(
            wl, inputs, n_gpus=n_gpus, schedule=schedule, shared=shared,
            window=window, irredundant=True,
        )
        assert np.array_equal(base_out, irr_out), (schedule, shared, window, n_gpus)
        assert _owner_map(irr_trk) == _owner_map(base_trk)
        assert _sharer_bytes(irr_trk) <= _sharer_bytes(base_trk)
        assert irr_stats.sync_bytes < base_stats.sync_bytes
        assert irr_stats.overapprox_bytes_avoided > 0
        assert base_stats.overapprox_bytes_avoided == 0

    @pytest.mark.parametrize("irredundant", [False, True])
    def test_tracker_state_schedule_invariant(self, workload, irredundant):
        """Within a fixed flag setting, the final tracker state (segments,

        owners, sharer sets) is identical under all four schedule policies
        and both pipeline windows — trimming happens at planning time,
        before any policy reorders device work.
        """
        wl, inputs = workload
        runs = {
            (sched, window): _run_dstencil(
                wl, inputs, schedule=sched, window=window, irredundant=irredundant
            )
            for sched in ALL_POLICIES
            for window in (1, 4)
        }
        ref_out, ref_trk, ref_stats = runs[("sequential", 1)]
        for key, (out, trk, stats) in runs.items():
            assert np.array_equal(out, ref_out), key
            assert trk == ref_trk, key
            assert stats.sync_bytes == ref_stats.sync_bytes, key

    def test_matches_reference(self, workload):
        wl, inputs = workload
        ref = wl.reference(inputs)["out"]
        out, _, _ = _run_dstencil(wl, inputs, irredundant=True)
        assert np.array_equal(out, ref)


class TestReduction:
    def test_strict_reduction_per_policy(self, workload):
        """Measured numbers: sole-owner 6096 -> 3072, shared 1524 -> 768,

        identical under every policy (planning is schedule-independent).
        """
        wl, inputs = workload
        for schedule in ALL_POLICIES:
            for shared, (want_base, want_irr) in (
                (False, (6096, 3072)),
                (True, (1524, 768)),
            ):
                _, _, base = _run_dstencil(
                    wl, inputs, schedule=schedule, shared=shared, irredundant=False
                )
                _, _, irr = _run_dstencil(
                    wl, inputs, schedule=schedule, shared=shared, irredundant=True
                )
                assert base.sync_bytes == want_base, (schedule, shared)
                assert irr.sync_bytes == want_irr, (schedule, shared)

    def test_cluster_inter_node_tier_shrinks(self, workload):
        wl, inputs = workload
        cluster = k80_cluster(2, 2)
        _, _, base = _run_dstencil(
            wl, inputs, machine=ClusterSimMachine(cluster), irredundant=False
        )
        out, _, irr = _run_dstencil(
            wl, inputs, machine=ClusterSimMachine(cluster), irredundant=True
        )
        assert irr.inter_node_bytes < base.inter_node_bytes
        assert irr.overapprox_bytes_avoided_inter > 0
        assert (
            irr.overapprox_bytes_avoided_inter < irr.overapprox_bytes_avoided
        )  # intra-node trims exist too
        assert np.array_equal(out, wl.reference(inputs)["out"])

    def test_sim_and_functional_stats_agree(self, workload):
        """The SimMachine path charges the same counters as functional."""
        wl, inputs = workload
        _, _, fn = _run_dstencil(wl, inputs, irredundant=True)
        _, _, sim = _run_dstencil(
            wl,
            inputs,
            machine=SimMachine(K80_NODE_SPEC.with_gpus(4)),
            irredundant=True,
        )
        assert sim.sync_bytes == fn.sync_bytes
        assert sim.overapprox_bytes_avoided == fn.overapprox_bytes_avoided
        assert sim.redundant_bytes_avoided == fn.redundant_bytes_avoided


class TestExactEnumeratorsShortCircuit:
    def test_hotspot_is_a_no_op(self):
        """hotspot's enumerator images are exact: the oracle short-circuits,

        nothing is trimmed, and traffic is byte-identical with the flag on.
        """
        wl = HotspotWorkload(functional_config("hotspot"))
        inputs = wl.make_inputs(0)
        stats = {}
        for irr in (False, True):
            api = MultiGpuApi(
                compile_app(wl.build_kernels()),
                RuntimeConfig(
                    n_gpus=4, shared_copies=True, irredundant_transfers=irr
                ),
            )
            out = wl.run(api, inputs)
            stats[irr] = (api.stats.sync_bytes, api.stats.overapprox_bytes_avoided, out)
        assert stats[True][0] == stats[False][0]
        assert stats[True][1] == 0
        for k in stats[False][2]:
            assert np.array_equal(stats[False][2][k], stats[True][2][k])
