"""Residual replay cache: digests, replay arithmetic, invalidation soundness.

The staged planner's third stage memoizes fully materialized residuals
(stale-copy plans plus their counters) keyed by ``(launch fingerprint,
footprint digest vector)``. These tests pin:

* the :meth:`~repro.runtime.tracker.SegmentTracker.footprint_digest`
  contract — clipped, canonical, sensitive to any ownership or sharer
  change inside the footprint;
* the replay arithmetic — a converged ping-pong misses once per
  (fingerprint, coherence state) and replays forever after;
* invalidation soundness — direct host-side mutations (memcpy, memset,
  free) change the digest and force a miss, never a stale replay;
* the configurable LRU capacities of both planner caches under eviction
  pressure;
* a hypothesis property interleaving launches with random buffer
  mutations and planning-config flips against a replay-off oracle.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import TrackerError
from repro.runtime.api import HOST_PLANNER_COUNTERS, MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.runtime.tracker import SegmentTracker

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)


def _build_stencil():
    """A ping-pong 2-D stencil whose halos cross partition boundaries."""
    kb = KernelBuilder("rcstencil")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < N) & (gx < N)):
        with kb.if_((gy >= 1) & (gy < N - 1) & (gx >= 1) & (gx < N - 1)):
            acc = src[gy - 1, gx] + src[gy + 1, gx]
            acc = acc + src[gy, gx - 1] + src[gy, gx + 1]
            dst[gy, gx] = acc * 0.25
        with kb.otherwise():
            dst[gy, gx] = src[gy, gx]
    return kb.finish()


def _build_axpy():
    """A 1-D kernel whose scalar ``n`` varies the launch fingerprint."""
    kb = KernelBuilder("rcaxpy")
    n = kb.scalar("n")
    x = kb.array("x", f32, (n,))
    y = kb.array("y", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        y[gi,] = y[gi,] + x[gi,] * 2.0
    return kb.finish()


class TestFootprintDigest:
    def test_fresh_tracker_single_segment(self):
        t = SegmentTracker(100)
        assert t.footprint_digest([(0, 100)]) == ((0, 100, 0, frozenset()),)

    def test_clips_to_the_runs(self):
        t = SegmentTracker(100)
        t.update(20, 60, 3)
        digest = t.footprint_digest([(30, 50)])
        assert digest == ((30, 50, 3, frozenset()),)

    def test_multiple_runs_concatenate_in_order(self):
        t = SegmentTracker(100)
        t.update(40, 100, 1)
        digest = t.footprint_digest([(0, 10), (35, 45)])
        assert digest == (
            (0, 10, 0, frozenset()),
            (35, 40, 0, frozenset()),
            (40, 45, 1, frozenset()),
        )

    def test_empty_runs_digest_empty(self):
        t = SegmentTracker(100)
        assert t.footprint_digest([]) == ()

    def test_ownership_change_changes_the_digest(self):
        t = SegmentTracker(100)
        before = t.footprint_digest([(0, 100)])
        t.update(10, 20, 2)
        assert t.footprint_digest([(0, 100)]) != before

    def test_sharer_change_changes_the_digest(self):
        t = SegmentTracker(100)
        before = t.footprint_digest([(0, 100)])
        t.add_sharer(0, 50, 1)
        after = t.footprint_digest([(0, 100)])
        assert after != before
        assert after[0][3] == frozenset({1})

    def test_change_outside_the_footprint_is_invisible(self):
        t = SegmentTracker(100)
        before = t.footprint_digest([(0, 40)])
        t.update(60, 80, 2)
        assert t.footprint_digest([(0, 40)]) == before

    def test_digest_is_canonical_across_histories(self):
        # Two different update histories converging to the same segment
        # map must digest identically (eager coalescing is canonical).
        a = SegmentTracker(100)
        a.update(0, 50, 1)
        a.update(50, 100, 1)
        b = SegmentTracker(100)
        b.update(0, 100, 2)
        b.update(0, 100, 1)
        assert a.footprint_digest([(0, 100)]) == b.footprint_digest([(0, 100)])

    def test_charges_no_query_ops(self):
        # The digest is the replay cache's key probe; charging it as a
        # tracker query would make replay hits observable in the stats.
        t = SegmentTracker(100)
        t.footprint_digest([(0, 100)])
        assert t.op_counts["query"] == 0

    def test_rejects_bad_ranges(self):
        t = SegmentTracker(100)
        with pytest.raises(TrackerError):
            t.footprint_digest([(50, 40)])


class _Harness:
    """One functional stencil ping-pong run with direct-mutation hooks."""

    def __init__(self, **config_kwargs):
        self.kernel = _build_stencil()
        app = compile_app([self.kernel])
        self.api = MultiGpuApi(app, RuntimeConfig(n_gpus=4, **config_kwargs))
        self.nbytes = N * N * 4
        self.a = self.api.cudaMalloc(self.nbytes)
        self.b = self.api.cudaMalloc(self.nbytes)
        self.data = np.random.default_rng(5).random((N, N)).astype(np.float32)
        self.api.cudaMemcpy(self.a, self.data, self.nbytes, MemcpyKind.HostToDevice)
        self.api.cudaMemset(self.b, 0, self.nbytes)
        self.src, self.dst = self.a, self.b

    def step(self):
        self.api.launch(self.kernel, GRID, BLOCK, [self.src, self.dst])
        self.src, self.dst = self.dst, self.src

    def converge(self, steps=4):
        for _ in range(steps):
            self.step()
        return (
            self.api.stats.residual_cache_hits,
            self.api.stats.residual_cache_misses,
        )


class TestReplayArithmetic:
    def test_converged_ping_pong_replays(self):
        h = _Harness()
        h.converge(6)
        s = h.api.stats
        # Buffer identities are not part of either key, so the whole
        # ping-pong shares one fingerprint. The coherence state converges
        # after the first pair of launches: two misses (one per parity
        # of the first iteration), replays from there on.
        assert s.plan_cache_misses == 1
        assert s.residual_cache_misses + s.residual_cache_hits == 6
        assert s.residual_cache_hits >= 4
        assert s.residual_cache_evictions == 0
        # Replay hits are a subset of plan-cache (skeleton) hits.
        assert s.residual_cache_hits <= s.plan_cache_hits

    def test_disabled_cache_counts_nothing(self):
        h = _Harness(residual_cache=False)
        hits, misses = h.converge(6)
        assert hits == 0 and misses == 0
        assert h.api.residual_cache is None

    def test_replay_skips_tracker_planning_but_mirrors_queries(self):
        cached = _Harness()
        cached.converge(6)
        oracle = _Harness(residual_cache=False)
        oracle.converge(6)
        # Replay is stats-invisible: the mirrored query counts (and every
        # other counter) match the uncached oracle exactly.
        mask = {name: 0 for name in HOST_PLANNER_COUNTERS}
        assert dataclasses.replace(cached.api.stats, **mask) == dataclasses.replace(
            oracle.api.stats, **mask
        )


class TestDirectMutationsMiss:
    """memcpy/memset/free between launches must change the digest.

    The mutations cover *half* the buffer: a full-buffer memset or H2D
    upload at 4 GPUs happens to restore exactly the converged linear
    ownership pattern, in which case an (equally sound) replay is correct.
    A half-buffer mutation redistributes ownership and must miss.
    """

    def _converged(self):
        h = _Harness()
        h.converge(6)
        return h, h.api.stats.residual_cache_misses

    def test_memset_forces_a_miss(self):
        h, misses = self._converged()
        h.api.cudaMemset(h.src, 0, h.nbytes // 2)
        h.step()
        assert h.api.stats.residual_cache_misses > misses

    def test_h2d_memcpy_forces_a_miss(self):
        h, misses = self._converged()
        h.api.cudaMemcpy(h.src, h.data, h.nbytes // 2, MemcpyKind.HostToDevice)
        h.step()
        assert h.api.stats.residual_cache_misses > misses

    def test_free_and_remalloc_forces_a_miss(self):
        # Replacing the *read* buffer swaps in a fresh sole-owner tracker,
        # whose digest cannot match the converged partitioned ownership.
        h, misses = self._converged()
        h.api.cudaFree(h.src)
        h.src = h.api.cudaMalloc(h.nbytes)
        h.step()
        assert h.api.stats.residual_cache_misses > misses

    def test_restoring_the_same_coherence_state_may_replay(self):
        # The converse witness for the half-buffer choice above: a
        # full-buffer memset at 4 GPUs recreates the exact linear
        # ownership the ping-pong converged to, so the digest matches and
        # the launch replays — soundly, because equal digests mean equal
        # tracker answers.
        h, misses = self._converged()
        h.api.cudaMemset(h.src, 0, h.nbytes)
        h.step()
        assert h.api.stats.residual_cache_misses == misses

    def test_mutated_run_stays_bitwise_correct(self):
        def run(residual_cache):
            h = _Harness(residual_cache=residual_cache)
            h.converge(4)
            h.api.cudaMemset(h.src, 0, h.nbytes)
            h.converge(3)
            out = np.zeros((N, N), dtype=np.float32)
            h.api.cudaMemcpy(out, h.src, h.nbytes, MemcpyKind.DeviceToHost)
            return out, [vb.coherence_state() for vb in (h.a, h.b)]

        out_on, trackers_on = run(True)
        out_off, trackers_off = run(False)
        assert np.array_equal(out_on, out_off)
        assert trackers_on == trackers_off


class TestEvictionPressure:
    """Satellite: configurable capacities, LRU behaviour beyond them."""

    def _drive_sizes(self, api, kernel, sizes):
        cap = 1 << 12
        x, y = api.cudaMalloc(cap * 4), api.cudaMalloc(cap * 4)
        api.cudaMemset(x, 0, cap * 4)
        api.cudaMemset(y, 0, cap * 4)
        for n in sizes:
            api.launch(kernel, Dim3(n // 32), Dim3(32), [n, x, y])

    def test_cycling_distinct_fingerprints_evicts(self):
        kernel = _build_axpy()
        app = compile_app([kernel])
        api = MultiGpuApi(
            app,
            RuntimeConfig(
                n_gpus=2, plan_cache_capacity=4, residual_cache_capacity=4
            ),
        )
        # Eight distinct scalar sizes = eight distinct fingerprints
        # through a capacity-4 LRU: every launch misses, the second half
        # evicts the first.
        sizes = [128 * (i + 1) for i in range(8)]
        self._drive_sizes(api, kernel, sizes)
        s = api.stats
        assert s.plan_cache_misses == 8 and s.plan_cache_hits == 0
        assert s.plan_cache_evictions == 4
        assert s.residual_cache_misses == 8 and s.residual_cache_hits == 0
        assert s.residual_cache_evictions == 4
        # LRU: the evicted first half misses again, evicting the second.
        self._drive_sizes(api, kernel, sizes[:4])
        assert s.plan_cache_misses == 12
        assert s.plan_cache_evictions == 8

    def test_large_capacity_never_evicts(self):
        kernel = _build_axpy()
        app = compile_app([kernel])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=2))
        self._drive_sizes(api, kernel, [128 * (i + 1) for i in range(8)] * 2)
        s = api.stats
        assert s.plan_cache_evictions == 0
        assert s.residual_cache_evictions == 0
        # All eight skeletons survive to the second pass; residual hits
        # need the coherence state to recur too, which the interleaved
        # writes only grant some of the sizes.
        assert s.plan_cache_hits == 8
        assert s.residual_cache_hits > 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(Exception):
            RuntimeConfig(n_gpus=2, plan_cache_capacity=0)
        with pytest.raises(Exception):
            RuntimeConfig(n_gpus=2, residual_cache_capacity=-1)


@settings(max_examples=12, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["launch", "memset", "h2d", "flip", "launch", "launch"]),
        min_size=4,
        max_size=12,
    ),
    seed=st.integers(0, 3),
)
def test_replay_is_invisible_under_random_interleavings(ops, seed):
    """Hypothesis: launches x mutations x config flips vs replay-off oracle.

    Whatever interleaving of kernel launches, host-side buffer mutations
    and planning-config flips we drive, the replay-cached run must be
    indistinguishable from the replay-off oracle in outputs, tracker
    state and every stat outside the planner counters.
    """
    kernel = _build_stencil()
    app = compile_app([kernel])
    data = np.random.default_rng(seed).random((N, N)).astype(np.float32)

    def run(residual_cache):
        api = MultiGpuApi(
            app, RuntimeConfig(n_gpus=4, residual_cache=residual_cache)
        )
        nbytes = N * N * 4
        a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
        api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
        api.cudaMemset(b, 0, nbytes)
        src, dst = a, b
        irredundant = False
        for op in ops:
            if op == "launch":
                api.launch(kernel, GRID, BLOCK, [src, dst])
                src, dst = dst, src
            elif op == "memset":
                api.cudaMemset(src, 0, nbytes // 2)
            elif op == "h2d":
                api.cudaMemcpy(src, data, nbytes, MemcpyKind.HostToDevice)
            elif op == "flip":
                irredundant = not irredundant
                api.config = dataclasses.replace(
                    api.config, irredundant_transfers=irredundant
                )
        out_a = np.zeros((N, N), dtype=np.float32)
        out_b = np.zeros((N, N), dtype=np.float32)
        api.cudaMemcpy(out_a, a, nbytes, MemcpyKind.DeviceToHost)
        api.cudaMemcpy(out_b, b, nbytes, MemcpyKind.DeviceToHost)
        mask = {name: 0 for name in HOST_PLANNER_COUNTERS}
        return (
            (out_a, out_b),
            [vb.coherence_state() for vb in (a, b)],
            dataclasses.replace(api.stats, **mask),
        )

    cached = run(True)
    oracle = run(False)
    assert np.array_equal(cached[0][0], oracle[0][0])
    assert np.array_equal(cached[0][1], oracle[0][1])
    assert cached[1] == oracle[1]
    assert cached[2] == oracle[2]
