"""Tests for runtime configuration (α/β/γ modes)."""

import pytest

from repro.errors import RuntimeApiError
from repro.runtime.config import RuntimeConfig


class TestValidation:
    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.n_gpus == 1
        assert cfg.transfers_enabled and cfg.tracking_enabled
        assert cfg.sync_transfers_active

    def test_zero_gpus_rejected(self):
        with pytest.raises(RuntimeApiError):
            RuntimeConfig(n_gpus=0)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(RuntimeApiError):
            RuntimeConfig(h2d_distribution="round_robin")


class TestMeasurementModes:
    def test_alpha(self):
        cfg = RuntimeConfig(n_gpus=4).alpha()
        assert cfg.transfers_enabled and cfg.tracking_enabled
        assert cfg.n_gpus == 4

    def test_beta_disables_transfers_only(self):
        cfg = RuntimeConfig(n_gpus=4).beta()
        assert not cfg.transfers_enabled
        assert cfg.tracking_enabled
        assert not cfg.sync_transfers_active

    def test_gamma_disables_tracking(self):
        cfg = RuntimeConfig(n_gpus=4).gamma()
        assert not cfg.tracking_enabled
        assert not cfg.sync_transfers_active

    def test_modes_are_copies(self):
        base = RuntimeConfig(n_gpus=2)
        beta = base.beta()
        assert base.transfers_enabled  # original unchanged
        assert beta is not base
