"""Tests for the write-scan debug audit."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.errors import PartitioningError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.workloads import ALL_WORKLOADS, functional_config


class TestAuditPasses:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_workloads_survive_audit(self, name):
        """All benchmark kernels' scans match real execution, per partition."""
        wl = ALL_WORKLOADS[name](functional_config(name))
        inputs = wl.make_inputs(seed=9)
        app = compile_app(wl.build_kernels())
        api = MultiGpuApi(
            app, RuntimeConfig(n_gpus=3, debug_validate_writes=True)
        )
        wl.run(api, inputs)  # raises if any scan over/under-claims

    def test_audit_with_annotation(self, rng):
        """Correct annotations pass the audit too."""
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder

        kb = KernelBuilder("obf")
        n = kb.scalar("n")
        src = kb.array("src", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[(gi * 2) // 2,] = src[gi,]
        k = kb.finish()
        good = (
            "[bd_x, n] -> { [bo_z, bo_y, bo_x, bi_z, bi_y, bi_x] -> [a0] :"
            " bo_x <= a0 < bo_x + bd_x and 0 <= a0 < n }"
        )
        app = compile_app([k], write_annotations={"obf": {"dst": good}})
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=2, debug_validate_writes=True))
        d_s = api.cudaMalloc(64 * 4)
        d_d = api.cudaMalloc(64 * 4)
        api.cudaMemcpy(d_s, rng.random(64, dtype=np.float32), 64 * 4, MemcpyKind.HostToDevice)
        api.launch(k, Dim3(8), Dim3(8), [64, d_s, d_d])


class TestAuditCatchesLies:
    def test_wrong_annotation_detected(self, rng):
        """A plausible-but-wrong programmer annotation fails at launch."""
        from repro.cuda.dtypes import f32
        from repro.cuda.ir.builder import KernelBuilder

        kb = KernelBuilder("obf2")
        n = kb.scalar("n")
        src = kb.array("src", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[(gi * 2) // 2,] = src[gi,]
        k = kb.finish()
        # Lie: claims each thread writes index + 1.
        wrong = (
            "[bd_x, n] -> { [bo_z, bo_y, bo_x, bi_z, bi_y, bi_x] -> [a0] :"
            " bo_x + 1 <= a0 < bo_x + bd_x + 1 and 1 <= a0 < n }"
        )
        app = compile_app([k], write_annotations={"obf2": {"dst": wrong}})
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=2, debug_validate_writes=True))
        d_s = api.cudaMalloc(64 * 4)
        d_d = api.cudaMalloc(64 * 4)
        api.cudaMemcpy(d_s, rng.random(64, dtype=np.float32), 64 * 4, MemcpyKind.HostToDevice)
        with pytest.raises(PartitioningError, match="write-scan audit failed"):
            api.launch(k, Dim3(8), Dim3(8), [64, d_s, d_d])
