"""``RunStats.merge``: merged per-tenant counters equal whole-run counters."""

from dataclasses import fields

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.runtime.api import MultiGpuApi, RunStats
from repro.runtime.config import RuntimeConfig
from repro.serve.bench import JOB_ELEMS, build_serve_kernel
from repro.serve.runtime import ServeRuntime


def _synthetic(offset):
    """A RunStats with a distinct value in every field (none forgotten)."""
    stats = RunStats()
    for i, f in enumerate(fields(RunStats)):
        if f.name == "auto_choices":
            setattr(stats, f.name, {"sequential": offset + i, "overlap": 1})
        else:
            setattr(stats, f.name, offset + i)
    return stats


def test_merge_covers_every_field():
    a, b = _synthetic(10), _synthetic(500)
    merged = a.merge(b)
    for i, f in enumerate(fields(RunStats)):
        got = getattr(merged, f.name)
        if f.name == "auto_choices":
            assert got == {"sequential": 510 + 2 * i, "overlap": 2}
        elif f.name == "pipeline_max_batch":
            # A max, not a sum: batches never ran concurrently.
            assert got == 500 + i
        else:
            assert got == 510 + 2 * i, f.name


def test_merge_identity_and_originals_untouched():
    empty = RunStats()
    a = _synthetic(3)
    assert a.merge(RunStats()) == a
    assert RunStats().merge(a) == a
    a.merge(a)
    assert a == _synthetic(3)  # merge never mutates its operands
    assert RunStats.merged([]) == empty


def test_merged_folds_a_sequence():
    parts = [_synthetic(k) for k in (0, 100, 1000)]
    folded = RunStats.merged(parts)
    pairwise = parts[0].merge(parts[1]).merge(parts[2])
    assert folded == pairwise


def test_per_tenant_stats_merge_to_whole_run():
    """Serve-path acceptance: tenant stats are isolated and additive.

    Each tenant's counters must equal the counters of the same stream run
    alone, and the aggregate must be their exact fold.
    """
    kernel = build_serve_kernel()
    app = compile_app([kernel])
    config = RuntimeConfig(n_gpus=4)
    grid, block = Dim3(JOB_ELEMS // 128), Dim3(128)
    x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)

    def stream(api, n_jobs):
        dx = api.cudaMalloc(x.nbytes)
        api.cudaMemcpy(dx, x, x.nbytes, MemcpyKind.HostToDevice)
        dy = api.cudaMalloc(x.nbytes)
        api.cudaMemcpy(dy, x, x.nbytes, MemcpyKind.HostToDevice)
        for _ in range(n_jobs):
            api.launch(kernel, grid, block, [JOB_ELEMS, dx, dy])
        api.cudaDeviceSynchronize()

    n_jobs = {0: 2, 1: 3}
    runtime = ServeRuntime(app, config, 2)
    for tenant, count in n_jobs.items():
        runtime.submit(tenant, lambda api, c=count: stream(api, c))
    runtime.drain()

    solo = {}
    for tenant, count in n_jobs.items():
        api = MultiGpuApi(app, config)
        stream(api, count)
        solo[tenant] = api.stats

    for tenant in n_jobs:
        assert runtime.api(tenant).stats == solo[tenant]
    assert runtime.aggregate_stats() == solo[0].merge(solo[1])


def test_aggregate_is_dataclass_equal_not_identity():
    merged = RunStats().merge(RunStats())
    assert merged == RunStats()
    assert merged is not RunStats()
