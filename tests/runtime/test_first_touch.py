"""The ``first_touch`` H2D distribution (partition-aligned scatter)."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.constants import HOST
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import RuntimeApiError
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import H2D_DISTRIBUTIONS, RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.engine import SimMachine

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)
N_GPUS = 4


def _copy_kernel():
    kb = KernelBuilder("copy2d")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < N) & (gx < N)):
        dst[gy, gx] = src[gy, gx] * 2.0
    return kb.finish()


def _api(h2d="first_touch", schedule="sequential", machine=True):
    kernel = _copy_kernel()
    app = compile_app([kernel])
    cfg = RuntimeConfig(n_gpus=N_GPUS, h2d_distribution=h2d, schedule=schedule)
    m = SimMachine(K80_NODE_SPEC.with_gpus(N_GPUS)) if machine else None
    return MultiGpuApi(app, cfg, machine=m, functional=True), app, kernel


class TestConfig:
    def test_constant_lists_both_modes(self):
        assert H2D_DISTRIBUTIONS == ("linear", "first_touch")

    def test_linear_is_default(self):
        assert RuntimeConfig(n_gpus=2).h2d_distribution == "linear"

    def test_unknown_distribution_rejected_with_choices(self):
        with pytest.raises(RuntimeApiError) as exc:
            RuntimeConfig(n_gpus=2, h2d_distribution="striped")
        msg = str(exc.value)
        assert "striped" in msg and "linear" in msg and "first_touch" in msg


class TestSemantics:
    def test_h2d_marks_host_ownership(self):
        api, _, _ = _api()
        nbytes = N * N * 4
        vb = api.cudaMalloc(nbytes)
        data = np.random.default_rng(1).random((N, N)).astype(np.float32)
        api.cudaMemcpy(vb, data, nbytes, MemcpyKind.HostToDevice)
        segs = [(s.start, s.end, s.owner) for s in vb.tracker.query(0, nbytes)]
        assert segs == [(0, nbytes, HOST)]
        assert api.stats.h2d_bytes == nbytes

    def test_first_launch_pulls_partition_read_sets(self):
        api, _, kernel = _api()
        nbytes = N * N * 4
        a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
        data = np.random.default_rng(2).random((N, N)).astype(np.float32)
        api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
        api.cudaMemset(b, 0, nbytes)
        api.launch(kernel, GRID, BLOCK, [a, b])
        # The pointwise kernel reads exactly what each partition needs: the
        # sync traffic equals one full buffer, sourced from the host. The
        # read-only input keeps its HOST ownership (ownership only moves on
        # writes), while the written output lands distributed by *partition*
        # (contiguous row bands), not by the linear byte scatter.
        assert api.stats.sync_bytes == nbytes
        a_segs = [(s.start, s.end, s.owner) for s in a.tracker.query(0, nbytes)]
        assert a_segs == [(0, nbytes, HOST)]
        b_segs = [(s.start, s.end, s.owner) for s in b.tracker.query(0, nbytes)]
        assert len(b_segs) == N_GPUS
        assert all(owner != HOST for _, _, owner in b_segs)
        band = nbytes // N_GPUS
        assert [(s[0], s[1]) for s in b_segs] == [
            (i * band, (i + 1) * band) for i in range(N_GPUS)
        ]

    def test_d2h_from_host_resident_buffer(self):
        # Gathering an untouched first_touch buffer copies from the mirror.
        api, _, _ = _api()
        nbytes = N * N * 4
        vb = api.cudaMalloc(nbytes)
        data = np.random.default_rng(3).random((N, N)).astype(np.float32)
        api.cudaMemcpy(vb, data, nbytes, MemcpyKind.HostToDevice)
        out = np.zeros((N, N), dtype=np.float32)
        api.cudaMemcpy(out, vb, nbytes, MemcpyKind.DeviceToHost)
        assert np.array_equal(out, data)


class TestEquivalence:
    @pytest.mark.parametrize("schedule", tuple(SCHEDULES) + ("auto",))
    def test_output_matches_linear_distribution(self, schedule):
        nbytes = N * N * 4
        data = np.random.default_rng(4).random((N, N)).astype(np.float32)
        outs = {}
        for mode in H2D_DISTRIBUTIONS:
            api, _, kernel = _api(h2d=mode, schedule=schedule)
            a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
            api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
            api.cudaMemset(b, 0, nbytes)
            api.launch(kernel, GRID, BLOCK, [a, b])
            out = np.zeros((N, N), dtype=np.float32)
            api.cudaMemcpy(out, b, nbytes, MemcpyKind.DeviceToHost)
            outs[mode] = out
        assert np.array_equal(outs["linear"], outs["first_touch"])
        assert np.array_equal(outs["linear"], data * 2.0)

    def test_first_touch_avoids_redistribution_traffic(self):
        # With a row-split partitioning, the linear byte scatter happens to
        # coincide with the read sets — but first_touch must never sync
        # *more* than the kernel actually reads.
        nbytes = N * N * 4
        data = np.random.default_rng(5).random((N, N)).astype(np.float32)
        stats = {}
        for mode in H2D_DISTRIBUTIONS:
            api, _, kernel = _api(h2d=mode)
            a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
            api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
            api.cudaMemset(b, 0, nbytes)
            api.launch(kernel, GRID, BLOCK, [a, b])
            stats[mode] = api.stats
        assert stats["first_touch"].sync_bytes <= (
            stats["linear"].sync_bytes + nbytes
        )
