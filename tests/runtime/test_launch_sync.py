"""Unit tests for the Figure 4 launch orchestration and buffer sync (§8.3)."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import CudaApi, MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.errors import PartitioningError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig


def _shift_kernel():
    """dst[i] = src[i-1]: every partition needs one stale element."""
    kb = KernelBuilder("shift")
    n = kb.scalar("n")
    src = kb.array("src", f32, (n,))
    dst = kb.array("dst", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_((gi > 0) & (gi < n)):
        dst[gi,] = src[gi - 1,]
    return kb.finish()


class TestFigure4Flow:
    def test_sync_copies_only_stale_segments(self, rng):
        k = _shift_kernel()
        app = compile_app([k])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        n = 64
        data = rng.random(n, dtype=np.float32)
        d_src = api.cudaMalloc(n * 4)
        d_dst = api.cudaMalloc(n * 4)
        api.cudaMemcpy(d_src, data, n * 4, MemcpyKind.HostToDevice)
        api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
        # Each of partitions 1..3 fetches exactly one stale f32 (its left
        # halo); partition 0 reads only its own chunk.
        assert api.stats.sync_transfers == 3
        assert api.stats.sync_bytes == 3 * 4

    def test_tracker_updated_per_partition(self, rng):
        k = _shift_kernel()
        app = compile_app([k])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        n = 64
        d_src = api.cudaMalloc(n * 4)
        d_dst = api.cudaMalloc(n * 4)
        api.cudaMemcpy(d_src, rng.random(n, dtype=np.float32), n * 4, MemcpyKind.HostToDevice)
        api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
        owners = [s.owner for s in d_dst.tracker.segments()]
        assert owners[:1] == [0]  # byte 0..4 never written: initial owner
        assert set(owners) <= {0, 1, 2, 3}
        assert d_dst.tracker.owner_at(40 * 4) == 2  # element 40 in band 2

    def test_result_matches_reference(self, rng):
        k = _shift_kernel()
        app = compile_app([k])
        n = 64
        data = rng.random(n, dtype=np.float32)

        def host(api):
            d_src = api.cudaMalloc(n * 4)
            d_dst = api.cudaMalloc(n * 4)
            api.cudaMemcpy(d_src, data, n * 4, MemcpyKind.HostToDevice)
            api.cudaMemcpy(d_dst, np.zeros(n, dtype=np.float32), n * 4, MemcpyKind.HostToDevice)
            api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
            out = np.zeros(n, dtype=np.float32)
            api.cudaMemcpy(out, d_dst, n * 4, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        for g in (2, 3, 8):
            got = host(MultiGpuApi(app, RuntimeConfig(n_gpus=g)))
            assert np.array_equal(ref, got), g

    def test_empty_partitions_skipped(self, rng):
        k = _shift_kernel()
        app = compile_app([k])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=8))
        n = 16  # only 2 blocks for 8 GPUs
        d_src = api.cudaMalloc(n * 4)
        d_dst = api.cudaMalloc(n * 4)
        api.cudaMemcpy(d_src, rng.random(n, dtype=np.float32), n * 4, MemcpyKind.HostToDevice)
        api.launch(k, Dim3(2), Dim3(8), [n, d_src, d_dst])
        assert api.stats.partition_launches == 2

    def test_unit_axis_violation_rejected(self, stencil_kernel):
        app = compile_app([stencil_kernel])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=2))
        d1 = api.cudaMalloc(64 * 64 * 4)
        d2 = api.cudaMalloc(64 * 64 * 4)
        with pytest.raises(PartitioningError, match="unit extent"):
            api.launch(stencil_kernel, Dim3(4, 4, 2), Dim3(16, 16), [64, d1, d2])


class TestFallback:
    def _bad_kernel(self):
        kb = KernelBuilder("bad")
        n = kb.scalar("n")
        src = kb.array("src", f32, (n,))
        dst = kb.array("dst", f32, (n,))
        gi = kb.global_id("x")
        with kb.if_(gi < n):
            dst[gi % 4,] = src[gi,]  # non-affine write
        return kb.finish()

    def test_fallback_executes_correctly(self, rng):
        k = self._bad_kernel()
        app = compile_app([k])
        assert not app.kernel("bad").partitionable
        n = 32
        data = rng.random(n, dtype=np.float32)

        def host(api):
            d_src = api.cudaMalloc(n * 4)
            d_dst = api.cudaMalloc(n * 4)
            api.cudaMemcpy(d_src, data, n * 4, MemcpyKind.HostToDevice)
            api.launch(k, Dim3(4), Dim3(8), [n, d_src, d_dst])
            out = np.zeros(n, dtype=np.float32)
            api.cudaMemcpy(out, d_dst, n * 4, MemcpyKind.DeviceToHost)
            return out

        ref = host(CudaApi())
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        got = host(api)
        assert api.stats.fallback_launches == 1
        assert api.stats.partition_launches == 0
        assert np.array_equal(ref, got)

    def test_mixed_app_partitioned_and_fallback(self, rng):
        good = _shift_kernel()
        bad = self._bad_kernel()
        app = compile_app([good, bad])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        n = 32
        data = rng.random(n, dtype=np.float32)
        d_a = api.cudaMalloc(n * 4)
        d_b = api.cudaMalloc(n * 4)
        api.cudaMemcpy(d_a, data, n * 4, MemcpyKind.HostToDevice)
        api.launch(good, Dim3(4), Dim3(8), [n, d_a, d_b])  # partitioned
        api.launch(bad, Dim3(4), Dim3(8), [n, d_b, d_a])  # fallback on gpu0
        out = np.zeros(n, dtype=np.float32)
        api.cudaMemcpy(out, d_a, n * 4, MemcpyKind.DeviceToHost)

        ref_api = CudaApi()
        r_a = ref_api.cudaMalloc(n * 4)
        r_b = ref_api.cudaMalloc(n * 4)
        ref_api.cudaMemcpy(r_a, data, n * 4, MemcpyKind.HostToDevice)
        ref_api.launch(good, Dim3(4), Dim3(8), [n, r_a, r_b])
        ref_api.launch(bad, Dim3(4), Dim3(8), [n, r_b, r_a])
        ref = np.zeros(n, dtype=np.float32)
        ref_api.cudaMemcpy(ref, r_a, n * 4, MemcpyKind.DeviceToHost)
        assert np.array_equal(ref, got if False else out)
        assert api.stats.fallback_launches == 1 and api.stats.partition_launches == 4


class TestAlphaBetaGammaFlags:
    def test_beta_keeps_patterns_skips_copies(self, rng):
        k = _shift_kernel()
        app = compile_app([k])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4).beta())
        n = 64
        d_src = api.cudaMalloc(n * 4)
        d_dst = api.cudaMalloc(n * 4)
        api.cudaMemcpy(d_src, rng.random(n, dtype=np.float32), n * 4, MemcpyKind.HostToDevice)
        api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
        assert api.stats.enumerator_calls > 0  # dependency resolution ran
        assert api.stats.tracker_ops > 0

    def test_gamma_skips_everything(self, rng):
        k = _shift_kernel()
        app = compile_app([k])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4).gamma())
        n = 64
        d_src = api.cudaMalloc(n * 4)
        d_dst = api.cudaMalloc(n * 4)
        api.cudaMemcpy(d_src, rng.random(n, dtype=np.float32), n * 4, MemcpyKind.HostToDevice)
        before = api.stats.enumerator_calls
        api.launch(k, Dim3(8), Dim3(8), [n, d_src, d_dst])
        assert api.stats.enumerator_calls == before
        assert api.stats.sync_transfers == 0
