"""Plan-skeleton cache: LRU mechanics, staleness keys, warm==cold property.

The staged launch planner caches tracker-independent plan skeletons per
launch fingerprint (docs/performance.md). These tests pin:

* the :class:`~repro.runtime.plancache.PlanCache` LRU contract;
* that every planning-relevant ``RuntimeConfig`` field participates in the
  fingerprint, so a knob flip can never serve a stale skeleton;
* the invisibility property — a run with the cache enabled is bitwise
  identical (outputs, trace, tracker state, stats outside the planner
  counters) to the same run with the cache disabled, across the
  ``schedule x shared_copies x pipeline_window`` matrix, on a flat node
  and on a 2x2 cluster.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.harness.calibration import K80_NODE_SPEC, k80_cluster
from repro.runtime.api import HOST_PLANNER_COUNTERS, MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.runtime.fingerprint import PLANNING_CONFIG_FIELDS, launch_fingerprint
from repro.runtime.plancache import PlanCache
from repro.sched.policy import SCHEDULES
from repro.sim.engine import SimMachine

N = 32
BLOCK = Dim3(x=8, y=8)
GRID = Dim3(x=N // 8, y=N // 8)


def _build_stencil(radius=1):
    """A ping-pong 2-D stencil whose halos cross partition boundaries."""
    kb = KernelBuilder("pcstencil")
    src = kb.array("src", f32, (N, N))
    dst = kb.array("dst", f32, (N, N))
    gy, gx = kb.global_id("y"), kb.global_id("x")
    with kb.if_((gy < N) & (gx < N)):
        with kb.if_(
            (gy >= radius) & (gy < N - radius) & (gx >= radius) & (gx < N - radius)
        ):
            acc = src[gy - radius, gx] + src[gy + radius, gx]
            acc = acc + src[gy, gx - radius] + src[gy, gx + radius]
            dst[gy, gx] = acc * 0.25
        with kb.otherwise():
            dst[gy, gx] = src[gy, gx]
    return kb.finish()


class TestPlanCacheLru:
    def test_get_put_and_contains(self):
        cache = PlanCache(capacity=2)
        assert cache.get("a") is None
        assert not cache.put("a", 1)
        assert "a" in cache and cache.get("a") == 1
        assert len(cache) == 1
        cache.clear()
        assert "a" not in cache and len(cache) == 0

    def test_eviction_is_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": now "b" is LRU
        assert cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_put_reports_eviction_only_when_overflowing(self):
        cache = PlanCache(capacity=1)
        assert not cache.put("a", 1)
        assert cache.put("b", 2)
        assert not cache.put("b", 3)  # overwrite, no eviction


def _fingerprint_for(app, kernel, config):
    api = MultiGpuApi(app, config, machine=None, functional=False)
    ck = app.kernel(kernel.name)
    return launch_fingerprint(api, ck, GRID, BLOCK, {}, {"src": (N, N), "dst": (N, N)})


class TestFingerprintStaleness:
    #: One representative flip per planning-relevant config field: each
    #: must change the launch fingerprint, or a knob flip could serve a
    #: skeleton planned under the old setting.
    FLIPS = {
        "n_gpus": 2,
        "transfers_enabled": False,
        "tracking_enabled": False,
        "validate_unit_axes": False,
        "h2d_distribution": "first_touch",
        "shared_copies": True,
        "schedule": "overlap",
        "pipeline_window": 4,
        "irredundant_transfers": True,
        "debug_validate_writes": True,
    }

    def test_every_planning_field_has_a_flip(self):
        assert set(self.FLIPS) == set(PLANNING_CONFIG_FIELDS)

    def test_each_planning_field_changes_the_fingerprint(self):
        kernel = _build_stencil()
        app = compile_app([kernel])
        base_cfg = RuntimeConfig(n_gpus=4)
        base = _fingerprint_for(app, kernel, base_cfg)
        for name, value in self.FLIPS.items():
            assert getattr(base_cfg, name) != value, name
            flipped = _fingerprint_for(
                app, kernel, dataclasses.replace(base_cfg, **{name: value})
            )
            assert flipped != base, f"flipping {name} left the fingerprint unchanged"

    def test_knob_flip_forces_a_rebuild(self):
        """Flipping a planning knob mid-run must miss, not reuse stale plans.

        The flipped run must also behave exactly like an uncached run
        driven through the same flip — outputs and tracker state bitwise.
        """
        kernel = _build_stencil()
        app = compile_app([kernel])

        def drive(plan_cache):
            api = MultiGpuApi(
                app, RuntimeConfig(n_gpus=4, plan_cache=plan_cache)
            )
            nbytes = N * N * 4
            a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
            data = np.random.default_rng(3).random((N, N)).astype(np.float32)
            api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
            api.cudaMemset(b, 0, nbytes)
            api.launch(kernel, GRID, BLOCK, [a, b])
            api.launch(kernel, GRID, BLOCK, [b, a])
            # Live reconfiguration: from here on, copies are trimmed to
            # exact read sets — cached skeletons keyed under the old
            # config must not be reused.
            api.config = dataclasses.replace(api.config, irredundant_transfers=True)
            api.launch(kernel, GRID, BLOCK, [a, b])
            api.launch(kernel, GRID, BLOCK, [b, a])
            out = np.zeros((N, N), dtype=np.float32)
            api.cudaMemcpy(out, a, nbytes, MemcpyKind.DeviceToHost)
            return api, out, [vb.coherence_state() for vb in (a, b)]

        api, out, trackers = drive(plan_cache=True)
        # Buffer identities are not part of the fingerprint, so all four
        # launches share one shape signature — but the flip starts a new
        # config epoch, forcing exactly one fresh miss.
        assert api.stats.plan_cache_misses == 2
        assert api.stats.plan_cache_hits == 2

        _, ref_out, ref_trackers = drive(plan_cache=False)
        assert np.array_equal(out, ref_out)
        assert trackers == ref_trackers

    def test_repeat_launches_hit(self):
        kernel = _build_stencil()
        app = compile_app([kernel])
        api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
        nbytes = N * N * 4
        a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
        api.cudaMemset(a, 0, nbytes)
        api.cudaMemset(b, 0, nbytes)
        for _ in range(3):
            api.launch(kernel, GRID, BLOCK, [a, b])
            api.launch(kernel, GRID, BLOCK, [b, a])
        # Buffer identities are deliberately not part of the key, so the
        # whole ping-pong collapses onto a single fingerprint: one miss,
        # then hits forever.
        assert api.stats.plan_cache_misses == 1
        assert api.stats.plan_cache_hits == 5
        assert api.stats.plan_cache_evictions == 0


def _observe(app, kernel, config, machine, seed):
    """One functional run; everything a warm==cold comparison looks at."""
    api = MultiGpuApi(app, config, machine=machine)
    nbytes = N * N * 4
    a, b = api.cudaMalloc(nbytes), api.cudaMalloc(nbytes)
    data = np.random.default_rng(seed).random((N, N)).astype(np.float32)
    api.cudaMemcpy(a, data, nbytes, MemcpyKind.HostToDevice)
    api.cudaMemset(b, 0, nbytes)
    src, dst = a, b
    for _ in range(3):
        api.launch(kernel, GRID, BLOCK, [src, dst])
        src, dst = dst, src
    out_a = np.zeros((N, N), dtype=np.float32)
    out_b = np.zeros((N, N), dtype=np.float32)
    api.cudaMemcpy(out_a, a, nbytes, MemcpyKind.DeviceToHost)
    api.cudaMemcpy(out_b, b, nbytes, MemcpyKind.DeviceToHost)
    stats = dataclasses.asdict(api.stats)
    planner = {name: stats.pop(name) for name in HOST_PLANNER_COUNTERS}
    return (
        (out_a, out_b),
        [vb.coherence_state() for vb in (a, b)],
        list(machine.trace.intervals),
        stats,
        planner,
    )


def _assert_warm_equals_cold(kernel, app, config_kwargs, make_machine, seed):
    runs = {}
    for cached in (True, False):
        cfg = RuntimeConfig(n_gpus=4, plan_cache=cached, **config_kwargs)
        runs[cached] = _observe(app, kernel, cfg, make_machine(), seed)
    on, off = runs[True], runs[False]
    assert np.array_equal(on[0][0], off[0][0]), config_kwargs
    assert np.array_equal(on[0][1], off[0][1]), config_kwargs
    assert on[1] == off[1], ("tracker state", config_kwargs)
    assert on[2] == off[2], ("trace", config_kwargs)
    assert on[3] == off[3], ("stats", config_kwargs)
    # The cached run really exercised the cache; the uncached run didn't.
    assert on[4]["plan_cache_hits"] > 0 and on[4]["plan_cache_misses"] > 0
    assert off[4]["plan_cache_hits"] == 0 and off[4]["plan_cache_misses"] == 0


@settings(max_examples=10, deadline=None)
@given(
    schedule=st.sampled_from(tuple(SCHEDULES) + ("auto",)),
    shared=st.booleans(),
    window=st.sampled_from([1, 4]),
    radius=st.integers(1, 2),
    seed=st.integers(0, 5),
)
def test_plan_cache_is_invisible(schedule, shared, window, radius, seed):
    """Warm==cold on a flat node over the full configuration matrix."""
    kernel = _build_stencil(radius)
    app = compile_app([kernel])
    _assert_warm_equals_cold(
        kernel,
        app,
        {"schedule": schedule, "shared_copies": shared, "pipeline_window": window},
        lambda: SimMachine(K80_NODE_SPEC.with_gpus(4)),
        seed,
    )


def test_plan_cache_is_invisible_on_a_cluster():
    """Warm==cold with cross-node halos (2x2 cluster, overlap+p2p, fused)."""
    from repro.cluster.engine import ClusterSimMachine

    kernel = _build_stencil()
    app = compile_app([kernel])
    _assert_warm_equals_cold(
        kernel,
        app,
        {"schedule": "overlap+p2p", "shared_copies": True, "pipeline_window": 4},
        lambda: ClusterSimMachine(k80_cluster(2, 2)),
        seed=1,
    )
