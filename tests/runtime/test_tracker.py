"""Unit and property tests for segment trackers (§8.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrackerError
from repro.runtime.tracker import Segment, SegmentTracker


class TestBasics:
    def test_initial_single_segment(self):
        tr = SegmentTracker(100, initial_owner=3)
        assert tr.segments() == [Segment(0, 100, 3)]
        assert tr.owner_at(50) == 3

    def test_update_middle_splits(self):
        tr = SegmentTracker(100, 0)
        tr.update(30, 60, 1)
        assert tr.segments() == [Segment(0, 30, 0), Segment(30, 60, 1), Segment(60, 100, 0)]

    def test_update_prefix_suffix(self):
        tr = SegmentTracker(100, 0)
        tr.update(0, 10, 1)
        tr.update(90, 100, 2)
        assert tr.n_segments == 3
        assert tr.owner_at(0) == 1 and tr.owner_at(99) == 2

    def test_same_owner_coalesces(self):
        tr = SegmentTracker(100, 0)
        tr.update(10, 20, 1)
        tr.update(20, 30, 1)
        assert Segment(10, 30, 1) in tr.segments()
        tr.update(10, 30, 0)
        assert tr.segments() == [Segment(0, 100, 0)]

    def test_update_spanning_multiple_segments(self):
        tr = SegmentTracker(100, 0)
        for i, owner in enumerate([1, 2, 3]):
            tr.update(i * 20, (i + 1) * 20, owner)
        tr.update(10, 55, 9)
        assert tr.query(10, 55) == [Segment(10, 55, 9)]
        tr.check_invariants()

    def test_query_clips(self):
        tr = SegmentTracker(100, 0)
        tr.update(40, 60, 5)
        assert tr.query(50, 55) == [Segment(50, 55, 5)]
        assert tr.query(30, 45) == [Segment(30, 40, 0), Segment(40, 45, 5)]

    def test_zero_length_update_noop(self):
        tr = SegmentTracker(10, 0)
        tr.update(5, 5, 7)
        assert tr.segments() == [Segment(0, 10, 0)]

    def test_out_of_range_rejected(self):
        tr = SegmentTracker(10, 0)
        with pytest.raises(TrackerError):
            tr.query(0, 11)
        with pytest.raises(TrackerError):
            tr.update(-1, 5, 0)

    def test_empty_tracker_rejected(self):
        with pytest.raises(TrackerError):
            SegmentTracker(0)

    def test_one_segment_per_partition_locality(self):
        """§8.1: a 1:1 write pattern keeps one segment per partition."""
        tr = SegmentTracker(1600, 0)
        for gpu in range(4):
            tr.update(gpu * 400, (gpu + 1) * 400, gpu)
        assert tr.n_segments == 4
        # Re-writing the same pattern (next iteration) changes nothing.
        for gpu in range(4):
            tr.update(gpu * 400, (gpu + 1) * 400, gpu)
        assert tr.n_segments == 4


class TestBatchedOps:
    def test_query_many_matches_loop(self):
        tr = SegmentTracker(100, 0)
        tr.update(10, 40, 1)
        tr.update(60, 70, 2)
        ranges = [(5, 15), (35, 65), (90, 100)]
        batched = tr.query_many(ranges)
        single = [s for lo, hi in ranges for s in tr.query(lo, hi)]
        assert batched == single

    def test_update_many_matches_sequential(self):
        a = SegmentTracker(100, 0)
        b = SegmentTracker(100, 0)
        ranges = [(3, 9), (15, 16), (40, 77)]
        a.update_many(ranges, 4)
        for lo, hi in ranges:
            b.update(lo, hi, 4)
        assert a.segments() == b.segments()
        a.check_invariants()

    def test_update_many_preserves_gaps(self):
        tr = SegmentTracker(100, 7)
        tr.update_many([(0, 10), (20, 30)], 1)
        assert tr.owner_at(15) == 7
        assert tr.owner_at(5) == 1 and tr.owner_at(25) == 1

    def test_op_count_accounting(self):
        tr = SegmentTracker(100, 0)
        before = tr.op_count
        tr.query_many([(0, 10), (20, 30), (40, 50)])
        assert tr.op_count == before + 3


segments_strategy = st.lists(
    st.tuples(st.integers(0, 199), st.integers(0, 199), st.integers(0, 5)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(ops=segments_strategy)
def test_tracker_matches_flat_array(ops):
    """Property: the tracker equals a byte-per-slot ownership array."""
    size = 200
    tr = SegmentTracker(size, 0)
    flat = [0] * size
    for a, b, owner in ops:
        lo, hi = min(a, b), max(a, b)
        tr.update(lo, hi, owner)
        flat[lo:hi] = [owner] * (hi - lo)
    tr.check_invariants()
    recon = [None] * size
    for s in tr.segments():
        recon[s.start : s.end] = [s.owner] * s.nbytes
    assert recon == flat


@settings(max_examples=80, deadline=None)
@given(
    ops=segments_strategy,
    cuts=st.lists(st.integers(0, 200), min_size=2, max_size=10, unique=True),
)
def test_update_many_matches_flat_array(ops, cuts):
    size = 200
    tr = SegmentTracker(size, 0)
    flat = [0] * size
    for a, b, owner in ops:
        lo, hi = min(a, b), max(a, b)
        # alternate batched and single-range updates
        if (lo + hi) % 2:
            tr.update(lo, hi, owner)
        else:
            tr.update_many([(lo, hi)], owner)
        flat[lo:hi] = [owner] * (hi - lo)
    cuts = sorted(cuts)
    ranges = [(a, b) for a, b in zip(cuts[::2], cuts[1::2]) if a < b]
    tr.update_many(ranges, 9)
    for lo, hi in ranges:
        flat[lo:hi] = [9] * (hi - lo)
    tr.check_invariants()
    recon = [None] * size
    for s in tr.segments():
        recon[s.start : s.end] = [s.owner] * s.nbytes
    assert recon == flat
