"""Shared-copy tracker semantics vs a naive byte-map reference model.

The :class:`~repro.runtime.tracker.SegmentTracker` keeps an owner plus a
sharer set per coalesced segment; the reference model here keeps one
``(owner, sharers)`` pair *per byte* in a plain list. Random interleavings
of writes (``update`` / ``update_many``), synchronization registrations
(``add_sharer``), and queries must agree byte-for-byte — and with no
``add_sharer`` calls the tracker must reproduce the paper's sole-owner
tracker exactly (segments, counts, and all).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.tracker import Segment, SegmentTracker

SIZE = 200


class ByteModel:
    """Naive dict-of-bytes coherence model: one (owner, sharers) per byte."""

    def __init__(self, size, owner=0):
        self.cells = [(owner, frozenset())] * size

    def update(self, lo, hi, owner):
        invalidated = 1 if any(self.cells[i][1] for i in range(lo, hi)) else 0
        for i in range(lo, hi):
            self.cells[i] = (owner, frozenset())
        return invalidated

    def update_many(self, ranges, owner):
        return sum(self.update(lo, hi, owner) for lo, hi in ranges)

    def add_sharer(self, lo, hi, dev):
        for i in range(lo, hi):
            o, s = self.cells[i]
            if dev != o:
                self.cells[i] = (o, s | {dev})

    def holders(self, i):
        o, s = self.cells[i]
        return s | {o}


def _flatten(tracker):
    cells = [None] * tracker.size
    for s in tracker.segments():
        cells[s.start : s.end] = [(s.owner, s.sharers)] * s.nbytes
    return cells


# One op: (kind, a, b, device) — kind 0 = update, 1 = add_sharer, 2 = batched
# update over the subranges of [a, b).
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(0, SIZE - 1),
        st.integers(0, SIZE - 1),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_sharer_tracker_matches_byte_model(ops):
    """Property: random write/sync interleavings equal the byte map."""
    tr = SegmentTracker(SIZE, 0)
    model = ByteModel(SIZE, 0)
    for kind, a, b, dev in ops:
        lo, hi = min(a, b), max(a, b)
        if kind == 0:
            assert tr.update(lo, hi, dev) == model.update(lo, hi, dev)
        elif kind == 1:
            tr.add_sharer(lo, hi, dev)
            model.add_sharer(lo, hi, dev)
        else:
            third = (hi - lo) // 3
            ranges = [(lo, lo + third), (hi - third, hi)]
            ranges = [(x, y) for x, y in ranges if x < y]
            assert tr.update_many(ranges, dev) == model.update_many(ranges, dev)
        tr.check_invariants()
    assert _flatten(tr) == model.cells


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy, probe=st.integers(0, SIZE - 1))
def test_holders_at_matches_byte_model(ops, probe):
    tr = SegmentTracker(SIZE, 0)
    model = ByteModel(SIZE, 0)
    for kind, a, b, dev in ops:
        lo, hi = min(a, b), max(a, b)
        if kind == 1:
            tr.add_sharer(lo, hi, dev)
            model.add_sharer(lo, hi, dev)
        else:
            tr.update(lo, hi, dev)
            model.update(lo, hi, dev)
    assert tr.holders_at(probe) == model.holders(probe)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, SIZE - 1), st.integers(0, SIZE - 1), st.integers(0, 5)),
        min_size=1,
        max_size=40,
    )
)
def test_sole_owner_mode_reproduces_legacy_tracker(ops):
    """Regression gate: without add_sharer the tracker is the paper's (§8.1).

    Segment boundaries, owners, query results, op counts: all must match a
    tracker driven through the legacy owner-only surface, and no segment
    may ever grow a sharer or report an invalidation.
    """
    tr = SegmentTracker(SIZE, 0)
    legacy_segments = [(0, SIZE, 0)]  # maintained by brute force
    n_ops = 0
    for a, b, owner in ops:
        lo, hi = min(a, b), max(a, b)
        assert tr.update(lo, hi, owner) == 0  # nothing shared, ever
        n_ops += 1 if lo < hi else 0
        flat = []
        for s, e, o in legacy_segments:
            flat.extend([o] * (e - s))
        flat[lo:hi] = [owner] * (hi - lo)
        legacy_segments = []
        for i, o in enumerate(flat):
            if legacy_segments and legacy_segments[-1][2] == o:
                legacy_segments[-1] = (legacy_segments[-1][0], i + 1, o)
            else:
                legacy_segments.append((i, i + 1, o))
    assert [(s.start, s.end, s.owner) for s in tr.segments()] == legacy_segments
    assert all(not s.sharers for s in tr.segments())
    assert tr.op_counts["share"] == 0 and tr.op_counts["invalidate"] == 0
    assert tr.op_counts["update"] == n_ops
    assert tr.op_count == n_ops  # the legacy single counter


class TestOpClasses:
    """Unit tests for the per-class operation accounting."""

    def test_query_classes(self):
        tr = SegmentTracker(100, 0)
        tr.query(0, 10)
        tr.query_many([(0, 10), (20, 30), (40, 50)])
        assert tr.op_counts["query"] == 4
        assert tr.op_count == 4

    def test_update_and_invalidate_classes(self):
        tr = SegmentTracker(100, 0)
        assert tr.update(0, 50, 1) == 0
        tr.add_sharer(0, 50, 2)
        assert tr.op_counts["share"] == 1
        # The write discards sharer 2's copy: one invalidation.
        assert tr.update(10, 20, 3) == 1
        assert tr.op_counts["update"] == 2
        assert tr.op_counts["invalidate"] == 1
        # The remaining shared pieces still invalidate later.
        assert tr.update(0, 100, 0) == 1
        assert tr.op_counts["invalidate"] == 2
        assert tr.segments() == [Segment(0, 100, 0)]

    def test_update_many_counts_per_range(self):
        tr = SegmentTracker(100, 0)
        tr.add_sharer(0, 30, 1)
        tr.add_sharer(60, 90, 2)
        # Three ranges; the middle one overlaps no shared bytes.
        assert tr.update_many([(10, 20), (40, 50), (65, 70)], 3) == 2
        assert tr.op_counts["update"] == 3
        assert tr.op_counts["invalidate"] == 2

    def test_add_sharer_idempotent_and_owner_excluded(self):
        tr = SegmentTracker(100, 5)
        tr.add_sharer(0, 100, 5)  # the owner already holds a valid copy
        assert tr.segments() == [Segment(0, 100, 5)]
        tr.add_sharer(0, 100, 1)
        tr.add_sharer(0, 100, 1)
        assert tr.segments() == [Segment(0, 100, 5, frozenset({1}))]
        assert tr.holders_at(50) == frozenset({1, 5})
        tr.check_invariants()

    def test_add_sharer_coalesces_equal_neighbors(self):
        tr = SegmentTracker(100, 0)
        tr.add_sharer(0, 50, 1)
        tr.add_sharer(50, 100, 1)
        assert tr.segments() == [Segment(0, 100, 0, frozenset({1}))]
        tr.check_invariants()
