"""Unit and property tests for the B-tree map substrate (§8.1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.btree import BTreeMap


class TestBasics:
    def test_insert_get(self):
        bt = BTreeMap(2)
        bt.insert(5, "a")
        bt.insert(3, "b")
        assert bt.get(5) == "a" and bt.get(3) == "b"
        assert bt.get(99) is None
        assert bt.get(99, "dflt") == "dflt"

    def test_overwrite_keeps_size(self):
        bt = BTreeMap(2)
        bt.insert(1, "a")
        bt.insert(1, "b")
        assert len(bt) == 1 and bt.get(1) == "b"

    def test_contains(self):
        bt = BTreeMap(2)
        bt.insert(7, None)
        assert 7 in bt and 8 not in bt

    def test_delete(self):
        bt = BTreeMap(2)
        for k in range(10):
            bt.insert(k, k)
        assert bt.delete(5)
        assert not bt.delete(5)
        assert len(bt) == 9
        assert 5 not in bt

    def test_min_max(self):
        bt = BTreeMap(3)
        assert bt.min_key() is None and bt.max_key() is None
        for k in (8, 2, 5):
            bt.insert(k, None)
        assert bt.min_key() == 2 and bt.max_key() == 8

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTreeMap(1)


class TestOrderedOps:
    def _tree(self, keys):
        bt = BTreeMap(2)
        for k in keys:
            bt.insert(k, f"v{k}")
        return bt

    def test_items_sorted(self):
        bt = self._tree([9, 1, 5, 3, 7])
        assert [k for k, _ in bt.items()] == [1, 3, 5, 7, 9]

    def test_floor(self):
        bt = self._tree([10, 20, 30])
        assert bt.floor(25) == (20, "v20")
        assert bt.floor(20) == (20, "v20")
        assert bt.floor(9) is None
        assert bt.floor(100) == (30, "v30")

    def test_ceiling(self):
        bt = self._tree([10, 20, 30])
        assert bt.ceiling(15) == (20, "v20")
        assert bt.ceiling(30) == (30, "v30")
        assert bt.ceiling(31) is None

    def test_items_from(self):
        bt = self._tree(range(0, 50, 5))
        assert [k for k, _ in bt.items_from(23)] == [25, 30, 35, 40, 45]

    def test_range_items(self):
        bt = self._tree(range(0, 50, 5))
        assert [k for k, _ in bt.range_items(10, 30)] == [10, 15, 20, 25]


class TestSplitsAndMerges:
    @pytest.mark.parametrize("degree", [2, 3, 8])
    def test_sequential_insert_then_delete_all(self, degree):
        bt = BTreeMap(degree)
        n = 200
        for k in range(n):
            bt.insert(k, k * 2)
        bt.check_invariants()
        for k in range(n):
            assert bt.delete(k)
            if k % 37 == 0:
                bt.check_invariants()
        assert len(bt) == 0

    def test_reverse_and_interleaved(self):
        bt = BTreeMap(2)
        for k in reversed(range(100)):
            bt.insert(k, k)
        for k in range(0, 100, 2):
            bt.delete(k)
        bt.check_invariants()
        assert [k for k, _ in bt.items()] == list(range(1, 100, 2))


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del", "get", "floor"]), st.integers(0, 120)),
        max_size=300,
    ),
    degree=st.integers(2, 6),
)
def test_btree_matches_dict_model(ops, degree):
    """Property: the B-tree behaves like a sorted dict under any op sequence."""
    bt = BTreeMap(degree)
    model = {}
    for op, k in ops:
        if op == "ins":
            bt.insert(k, k)
            model[k] = k
        elif op == "del":
            assert bt.delete(k) == (k in model)
            model.pop(k, None)
        elif op == "get":
            assert bt.get(k) == model.get(k)
        else:
            expect = max((mk for mk in model if mk <= k), default=None)
            got = bt.floor(k)
            assert (got[0] if got else None) == expect
    bt.check_invariants()
    assert list(bt.items()) == sorted(model.items())
