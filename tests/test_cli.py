"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_analyze_prints_model(self, capsys):
        assert main(["analyze", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "__global__ void hotspot" in out
        assert "partitionable:    True" in out
        assert "read  temp_in" in out and "write temp_out" in out

    def test_analyze_writes_model(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["analyze", "matmul", "--model-out", str(path)]) == 0
        assert path.exists()
        from repro.compiler.model import AppModel

        assert AppModel.load(path).get("matmul").partitionable


class TestRun:
    @pytest.mark.parametrize("workload", ["hotspot", "nbody", "matmul"])
    def test_run_bitwise_ok(self, workload, capsys):
        assert main(["run", workload, "--gpus", "3"]) == 0
        out = capsys.readouterr().out
        assert "bitwise equal" in out

    def test_run_custom_size(self, capsys):
        assert main(["run", "matmul", "--gpus", "2", "--size", "32"]) == 0


class TestBench:
    def test_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "36864" in capsys.readouterr().out

    def test_figure6_tiny(self, capsys):
        assert (
            main(["bench", "figure6", "--gpu-counts", "1", "2", "--sizes", "small"]) == 0
        )
        out = capsys.readouterr().out
        assert "Speedup" in out and "hotspot" in out

    def test_overhead(self, capsys):
        assert main(["bench", "overhead", "--sizes", "small"]) == 0
        assert "Slowdown" in capsys.readouterr().out


class TestMachine:
    def test_machine_table(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "n_gpus" in out and "pcie_bw" in out


class TestLint:
    def test_lint_workload_clean(self, capsys):
        assert main(["lint", "matmul", "--no-replay"]) == 0
        out = capsys.readouterr().out
        assert "error(s)" in out and "0 error(s)" in out

    def test_lint_json_validates_against_schema(self, capsys):
        import json

        from repro.analysis import validate_report_json

        assert main(["lint", "matmul", "--no-replay", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_report_json(doc)
        assert doc["summary"]["errors"] == 0

    def test_lint_fail_on_advice(self, capsys):
        # The builtin workloads carry advisory findings (RP204/RP205/RP206),
        # so lowering the threshold to advice must fail the run ...
        assert main(["lint", "matmul", "--no-replay", "--fail-on", "advice"]) == 1
        capsys.readouterr()
        # ... while `--fail-on never` always exits 0.
        assert main(["lint", "matmul", "--no-replay", "--fail-on", "never"]) == 0

    def test_lint_unknown_workload(self, capsys):
        assert main(["lint", "nonsense"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestErrors:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExitCodes:
    """Every concrete error class maps to its own distinct CLI exit code."""

    @staticmethod
    def _error_classes():
        import repro.errors as er

        classes = []
        stack = [er.ReproError]
        while stack:
            cls = stack.pop()
            classes.append(cls)
            stack.extend(cls.__subclasses__())
        return classes

    def test_exit_codes_distinct_and_nonzero(self):
        classes = self._error_classes()
        codes = {cls: cls.exit_code for cls in classes}
        assert all(isinstance(c, int) and c > 1 for c in codes.values())
        assert len(set(codes.values())) == len(codes), codes

    def test_exit_code_for_maps_instances(self):
        from repro.errors import ReproError, exit_code_for

        for cls in self._error_classes():
            exc = cls("boom")
            assert exit_code_for(exc) == cls.exit_code
        assert exit_code_for(ValueError("x")) == 1
        assert issubclass(ReproError, Exception)

    @pytest.mark.parametrize(
        "error_name, expected",
        [
            ("ValidationError", 21),
            ("PartitioningError", 40),
            ("InjectivityError", 41),
            ("LintError", 31),
            ("TrackerError", 62),
            ("TaskGraphError", 82),
        ],
    )
    def test_main_maps_repro_errors(self, monkeypatch, capsys, error_name, expected):
        import repro.cli as cli
        import repro.errors as er

        exc_cls = getattr(er, error_name)

        def boom(args):
            raise exc_cls("synthetic failure")

        monkeypatch.setattr(cli, "_cmd_machine", boom)
        assert main(["machine"]) == expected
        assert "synthetic failure" in capsys.readouterr().err

    def test_injectivity_error_carries_diagnostic_code(self):
        from repro.errors import InjectivityError, format_with_code

        exc = InjectivityError("write map not injective")
        assert exc.diagnostic_code == "RP201"
        assert format_with_code(exc) == "RP201 write map not injective"
