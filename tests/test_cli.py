"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_analyze_prints_model(self, capsys):
        assert main(["analyze", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "__global__ void hotspot" in out
        assert "partitionable:    True" in out
        assert "read  temp_in" in out and "write temp_out" in out

    def test_analyze_writes_model(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["analyze", "matmul", "--model-out", str(path)]) == 0
        assert path.exists()
        from repro.compiler.model import AppModel

        assert AppModel.load(path).get("matmul").partitionable


class TestRun:
    @pytest.mark.parametrize("workload", ["hotspot", "nbody", "matmul"])
    def test_run_bitwise_ok(self, workload, capsys):
        assert main(["run", workload, "--gpus", "3"]) == 0
        out = capsys.readouterr().out
        assert "bitwise equal" in out

    def test_run_custom_size(self, capsys):
        assert main(["run", "matmul", "--gpus", "2", "--size", "32"]) == 0


class TestBench:
    def test_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "36864" in capsys.readouterr().out

    def test_figure6_tiny(self, capsys):
        assert (
            main(["bench", "figure6", "--gpu-counts", "1", "2", "--sizes", "small"]) == 0
        )
        out = capsys.readouterr().out
        assert "Speedup" in out and "hotspot" in out

    def test_overhead(self, capsys):
        assert main(["bench", "overhead", "--sizes", "small"]) == 0
        assert "Slowdown" in capsys.readouterr().out


class TestMachine:
    def test_machine_table(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "n_gpus" in out and "pcie_bw" in out


class TestErrors:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])
