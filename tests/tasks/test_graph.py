"""TaskGraph construction, dependence derivation, and execution modes."""

import pytest

from repro.errors import TaskGraphError, exit_code_for
from repro.tasks import TaskGraph, TaskSpace, opaque, span, task, whole


class Buf:
    def __init__(self, nbytes):
        self.nbytes = nbytes


class FakeApi:
    """Just enough API surface for the graph runtime: a barrier counter."""

    def __init__(self):
        self.syncs = 0
        self._placement_offset = None
        self._dataflow_wave = None

    def cudaDeviceSynchronize(self):
        self.syncs += 1


def _noop(api):
    pass


class TestEdgeDerivation:
    def _graph(self):
        buf = Buf(256)
        g = TaskGraph("edges")
        g.add_task(_noop, name="w", writes=[span(buf, 0, 128)])
        g.add_task(_noop, name="r", reads=[span(buf, 64, 192)])
        g.add_task(_noop, name="w2", writes=[span(buf, 100, 140)])
        return g.finalize()

    def test_raw_war_waw_kinds(self):
        g = self._graph()
        kinds = {(e.src, e.dst): e.kinds for e in g.edges}
        assert kinds[(0, 1)] == frozenset({"RAW"})
        assert kinds[(0, 2)] == frozenset({"WAW"})
        assert kinds[(1, 2)] == frozenset({"WAR"})

    def test_overlap_bytes_are_exact(self):
        g = self._graph()
        by_pair = {(e.src, e.dst): e.overlap_bytes for e in g.edges}
        assert by_pair[(0, 1)] == 64  # [64, 128)
        assert by_pair[(0, 2)] == 28  # [100, 128)
        assert by_pair[(1, 2)] == 40  # [100, 140)

    def test_disjoint_tasks_have_no_edge(self):
        buf = Buf(256)
        g = TaskGraph()
        g.add_task(_noop, name="a", writes=[span(buf, 0, 64)])
        g.add_task(_noop, name="b", writes=[span(buf, 64, 128)])
        assert g.finalize().edges == []

    def test_control_edges_by_name_and_object(self):
        g = TaskGraph()
        t0 = g.add_task(_noop, name="first")
        g.add_task(_noop, name="second", deps=["first"])
        g.add_task(_noop, name="third", deps=[t0])
        g.finalize()
        assert {(e.src, e.dst) for e in g.edges} == {(0, 1), (0, 2)}
        assert all(e.kinds == frozenset({"control"}) for e in g.edges)


class TestErrors:
    def test_exit_code_is_pinned(self):
        assert TaskGraphError.exit_code == 82
        assert exit_code_for(TaskGraphError("boom")) == 82

    def test_cycle_through_forward_references(self):
        ts = TaskSpace("ts")
        g = TaskGraph()
        with g:

            @task(ts[0], deps=[ts[1]])
            def a(api):
                pass

            @task(ts[1], deps=[ts[0]])
            def b(api):
                pass

        with pytest.raises(TaskGraphError, match="cycle"):
            g.finalize()

    def test_unbound_forward_reference(self):
        ts = TaskSpace("ts")
        g = TaskGraph()
        g.add_task(_noop, name="a", deps=[ts["never"]])
        with pytest.raises(TaskGraphError, match="unbound"):
            g.finalize()

    def test_unknown_name_and_self_dependency(self):
        g = TaskGraph()
        g.add_task(_noop, name="a", deps=["ghost"])
        with pytest.raises(TaskGraphError, match="unknown task"):
            g.finalize()
        g2 = TaskGraph()
        g2.add_task(_noop, name="a", deps=["a"])
        with pytest.raises(TaskGraphError, match="itself"):
            g2.finalize()

    def test_task_decorator_requires_ambient_graph(self):
        with pytest.raises(TaskGraphError, match="outside a TaskGraph"):

            @task(name="orphan")
            def orphan(api):
                pass

    def test_slot_cannot_bind_twice(self):
        ts = TaskSpace("ts")
        g = TaskGraph()
        g.add_task(_noop, handle=ts[0])
        with pytest.raises(TaskGraphError, match="already bound"):
            g.add_task(_noop, handle=ts[0])

    def test_unknown_mode_rejected(self):
        g = TaskGraph()
        g.add_task(_noop, name="a")
        with pytest.raises(TaskGraphError, match="unknown execution mode"):
            g.run(FakeApi(), mode="speculative")


class TestExecution:
    def _chain(self, log):
        buf = Buf(64)
        g = TaskGraph()

        def body(tag):
            return lambda api: log.append(tag)

        g.add_task(body("w"), name="w", writes=[whole(buf)])
        g.add_task(body("r1"), name="r1", reads=[span(buf, 0, 32)])
        g.add_task(body("r2"), name="r2", reads=[span(buf, 32, 64)])
        g.add_task(body("sum"), name="sum", reads=[whole(buf)], writes=[whole(buf)])
        return g

    def test_graph_mode_runs_waves_in_dependence_order(self):
        log = []
        g = self._chain(log)
        api = FakeApi()
        g.run(api, mode="graph")
        assert log == ["w", "r1", "r2", "sum"]
        # w | r1+r2 | sum: three waves, the middle one two tasks wide.
        assert g.stats.waves == 3
        assert g.stats.ready_peak == 2
        assert g.stats.executed == 4
        assert api.syncs == 0  # no inter-task barriers in graph mode
        assert api._dataflow_wave is None  # cleared after the run

    def test_serialized_mode_barriers_every_task(self):
        log = []
        g = self._chain(log)
        api = FakeApi()
        g.run(api, mode="serialized")
        assert log == ["w", "r1", "r2", "sum"]
        assert api.syncs == 4
        assert g.stats.waves == 0

    def test_explicit_order_must_be_a_topological_permutation(self):
        g = self._chain([])
        with pytest.raises(TaskGraphError, match="permutation"):
            g.run(FakeApi(), mode="graph", order=[0, 1, 2])
        with pytest.raises(TaskGraphError, match="violates"):
            g.run(FakeApi(), mode="graph", order=[3, 0, 1, 2])
        with pytest.raises(TaskGraphError, match="requires mode"):
            g.run(FakeApi(), mode="serialized", order=[0, 1, 2, 3])
        log = []
        g2 = self._chain(log)
        g2.run(FakeApi(), mode="graph", order=[0, 2, 1, 3])
        assert log == ["w", "r2", "r1", "sum"]

    def test_placement_hint_applied_during_the_body_only(self):
        seen = []
        g = TaskGraph()
        g.add_task(lambda api: seen.append(api._placement_offset), placement=5)
        api = FakeApi()
        g.run(api, mode="graph")
        assert seen == [5]
        assert api._placement_offset is None


class TestOpaqueDegradation:
    def _graph(self, log):
        buf = Buf(128)
        g = TaskGraph()
        g.add_task(lambda api: log.append("w"), name="w", writes=[span(buf, 0, 64)])
        g.add_task(
            lambda api: log.append("gather"),
            name="gather",
            reads=[opaque(buf, note="indirect rows")],
        )
        return g

    def test_rp701_and_rp702_reported(self):
        g = self._graph([]).finalize()
        codes = sorted({d.code for d in g.report.diagnostics})
        assert codes == ["RP701", "RP702"]
        assert g.stats.nonaffine_tasks == 1
        # The opaque whole-buffer read overlaps the disjoint-looking write.
        (edge,) = g.edges
        assert edge.opaque and "RAW" in edge.kinds

    def test_whole_buffer_sync_brackets_the_opaque_body(self):
        log = []
        g = self._graph(log)
        api = FakeApi()
        g.run(api, mode="graph")
        assert log == ["w", "gather"]
        assert g.stats.whole_buffer_syncs == 1
        assert api.syncs == 2  # one barrier before + one after the body

    def test_opaque_task_is_never_wave_tagged(self):
        waves = []
        buf = Buf(128)
        g = TaskGraph()
        g.add_task(
            lambda api: waves.append(api._dataflow_wave),
            name="gather",
            reads=[opaque(buf)],
        )
        g.add_task(
            lambda api: waves.append(api._dataflow_wave),
            name="fine",
            writes=[span(buf, 0, 8)],
        )
        g.run(FakeApi(), mode="graph")
        assert waves[0] is None  # opaque: wave-less whole-buffer events
        assert waves[1] is not None  # affine sibling rides the wave


class TestSummary:
    def test_summary_digest(self):
        g = TaskGraph("demo")
        buf = Buf(64)
        g.add_task(_noop, name="a", writes=[whole(buf)])
        g.add_task(_noop, name="b", reads=[whole(buf)])
        s = g.summary()
        assert s["name"] == "demo"
        assert s["tasks"] == 2 and s["edges"] == 1
        assert s["edge_kinds"] == {"RAW": 1}
        assert s["diagnostic_codes"] == []
