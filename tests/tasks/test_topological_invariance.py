"""Topological-order invariance (hypothesis): scheduling cannot change bits.

The central correctness property of the task-graph frontend, stated as a
property test: run the tiled-Cholesky graph in *any* valid topological
order — picked at random by Kahn's algorithm with hypothesis choosing
among the ready set — and the outputs *and* the final tracker/sharer
state must be bitwise-identical to barrier-serialized execution of the
same graph under the same runtime configuration.  Swept across scheduler
policies, shared-copy coherence, and pipeline windows, mirroring
tests/serve/test_interleaving.py.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_app
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.tasks.bench import _tracker_state
from repro.workloads import functional_config
from repro.workloads.cholesky import CholeskyWorkload

N_GPUS = 4

WL = CholeskyWorkload(functional_config("cholesky", size=32))
INPUTS = WL.make_inputs(seed=11)
APP = compile_app(WL.build_kernels())

configs = st.sampled_from(
    [
        RuntimeConfig(n_gpus=N_GPUS, schedule="sequential"),
        RuntimeConfig(n_gpus=N_GPUS, schedule="overlap"),
        RuntimeConfig(n_gpus=N_GPUS, schedule="overlap", shared_copies=True),
        RuntimeConfig(n_gpus=N_GPUS, schedule="sequential", pipeline_window=4),
        RuntimeConfig(
            n_gpus=N_GPUS, schedule="overlap+p2p", shared_copies=True, pipeline_window=2
        ),
    ]
)

# Serialized baselines, one per config (outputs + final tracker state).
_BASELINES = {}


def _baseline(config):
    if config not in _BASELINES:
        api = MultiGpuApi(APP, config)
        got = WL.run(api, INPUTS, mode="serialized")
        _BASELINES[config] = (got, _tracker_state(api))
    return _BASELINES[config]


def _random_topological_order(graph, data):
    indeg = {t.index: 0 for t in graph.tasks}
    succs = {t.index: [] for t in graph.tasks}
    for e in graph.edges:
        indeg[e.dst] += 1
        succs[e.src].append(e.dst)
    ready = sorted(i for i, d in indeg.items() if d == 0)
    order = []
    while ready:
        pick = data.draw(st.integers(0, len(ready) - 1), label="ready slot")
        i = ready.pop(pick)
        order.append(i)
        for j in succs[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
                ready.sort()
    return order


@settings(max_examples=25, deadline=None)
@given(config=configs, data=st.data())
def test_any_topological_order_matches_serialized(config, data):
    # One throwaway graph-mode run materializes the graph to permute.
    api = MultiGpuApi(APP, config)
    WL.run(api, INPUTS, mode="graph")
    order = _random_topological_order(WL.last_graph, data)

    api = MultiGpuApi(APP, config)
    got = WL.run(api, INPUTS, mode="graph", order=order)
    ref, ref_state = _baseline(config)
    assert all(np.array_equal(ref[k], got[k]) for k in ref), (
        f"outputs diverge under order {order} "
        f"(schedule={config.schedule}, shared={config.shared_copies}, "
        f"window={config.pipeline_window})"
    )
    assert _tracker_state(api) == ref_state, (
        f"tracker state diverges under order {order} "
        f"(schedule={config.schedule}, shared={config.shared_copies}, "
        f"window={config.pipeline_window})"
    )
