"""Lowering of task access specs to byte-interval footprints."""

import pytest

from repro.errors import TaskGraphError
from repro.tasks.footprints import (
    buffer_key,
    lower_access,
    opaque,
    region2d,
    span,
    whole,
)


class Buf:
    """A stand-in allocation; optionally sized, optionally a virtual buffer."""

    def __init__(self, nbytes=None, vb_id=None):
        if nbytes is not None:
            self.nbytes = nbytes
        if vb_id is not None:
            self.vb_id = vb_id


class TestSpan:
    def test_lowered_to_single_interval(self):
        fp = lower_access(span(Buf(), 16, 64))
        assert fp.intervals == [(16, 64)]
        assert fp.affine

    def test_empty_span_rejected(self):
        with pytest.raises(TaskGraphError, match="empty span"):
            lower_access(span(Buf(), 64, 64))


class TestRegion2D:
    def test_column_slice_yields_one_interval_per_row(self):
        # Rows 1..3 of columns 2..4 in an 8x8 f32 array: 8-byte strips
        # every 32 bytes, non-adjacent so they stay distinct.
        fp = lower_access(region2d(Buf(), (8, 8), (1, 3), (2, 4)))
        assert fp.intervals == [(40, 48), (72, 80)]

    def test_full_width_rows_merge_into_one_interval(self):
        fp = lower_access(region2d(Buf(), (8, 8), (2, 4), (0, 8)))
        assert fp.intervals == [(2 * 32, 4 * 32)]

    def test_halo_clips_at_the_array_border(self):
        # A band with one halo row on each side, at the top of the image:
        # the -1 row vanishes instead of wrapping or erroring.
        fp = lower_access(region2d(Buf(), (8, 8), (-1, 3), (0, 8)))
        assert fp.intervals == [(0, 3 * 32)]

    def test_empty_after_clipping_rejected(self):
        with pytest.raises(TaskGraphError, match="empty after"):
            lower_access(region2d(Buf(), (8, 8), (8, 10), (0, 8)))


class TestWholeAndBare:
    def test_whole_reads_nbytes_from_the_buffer(self):
        fp = lower_access(whole(Buf(nbytes=128)))
        assert fp.intervals == [(0, 128)]
        assert fp.affine

    def test_whole_needs_a_size_somewhere(self):
        with pytest.raises(TaskGraphError, match="nbytes"):
            lower_access(whole(Buf()))
        assert lower_access(whole(Buf(), nbytes=32)).intervals == [(0, 32)]

    def test_bare_sized_buffer_is_whole(self):
        fp = lower_access(Buf(nbytes=64))
        assert fp.intervals == [(0, 64)]

    def test_bare_unsized_object_rejected(self):
        with pytest.raises(TaskGraphError, match="cannot lower"):
            lower_access(object())


class TestOpaque:
    def test_opaque_is_whole_buffer_but_non_affine(self):
        fp = lower_access(opaque(Buf(nbytes=64), note="host-computed gather"))
        assert fp.intervals == [(0, 64)]
        assert not fp.affine
        assert "gather" in fp.note


class TestBufferKey:
    def test_virtual_buffers_key_by_vb_id(self):
        a, b = Buf(vb_id=7), Buf(vb_id=7)
        assert buffer_key(a) == buffer_key(b)

    def test_plain_objects_key_by_identity(self):
        a, b = Buf(nbytes=8), Buf(nbytes=8)
        assert buffer_key(a) != buffer_key(b)
        assert buffer_key(a) == buffer_key(a)
