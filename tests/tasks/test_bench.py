"""The taskgraph bench's helpers and self-check plumbing (fast paths only).

The full ``repro bench taskgraph`` study simulates a 16-GPU machine and
runs for minutes; CI exercises it end to end in the ``taskgraph-smoke``
job.  Here we pin the cheap invariants: workload registry, the
adversarial order generator, and the identity sweep on one small
configuration set.
"""

import numpy as np
import pytest

from repro.tasks.bench import (
    TASKGRAPH_WORKLOADS,
    TaskGraphStudy,
    _alternative_order,
    _identity_sweep,
    taskgraph_study,
)
from repro.workloads import EXTRA_WORKLOADS, functional_config
from repro.workloads.cholesky import CholeskyWorkload


def test_workload_registry_is_consistent():
    assert set(TASKGRAPH_WORKLOADS) == {"cholesky", "imgpipe"}
    assert set(TASKGRAPH_WORKLOADS) <= set(EXTRA_WORKLOADS)


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown taskgraph workload"):
        taskgraph_study(workloads=["hotspot"])


def test_alternative_order_is_topological_and_adversarial():
    from repro.compiler.pipeline import compile_app
    from repro.runtime.api import MultiGpuApi
    from repro.runtime.config import RuntimeConfig

    wl = CholeskyWorkload(functional_config("cholesky", size=32))
    api = MultiGpuApi(compile_app(wl.build_kernels()), RuntimeConfig(n_gpus=2))
    wl.run(api, wl.make_inputs(seed=1))
    g = wl.last_graph
    order = _alternative_order(g)
    assert sorted(order) == list(range(len(g.tasks)))
    assert order != list(range(len(g.tasks)))  # actually adversarial
    position = {idx: pos for pos, idx in enumerate(order)}
    assert all(position[e.src] < position[e.dst] for e in g.edges)


def test_identity_sweep_smoke():
    study = TaskGraphStudy(workloads=["cholesky"], n_gpus=4)
    _identity_sweep(study, "cholesky", windows=(2,))
    assert study.failures == []
    assert study.identity and all(c.identical for c in study.identity)
    stats = study.graph_stats["cholesky"]
    assert stats["tasks"] > 0 and stats["waves"] > 0
