"""Unit tests of the WDRR fair-share scheduler."""

import pytest

from repro.errors import ServeError
from repro.serve.scheduler import FairShareScheduler, Job


def _job(job_id, tenant, cost=1.0):
    return Job(job_id=job_id, tenant_id=tenant, work=lambda api: None, cost=cost)


def drain(sched):
    order = []
    while True:
        job = sched.next_job()
        if job is None:
            return order
        order.append(job)


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(ServeError):
            FairShareScheduler({})

    def test_positive_quantum(self):
        with pytest.raises(ServeError):
            FairShareScheduler({0: 1.0}, quantum=0.0)

    def test_positive_weights(self):
        with pytest.raises(ServeError):
            FairShareScheduler({0: 1.0, 1: -2.0})

    def test_positive_job_cost(self):
        sched = FairShareScheduler({0: 1.0})
        with pytest.raises(ServeError):
            sched.enqueue(_job(0, 0, cost=0.0))

    def test_unknown_tenant(self):
        sched = FairShareScheduler({0: 1.0})
        with pytest.raises(ServeError):
            sched.enqueue(_job(0, 7))
        with pytest.raises(ServeError):
            sched.pending(7)


class TestOrdering:
    def test_empty(self):
        sched = FairShareScheduler({0: 1.0, 1: 1.0})
        assert sched.next_job() is None
        assert len(sched) == 0

    def test_fifo_within_tenant(self):
        sched = FairShareScheduler({0: 1.0})
        for i in range(5):
            sched.enqueue(_job(i, 0))
        assert [j.job_id for j in drain(sched)] == [0, 1, 2, 3, 4]

    def test_equal_weights_interleave(self):
        sched = FairShareScheduler({0: 1.0, 1: 1.0})
        for i in range(4):
            sched.enqueue(_job(i, 0))
        for i in range(4, 8):
            sched.enqueue(_job(i, 1))
        order = [j.tenant_id for j in drain(sched)]
        assert order == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_weighted_shares_under_saturation(self):
        # Tenant 0 at weight 3 must be served 3x as often while both are
        # backlogged.
        sched = FairShareScheduler({0: 3.0, 1: 1.0})
        for i in range(30):
            sched.enqueue(_job(i, 0))
        for i in range(30, 60):
            sched.enqueue(_job(i, 1))
        first = [j.tenant_id for j in drain(sched)[:24]]
        assert first.count(0) == 18
        assert first.count(1) == 6

    def test_costly_jobs_accumulate_deficit(self):
        # A cost-3 job needs three rounds of quantum; the cheap tenant keeps
        # getting served meanwhile.
        sched = FairShareScheduler({0: 1.0, 1: 1.0})
        sched.enqueue(_job(0, 0, cost=3.0))
        for i in range(1, 4):
            sched.enqueue(_job(i, 1, cost=1.0))
        order = [(j.tenant_id, j.job_id) for j in drain(sched)]
        assert order.index((0, 0)) == 2
        assert [t for t, _ in order].count(1) == 3

    def test_drained_queue_forfeits_deficit(self):
        sched = FairShareScheduler({0: 1.0, 1: 1.0})
        sched.enqueue(_job(0, 0))
        assert drain(sched)[0].job_id == 0
        # Tenant 0 went idle; its banked deficit must not let a later burst
        # pre-empt tenant 1's turn share.
        for i in range(1, 5):
            sched.enqueue(_job(i, 0))
        for i in range(5, 9):
            sched.enqueue(_job(i, 1))
        order = [j.tenant_id for j in drain(sched)]
        assert sorted(order[:2]) == [0, 1]
        assert order.count(0) == order.count(1) == 4

    def test_deterministic(self):
        def run():
            sched = FairShareScheduler({0: 2.0, 1: 1.0, 2: 0.5}, quantum=0.5)
            for i in range(24):
                sched.enqueue(_job(i, i % 3, cost=1.0 + (i % 4) * 0.25))
            return [j.job_id for j in drain(sched)]

        assert run() == run()

    def test_pending_counts(self):
        sched = FairShareScheduler({0: 1.0, 1: 1.0})
        sched.enqueue(_job(0, 0))
        sched.enqueue(_job(1, 0))
        sched.enqueue(_job(2, 1))
        assert len(sched) == 3
        assert sched.pending(0) == 2
        assert sched.pending(1) == 1
        sched.next_job()
        assert len(sched) == 2
