"""Unit tests of bounded-queue admission control and its error taxonomy."""

import pytest

from repro.errors import AdmissionError, ReproError, ServeError, exit_code_for
from repro.serve.admission import AdmissionController


class TestValidation:
    @pytest.mark.parametrize("capacity", [0, -1, 1.5, "8"])
    def test_bad_capacity(self, capacity):
        with pytest.raises(AdmissionError) as exc:
            AdmissionController(capacity)
        assert exc.value.reason == "SERVE_BAD_CAPACITY"


class TestAdmission:
    def test_admits_below_capacity(self):
        ctl = AdmissionController(2)
        assert ctl.try_admit(0, 0)
        assert ctl.try_admit(0, 1)
        assert ctl.total_shed == 0

    def test_sheds_at_capacity(self):
        ctl = AdmissionController(2)
        assert not ctl.try_admit(0, 2)
        assert not ctl.try_admit(0, 5)
        assert ctl.shed == {0: 2}
        assert ctl.total_shed == 2

    def test_shed_counters_per_tenant(self):
        ctl = AdmissionController(1)
        ctl.try_admit(0, 1)
        ctl.try_admit(1, 1)
        ctl.try_admit(1, 1)
        assert ctl.shed == {0: 1, 1: 2}

    def test_strict_raises_with_stable_reason(self):
        ctl = AdmissionController(1)
        ctl.require(0, 0)  # fits: no raise
        with pytest.raises(AdmissionError) as exc:
            ctl.require(0, 1)
        assert exc.value.reason == AdmissionError.QUEUE_FULL == "SERVE_QUEUE_FULL"
        # The strict rejection is still counted.
        assert ctl.total_shed == 1


class TestErrorTaxonomy:
    def test_exit_codes(self):
        assert exit_code_for(ServeError("x")) == 80
        assert exit_code_for(AdmissionError("x")) == 81

    def test_hierarchy(self):
        err = AdmissionError("queue full")
        assert isinstance(err, ServeError)
        assert isinstance(err, ReproError)
        assert err.reason == "SERVE_QUEUE_FULL"
