"""Single-tenant serve identity and per-tenant trace attribution.

The acceptance bar of the serving runtime: one tenant submitted through
``ServeRuntime`` must be indistinguishable — output bytes, trace, simulated
clock, stats — from the same call sequence against a bare ``MultiGpuApi``.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.runtime.config import RuntimeConfig
from repro.serve.bench import (
    JOB_ELEMS,
    build_serve_kernel,
    single_tenant_identity_failures,
)
from repro.serve.runtime import ServeRuntime, untenanted
from repro.sim.engine import SimMachine
from repro.sim.trace import Category
from repro.harness.calibration import K80_NODE_SPEC


@pytest.mark.parametrize(
    "schedule,window,shared",
    [
        ("sequential", 1, False),
        ("sequential", 4, False),
        ("overlap", 1, False),
        ("overlap", 4, True),
        ("overlap+p2p", 2, True),
    ],
)
def test_single_tenant_identity_cluster(schedule, window, shared):
    assert (
        single_tenant_identity_failures(
            n_nodes=2,
            gpus_per_node=2,
            schedule=schedule,
            pipeline_window=window,
            shared_copies=shared,
        )
        == []
    )


def test_single_tenant_identity_flat_machine():
    assert single_tenant_identity_failures(n_nodes=1, gpus_per_node=4) == []


def test_untenanted_round_trip():
    kernel = build_serve_kernel()
    app = compile_app([kernel])
    machine = SimMachine(K80_NODE_SPEC.with_gpus(2))
    runtime = ServeRuntime(app, RuntimeConfig(n_gpus=2), 2, machine=machine)
    x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)

    def work(api):
        dx = api.cudaMalloc(x.nbytes)
        api.cudaMemcpy(dx, x, x.nbytes, MemcpyKind.HostToDevice)
        dy = api.cudaMalloc(x.nbytes)
        api.cudaMemcpy(dy, x, x.nbytes, MemcpyKind.HostToDevice)
        api.launch(kernel, Dim3(JOB_ELEMS // 128), Dim3(128), [JOB_ELEMS, dx, dy])
        api.cudaDeviceSynchronize()

    runtime.submit(0, work)
    runtime.submit(1, work)
    runtime.drain()

    intervals = machine.trace.intervals
    assert intervals, "expected simulated work"
    # Every interval is attributed to the serving tenant...
    assert {iv.tenant for iv in intervals} == {0, 1}
    # ...and clearing the tag is the only difference untenanted() makes.
    cleared = untenanted(intervals)
    assert all(iv.tenant is None for iv in cleared)
    assert [
        (iv.resource, iv.start, iv.end, iv.category, iv.label, iv.launch)
        for iv in cleared
    ] == [
        (iv.resource, iv.start, iv.end, iv.category, iv.label, iv.launch)
        for iv in intervals
    ]


def test_busy_time_by_tenant_accounts_everything():
    kernel = build_serve_kernel()
    app = compile_app([kernel])
    machine = SimMachine(K80_NODE_SPEC.with_gpus(2))
    runtime = ServeRuntime(app, RuntimeConfig(n_gpus=2), 2, machine=machine)
    x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)

    def work(api):
        dx = api.cudaMalloc(x.nbytes)
        api.cudaMemcpy(dx, x, x.nbytes, MemcpyKind.HostToDevice)
        dy = api.cudaMalloc(x.nbytes)
        api.cudaMemcpy(dy, x, x.nbytes, MemcpyKind.HostToDevice)
        api.launch(kernel, Dim3(JOB_ELEMS // 128), Dim3(128), [JOB_ELEMS, dx, dy])
        api.cudaDeviceSynchronize()

    runtime.submit(0, work)
    runtime.submit(1, work)
    runtime.drain()

    by_tenant = machine.trace.busy_time_by_tenant()
    assert set(by_tenant) == {0, 1}
    assert all(v > 0 for v in by_tenant.values())
    total = sum(iv.duration for iv in machine.trace.intervals)
    assert sum(by_tenant.values()) == pytest.approx(total)
    # Category filter splits the same way.
    app_time = machine.trace.busy_time_by_tenant(Category.APPLICATION)
    assert set(app_time) == {0, 1}
    assert sum(app_time.values()) == pytest.approx(
        sum(
            iv.duration
            for iv in machine.trace.intervals
            if iv.category is Category.APPLICATION
        )
    )
