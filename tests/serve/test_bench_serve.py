"""The saturation study's shape and the ``bench serve`` CLI contract."""

import json

import pytest

from repro.serve.bench import saturation_failures, saturation_study


@pytest.fixture(scope="module")
def points():
    return saturation_study(
        tenants=2,
        loads=(0.5, 1.0, 3.0),
        jobs=24,
        n_nodes=1,
        gpus_per_node=2,
        queue_capacity=3,
    )


def test_self_checks_pass(points):
    assert saturation_failures(points) == []


def test_throughput_plateaus(points):
    by_load = {p.load: p for p in points}
    # At overload the machine completes jobs at its capacity rate, not the
    # offered rate.
    assert by_load[3.0].throughput < by_load[3.0].offered_rate * 0.5
    assert by_load[3.0].throughput == pytest.approx(by_load[1.0].throughput, rel=0.15)


def test_delays_grow_with_load(points):
    by_load = {p.load: p for p in points}
    assert by_load[0.5].p99_delay <= by_load[1.0].p99_delay <= by_load[3.0].p99_delay
    assert by_load[3.0].p99_delay > 0


def test_backpressure_only_under_overload(points):
    by_load = {p.load: p for p in points}
    assert by_load[0.5].shed == 0
    assert by_load[3.0].shed > 0
    for p in points:
        assert p.completed + p.shed == p.submitted


def test_conservation_and_fairness(points):
    top = max(points, key=lambda p: p.load)
    done = top.per_tenant_completed
    assert sum(done.values()) == top.completed
    # Equal weights, symmetric streams: completions split evenly (+-1).
    assert abs(done[0] - done[1]) <= 1


def test_cli_bench_serve(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "serve.json"
    rc = main(
        [
            "bench",
            "serve",
            "--tenants",
            "2",
            "--jobs",
            "24",
            "--load",
            "0.5",
            "3",
            "--nodes",
            "1",
            "--gpus-per-node",
            "2",
            "--queue-capacity",
            "3",
            "--json",
            str(out),
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    assert "checks passed" in captured.out
    payload = json.loads(out.read_text())
    assert payload["failures"] == []
    assert [p["load"] for p in payload["points"]] == [0.5, 3.0]
    assert payload["points"][-1]["shed"] > 0
