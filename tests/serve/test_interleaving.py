"""Interleaving invariance (hypothesis): tenants cannot observe each other.

The isolation property of the serving runtime, stated as a property test:
take two tenants, each with its own stream of launches over its own
buffers, and service the two streams in *any* interleaved order on one
shared runtime — every tenant's final D2H bytes must equal the bytes it
gets running alone on a private runtime. Swept across the scheduler
policies, shared-copy coherence, and pipeline windows, with the job
streams themselves randomized (per-tenant tap offsets and iteration
counts).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.cuda.dtypes import f32
from repro.cuda.ir.builder import KernelBuilder
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.serve.runtime import ServeRuntime

N = 1 << 12
BLOCK = 128
GRID = Dim3(N // BLOCK)
N_GPUS = 4


def _shift_kernel():
    """y[i] += x[(i + shift) mod N] — a cross-partition read per job."""
    kb = KernelBuilder("shift_add")
    n = kb.scalar("n")
    shift = kb.scalar("shift")
    x = kb.array("x", f32, (n,))
    y = kb.array("y", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        y[gi,] = y[gi,] + x[(gi + shift) % n,]
    return kb.finish()


KERNEL = _shift_kernel()
APP = compile_app([KERNEL])


def _setup(api, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(N).astype(np.float32)
    y = np.zeros(N, dtype=np.float32)
    dx = api.cudaMalloc(x.nbytes)
    api.cudaMemcpy(dx, x, x.nbytes, MemcpyKind.HostToDevice)
    dy = api.cudaMalloc(y.nbytes)
    api.cudaMemcpy(dy, y, y.nbytes, MemcpyKind.HostToDevice)
    return dx, dy


def _job(shift, dx, dy):
    def work(api):
        api.launch(KERNEL, GRID, BLOCK_DIM, [N, shift, dx, dy])
        api.cudaDeviceSynchronize()

    return work


BLOCK_DIM = Dim3(BLOCK)


def _fetch(api, dy):
    out = np.zeros(N, dtype=np.float32)
    api.cudaMemcpy(out, dy, out.nbytes, MemcpyKind.DeviceToHost)
    return out


def _solo(config, shifts, seed):
    api = MultiGpuApi(APP, config)
    dx, dy = _setup(api, seed)
    for shift in shifts:
        api.launch(KERNEL, GRID, BLOCK_DIM, [N, shift, dx, dy])
        api.cudaDeviceSynchronize()
    return _fetch(api, dy)


configs = st.sampled_from(
    [
        RuntimeConfig(n_gpus=N_GPUS, schedule="sequential"),
        RuntimeConfig(n_gpus=N_GPUS, schedule="overlap"),
        RuntimeConfig(n_gpus=N_GPUS, schedule="overlap", shared_copies=True),
        RuntimeConfig(n_gpus=N_GPUS, schedule="sequential", pipeline_window=4),
        RuntimeConfig(
            n_gpus=N_GPUS, schedule="overlap+p2p", shared_copies=True, pipeline_window=2
        ),
    ]
)

streams = st.lists(st.integers(0, N - 1), min_size=1, max_size=5)


@settings(max_examples=25, deadline=None)
@given(
    config=configs,
    shifts_a=streams,
    shifts_b=streams,
    interleave=st.lists(st.booleans(), min_size=0, max_size=10),
)
def test_any_interleaving_matches_solo_runs(config, shifts_a, shifts_b, interleave):
    runtime = ServeRuntime(APP, config, 2)
    handles = {t: _setup(runtime.api(t), seed=100 + t) for t in (0, 1)}
    jobs = {0: list(shifts_a), 1: list(shifts_b)}

    # Build one interleaved submission order covering both streams: the
    # boolean stream picks which tenant goes next; leftovers append in
    # tenant order.
    order = []
    cursors = {0: 0, 1: 0}
    for pick_b in interleave:
        tenant = 1 if pick_b else 0
        if cursors[tenant] < len(jobs[tenant]):
            order.append(tenant)
            cursors[tenant] += 1
    for tenant in (0, 1):
        order.extend([tenant] * (len(jobs[tenant]) - cursors[tenant]))

    emitted = {0: 0, 1: 0}
    for tenant in order:
        shift = jobs[tenant][emitted[tenant]]
        emitted[tenant] += 1
        dx, dy = handles[tenant]
        runtime.submit(tenant, _job(shift, dx, dy))
        # Service eagerly half the time (submission order == service order
        # either way; this varies the pipeline-flush pattern).
        if (emitted[0] + emitted[1]) % 2 == 0:
            runtime.step()
    runtime.drain()

    for tenant in (0, 1):
        served = _fetch(runtime.api(tenant), handles[tenant][1])
        alone = _solo(config, jobs[tenant], seed=100 + tenant)
        assert np.array_equal(served, alone), (
            f"tenant {tenant} observed its neighbour "
            f"(config={config.schedule}, window={config.pipeline_window})"
        )
