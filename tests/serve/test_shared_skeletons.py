"""Cross-tenant skeleton sharing: invisible bitwise, visible in counters.

``ServeRuntime(shared_plan_cache=True)`` hands every tenant one shared
:class:`~repro.runtime.plancache.PlanCache`. Skeletons are
fingerprint-determined and buffer-free, so the only observable difference
vs per-tenant caches must be the planner counters — outputs, traces,
clocks and every other stat stay bitwise identical, which
:func:`~repro.serve.bench.shared_skeleton_identity_failures` pins.
"""

import numpy as np

from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.compiler.pipeline import compile_app
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime.config import RuntimeConfig
from repro.serve.bench import (
    JOB_ELEMS,
    _BLOCK,
    build_serve_kernel,
    shared_skeleton_identity_failures,
)
from repro.serve.runtime import ServeRuntime
from repro.serve.tenant import TenantSpec
from repro.sim.engine import SimMachine


def _serve_fixture(shared, tenants=2, config=None, specs=None):
    cfg = config or RuntimeConfig(n_gpus=2)
    app = compile_app([build_serve_kernel()])
    machine = SimMachine(K80_NODE_SPEC.with_gpus(cfg.n_gpus))
    runtime = ServeRuntime(
        app,
        cfg,
        specs if specs is not None else tenants,
        machine=machine,
        shared_plan_cache=shared,
    )
    return app, runtime


def _run_jobs(runtime, iterations=4):
    kernel = build_serve_kernel()
    grid, block = Dim3(JOB_ELEMS // _BLOCK), Dim3(_BLOCK)
    host_x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)
    host_y = np.zeros(JOB_ELEMS, dtype=np.float32)

    def job(api):
        dx = api.cudaMalloc(host_x.nbytes)
        api.cudaMemcpy(dx, host_x, host_x.nbytes, MemcpyKind.HostToDevice)
        dy = api.cudaMalloc(host_y.nbytes)
        api.cudaMemcpy(dy, host_y, host_y.nbytes, MemcpyKind.HostToDevice)
        for _ in range(iterations):
            api.launch(kernel, grid, block, [JOB_ELEMS, dx, dy])

    for t in sorted(runtime.runtimes):
        runtime.submit(t, job)
    runtime.drain()


class TestWiring:
    def test_default_is_per_tenant(self):
        _, runtime = _serve_fixture(shared=False)
        assert runtime.plan_cache is None
        caches = {id(runtime.api(t).plan_cache) for t in runtime.runtimes}
        assert len(caches) == 2

    def test_shared_cache_is_one_instance(self):
        _, runtime = _serve_fixture(shared=True)
        assert runtime.plan_cache is not None
        for t in runtime.runtimes:
            assert runtime.api(t).plan_cache is runtime.plan_cache

    def test_shared_cache_honors_capacity(self):
        cfg = RuntimeConfig(n_gpus=2, plan_cache_capacity=3)
        _, runtime = _serve_fixture(shared=True, config=cfg)
        assert runtime.plan_cache.capacity == 3

    def test_tenant_opt_out_survives_sharing(self):
        # A tenant whose own config disables plan caching must stay
        # uncached even when the serve runtime shares a cache.
        base = RuntimeConfig(n_gpus=2)
        specs = [
            TenantSpec(0),
            TenantSpec(1, config=RuntimeConfig(n_gpus=2, plan_cache=False)),
        ]
        _, runtime = _serve_fixture(shared=True, config=base, specs=specs)
        assert runtime.api(0).plan_cache is runtime.plan_cache
        assert runtime.api(1).plan_cache is None

    def test_residual_caches_stay_per_tenant(self):
        _, runtime = _serve_fixture(shared=True)
        caches = {id(runtime.api(t).residual_cache) for t in runtime.runtimes}
        assert len(caches) == 2


class TestCounters:
    def test_follower_tenants_never_rebuild(self):
        _, runtime = _serve_fixture(shared=True, tenants=3)
        _run_jobs(runtime)
        misses = {
            t: runtime.api(t).stats.plan_cache_misses
            for t in sorted(runtime.runtimes)
        }
        assert misses[0] == 1
        assert misses[1] == 0 and misses[2] == 0

    def test_per_tenant_hits_keep_attribution(self):
        _, runtime = _serve_fixture(shared=True, tenants=2)
        _run_jobs(runtime, iterations=5)
        # Hits are charged to the launching tenant's own stats record,
        # shared cache or not.
        assert runtime.api(0).stats.plan_cache_hits == 4
        assert runtime.api(1).stats.plan_cache_hits == 5


class TestIdentity:
    def test_shared_cache_is_bitwise_invisible(self):
        assert shared_skeleton_identity_failures(n_gpus=2, iterations=4) == []

    def test_overlap_schedule_too(self):
        assert (
            shared_skeleton_identity_failures(
                n_gpus=2, schedule="overlap", iterations=4
            )
            == []
        )
