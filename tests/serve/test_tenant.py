"""Tenant namespacing: ids never alias, tenant 0 is the default namespace."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.errors import ServeError
from repro.harness.calibration import K80_NODE_SPEC
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.serve.bench import JOB_ELEMS, build_serve_kernel
from repro.serve.runtime import ServeRuntime
from repro.serve.tenant import LAUNCH_NAMESPACE, VB_NAMESPACE, TenantRuntime, TenantSpec
from repro.sim.engine import SimMachine


KERNEL = build_serve_kernel()


@pytest.fixture(scope="module")
def app():
    return compile_app([KERNEL])


class TestSpecs:
    def test_negative_tenant_id(self):
        with pytest.raises(ServeError):
            TenantSpec(-1)

    def test_bad_weight(self):
        with pytest.raises(ServeError):
            TenantSpec(0, weight=0.0)

    def test_config_override(self, app):
        base = RuntimeConfig(n_gpus=2)
        override = RuntimeConfig(n_gpus=2, schedule="overlap")
        runtime = ServeRuntime(
            app, base, [TenantSpec(0), TenantSpec(1, config=override)]
        )
        assert runtime.api(0).config.schedule == "sequential"
        assert runtime.api(1).config.schedule == "overlap"


class TestNamespacing:
    def test_tenant_zero_matches_direct_api(self, app):
        cfg = RuntimeConfig(n_gpus=2)
        direct = MultiGpuApi(app, cfg)
        tenant = TenantRuntime(0, app, cfg)
        assert next(direct._vb_ids) == next(tenant._vb_ids) == 1
        assert next(direct._launch_counter) == next(tenant._launch_counter) == 0

    def test_namespaces_disjoint(self, app):
        cfg = RuntimeConfig(n_gpus=2)
        t1 = TenantRuntime(1, app, cfg)
        t2 = TenantRuntime(2, app, cfg)
        assert next(t1._vb_ids) == VB_NAMESPACE + 1
        assert next(t2._vb_ids) == 2 * VB_NAMESPACE + 1
        assert next(t1._launch_counter) == LAUNCH_NAMESPACE
        assert next(t2._launch_counter) == 2 * LAUNCH_NAMESPACE

    def test_shared_dataflow_keys_never_alias(self, app):
        """Two tenants' records in the shared log live under disjoint keys."""
        cfg = RuntimeConfig(n_gpus=2)
        machine = SimMachine(K80_NODE_SPEC.with_gpus(2))
        runtime = ServeRuntime(app, cfg, 2, machine=machine)
        kernel = KERNEL
        x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)
        y = np.zeros(JOB_ELEMS, dtype=np.float32)
        for tenant in (0, 1):
            api = runtime.api(tenant)
            dx = api.cudaMalloc(x.nbytes)
            api.cudaMemcpy(dx, x, x.nbytes, MemcpyKind.HostToDevice)
            dy = api.cudaMalloc(y.nbytes)
            api.cudaMemcpy(dy, y, y.nbytes, MemcpyKind.HostToDevice)
            api.launch(kernel, Dim3(JOB_ELEMS // 128), Dim3(128), [JOB_ELEMS, dx, dy])
            api.cudaDeviceSynchronize()
        assert runtime.api(0).dataflow is runtime.api(1).dataflow
        vb_ids = {
            key[0]
            for store in (runtime.dataflow._read, runtime.dataflow._write)
            for key in store
        }
        t0_ids = {vb for vb in vb_ids if vb < VB_NAMESPACE}
        t1_ids = {vb for vb in vb_ids if VB_NAMESPACE <= vb < 2 * VB_NAMESPACE}
        assert t0_ids and t1_ids
        assert t0_ids | t1_ids == vb_ids

    def test_duplicate_tenant_ids_rejected(self, app):
        with pytest.raises(ServeError):
            ServeRuntime(app, RuntimeConfig(n_gpus=2), [TenantSpec(3), TenantSpec(3)])

    def test_unknown_tenant_lookup(self, app):
        runtime = ServeRuntime(app, RuntimeConfig(n_gpus=2), 1)
        with pytest.raises(ServeError):
            runtime.api(5)

    def test_needs_a_tenant(self, app):
        with pytest.raises(ServeError):
            ServeRuntime(app, RuntimeConfig(n_gpus=2), 0)
        with pytest.raises(ServeError):
            ServeRuntime(app, RuntimeConfig(n_gpus=2), [])
