"""Documentation hygiene: every module and public callable is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    mod = importlib.import_module(module_name)
    exported = getattr(mod, "__all__", None)
    if exported is None:
        pytest.skip("module defines no public API")
    undocumented = []
    for name in exported:
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented public API {undocumented}"


def test_top_level_docs_exist():
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 1000, f"{doc} is suspiciously short"


def test_serving_doc_covers_the_subsystem():
    """docs/serving.md exists and documents what the code actually ships."""
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    text = (root / "docs" / "serving.md").read_text()
    assert len(text) > 1000, "docs/serving.md is suspiciously short"
    for needle in (
        "repro.serve",
        "deficit",  # the fairness policy
        "SERVE_QUEUE_FULL",  # the stable admission rejection code
        "bench serve",  # the saturation benchmark entry point
        "tenant",
        "shared_plan_cache",  # cross-tenant skeleton sharing
        "skeleton",
    ):
        assert needle in text, f"docs/serving.md does not mention {needle!r}"
    # Cross-references both ways.
    assert "docs/serving.md" in (root / "README.md").read_text()
    assert "docs/serving.md" in (root / "docs" / "scheduler.md").read_text()
    assert "docs/scheduler.md" in text


def test_pipeline_demo_runs():
    """examples/pipeline_demo.py runs clean and shows the key behaviours.

    The demo is the documentation's executable companion for the
    pipelining section of docs/scheduler.md: bitwise-identical results at
    every window, and host-visible operations draining the buffer.
    """
    import os
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    demo = root / "examples" / "pipeline_demo.py"
    assert demo.exists()
    env = {**os.environ, "PYTHONPATH": str(root / "src")}
    proc = subprocess.run(
        [sys.executable, str(demo)],
        capture_output=True,
        text=True,
        env=env,
        cwd=root,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "bitwise-identical results" in proc.stdout
    assert "depth=0" in proc.stdout


def test_taskgraph_doc_covers_the_subsystem():
    """docs/taskgraph.md exists and documents what the code actually ships."""
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    text = (root / "docs" / "taskgraph.md").read_text()
    assert len(text) > 1000, "docs/taskgraph.md is suspiciously short"
    for needle in (
        "repro.tasks",
        "@task",  # the declaration surface
        "region2d",  # the footprint algebra
        "RAW",  # derived dependence kinds
        "wave",  # the execution model
        "RP701",  # the degradation diagnostics
        "TaskGraphError",  # the error surface (exit 82)
        "bench taskgraph",  # the benchmark entry point
        "serialized",  # the identity baseline
    ):
        assert needle in text, f"docs/taskgraph.md does not mention {needle!r}"
    # Cross-references both ways.
    assert "docs/taskgraph.md" in (root / "README.md").read_text()
    assert "docs/taskgraph.md" in (root / "docs" / "scheduler.md").read_text()
    assert "docs/taskgraph.md" in (root / "docs" / "static-analysis.md").read_text()
    assert "docs/scheduler.md" in text
    assert "docs/static-analysis.md" in text
    # The bench table made it into the experiments log.
    assert "bench taskgraph" in (root / "EXPERIMENTS.md").read_text()


def test_taskgraph_demo_runs():
    """examples/taskgraph_demo.py runs clean and shows the key behaviours.

    The demo is docs/taskgraph.md's executable companion: the derived
    graph structure, wave execution, bitwise graph/serialized identity,
    and agreement with numpy.linalg.cholesky.
    """
    import os
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    demo = root / "examples" / "taskgraph_demo.py"
    assert demo.exists()
    env = {**os.environ, "PYTHONPATH": str(root / "src")}
    proc = subprocess.run(
        [sys.executable, str(demo)],
        capture_output=True,
        text=True,
        env=env,
        cwd=root,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "dependence waves" in proc.stdout
    assert "bitwise identical" in proc.stdout
    assert "numpy.linalg.cholesky" in proc.stdout


def test_performance_doc_covers_the_staged_planner():
    """docs/performance.md exists and documents what the code actually ships."""
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    text = (root / "docs" / "performance.md").read_text()
    assert len(text) > 1000, "docs/performance.md is suspiciously short"
    for needle in (
        "repro.runtime.plancache",  # the fingerprint-keyed LRU
        "repro.runtime.fingerprint",  # the shared launch identity
        "PLANNING_CONFIG_FIELDS",  # the staleness contract
        "skeleton",  # the staged split ...
        "residual",  # ... tracker-independent vs -dependent
        "plan_cache_hits",  # the observable counter slice
        "residual_cache_hits",  # ... including the replay counters
        "enumerator_fallback",  # scalar-scanner attribution
        "bench overhead",  # the measurement entry point
        "plan_cache=False",  # the ablation knobs ...
        "residual_cache=False",
        "footprint_digest",  # the replay key's tracker summary
        "replay",  # the steady-state hit path
        "mutation_identity_failures",  # the adversarial sweep
    ):
        assert needle in text, f"docs/performance.md does not mention {needle!r}"
    # Cross-references both ways.
    assert "docs/performance.md" in (root / "README.md").read_text()
    assert "docs/performance.md" in (
        root / "docs" / "runtime-and-simulator.md"
    ).read_text()
    assert "docs/runtime-and-simulator.md" in text
    assert "docs/scheduler.md" in text
    # The overhead table made it into the experiments log.
    assert "bench overhead" in (root / "EXPERIMENTS.md").read_text()


def test_diagnostic_codes_match_docs_table():
    """Every registered RPxxx code appears in docs/static-analysis.md's

    code table with the registry's default severity — and vice versa, so
    neither side can drift without this test flagging it.
    """
    import pathlib
    import re

    from repro.analysis.codes import REGISTRY

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    doc = (root / "docs" / "static-analysis.md").read_text()
    rows = dict(
        re.findall(r"^\| `(RP\d{3})` \| (error|warning|advice) \|", doc, re.M)
    )
    assert rows, "code table not found in docs/static-analysis.md"
    assert set(rows) == set(REGISTRY), (
        f"docs-only codes: {sorted(set(rows) - set(REGISTRY))}; "
        f"undocumented codes: {sorted(set(REGISTRY) - set(rows))}"
    )
    mismatched = {
        code: (rows[code], info.severity.name.lower())
        for code, info in REGISTRY.items()
        if rows[code] != info.severity.name.lower()
    }
    assert not mismatched, f"severity drift (docs, registry): {mismatched}"
