"""Host-side launch-path profiling for the overhead benchmark.

Attach a :class:`LaunchProfiler` to ``api.profiler`` and the staged launch
path (:mod:`repro.runtime.launch`) records real wall-clock per stage —
``fingerprint`` (key construction), ``skeleton`` (partitioning + enumerator
scans, cold only), ``residual`` (tracker queries + stale-copy planning) and
``submit`` (pipelined issue) — split into *cold* (plan-cache miss) and
*warm* (hit) launches. This measures the Python orchestration itself, not
the simulated hardware; ``repro bench overhead`` turns the totals into
µs-per-launch and pins the warm-path reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["LaunchProfiler", "STAGES"]

#: Stage names in launch-path order.
STAGES = ("fingerprint", "skeleton", "residual", "submit")


@dataclass
class LaunchProfiler:
    """Accumulated host seconds and launch counts per (warm, stage)."""

    #: (warm, stage) -> accumulated seconds.
    seconds: Dict[Tuple[bool, str], float] = field(default_factory=dict)
    #: warm -> number of launches profiled.
    launches: Dict[bool, int] = field(default_factory=dict)

    def add(self, warm: bool, stage: str, duration: float) -> None:
        key = (warm, stage)
        self.seconds[key] = self.seconds.get(key, 0.0) + duration

    def count_launch(self, warm: bool) -> None:
        self.launches[warm] = self.launches.get(warm, 0) + 1

    def total_us(self, warm: bool) -> float:
        """Total profiled host microseconds across all stages."""
        return 1e6 * sum(v for (w, _), v in self.seconds.items() if w is warm)

    def per_launch_us(self, warm: bool) -> Dict[str, float]:
        """Mean host microseconds per launch, per stage plus ``total``.

        Empty when no launch of that temperature was profiled.
        """
        n = self.launches.get(warm, 0)
        if not n:
            return {}
        out = {
            stage: 1e6 * self.seconds.get((warm, stage), 0.0) / n for stage in STAGES
        }
        out["total"] = sum(out.values())
        return out
