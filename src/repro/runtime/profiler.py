"""Host-side launch-path profiling for the overhead benchmark.

Attach a :class:`LaunchProfiler` to ``api.profiler`` and the staged launch
path (:mod:`repro.runtime.launch`) records real wall-clock per stage —
``fingerprint`` (key construction), ``skeleton`` (partitioning + enumerator
scans, cold only), ``residual`` (tracker queries + stale-copy planning, or
digest + replay on a residual-cache hit) and ``submit`` (pipelined issue) —
split into three launch temperatures: *cold* (plan-cache miss), *warm*
(skeleton hit, residual re-derived) and *replay* (skeleton hit **and**
residual-cache hit). This measures the Python orchestration itself, not the
simulated hardware; ``repro bench overhead`` turns the totals into
µs-per-launch and pins the warm and replay reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["LaunchProfiler", "STAGES", "TEMPERATURES"]

#: Stage names in launch-path order.
STAGES = ("fingerprint", "skeleton", "residual", "submit")

#: Launch temperatures, coldest first: plan-cache miss, skeleton hit with a
#: re-derived residual, and skeleton + residual-replay hit.
TEMPERATURES = ("cold", "warm", "replay")


@dataclass
class LaunchProfiler:
    """Accumulated host seconds and launch counts per (temperature, stage)."""

    #: (temperature, stage) -> accumulated seconds.
    seconds: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: temperature -> number of launches profiled.
    launches: Dict[str, int] = field(default_factory=dict)

    def add(self, temp: str, stage: str, duration: float) -> None:
        key = (temp, stage)
        self.seconds[key] = self.seconds.get(key, 0.0) + duration

    def count_launch(self, temp: str) -> None:
        self.launches[temp] = self.launches.get(temp, 0) + 1

    def total_us(self, temp: str) -> float:
        """Total profiled host microseconds across all stages."""
        return 1e6 * sum(v for (t, _), v in self.seconds.items() if t == temp)

    def per_launch_us(self, temp: str) -> Dict[str, float]:
        """Mean host microseconds per launch, per stage plus ``total``.

        Empty when no launch of that temperature was profiled.
        """
        n = self.launches.get(temp, 0)
        if not n:
            return {}
        out = {
            stage: 1e6 * self.seconds.get((temp, stage), 0.0) / n for stage in STAGES
        }
        out["total"] = sum(out.values())
        return out
