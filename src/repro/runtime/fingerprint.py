"""The launch fingerprint: one identity shared by every memoization site.

A *launch fingerprint* captures everything the tracker-independent half of
plan construction depends on: the kernel's IR identity, the launch
configuration, the scalar arguments (which determine the resolved buffer
shapes; element dtypes are part of the kernel signature itself), the
planning-relevant slice of :class:`~repro.runtime.config.RuntimeConfig`,
the device-placement rotation, and the cluster topology. Two launches with
equal fingerprints produce identical partition lists, enumerated access
ranges and DAG shapes — only the tracker-dependent residual (which stale
segments need copying) may differ.

Virtual-buffer identities are deliberately *excluded*: an iterative stencil
ping-ponging between two buffers converges to one steady-state fingerprint
per parity, which is exactly what lets the plan cache and the time-estimate
memo (:func:`repro.sched.policy.estimate_plan_times`) hit every iteration.

This module replaces the ad-hoc ``plan_fingerprint`` hashing that used to
live in ``repro.sched.policy`` so the plan cache, the estimate memo and the
``auto`` selector can never disagree about what "the same launch" means.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.pipeline import CompiledKernel
    from repro.cuda.dim3 import Dim3
    from repro.runtime.api import MultiGpuApi
    from repro.runtime.config import RuntimeConfig
    from repro.sched.graph import LaunchPlan

__all__ = [
    "PLANNING_CONFIG_FIELDS",
    "config_plan_key",
    "launch_fingerprint",
    "plan_estimate_key",
    "residual_key",
]

#: RuntimeConfig fields that influence plan construction (partitioning,
#: which scans run, how copies are trimmed). Toggling any of these between
#: otherwise-identical launches changes the fingerprint, so a cached plan
#: can never leak across a knob flip. ``debug_validate_writes`` and
#: ``h2d_distribution`` only affect non-launch paths but are included for
#: one extra tuple slot of safety margin.
PLANNING_CONFIG_FIELDS = (
    "n_gpus",
    "transfers_enabled",
    "tracking_enabled",
    "validate_unit_axes",
    "h2d_distribution",
    "shared_copies",
    "schedule",
    "pipeline_window",
    "irredundant_transfers",
    "debug_validate_writes",
)


def config_plan_key(config: "RuntimeConfig") -> tuple:
    """The planning-relevant slice of a runtime config, as a hashable tuple."""
    return tuple(getattr(config, name) for name in PLANNING_CONFIG_FIELDS)


def launch_fingerprint(
    api: "MultiGpuApi",
    ck: "CompiledKernel",
    grid: "Dim3",
    block: "Dim3",
    scalars: Mapping[str, int],
    shapes: Mapping[str, Sequence[int]],
) -> tuple:
    """The hashable identity of one launch's tracker-independent plan."""
    cluster = getattr(api, "cluster", None)
    return (
        ck.kernel.name,
        (grid.x, grid.y, grid.z),
        (block.x, block.y, block.z),
        tuple(sorted(scalars.items())),
        tuple(sorted((name, tuple(shape)) for name, shape in shapes.items())),
        config_plan_key(api.config),
        getattr(api, "_placement_offset", None) or 0,
        None if cluster is None else (cluster.n_nodes, cluster.gpus_per_node),
    )


def residual_key(fingerprint: tuple, digests: tuple) -> tuple:
    """Key under which one launch's materialized residual may be memoized.

    The fingerprint pins everything the tracker-independent skeleton
    depends on; the digest vector — one
    :meth:`~repro.runtime.tracker.SegmentTracker.footprint_digest` per read
    array, computed over the skeleton's per-array read-footprint envelope
    against the *live* trackers — pins the coherence state the residual can
    observe. Equal keys therefore imply identical tracker query results,
    identical stale-copy plans and identical counters, which is the whole
    soundness argument of the replay cache: a stale digest can never be
    served because the digest is recomputed from the current trackers on
    every launch.
    """
    return (fingerprint, digests)


def plan_estimate_key(plan: "LaunchPlan") -> tuple:
    """Key under which one plan's time estimate may be memoized.

    The launch fingerprint pins the kernel, launch shape and partition
    list; the transfer signature (source, destination, size per copy) adds
    the tracker-dependent half the estimate prices. Plans built outside the
    staged launch path (no fingerprint attached) fall back to an equivalent
    structural key. Buffer identities never enter the key, so a ping-pong
    iteration hits the memo from its second steady-state pass on.
    """
    base = plan.fingerprint
    if base is None:
        base = (
            plan.ck.kernel.name,
            (plan.grid.x, plan.grid.y, plan.grid.z),
            (plan.block.x, plan.block.y, plan.block.z),
            tuple(sorted(plan.scalars.items())),
            tuple((k.gpu, k.part.n_blocks) for k in plan.kernels),
        )
    return (base, tuple((t.owner, t.gpu, t.nbytes) for t in plan.transfers))
