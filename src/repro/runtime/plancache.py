"""Fingerprint-keyed LRU caches for the staged launch path.

The staged launch path (:mod:`repro.runtime.launch`) splits plan
construction into a tracker-independent *skeleton* — partition intervals,
enumerated read/write byte ranges, DAG shape — and a cheap tracker-dependent
residual applied at issue time. The skeleton depends only on the launch
fingerprint (:mod:`repro.runtime.fingerprint`), so an iteration loop
re-launching the same shape thousands of times builds it once. The same LRU
class also backs the *residual replay cache*, keyed by
``(fingerprint, tracker footprint digest)``, and — optionally shared across
tenants by :class:`~repro.serve.runtime.ServeRuntime` — the cross-runtime
skeleton cache. Capacities come from
:class:`~repro.runtime.config.RuntimeConfig` (``plan_cache_capacity`` /
``residual_cache_capacity``).

Deliberately dependency-free: the cache stores opaque values under hashable
keys and knows nothing about plans, so it can be unit-tested in isolation
and imported from anywhere without cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

__all__ = ["PlanCache"]


class PlanCache:
    """A bounded LRU map from launch fingerprints to plan skeletons."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (refreshing its recency), or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, value: object) -> bool:
        """Insert ``key -> value``; returns True when an entry was evicted."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
