"""Segment trackers for virtual buffers (paper §8.1, extended with sharers).

"The tracker contains a sorted list of non-overlapping segments, each
containing a reference to the buffer instance that holds the most recently
updated copy of that segment." Segments partition the byte range
``[0, size)``; the value of each segment is the owning device id *plus a
sharer set* — the devices holding a valid (byte-identical) copy of the
owner's data. Adjacent segments with equal owner and sharers are merged
eagerly, so a kernel with a 1:1 write pattern keeps exactly one segment per
partition (§8.1's observation about locality limiting fragmentation).

The sharer set relaxes the paper's §8.3 limitation ("the tracker does not
support shared copies"): a synchronization copy may *register* its
destination as a sharer (:meth:`SegmentTracker.add_sharer`), so the next
launch skips segments the reader already holds. MSI-style invalidation
keeps the representation coherent: every write (:meth:`SegmentTracker.update`
/ :meth:`~SegmentTracker.update_many`) resets the written range to a sole
owner, discarding all sharer copies. With no ``add_sharer`` calls the
tracker degenerates to the paper's single-owner semantics exactly —
segment boundaries, owners, and operation counts are all unchanged.

Operations are counted per class (``query`` / ``update`` / ``share`` /
``invalidate``) for host-cost accounting; ``op_count`` is their sum, which
in sole-owner mode equals the original single-counter accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import TrackerError
from repro.runtime.btree import BTreeMap

__all__ = ["Segment", "SegmentTracker"]

#: The empty sharer set (interned: almost every segment uses it).
_NO_SHARERS: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class Segment:
    """A half-open byte range with one owner plus the devices sharing a valid copy."""

    start: int
    end: int
    owner: int
    sharers: FrozenSet[int] = _NO_SHARERS

    @property
    def nbytes(self) -> int:
        return self.end - self.start

    @property
    def holders(self) -> FrozenSet[int]:
        """All devices holding a valid copy: the owner plus every sharer."""
        return self.sharers | {self.owner}


class SegmentTracker:
    """Maps every byte of ``[0, size)`` to its owner and valid-copy sharer set."""

    def __init__(self, size: int, initial_owner: int = 0, *, min_degree: int = 8) -> None:
        if size <= 0:
            raise TrackerError(f"tracker over empty range (size={size})")
        self.size = size
        # key = segment start; value = (segment end, owner, sharers)
        self._map = BTreeMap(min_degree)
        self._map.insert(0, (size, initial_owner, _NO_SHARERS))
        #: Tracker operations per class (host-cost accounting): ``query``
        #: (interval lookups), ``update`` (ownership writes), ``share``
        #: (sharer registrations), ``invalidate`` (updates that discarded at
        #: least one sharer copy).
        self.op_counts: Dict[str, int] = {
            "query": 0,
            "update": 0,
            "share": 0,
            "invalidate": 0,
        }

    @property
    def op_count(self) -> int:
        """Total tracker operations across all classes.

        In sole-owner mode (no sharer registrations) this equals the
        original single-counter accounting exactly.
        """
        return sum(self.op_counts.values())

    # -- queries ------------------------------------------------------------------

    def query(self, lo: int, hi: int) -> List[Segment]:
        """Segments overlapping ``[lo, hi)``, clipped to it, in order."""
        self._check_range(lo, hi)
        self.op_counts["query"] += 1
        return self._query_nocount(lo, hi)

    def _query_nocount(self, lo: int, hi: int) -> List[Segment]:
        out: List[Segment] = []
        entry = self._map.floor(lo)
        if entry is None:
            raise TrackerError("tracker lost coverage of offset 0")
        start = entry[0]
        for key, (end, owner, sharers) in self._map.items_from(start):
            if key >= hi:
                break
            if end <= lo:
                continue
            out.append(Segment(max(key, lo), min(end, hi), owner, sharers))
        return out

    def footprint_digest(
        self, runs: List[Tuple[int, int]]
    ) -> Tuple[Tuple[int, int, int, FrozenSet[int]], ...]:
        """Stable summary of the tracker state intersecting ``runs``.

        Returns the clipped ``(start, end, owner, sharers)`` tuples of every
        segment overlapping the given sorted, non-overlapping byte runs —
        the exact coherence state a launch whose reads fall inside ``runs``
        can observe. Two trackers with equal digests over a footprint answer
        every query inside that footprint identically (the segmentation is
        canonical: equal-valued neighbors merge eagerly), which is what lets
        the residual replay cache key memoized plans on
        ``(fingerprint, digest vector)`` soundly.

        Costs O(segments-in-footprint) tree walking and charges *no* tracker
        operation: computing the digest is cache bookkeeping, not a
        dependency-resolution query, so ``op_counts`` stay untouched and the
        replay path remains invisible to host-cost accounting.
        """
        if not runs:
            return ()
        out: List[Tuple[int, int, int, FrozenSet[int]]] = []
        # Inlined tuple-only variant of _query_nocount: the digest runs on
        # every launch's hot path, so no Segment objects are built.
        floor = self._map.floor
        items_from = self._map.items_from
        for lo, hi in runs:
            self._check_range(lo, hi)
            entry = floor(lo)
            if entry is None:
                raise TrackerError("tracker lost coverage of offset 0")
            for key, (end, owner, sharers) in items_from(entry[0]):
                if key >= hi:
                    break
                if end <= lo:
                    continue
                out.append((max(key, lo), min(end, hi), owner, sharers))
        return tuple(out)

    def owner_at(self, offset: int) -> int:
        """The device owning the byte at ``offset``."""
        seg = self.query(offset, offset + 1)
        return seg[0].owner

    def holders_at(self, offset: int) -> FrozenSet[int]:
        """All devices holding a valid copy of the byte at ``offset``."""
        seg = self.query(offset, offset + 1)
        return seg[0].holders

    def segments(self) -> List[Segment]:
        """All segments in order."""
        return [Segment(k, end, owner, sharers) for k, (end, owner, sharers) in self._map.items()]

    def owners(self) -> Set[int]:
        return {owner for _, (_, owner, _) in self._map.items()}

    @property
    def n_segments(self) -> int:
        return len(self._map)

    # -- updates --------------------------------------------------------------------

    def update(self, lo: int, hi: int, owner: int) -> int:
        """Mark ``[lo, hi)`` as most recently written by ``owner``.

        The write invalidates every shared copy of the range (MSI): the
        range collapses to a sole-owner segment. Returns the number of
        invalidations performed (1 when any overlapped segment had a
        non-empty sharer set, else 0).
        """
        self._check_range(lo, hi)
        if lo == hi:
            return 0
        self.op_counts["update"] += 1
        invalidated = 1 if any(s.sharers for s in self._query_nocount(lo, hi)) else 0
        self.op_counts["invalidate"] += invalidated

        self._split_at(lo)
        self._split_at(hi)

        # Remove all segments fully inside [lo, hi).
        doomed = [k for k, _ in self._map.range_items(lo, hi)]
        for k in doomed:
            self._map.delete(k)
        self._map.insert(lo, (hi, owner, _NO_SHARERS))
        self._coalesce(lo, hi)
        return invalidated

    def add_sharer(self, lo: int, hi: int, dev: int) -> None:
        """Register ``dev`` as holding a valid copy of ``[lo, hi)``.

        Called after a synchronization copy lands on ``dev``: ownership is
        unchanged, but subsequent queries report ``dev`` among the holders,
        so the next launch can skip re-transferring the range. Segments
        already owned by (or shared with) ``dev`` are left untouched.
        """
        self._check_range(lo, hi)
        if lo == hi:
            return
        self.op_counts["share"] += 1

        self._split_at(lo)
        self._split_at(hi)
        changes: List[Tuple[int, Tuple[int, int, FrozenSet[int]]]] = []
        for key, (end, owner, sharers) in self._map.range_items(lo, hi):
            if dev == owner or dev in sharers:
                continue
            changes.append((key, (end, owner, sharers | {dev})))
        for key, value in changes:
            self._map.insert(key, value)
        # Re-coalesce the window (registration may equalize neighbors). The
        # reverse walk keeps every remaining key valid: merging into the
        # previous segment only deletes keys not yet visited via `get`.
        for key in reversed([k for k, _ in self._map.range_items(lo, hi)]):
            value = self._map.get(key)
            if value is not None:
                self._coalesce(key, value[0])

    def _split_at(self, offset: int) -> None:
        """Split the segment containing ``offset`` so a boundary falls on it."""
        if offset <= 0 or offset >= self.size:
            return
        entry = self._map.floor(offset)
        if entry is None:
            raise TrackerError("tracker lost coverage of offset 0")
        key, (end, owner, sharers) = entry
        if key < offset < end:
            self._map.insert(key, (offset, owner, sharers))
            self._map.insert(offset, (end, owner, sharers))

    def _coalesce(self, lo: int, hi: int) -> None:
        """Merge the segment starting at ``lo`` with equal-value neighbors."""
        start, (end, owner, sharers) = lo, self._map.get(lo)
        prev = self._map.floor(lo - 1) if lo > 0 else None
        if prev is not None:
            pk, (pend, powner, psharers) = prev
            if pend == start and powner == owner and psharers == sharers:
                self._map.delete(start)
                self._map.insert(pk, (end, owner, sharers))
                start = pk
        nxt = self._map.ceiling(end)
        if nxt is not None:
            nk, (nend, nowner, nsharers) = nxt
            if nk == end and nowner == owner and nsharers == sharers:
                self._map.delete(nk)
                self._map.insert(start, (nend, owner, sharers))

    # -- batched operations ------------------------------------------------------------

    def query_many(self, ranges: List[Tuple[int, int]]) -> List[Segment]:
        """Clipped segments for many sorted, non-overlapping ranges.

        One merge-join pass over the segment list instead of one descent per
        range; the per-row ranges a stencil enumerator emits make this the
        runtime's hot path. ``op_counts`` still charge one logical tracker
        operation per range (the cost model charges what the paper's
        per-interval queries would).
        """
        if not ranges:
            return []
        self.op_counts["query"] += len(ranges)
        segs = self.segments()
        out: List[Segment] = []
        i = 0
        n = len(segs)
        for lo, hi in ranges:
            self._check_range(lo, hi)
            while i < n and segs[i].end <= lo:
                i += 1
            j = i
            while j < n and segs[j].start < hi:
                s = segs[j]
                out.append(Segment(max(s.start, lo), min(s.end, hi), s.owner, s.sharers))
                j += 1
            # The last overlapping segment may also overlap the next range.
            i = max(i, j - 1)
        return out

    def update_many(self, ranges: List[Tuple[int, int]], owner: int) -> int:
        """Bulk form of :meth:`update` for sorted, non-overlapping ranges.

        Rebuilds the affected window in one pass: listed ranges collapse to
        the new sole owner (invalidating sharer copies), gaps keep their
        current owner+sharers, and the result is coalesced before touching
        the B-tree — so a stencil's thousands of per-row write ranges
        collapse into a handful of tree operations. Returns the number of
        ranges whose write discarded at least one sharer copy.
        """
        ranges = [(lo, hi) for lo, hi in ranges if lo < hi]
        if not ranges:
            return 0
        self.op_counts["update"] += len(ranges)
        window_lo, window_hi = ranges[0][0], ranges[-1][1]
        self._check_range(window_lo, window_hi)
        existing = self._query_nocount(window_lo, window_hi)

        invalidated = 0
        shared = [(s.start, s.end) for s in existing if s.sharers]
        if shared:
            si = 0
            for lo, hi in ranges:
                while si < len(shared) and shared[si][1] <= lo:
                    si += 1
                if si < len(shared) and shared[si][0] < hi:
                    invalidated += 1
        self.op_counts["invalidate"] += invalidated

        # Build the window's new (start, end, owner, sharers) list.
        pieces: List[Tuple[int, int, int, FrozenSet[int]]] = []

        def add(lo: int, hi: int, who: int, sharers: FrozenSet[int]) -> None:
            if lo >= hi:
                return
            if pieces and pieces[-1][2:] == (who, sharers) and pieces[-1][1] == lo:
                pieces[-1] = (pieces[-1][0], hi, who, sharers)
            else:
                pieces.append((lo, hi, who, sharers))

        ei = 0
        cursor = window_lo
        for lo, hi in ranges:
            # Gap before this range keeps existing ownership.
            gap_lo = cursor
            while gap_lo < lo:
                while ei < len(existing) and existing[ei].end <= gap_lo:
                    ei += 1
                seg = existing[ei]
                add(gap_lo, min(seg.end, lo), seg.owner, seg.sharers)
                gap_lo = min(seg.end, lo)
            add(lo, hi, owner, _NO_SHARERS)
            cursor = hi

        # Replace the window in the tree.
        entry = self._map.floor(window_lo)
        assert entry is not None
        k0, (end0, owner0, sharers0) = entry
        head = (k0, window_lo, owner0, sharers0) if k0 < window_lo else None
        entry = self._map.floor(window_hi - 1)
        assert entry is not None
        k1, (end1, owner1, sharers1) = entry
        tail = (window_hi, end1, owner1, sharers1) if end1 > window_hi else None
        for k in [k for k, _ in self._map.range_items(k0, window_hi)]:
            self._map.delete(k)
        if head is not None:
            if pieces and pieces[0][2:] == head[2:] and head[1] == pieces[0][0]:
                pieces[0] = (head[0], pieces[0][1], head[2], head[3])
            else:
                self._map.insert(head[0], (head[1], head[2], head[3]))
        if tail is not None:
            if pieces and pieces[-1][2:] == tail[2:] and pieces[-1][1] == tail[0]:
                pieces[-1] = (pieces[-1][0], tail[1], tail[2], tail[3])
            else:
                self._map.insert(tail[0], (tail[1], tail[2], tail[3]))
        for lo, hi, who, sharers in pieces:
            self._map.insert(lo, (hi, who, sharers))
        # Merge across the window edges.
        first_key = pieces[0][0] if pieces else window_lo
        if self._map.get(first_key) is not None:
            self._coalesce(first_key, self._map.get(first_key)[0])
        last = self._map.floor(window_hi - 1)
        if last is not None:
            self._coalesce(last[0], last[1][0])
        return invalidated

    # -- invariants ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Full coverage, no overlap, no mergeable neighbors, owner ∉ sharers."""
        segs = self.segments()
        if not segs:
            raise TrackerError("tracker has no segments")
        if segs[0].start != 0 or segs[-1].end != self.size:
            raise TrackerError(f"tracker does not cover [0, {self.size})")
        for a, b in zip(segs, segs[1:]):
            if a.end != b.start:
                raise TrackerError(f"gap or overlap between {a} and {b}")
            if a.owner == b.owner and a.sharers == b.sharers:
                raise TrackerError(f"unmerged neighbors {a} and {b}")
        for s in segs:
            if s.owner in s.sharers:
                raise TrackerError(f"segment {s} lists its owner as a sharer")
        self._map.check_invariants()

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi <= self.size):
            raise TrackerError(f"range [{lo}, {hi}) outside tracker [0, {self.size})")

    def __repr__(self) -> str:
        def fmt(s: Segment) -> str:
            extra = f"+{sorted(s.sharers)}" if s.sharers else ""
            return f"[{s.start},{s.end})->{s.owner}{extra}"

        return f"SegmentTracker({', '.join(fmt(s) for s in self.segments())})"
