"""Segment trackers for virtual buffers (paper §8.1).

"The tracker contains a sorted list of non-overlapping segments, each
containing a reference to the buffer instance that holds the most recently
updated copy of that segment." Segments partition the byte range
``[0, size)``; the value of each segment is the owning device id. Adjacent
segments with equal owners are merged eagerly, so a kernel with a 1:1
write pattern keeps exactly one segment per partition (§8.1's observation
about locality limiting fragmentation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple

from repro.errors import TrackerError
from repro.runtime.btree import BTreeMap

__all__ = ["Segment", "SegmentTracker"]


@dataclass(frozen=True)
class Segment:
    """A half-open byte range owned by one device."""

    start: int
    end: int
    owner: int

    @property
    def nbytes(self) -> int:
        return self.end - self.start


class SegmentTracker:
    """Maps every byte of ``[0, size)`` to the device owning its newest copy."""

    def __init__(self, size: int, initial_owner: int = 0, *, min_degree: int = 8) -> None:
        if size <= 0:
            raise TrackerError(f"tracker over empty range (size={size})")
        self.size = size
        # key = segment start; value = (segment end, owner)
        self._map = BTreeMap(min_degree)
        self._map.insert(0, (size, initial_owner))
        #: Number of tracker operations performed (host-cost accounting).
        self.op_count = 0

    # -- queries ------------------------------------------------------------------

    def query(self, lo: int, hi: int) -> List[Segment]:
        """Segments overlapping ``[lo, hi)``, clipped to it, in order."""
        self._check_range(lo, hi)
        self.op_count += 1
        out: List[Segment] = []
        entry = self._map.floor(lo)
        if entry is None:
            raise TrackerError("tracker lost coverage of offset 0")
        start = entry[0]
        for key, (end, owner) in self._map.items_from(start):
            if key >= hi:
                break
            if end <= lo:
                continue
            out.append(Segment(max(key, lo), min(end, hi), owner))
        return out

    def owner_at(self, offset: int) -> int:
        """The device owning the byte at ``offset``."""
        seg = self.query(offset, offset + 1)
        return seg[0].owner

    def segments(self) -> List[Segment]:
        """All segments in order."""
        return [Segment(k, end, owner) for k, (end, owner) in self._map.items()]

    def owners(self) -> Set[int]:
        return {owner for _, (_, owner) in self._map.items()}

    @property
    def n_segments(self) -> int:
        return len(self._map)

    # -- updates --------------------------------------------------------------------

    def update(self, lo: int, hi: int, owner: int) -> None:
        """Mark ``[lo, hi)`` as most recently written by ``owner``."""
        self._check_range(lo, hi)
        if lo == hi:
            return
        self.op_count += 1

        # Split the segment containing `lo` (and the one containing `hi`).
        entry = self._map.floor(lo)
        if entry is None:
            raise TrackerError("tracker lost coverage of offset 0")
        k0, (end0, owner0) = entry
        if k0 < lo and end0 > lo:
            self._map.insert(k0, (lo, owner0))
            self._map.insert(lo, (end0, owner0))
        entry = self._map.floor(hi - 1)
        assert entry is not None
        k1, (end1, owner1) = entry
        if k1 < hi and end1 > hi:
            self._map.insert(k1, (hi, owner1))
            self._map.insert(hi, (end1, owner1))

        # Remove all segments fully inside [lo, hi).
        doomed = [k for k, _ in self._map.range_items(lo, hi)]
        for k in doomed:
            self._map.delete(k)
        self._map.insert(lo, (hi, owner))
        self._coalesce(lo, hi)

    def _coalesce(self, lo: int, hi: int) -> None:
        """Merge the segment starting at ``lo`` with equal-owner neighbors."""
        start, (end, owner) = lo, self._map.get(lo)
        prev = self._map.floor(lo - 1) if lo > 0 else None
        if prev is not None:
            pk, (pend, powner) = prev
            if pend == start and powner == owner:
                self._map.delete(start)
                self._map.insert(pk, (end, owner))
                start = pk
        nxt = self._map.ceiling(end)
        if nxt is not None:
            nk, (nend, nowner) = nxt
            if nk == end and nowner == owner:
                self._map.delete(nk)
                self._map.insert(start, (nend, owner))

    # -- batched operations ------------------------------------------------------------

    def query_many(self, ranges: List[Tuple[int, int]]) -> List[Segment]:
        """Clipped segments for many sorted, non-overlapping ranges.

        One merge-join pass over the segment list instead of one descent per
        range; the per-row ranges a stencil enumerator emits make this the
        runtime's hot path. ``op_count`` still counts one logical tracker
        operation per range (the cost model charges what the paper's
        per-interval queries would).
        """
        if not ranges:
            return []
        self.op_count += len(ranges)
        segs = self.segments()
        out: List[Segment] = []
        i = 0
        n = len(segs)
        for lo, hi in ranges:
            self._check_range(lo, hi)
            while i < n and segs[i].end <= lo:
                i += 1
            j = i
            while j < n and segs[j].start < hi:
                s = segs[j]
                out.append(Segment(max(s.start, lo), min(s.end, hi), s.owner))
                j += 1
            # The last overlapping segment may also overlap the next range.
            i = max(i, j - 1)
        return out

    def update_many(self, ranges: List[Tuple[int, int]], owner: int) -> None:
        """Bulk form of :meth:`update` for sorted, non-overlapping ranges.

        Rebuilds the affected window in one pass: listed ranges get the new
        owner, gaps keep their current owners, and the result is coalesced
        before touching the B-tree — so a stencil's thousands of per-row
        write ranges collapse into a handful of tree operations.
        """
        ranges = [(lo, hi) for lo, hi in ranges if lo < hi]
        if not ranges:
            return
        self.op_count += len(ranges)
        window_lo, window_hi = ranges[0][0], ranges[-1][1]
        self._check_range(window_lo, window_hi)
        existing = self.query(window_lo, window_hi)
        self.op_count -= 1  # internal query, not a logical operation

        # Build the window's new (start, end, owner) list.
        pieces: List[Tuple[int, int, int]] = []

        def add(lo: int, hi: int, who: int) -> None:
            if lo >= hi:
                return
            if pieces and pieces[-1][2] == who and pieces[-1][1] == lo:
                pieces[-1] = (pieces[-1][0], hi, who)
            else:
                pieces.append((lo, hi, who))

        ei = 0
        cursor = window_lo
        for lo, hi in ranges:
            # Gap before this range keeps existing ownership.
            gap_lo = cursor
            while gap_lo < lo:
                while ei < len(existing) and existing[ei].end <= gap_lo:
                    ei += 1
                seg = existing[ei]
                add(gap_lo, min(seg.end, lo), seg.owner)
                gap_lo = min(seg.end, lo)
            add(lo, hi, owner)
            cursor = hi

        # Replace the window in the tree.
        entry = self._map.floor(window_lo)
        assert entry is not None
        k0, (end0, owner0) = entry
        head = (k0, window_lo, owner0) if k0 < window_lo else None
        entry = self._map.floor(window_hi - 1)
        assert entry is not None
        k1, (end1, owner1) = entry
        tail = (window_hi, end1, owner1) if end1 > window_hi else None
        for k in [k for k, _ in self._map.range_items(k0, window_hi)]:
            self._map.delete(k)
        if head is not None:
            if pieces and pieces[0][2] == head[2] and head[1] == pieces[0][0]:
                pieces[0] = (head[0], pieces[0][1], head[2])
            else:
                self._map.insert(head[0], (head[1], head[2]))
        if tail is not None:
            if pieces and pieces[-1][2] == tail[2] and pieces[-1][1] == tail[0]:
                pieces[-1] = (pieces[-1][0], tail[1], tail[2])
            else:
                self._map.insert(tail[0], (tail[1], tail[2]))
        for lo, hi, who in pieces:
            self._map.insert(lo, (hi, who))
        # Merge across the window edges.
        first_key = pieces[0][0] if pieces else window_lo
        if self._map.get(first_key) is not None:
            self._coalesce(first_key, self._map.get(first_key)[0])
        last = self._map.floor(window_hi - 1)
        if last is not None:
            self._coalesce(last[0], last[1][0])

    # -- invariants ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Full coverage, no overlap, no mergeable neighbors (tests only)."""
        segs = self.segments()
        if not segs:
            raise TrackerError("tracker has no segments")
        if segs[0].start != 0 or segs[-1].end != self.size:
            raise TrackerError(f"tracker does not cover [0, {self.size})")
        for a, b in zip(segs, segs[1:]):
            if a.end != b.start:
                raise TrackerError(f"gap or overlap between {a} and {b}")
            if a.owner == b.owner:
                raise TrackerError(f"unmerged neighbors {a} and {b}")
        self._map.check_invariants()

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi <= self.size):
            raise TrackerError(f"range [{lo}, {hi}) outside tracker [0, {self.size})")

    def __repr__(self) -> str:
        segs = ", ".join(f"[{s.start},{s.end})->{s.owner}" for s in self.segments())
        return f"SegmentTracker({segs})"
