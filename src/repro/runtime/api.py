"""CUDA Runtime replacements with identical prototypes (paper §8.4).

"The CUDA replacement functions have identical prototypes to their CUDA API
counterparts to ease code transformation and provide a stable interface."
A host program written against :class:`repro.cuda.api.CudaApi` runs
unmodified against :class:`MultiGpuApi`:

* memory-related calls dispatch to the virtual-buffer implementation,
* ``cudaGetDeviceCount`` always returns 1,
* ``cudaDeviceSynchronize`` synchronizes all available devices,
* kernel launches expand to the Figure 4 orchestration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compiler.costmodel import KernelCostModel
from repro.compiler.pipeline import CompiledApp
from repro.cuda.api import KernelCostFn, MemcpyKind, host_bytes
from repro.cuda.device import Device
from repro.cuda.dim3 import Dim3
from repro.cuda.ir.kernel import Kernel
from repro.errors import RuntimeApiError, UnsupportedMemcpyError
from repro.runtime.config import RuntimeConfig
from repro.runtime.launch import launch_fallback, launch_partitioned
from repro.runtime.memcpy import d2h_gather, h2d_scatter
from repro.runtime.plancache import PlanCache
from repro.runtime.vbuffer import VirtualBuffer
from repro.sched.executor import DataflowLog, PipelineExecutor
from repro.sched.policy import select_policy
from repro.sim.engine import SimMachine, SimStream
from repro.sim.topology import MachineSpec
from repro.sim.trace import Category

__all__ = ["RunStats", "MultiGpuApi", "HOST_PLANNER_COUNTERS", "host_planner_counters"]

#: The staged-planner observability counters: plan-skeleton cache traffic
#: plus the per-backend enumerator split. Benchmarks surface exactly this
#: slice, and warm-vs-cold identity checks exclude exactly this slice (a
#: cached plan legitimately skips enumerator requests, so these counters —
#: and only these — may differ between bitwise-identical runs).
HOST_PLANNER_COUNTERS = (
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_evictions",
    "residual_cache_hits",
    "residual_cache_misses",
    "residual_cache_evictions",
    "enumerator_specialized",
    "enumerator_fallback",
)


def host_planner_counters(stats: "RunStats") -> Dict[str, int]:
    """The :data:`HOST_PLANNER_COUNTERS` slice of one stats record."""
    return {name: getattr(stats, name) for name in HOST_PLANNER_COUNTERS}


@dataclass
class RunStats:
    """Counters the tests and the overhead analysis rely on."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    sync_bytes: int = 0
    sync_transfers: int = 0
    enumerator_calls: int = 0
    ranges_emitted: int = 0
    tracker_ops: int = 0
    #: Tracker operations by class (host-cost accounting): interval
    #: queries, ownership updates, sharer registrations, and updates that
    #: discarded at least one sharer copy. ``tracker_ops`` remains the
    #: legacy query+update total; share/invalidate are new classes.
    tracker_query_ops: int = 0
    tracker_update_ops: int = 0
    tracker_share_ops: int = 0
    tracker_invalidate_ops: int = 0
    #: Bytes NOT re-transferred because the destination already held a
    #: valid shared copy (zero unless ``RuntimeConfig.shared_copies``).
    redundant_bytes_avoided: int = 0
    #: Share of ``redundant_bytes_avoided`` whose sole-owner re-transfer
    #: would have crossed the node fabric (zero off-cluster).
    redundant_bytes_avoided_inter: int = 0
    #: Bounding-range slack trimmed from synchronization copies by the
    #: dataflow analyzer (zero unless ``RuntimeConfig.irredundant_transfers``).
    overapprox_bytes_avoided: int = 0
    #: Share of the trimmed slack that would have crossed the node fabric.
    overapprox_bytes_avoided_inter: int = 0
    partition_launches: int = 0
    fallback_launches: int = 0
    #: Subset of sync transfers whose endpoints live on different cluster
    #: nodes (always zero on single-node runtimes).
    inter_node_transfers: int = 0
    inter_node_bytes: int = 0
    #: Per-launch decisions of ``schedule="auto"``, keyed by policy name.
    auto_choices: Dict[str, int] = field(default_factory=dict)
    #: Launch-plan time-estimate memoization (repro.sched.policy): hits
    #: mean an identical launch shape was re-estimated from the cache.
    estimate_cache_hits: int = 0
    estimate_cache_misses: int = 0
    #: Plan-skeleton cache (repro.runtime.plancache): a hit means the
    #: launch reused cached partition/scan results and only ran the
    #: tracker residual; an eviction means a skeleton fell out of the LRU.
    #: All three stay zero when ``RuntimeConfig.plan_cache`` is off.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    #: Residual replay cache (the tracker-dependent complement): a hit
    #: means the launch's (fingerprint, footprint digest) recurred and the
    #: memoized residual was replayed without any tracker queries or
    #: stale-copy planning. All three stay zero when
    #: ``RuntimeConfig.residual_cache`` is off.
    residual_cache_hits: int = 0
    residual_cache_misses: int = 0
    residual_cache_evictions: int = 0
    #: Enumerator scans per backend, counted on enumerator-cache *misses*:
    #: ``specialized`` ran the vectorized numpy program, ``fallback`` the
    #: scalar scanner (non-affine shapes or the interpreted ablation).
    enumerator_specialized: int = 0
    enumerator_fallback: int = 0
    #: Pipelined-executor drains: total flushes and the largest number of
    #: launches fused into one (1 everywhere at ``pipeline_window=1``).
    pipeline_flushes: int = 0
    pipeline_max_batch: int = 0

    def merge(self, other: "RunStats") -> "RunStats":
        """Combine two stats records into one aggregate.

        Counters sum field by field, per-policy ``auto_choices`` sum key by
        key, and ``pipeline_max_batch`` — a high-water mark, not a count —
        takes the maximum. The per-tenant accounting of the serving runtime
        (:mod:`repro.serve`) folds tenants' stats with this: merging the
        per-tenant records of a shared run yields exactly the counters one
        whole-run record would have accumulated, because every counted
        event belongs to exactly one tenant.
        """
        from dataclasses import fields

        merged = RunStats()
        for f in fields(RunStats):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if f.name == "auto_choices":
                combined = dict(a)
                for key, count in b.items():
                    combined[key] = combined.get(key, 0) + count
                merged.auto_choices = combined
            elif f.name == "pipeline_max_batch":
                merged.pipeline_max_batch = max(a, b)
            else:
                setattr(merged, f.name, a + b)
        return merged

    @staticmethod
    def merged(stats: Sequence["RunStats"]) -> "RunStats":
        """Fold any number of stats records into one (empty-safe)."""
        out = RunStats()
        for s in stats:
            out = out.merge(s)
        return out


class MultiGpuApi:
    """The runtime library's drop-in replacement for the CUDA API."""

    def __init__(
        self,
        app: CompiledApp,
        config: RuntimeConfig,
        *,
        machine: Optional[SimMachine] = None,
        functional: bool = True,
        kernel_cost: Optional[KernelCostFn] = None,
    ) -> None:
        self.app = app
        self.config = config
        self.machine = machine
        self.functional = functional
        self.devices: List[Device] = [
            Device(i, functional=functional) for i in range(config.n_gpus)
        ]
        if machine is not None and machine.spec.n_gpus < config.n_gpus:
            raise RuntimeApiError(
                f"machine has {machine.spec.n_gpus} GPUs, runtime wants {config.n_gpus}"
            )
        #: The cluster topology when running on a ClusterSimMachine (duck-
        #: typed off the machine so the runtime has no cluster dependency).
        self.cluster = getattr(machine, "cluster", None)
        if self.cluster is not None and self.cluster.total_gpus != config.n_gpus:
            raise RuntimeApiError(
                f"cluster has {self.cluster.total_gpus} GPUs "
                f"({self.cluster.n_nodes}x{self.cluster.gpus_per_node}), "
                f"runtime wants {config.n_gpus}"
            )
        if kernel_cost is None and machine is not None:
            kernel_cost = KernelCostModel(machine.spec)
        self.kernel_cost = kernel_cost
        self.stats = RunStats()
        self._vb_ids = itertools.count(1)
        self._live_buffers: Dict[int, VirtualBuffer] = {}
        #: Adaptive mode: pick a concrete policy per kernel launch from the
        #: plan's transfer/compute estimate (repro.sched.policy).
        self.auto_schedule = config.schedule == "auto"
        #: Launch-scheduler policy (sequential | overlap | overlap+p2p).
        #: Auto runs the non-launch paths (memcpy, memset, fallback) under
        #: ``overlap`` so their dataflow events are always recorded.
        self.policy = select_policy("overlap" if self.auto_schedule else config.schedule)
        #: Per-(buffer, device, byte interval) completion events for
        #: cross-launch ordering.
        self.dataflow = DataflowLog()
        self._default_stream: Optional[SimStream] = None
        #: Monotone launch index: tags every simulated op a launch issues
        #: (trace attribution survives pipelined interleaving).
        self._launch_counter = itertools.count()
        self._launch_index: Optional[int] = None
        #: Dependence wave of the launch being submitted (set by the
        #: task-graph frontend around footprint-disjoint ready sets; see
        #: DataflowLog). None outside task-graph execution.
        self._dataflow_wave: Optional[int] = None
        #: Device-placement hint of the launch being submitted (task-graph
        #: frontend): rotates the partition->device mapping so partition 0
        #: runs on this device. None keeps the default mapping.
        self._placement_offset: Optional[int] = None
        #: Launch-plan time-estimate memo, keyed by the shared launch
        #: fingerprint (repro.runtime.fingerprint).
        self._estimate_cache: Dict[tuple, tuple] = {}
        #: Fingerprint-keyed plan-skeleton cache. Per-api (not per-app) so
        #: two runtimes sharing one compiled app — e.g. the serve path and
        #: its direct-reference twin — count identical hits and misses.
        #: ServeRuntime may swap in one shared instance across tenants.
        self.plan_cache = (
            PlanCache(config.plan_cache_capacity) if config.plan_cache else None
        )
        #: Residual replay cache, keyed by (fingerprint, footprint digest).
        #: Always per-api: residuals encode this runtime's coherence state.
        self.residual_cache = (
            PlanCache(config.residual_cache_capacity) if config.residual_cache else None
        )
        #: Host-side stage timing hook (repro.runtime.profiler): when a
        #: LaunchProfiler is attached, the staged launch path records
        #: wall-clock per stage. None (the default) costs nothing.
        self.profiler = None
        #: Rolling-window launch batcher. At ``pipeline_window=1`` every
        #: submit flushes immediately — per-launch orchestration exactly.
        self.pipeline = PipelineExecutor(self, config.pipeline_window)

    # -- internals ----------------------------------------------------------------

    @property
    def spec(self) -> Optional[MachineSpec]:
        return self.machine.spec if self.machine else None

    def host_pattern_cost(self, duration: float) -> None:
        """Account sequential host time for dependency resolution."""
        if self.machine and duration > 0:
            self.machine.host_compute(duration, Category.PATTERNS, "patterns")

    # -- memory management (§8.4) -----------------------------------------------------

    def cudaMalloc(self, nbytes: int) -> VirtualBuffer:
        vb = VirtualBuffer(next(self._vb_ids), nbytes, self.devices)
        # A user peeking at coherence state is a host-visible observation:
        # drain any pipelined launches first so the observed timing state
        # matches per-launch orchestration. (Functional/tracker state is
        # maintained eagerly and is always current regardless.)
        vb.on_host_query = self.pipeline.flush
        self._live_buffers[vb.vb_id] = vb
        return vb

    def cudaFree(self, vb: VirtualBuffer) -> None:
        if not isinstance(vb, VirtualBuffer):
            raise RuntimeApiError(f"cudaFree expects a VirtualBuffer, got {type(vb)}")
        self.pipeline.flush()
        vb.free()
        self._live_buffers.pop(vb.vb_id, None)

    def cudaMemset(self, vb: VirtualBuffer, value: int, nbytes: int) -> None:
        """Memset replacement: each device fills its linear share.

        Like the translated host-to-device memcpy (§8.2), the result is
        distributed in the predefined linear pattern and the trackers are
        updated accordingly; the next kernel's buffer synchronization
        corrects any mismatch with its read pattern.
        """
        if not isinstance(vb, VirtualBuffer):
            raise RuntimeApiError(f"cudaMemset expects a VirtualBuffer, got {type(vb)}")
        if nbytes > vb.nbytes:
            raise RuntimeApiError(f"memset of {nbytes} bytes into {vb.nbytes}-byte buffer")
        self.pipeline.flush()
        from repro.runtime.memcpy import linear_chunks

        for dev_idx, lo, hi in linear_chunks(nbytes, self.config.n_gpus):
            dev_id = self.devices[dev_idx].device_id
            if self.functional:
                vb.bytes_on(dev_id)[lo:hi] = value & 0xFF
            if self.machine:
                duration = (hi - lo) / self.machine.spec.mem_bw_per_gpu
                end = self.machine.launch_kernel(dev_id, duration, label="memset")
                if self.policy.overlap:
                    self.dataflow.note_write(vb.vb_id, dev_id, lo, hi, end)
            if self.config.tracking_enabled:
                self.host_pattern_cost(self.spec.tracker_op_cost if self.spec else 0.0)
                self.stats.tracker_update_ops += 1
                self.stats.tracker_invalidate_ops += vb.tracker.update(lo, hi, dev_id)

    # -- streams ------------------------------------------------------------------------

    def cudaStreamCreate(self) -> Optional[SimStream]:
        """A new in-order copy stream (None in machine-less functional runs)."""
        return self.machine.create_stream() if self.machine else None

    @property
    def default_stream(self) -> Optional[SimStream]:
        if self._default_stream is None and self.machine is not None:
            self._default_stream = self.machine.create_stream("stream0")
        return self._default_stream

    def cudaStreamSynchronize(self, stream: Optional[SimStream] = None) -> None:
        """Host blocks until every operation enqueued on ``stream`` completed.

        With no argument, waits for the default stream — the completion
        point of all ``cudaMemcpyAsync`` calls issued without an explicit
        stream.
        """
        self.pipeline.flush()
        if self.machine is None:
            return
        target = stream if stream is not None else self.default_stream
        self.machine.wait_until(target.avail, label="stream-sync")

    # -- memcpy (§8.2) -------------------------------------------------------------------

    def cudaMemcpy(self, dst, src, nbytes: int, kind: MemcpyKind) -> None:
        self._memcpy(dst, src, nbytes, kind, synchronous=True)

    def cudaMemcpyAsync(
        self, dst, src, nbytes: int, kind: MemcpyKind, stream: Optional[SimStream] = None
    ) -> None:
        """Asynchronous memcpy with real enqueue semantics.

        The translated copies are enqueued on ``stream`` (default stream if
        omitted): the call returns immediately, and the copies' completion
        events are recorded on the stream so ``cudaStreamSynchronize``
        provides the CUDA-style completion point. Under the ``sequential``
        policy the copies themselves are issued exactly as before
        (barrier-coupled DMA); the overlap policies gate them on dataflow
        events instead.
        """
        events = self._memcpy(dst, src, nbytes, kind, synchronous=False)
        if self.machine is not None:
            target = stream if stream is not None else self.default_stream
            for end in events:
                target.record(end)

    def _memcpy(self, dst, src, nbytes, kind, *, synchronous) -> List[float]:
        # Memcopies are host-visible (D2H makes results observable; H2D
        # orders against in-flight reads of the overwritten buffer): drain
        # any pipelined launches before issuing the copies.
        self.pipeline.flush()
        if kind is MemcpyKind.HostToDevice:
            return h2d_scatter(self, dst, src, nbytes, synchronous=synchronous)
        elif kind is MemcpyKind.DeviceToHost:
            return d2h_gather(self, src, dst, nbytes, synchronous=synchronous)
        elif kind is MemcpyKind.DeviceToDevice:
            raise UnsupportedMemcpyError(
                "device-to-device memcopies are not supported (paper §8.2)"
            )
        elif kind is MemcpyKind.HostToHost:
            if self.functional:
                host_bytes(dst)[:nbytes] = host_bytes(src)[:nbytes]
            return []
        else:
            raise UnsupportedMemcpyError(f"unknown memcpy kind {kind!r}")

    # -- kernel launch (§5, Figure 4) --------------------------------------------------------

    def launch(self, kernel: Kernel, grid, block, args: Sequence[object]) -> None:
        grid = Dim3.of(grid)
        block = Dim3.of(block)
        self._launch_index = next(self._launch_counter)
        ck = self.app.kernel(kernel.name)
        if ck.partitionable and self.config.n_gpus >= 1:
            launch_partitioned(self, ck, grid, block, args)
        else:
            launch_fallback(self, ck, grid, block, args)

    # -- misc (§8.4) ------------------------------------------------------------------------------

    def cudaGetDeviceCount(self) -> int:
        """Always 1: the application keeps its single-device world view."""
        return 1

    def cudaDeviceSynchronize(self) -> None:
        """Synchronizes *all* available devices (§8.4)."""
        self.pipeline.flush()
        if self.machine:
            self.machine.synchronize()

    def elapsed(self) -> float:
        """Simulated wall-clock. Drains the pipeline: reading the clock is
        a host-side observation, so any buffered launches must be issued
        first (otherwise an iteration loop timed with ``elapsed()`` would
        not include its own final window)."""
        self.pipeline.flush()
        return self.machine.elapsed() if self.machine else 0.0
