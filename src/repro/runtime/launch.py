"""The kernel-launch replacement (paper §5, Figure 4).

Replaces a single-GPU launch with four tasks:

1. partition the execution grid for the available GPUs,
2. synchronize all buffers that are read from (via the generated
   enumerators, §8.3),
3. launch each partition of the kernel on its GPU asynchronously
   (partition-local grid per Equation 10),
4. update the buffer trackers for all writes (runs on the host
   concurrently with the asynchronous kernels).

The orchestration itself is delegated to the launch scheduler
(``repro.sched``): the launch is first compiled into a per-launch task DAG
(one node per segment transfer / kernel partition / tracker update, edges
from the enumerated read/write sets) and then issued under the configured
policy — ``sequential`` reproduces the paper's barrier-structured loops
exactly, ``overlap``/``overlap+p2p`` pipeline transfers against compute.

Kernels the compiler rejected for partitioning fall back to single-GPU
execution on device 0 (whole read buffers synchronized there first).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Dict, Mapping, Sequence

from repro.compiler.pipeline import CompiledKernel
from repro.cuda.api import resolve_array_shapes, split_launch_args
from repro.cuda.dim3 import Dim3
from repro.cuda.exec.interpreter import run_kernel
from repro.cuda.ir.kernel import ArrayParam, ScalarParam, partition_field_name
from repro.errors import PartitioningError, RuntimeApiError
from repro.runtime.sync import plan_stale_copies_tiered, register_sharer
from repro.runtime.vbuffer import VirtualBuffer
from repro.sim.trace import Category

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.api import MultiGpuApi

__all__ = ["launch_partitioned", "launch_fallback"]


def _bind_functional_args(
    api: "MultiGpuApi", ck: CompiledKernel, by_name, shapes, gpu: int
) -> Dict[str, object]:
    bound: Dict[str, object] = {}
    for p in ck.kernel.params:
        if isinstance(p, ArrayParam):
            vb = by_name[p.name]
            if not isinstance(vb, VirtualBuffer):
                raise RuntimeApiError(
                    f"array argument {p.name!r} must be a VirtualBuffer, got {type(vb)}"
                )
            bound[p.name] = vb.typed_on(gpu, p.dtype.to_numpy(), shapes[p.name])
        elif isinstance(p, ScalarParam):
            bound[p.name] = by_name[p.name]
    return bound


def launch_partitioned(
    api: "MultiGpuApi", ck: CompiledKernel, grid: Dim3, block: Dim3, args: Sequence[object]
) -> None:
    """The Figure 4 replacement for one kernel launch, in explicit stages.

    1. *fingerprint* — the launch's hashable identity (kernel, launch
       configuration, resolved shapes, planning-relevant config slice);
    2. *skeleton* — partition intervals, enumerated access ranges and DAG
       shape; looked up in the per-api plan cache and built (including the
       unit-axis and runtime-coverage validation, whose outcomes are
       fingerprint-determined) only on a miss;
    3. *residual* — tracker queries and stale-segment copy planning, run
       against live coherence state. With ``RuntimeConfig.residual_cache``
       on, a cheap per-array footprint digest of the live trackers keys a
       replay cache of fully materialized residuals: a digest recurrence
       (any converged iteration loop) replays the memoized copies and
       counters without a single tracker query, and any tracker change —
       including direct mutations via memcpy/memset/free — changes the
       digest and misses;
    4. *submit* — hand the concrete plan to the pipelined executor: the
       functional half applies immediately, the simulated issue drains when
       the window closes (immediately at ``pipeline_window=1``). Under
       ``schedule="auto"`` the concrete policy is chosen at flush time over
       the fused window's transfer/compute split.

    Cold, warm and replay paths are bitwise-identical in outputs, traces
    and tracker state; only host wall-clock differs, which ``api.profiler``
    records per (temperature, stage) when attached.
    """
    assert ck.partitioned is not None
    from repro.runtime.fingerprint import launch_fingerprint, residual_key
    from repro.sched.graph import (
        REPLAY_PLAN_BINDINGS,
        build_plan_skeleton,
        instantiate_plan,
        instantiate_plan_replay,
        replay_query_counts,
    )

    kernel = ck.kernel
    by_name, scalars = split_launch_args(kernel, args)

    prof = api.profiler
    times: Dict[str, float] = {}
    t = perf_counter() if prof else 0.0
    shapes = resolve_array_shapes(kernel, scalars)
    key = launch_fingerprint(api, ck, grid, block, scalars, shapes)
    if prof:
        times["fingerprint"] = perf_counter() - t

    cache = api.plan_cache
    warm = False
    skel = cache.get(key) if cache is not None else None
    if skel is None:
        t = perf_counter() if prof else 0.0
        skel = build_plan_skeleton(
            api, ck, grid, block, scalars, fingerprint=key, validate=True,
            stats=api.stats,
        )
        if prof:
            times["skeleton"] = perf_counter() - t
        if cache is not None:
            api.stats.plan_cache_misses += 1
            if cache.put(key, skel):
                api.stats.plan_cache_evictions += 1
    else:
        warm = True
        api.stats.plan_cache_hits += 1

    if skel.fallback:
        # Runtime coverage validation rejected this launch shape (cached
        # along with the skeleton: the outcome is fingerprint-determined).
        launch_fallback(api, ck, grid, block, args)
        return

    t = perf_counter() if prof else 0.0
    rcache = api.residual_cache
    replay = False
    if rcache is not None:
        # Digest the live trackers over the skeleton's per-array read
        # envelope. Equal digests imply equal query results (segmentation
        # is canonical), so replaying the memoized residual is exact.
        digests = tuple(
            by_name[array].tracker.footprint_digest(runs)
            for array, runs in skel.read_footprints
        )
        rkey = residual_key(key, digests)
        record = rcache.get(rkey)
        if record is not None:
            replay = True
            api.stats.residual_cache_hits += 1
            binding = tuple(by_name[p.name].vb_id for p in kernel.array_params)
            plan = record.plans.get(binding)
            if plan is None:
                plan = instantiate_plan_replay(api, skel, by_name, record)
                if len(record.plans) >= REPLAY_PLAN_BINDINGS:
                    record.plans.clear()
                record.plans[binding] = plan
            else:
                # Plans are read-only downstream; only the accounting
                # mirror of the skipped tracker queries remains.
                replay_query_counts(skel, by_name)
        else:
            api.stats.residual_cache_misses += 1
            plan, record = instantiate_plan(api, skel, by_name, capture=True)
            if rcache.put(rkey, record):
                api.stats.residual_cache_evictions += 1
    else:
        plan = instantiate_plan(api, skel, by_name)
    if prof:
        times["residual"] = perf_counter() - t
        t = perf_counter()
    api.pipeline.submit(plan, None if api.auto_schedule else api.policy)
    if prof:
        times["submit"] = perf_counter() - t
        temp = "replay" if replay else ("warm" if warm else "cold")
        for stage, duration in times.items():
            prof.add(temp, stage, duration)
        prof.count_launch(temp)


def _audit_write_scan(api, ck, trace, part, block, grid, scalars, shapes) -> None:
    """Debug audit: scanned write sets must equal the executed writes.

    Runs only under ``RuntimeConfig.debug_validate_writes`` in functional
    mode. An over-claimed cell would mislead the trackers into serving stale
    data from the wrong device; an under-claimed cell would let a newer copy
    go unnoticed — either way, fail loudly at the offending launch.
    """
    for enum in api.app.enumerators.for_kernel(ck.kernel.name, "write"):
        ranges, _ = enum.element_ranges(
            part, block, grid, scalars, shapes[enum.array]
        )
        scanned = set()
        for lo, hi in ranges:
            scanned.update(range(lo, hi))
        actual = trace.writes.get(enum.array, set())
        if scanned != actual:
            extra = sorted(scanned - actual)[:5]
            missing = sorted(actual - scanned)[:5]
            raise PartitioningError(
                f"write-scan audit failed for kernel {ck.kernel.name!r}, "
                f"array {enum.array!r}, partition {part}: "
                f"scanned-but-unwritten {extra}, written-but-unscanned {missing}"
            )


def launch_fallback(
    api: "MultiGpuApi", ck: CompiledKernel, grid: Dim3, block: Dim3, args: Sequence[object]
) -> None:
    """Single-GPU fallback for kernels the compiler could not partition.

    All read buffers are made fully current on device 0, the unmodified
    kernel runs there over the whole grid, and the trackers mark every
    (potentially) written array as owned by device 0.
    """
    # The fallback issues machine work directly (no launch plan), so any
    # pipelined launches ahead of it must drain first to keep issue order.
    api.pipeline.flush()
    kernel = ck.kernel
    by_name, scalars = split_launch_args(kernel, args)
    shapes = resolve_array_shapes(kernel, scalars)
    gpu = api.devices[0].device_id
    launch_index = getattr(api, "_launch_index", None)

    read_names = set(ck.info.reads) | set(ck.info.writes)  # conservative
    if api.config.tracking_enabled:
        for p in kernel.array_params:
            if p.name not in read_names and ck.info.partitionable:
                continue
            vb = by_name[p.name]
            segments = vb.tracker.query(0, vb.nbytes)
            if api.spec:
                api.host_pattern_cost(api.spec.tracker_op_cost * max(1, len(segments)))
            api.stats.tracker_ops += 1
            api.stats.tracker_query_ops += 1
            copies, avoided, avoided_inter = plan_stale_copies_tiered(
                segments, gpu, getattr(api, "cluster", None)
            )
            api.stats.redundant_bytes_avoided += avoided
            api.stats.redundant_bytes_avoided_inter += avoided_inter
            for seg in copies:
                api.stats.sync_transfers += 1
                api.stats.sync_bytes += seg.nbytes
                if api.config.transfers_enabled:
                    if api.functional:
                        vb.bytes_on(gpu)[seg.start : seg.end] = vb.bytes_on(seg.owner)[
                            seg.start : seg.end
                        ]
                    if api.machine:
                        api.machine.transfer(
                            seg.owner, gpu, seg.nbytes, category=Category.TRANSFERS,
                            label=f"fallback:{p.name}", launch=launch_index,
                        )
                    register_sharer(api, vb, seg.start, seg.end, gpu)
        if api.machine:
            api.machine.synchronize()

    if api.functional:
        bound = _bind_functional_args(api, ck, by_name, shapes, gpu)
        run_kernel(kernel, grid, block, bound)
    if api.machine:
        duration = 0.0
        if api.kernel_cost is not None:
            duration = api.kernel_cost(kernel, grid.volume, block, scalars)
        end = api.machine.launch_kernel(
            gpu, duration, label=kernel.name, launch=launch_index
        )
        if api.policy.overlap:
            # The fallback conservatively reads and writes every array on
            # device 0; later DAG-scheduled copies must order behind it.
            for p in kernel.array_params:
                vb = by_name[p.name]
                if isinstance(vb, VirtualBuffer):
                    api.dataflow.note_read(vb.vb_id, gpu, 0, vb.nbytes, end)
                    api.dataflow.note_write(vb.vb_id, gpu, 0, vb.nbytes, end)
    api.stats.fallback_launches += 1

    if api.config.tracking_enabled:
        for p in kernel.array_params:
            vb = by_name[p.name]
            api.stats.tracker_invalidate_ops += vb.tracker.update(0, vb.nbytes, gpu)
            api.stats.tracker_ops += 1
            api.stats.tracker_update_ops += 1
            if api.spec:
                api.host_pattern_cost(api.spec.tracker_op_cost)
