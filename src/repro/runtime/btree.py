"""An in-memory B-tree map with ordered-key operations.

The paper's segment tracker is "based on a B-Tree map using the start of
each segment as the key and the 'owner' of the most recent version as the
value" (§8.1). This is that substrate: a classic B-tree of minimum degree
``t`` supporting insert, delete, point lookup, *floor* lookup (greatest key
<= query — the operation the tracker leans on) and ordered range iteration.

The implementation follows CLRS: nodes hold between ``t-1`` and ``2t-1``
keys (root exempt from the lower bound); insertion splits full children on
the way down, deletion merges/borrows on the way down, so both run in one
descent.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BTreeMap"]


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.values: List[Any] = []
        self.children: List["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTreeMap:
    """Ordered map from integer keys to arbitrary values."""

    def __init__(self, min_degree: int = 8) -> None:
        if min_degree < 2:
            raise ValueError("B-tree minimum degree must be >= 2")
        self._t = min_degree
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # -- lookup ----------------------------------------------------------------

    def get(self, key: int, default: Any = None) -> Any:
        node = self._root
        while True:
            i = _lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.is_leaf:
                return default
            node = node.children[i]

    def floor(self, key: int) -> Optional[Tuple[int, Any]]:
        """The entry with the greatest key <= ``key`` (None if none)."""
        best: Optional[Tuple[int, Any]] = None
        node = self._root
        while True:
            i = _lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return (key, node.values[i])
            if i > 0:
                best = (node.keys[i - 1], node.values[i - 1])
            if node.is_leaf:
                return best
            node = node.children[i]

    def ceiling(self, key: int) -> Optional[Tuple[int, Any]]:
        """The entry with the smallest key >= ``key`` (None if none)."""
        best: Optional[Tuple[int, Any]] = None
        node = self._root
        while True:
            i = _lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return (key, node.values[i])
            if i < len(node.keys):
                best = (node.keys[i], node.values[i])
            if node.is_leaf:
                return best
            node = node.children[i]

    def min_key(self) -> Optional[int]:
        node = self._root
        if not node.keys:
            return None
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Optional[int]:
        node = self._root
        if not node.keys:
            return None
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- iteration ---------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, Any]]:
        yield from self._iter(self._root)

    def _iter(self, node: _Node) -> Iterator[Tuple[int, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._iter(node.children[i])
            yield (key, node.values[i])
        yield from self._iter(node.children[-1])

    def items_from(self, key: int) -> Iterator[Tuple[int, Any]]:
        """Entries with keys >= ``key``, in order."""
        yield from self._iter_from(self._root, key)

    def _iter_from(self, node: _Node, key: int) -> Iterator[Tuple[int, Any]]:
        i = _lower_bound(node.keys, key)
        if node.is_leaf:
            yield from zip(node.keys[i:], node.values[i:])
            return
        yield from self._iter_from(node.children[i], key)
        for j in range(i, len(node.keys)):
            yield (node.keys[j], node.values[j])
            yield from self._iter(node.children[j + 1])

    def range_items(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        """Entries with lo <= key < hi, in order."""
        for k, v in self.items_from(lo):
            if k >= hi:
                return
            yield (k, v)

    # -- insertion ----------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        if self._insert_nonfull(root, key, value):
            self._size += 1

    def _split_child(self, parent: _Node, i: int) -> None:
        t = self._t
        child = parent.children[i]
        right = _Node()
        right.keys = child.keys[t:]
        right.values = child.values[t:]
        mid_key = child.keys[t - 1]
        mid_val = child.values[t - 1]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.is_leaf:
            right.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(i, mid_key)
        parent.values.insert(i, mid_val)
        parent.children.insert(i + 1, right)

    def _insert_nonfull(self, node: _Node, key: int, value: Any) -> bool:
        while True:
            i = _lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return False
            if node.is_leaf:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                return True
            if len(node.children[i].keys) == 2 * self._t - 1:
                self._split_child(node, i)
                if node.keys[i] == key:
                    node.values[i] = value
                    return False
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # -- deletion -------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove a key; returns whether it was present."""
        removed = self._delete(self._root, key)
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        if removed:
            self._size -= 1
        return removed

    def _delete(self, node: _Node, key: int) -> bool:
        t = self._t
        i = _lower_bound(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.is_leaf:
                node.keys.pop(i)
                node.values.pop(i)
                return True
            return self._delete_internal(node, i)
        if node.is_leaf:
            return False
        # Ensure the child we descend into has >= t keys.
        if len(node.children[i].keys) < t:
            self._fill(node, i)
            return self._delete(node, key)
        return self._delete(node.children[i], key)

    def _delete_internal(self, node: _Node, i: int) -> bool:
        t = self._t
        key = node.keys[i]
        left, right = node.children[i], node.children[i + 1]
        if len(left.keys) >= t:
            pk, pv = self._max_entry(left)
            node.keys[i], node.values[i] = pk, pv
            return self._delete(left, pk)
        if len(right.keys) >= t:
            sk, sv = self._min_entry(right)
            node.keys[i], node.values[i] = sk, sv
            return self._delete(right, sk)
        self._merge(node, i)
        return self._delete(left, key)

    def _max_entry(self, node: _Node) -> Tuple[int, Any]:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _Node) -> Tuple[int, Any]:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def _fill(self, node: _Node, i: int) -> None:
        t = self._t
        if i > 0 and len(node.children[i - 1].keys) >= t:
            self._borrow_prev(node, i)
        elif i < len(node.children) - 1 and len(node.children[i + 1].keys) >= t:
            self._borrow_next(node, i)
        elif i < len(node.children) - 1:
            self._merge(node, i)
        else:
            self._merge(node, i - 1)

    def _borrow_prev(self, node: _Node, i: int) -> None:
        child, sibling = node.children[i], node.children[i - 1]
        child.keys.insert(0, node.keys[i - 1])
        child.values.insert(0, node.values[i - 1])
        node.keys[i - 1] = sibling.keys.pop()
        node.values[i - 1] = sibling.values.pop()
        if not sibling.is_leaf:
            child.children.insert(0, sibling.children.pop())

    def _borrow_next(self, node: _Node, i: int) -> None:
        child, sibling = node.children[i], node.children[i + 1]
        child.keys.append(node.keys[i])
        child.values.append(node.values[i])
        node.keys[i] = sibling.keys.pop(0)
        node.values[i] = sibling.values.pop(0)
        if not sibling.is_leaf:
            child.children.append(sibling.children.pop(0))

    def _merge(self, node: _Node, i: int) -> None:
        child, sibling = node.children[i], node.children[i + 1]
        child.keys.append(node.keys.pop(i))
        child.values.append(node.values.pop(i))
        child.keys.extend(sibling.keys)
        child.values.extend(sibling.values)
        child.children.extend(sibling.children)
        node.children.pop(i + 1)

    # -- diagnostics --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate B-tree structural invariants (tests only)."""
        t = self._t

        def rec(node: _Node, lo: Optional[int], hi: Optional[int], depth: int, is_root: bool):
            assert len(node.keys) <= 2 * t - 1, "node overfull"
            if not is_root:
                assert len(node.keys) >= t - 1, "node underfull"
            assert node.keys == sorted(node.keys), "keys out of order"
            for k in node.keys:
                assert lo is None or k > lo
                assert hi is None or k < hi
            if node.is_leaf:
                return depth
            assert len(node.children) == len(node.keys) + 1, "child count mismatch"
            depths = set()
            bounds = [lo] + list(node.keys) + [hi]
            for i, ch in enumerate(node.children):
                depths.add(rec(ch, bounds[i], bounds[i + 1], depth + 1, False))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        rec(self._root, None, None, 0, True)
        assert self._size == sum(1 for _ in self.items())


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _lower_bound(keys: List[int], key: int) -> int:
    """First index i with keys[i] >= key (binary search)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
