"""Buffer synchronization and tracker updates (paper §8.3).

``buffer_synchronize`` brings one GPU's instance of a virtual buffer up to
date for one partition: the partition's *read set* is enumerated with the
generated code (§6), the tracker is queried for each interval, and every
segment whose newest copy lives on another device is copied over with an
asynchronous transfer. The tracker is *not* updated by these copies — it has
no notion of shared copies, which is why applications with widely shared
data re-transfer it (§8.3 calls this limitation out explicitly).

``buffer_update`` marks one GPU's partition *write set* in the tracker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Mapping, Sequence, Tuple

from repro.compiler.enumerators import Enumerator
from repro.compiler.strategy import Partition
from repro.cuda.dim3 import Dim3
from repro.runtime.vbuffer import VirtualBuffer
from repro.sim.trace import Category

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.api import MultiGpuApi

__all__ = ["byte_ranges", "merge_stale_segments", "buffer_synchronize", "buffer_update"]


def byte_ranges(
    enum: Enumerator,
    partition: Partition,
    block: Dim3,
    grid: Dim3,
    scalars: Mapping[str, int],
    shape: Sequence[int],
    elem_size: int,
) -> Tuple[List[Tuple[int, int]], int]:
    """Flat element ranges of one enumerator, converted to byte ranges."""
    ranges, emitted = enum.element_ranges(partition, block, grid, scalars, shape)
    return [(lo * elem_size, hi * elem_size) for lo, hi in ranges], emitted


def merge_stale_segments(segments, gpu: int):
    """Tracker segments not already on ``gpu``, coalesced into copies.

    Adjacent stale segments from the same owner merge into one transfer;
    this is the list of copies both the sequential loop and the DAG
    builder issue for one partition's read set.
    """
    merged = []
    for seg in segments:
        if seg.owner == gpu:
            continue
        if merged and merged[-1].owner == seg.owner and merged[-1].end == seg.start:
            merged[-1] = type(seg)(merged[-1].start, seg.end, seg.owner)
        else:
            merged.append(seg)
    return merged


def buffer_synchronize(
    api: "MultiGpuApi",
    vb: VirtualBuffer,
    enum: Enumerator,
    partition: Partition,
    block: Dim3,
    grid: Dim3,
    scalars: Mapping[str, int],
    shape: Sequence[int],
    elem_size: int,
    gpu: int,
) -> None:
    """Make ``gpu``'s instance current for the partition's read set."""
    ranges, emitted = byte_ranges(enum, partition, block, grid, scalars, shape, elem_size)
    api.stats.enumerator_calls += 1
    api.stats.ranges_emitted += emitted
    api.stats.tracker_ops += len(ranges)
    segments = vb.tracker.query_many(ranges)
    if api.spec:
        # One aggregated host interval covering: the enumerator call, the
        # per-emitted-range callback work, and one tracker query per range.
        api.host_pattern_cost(
            api.spec.enumerator_call_cost
            + api.spec.per_range_cost * emitted
            + api.spec.tracker_op_cost * max(len(ranges), len(segments))
        )
    for seg in merge_stale_segments(segments, gpu):
        api.stats.sync_transfers += 1
        api.stats.sync_bytes += seg.nbytes
        if api.config.transfers_enabled:
            if api.functional:
                vb.bytes_on(gpu)[seg.start : seg.end] = vb.bytes_on(seg.owner)[
                    seg.start : seg.end
                ]
            if api.machine:
                api.machine.transfer(
                    seg.owner,
                    gpu,
                    seg.nbytes,
                    category=Category.TRANSFERS,
                    label=f"sync:{enum.array}",
                )


def buffer_update(
    api: "MultiGpuApi",
    vb: VirtualBuffer,
    enum: Enumerator,
    partition: Partition,
    block: Dim3,
    grid: Dim3,
    scalars: Mapping[str, int],
    shape: Sequence[int],
    elem_size: int,
    gpu: int,
) -> None:
    """Mark the partition's write set as owned by ``gpu`` in the tracker."""
    ranges, emitted = byte_ranges(enum, partition, block, grid, scalars, shape, elem_size)
    api.stats.enumerator_calls += 1
    api.stats.ranges_emitted += emitted
    api.stats.tracker_ops += len(ranges)
    if api.spec:
        api.host_pattern_cost(
            api.spec.enumerator_call_cost
            + api.spec.per_range_cost * emitted
            + api.spec.tracker_op_cost * len(ranges)
        )
    vb.tracker.update_many(ranges, gpu)
