"""Buffer synchronization and tracker updates (paper §8.3, extended).

``buffer_synchronize`` brings one GPU's instance of a virtual buffer up to
date for one partition: the partition's *read set* is enumerated with the
generated code (§6), the tracker is queried for each interval, and every
segment without a valid copy on the target is copied over from the
*nearest* valid copy. With :attr:`~repro.runtime.config.RuntimeConfig.\
shared_copies` enabled the copy also *registers* the target as a sharer of
the segment, so the next launch skips it — the remedy for the redundant
re-broadcast traffic §8.3 calls out. With the flag off the tracker keeps
the paper's sole-owner behaviour: copies never update ownership and shared
data is re-transferred every launch.

``buffer_update`` marks one GPU's partition *write set* in the tracker,
invalidating every sharer copy of the written ranges (MSI).

Source selection (:func:`pick_source`) prefers, in order: a valid copy on
the destination's own cluster node (avoiding the network fabric), the
owner, then the lowest device id — deterministic, and identical to the
paper's newest-owner rule whenever no sharers exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.enumerators import Enumerator
from repro.compiler.strategy import Partition
from repro.cuda.dim3 import Dim3
from repro.runtime.tracker import Segment
from repro.runtime.vbuffer import VirtualBuffer
from repro.sim.trace import Category

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.api import MultiGpuApi

__all__ = [
    "byte_ranges",
    "pick_source",
    "plan_stale_copies",
    "plan_stale_copies_tiered",
    "trim_copies",
    "merge_stale_segments",
    "buffer_synchronize",
    "buffer_update",
]


def byte_ranges(
    enum: Enumerator,
    partition: Partition,
    block: Dim3,
    grid: Dim3,
    scalars: Mapping[str, int],
    shape: Sequence[int],
    elem_size: int,
    stats=None,
) -> Tuple[List[Tuple[int, int]], int]:
    """Flat element ranges of one enumerator, converted to byte ranges.

    ``stats`` is threaded to the enumerator so cache-missing scans report
    which backend (vectorized/scalar) performed them.
    """
    ranges, emitted = enum.element_ranges(
        partition, block, grid, scalars, shape, stats=stats
    )
    return [(lo * elem_size, hi * elem_size) for lo, hi in ranges], emitted


def pick_source(seg: Segment, gpu: int, cluster=None) -> int:
    """The valid copy one stale segment is fetched from.

    Nearest-copy routing: prefer a holder on ``gpu``'s own cluster node
    (an intra-node copy never touches the NIC/fabric tier), break ties
    toward the owner, then toward the lowest device id. Without a cluster
    every holder is equidistant, so the owner is chosen — exactly the
    paper's newest-owner rule when the sharer set is empty.
    """
    if cluster is None:
        return seg.owner

    def rank(dev: int) -> Tuple[int, int, int]:
        return (
            0 if cluster.same_node(dev, gpu) else 1,
            0 if dev == seg.owner else 1,
            dev,
        )

    return min(seg.holders, key=rank)


def plan_stale_copies_tiered(
    segments: Sequence[Segment], gpu: int, cluster=None
) -> Tuple[List[Segment], int, int]:
    """(copies, redundant_bytes_avoided, avoided_inter) for one read set.

    A segment is *stale* when ``gpu`` holds no valid copy; each stale
    segment is assigned its :func:`pick_source` and adjacent copies from
    the same source coalesce into one transfer. Segments ``gpu`` already
    holds as a mere sharer (not owner) are counted as redundant bytes a
    sole-owner tracker would have re-transferred; ``avoided_inter`` is the
    share of those bytes whose re-transfer would have crossed the node
    fabric (the owner — the sole-owner source — lives on another node).

    The returned segments carry the chosen *source* in their ``owner``
    field — the shape both the sequential loop and the DAG builder issue.
    """
    merged: List[Segment] = []
    avoided = avoided_inter = 0
    for seg in segments:
        if gpu in seg.holders:
            if seg.owner != gpu:
                avoided += seg.nbytes
                if cluster is not None and not cluster.same_node(seg.owner, gpu):
                    avoided_inter += seg.nbytes
            continue
        src = pick_source(seg, gpu, cluster)
        if merged and merged[-1].owner == src and merged[-1].end == seg.start:
            merged[-1] = Segment(merged[-1].start, seg.end, src)
        else:
            merged.append(Segment(seg.start, seg.end, src))
    return merged, avoided, avoided_inter


def plan_stale_copies(
    segments: Sequence[Segment], gpu: int, cluster=None
) -> Tuple[List[Segment], int]:
    """Back-compat: :func:`plan_stale_copies_tiered` without the tier split."""
    copies, avoided, _ = plan_stale_copies_tiered(segments, gpu, cluster)
    return copies, avoided


def trim_copies(
    copies: Sequence[Segment],
    keep: Sequence[Tuple[int, int]],
    gpu: int,
    cluster=None,
) -> Tuple[List[Segment], int, int]:
    """Intersect planned copies with the provably-read byte ranges.

    ``keep`` is the exact read set of the partition as flat byte ranges
    (from the dataflow analyzer's per-access enumeration); planned bytes
    outside it are bounding-range slack the affine model proves the kernel
    never reads. Returns ``(trimmed, overapprox, overapprox_inter)`` where
    the byte counts split the dropped slack by transfer tier (the copy's
    chosen source is in ``seg.owner``). Dropping slack is sound precisely
    because the bytes are never read — the destination simply keeps a stale
    copy the tracker continues to consider stale.
    """
    from repro.poly.intervals import intersect_intervals

    trimmed: List[Segment] = []
    overapprox = overapprox_inter = 0
    for seg in copies:
        pieces = intersect_intervals([(seg.start, seg.end)], keep)
        slack = seg.nbytes - sum(hi - lo for lo, hi in pieces)
        if slack:
            overapprox += slack
            if cluster is not None and not cluster.same_node(seg.owner, gpu):
                overapprox_inter += slack
        trimmed.extend(Segment(lo, hi, seg.owner) for lo, hi in pieces)
    return trimmed, overapprox, overapprox_inter


def merge_stale_segments(segments, gpu: int, cluster=None):
    """Tracker segments without a valid copy on ``gpu``, coalesced into copies.

    Back-compat wrapper around :func:`plan_stale_copies` (drops the
    redundant-byte count).
    """
    return plan_stale_copies(segments, gpu, cluster)[0]


def buffer_synchronize(
    api: "MultiGpuApi",
    vb: VirtualBuffer,
    enum: Enumerator,
    partition: Partition,
    block: Dim3,
    grid: Dim3,
    scalars: Mapping[str, int],
    shape: Sequence[int],
    elem_size: int,
    gpu: int,
) -> None:
    """Make ``gpu``'s instance current for the partition's read set."""
    ranges, emitted = byte_ranges(
        enum, partition, block, grid, scalars, shape, elem_size, stats=api.stats
    )
    api.stats.enumerator_calls += 1
    api.stats.ranges_emitted += emitted
    api.stats.tracker_ops += len(ranges)
    api.stats.tracker_query_ops += len(ranges)
    segments = vb.tracker.query_many(ranges)
    if api.spec:
        # One aggregated host interval covering: the enumerator call, the
        # per-emitted-range callback work, and one tracker query per range.
        api.host_pattern_cost(
            api.spec.enumerator_call_cost
            + api.spec.per_range_cost * emitted
            + api.spec.tracker_op_cost * max(len(ranges), len(segments))
        )
    copies, avoided, avoided_inter = plan_stale_copies_tiered(
        segments, gpu, getattr(api, "cluster", None)
    )
    api.stats.redundant_bytes_avoided += avoided
    api.stats.redundant_bytes_avoided_inter += avoided_inter
    for seg in copies:
        api.stats.sync_transfers += 1
        api.stats.sync_bytes += seg.nbytes
        if api.config.transfers_enabled:
            if api.functional:
                vb.bytes_on(gpu)[seg.start : seg.end] = vb.bytes_on(seg.owner)[
                    seg.start : seg.end
                ]
            if api.machine:
                api.machine.transfer(
                    seg.owner,
                    gpu,
                    seg.nbytes,
                    category=Category.TRANSFERS,
                    label=f"sync:{enum.array}",
                )
            register_sharer(api, vb, seg.start, seg.end, gpu)


def register_sharer(
    api: "MultiGpuApi",
    vb: VirtualBuffer,
    lo: int,
    hi: int,
    gpu: int,
    charge: bool = True,
) -> None:
    """Record ``gpu`` as a valid-copy sharer of ``[lo, hi)`` after a copy.

    No-op unless shared-copy tracking is enabled; charges one tracker
    operation of the ``share`` class for host-cost accounting. The
    pipelined executor passes ``charge=False`` — it registers sharers
    eagerly at submit time but charges the host cost at flush, next to the
    copy's simulated issue, preserving ``execute_plan``'s charge order.
    """
    if not (api.config.shared_copies and api.config.tracking_enabled):
        return
    vb.tracker.add_sharer(lo, hi, gpu)
    api.stats.tracker_share_ops += 1
    if charge and api.spec:
        api.host_pattern_cost(api.spec.tracker_op_cost)


def buffer_update(
    api: "MultiGpuApi",
    vb: VirtualBuffer,
    enum: Enumerator,
    partition: Partition,
    block: Dim3,
    grid: Dim3,
    scalars: Mapping[str, int],
    shape: Sequence[int],
    elem_size: int,
    gpu: int,
) -> None:
    """Mark the partition's write set as owned by ``gpu`` in the tracker."""
    ranges, emitted = byte_ranges(
        enum, partition, block, grid, scalars, shape, elem_size, stats=api.stats
    )
    api.stats.enumerator_calls += 1
    api.stats.ranges_emitted += emitted
    api.stats.tracker_ops += len(ranges)
    api.stats.tracker_update_ops += len(ranges)
    if api.spec:
        api.host_pattern_cost(
            api.spec.enumerator_call_cost
            + api.spec.per_range_cost * emitted
            + api.spec.tracker_op_cost * len(ranges)
        )
    api.stats.tracker_invalidate_ops += vb.tracker.update_many(ranges, gpu)
