"""Runtime configuration, including the paper's α/β/γ measurement modes.

Section 9.2 measures overhead by running each benchmark in three
configurations:

* **α** — regular execution of the multi-GPU application;
* **β** — transfers disabled, but dependency resolution and tracker updates
  are performed;
* **γ** — dependency resolution and tracker updates disabled, which
  automatically also disables transfers.

β and γ intentionally produce incorrect *data* (they exist to isolate time
components), so they are only meaningful for timing-mode runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import RuntimeApiError

__all__ = ["H2D_DISTRIBUTIONS", "RuntimeConfig"]

#: Valid ``h2d_distribution`` values, in documentation order.
H2D_DISTRIBUTIONS = ("linear", "first_touch")


@dataclass(frozen=True)
class RuntimeConfig:
    """Flags controlling the multi-GPU runtime."""

    n_gpus: int = 1
    #: β switch: when False, buffer-synchronization copies are not issued
    #: (enumerators and tracker queries still run).
    transfers_enabled: bool = True
    #: γ switch: when False, dependency resolution and tracker updates are
    #: skipped entirely (which also disables synchronization transfers).
    tracking_enabled: bool = True
    #: Verify at launch that axes the injectivity proof ignored have unit
    #: extent (see repro.compiler.legality.check_write_access).
    validate_unit_axes: bool = True
    #: Host-to-device distribution pattern (§8.2). ``linear`` is the
    #: paper's predefined distribution ("currently, this pattern is a
    #: linear distribution among all GPUs"); ``first_touch`` keeps the data
    #: host-resident and lets the first kernel's buffer synchronization
    #: pull exactly each partition's read set — a partition-aligned scatter
    #: with no redistribution traffic.
    h2d_distribution: str = "linear"
    #: Shared-copy (owner + sharer set) coherence tracking. When True, each
    #: synchronization copy registers its destination as a *sharer* of the
    #: copied segments, so later launches skip data the reader already
    #: holds (writes invalidate sharers MSI-style); applications with
    #: widely shared data stop re-broadcasting it every iteration. The
    #: default False keeps the paper's sole-owner semantics (§8.3) and
    #: reproduces the pre-sharer traffic and trace exactly.
    shared_copies: bool = False
    #: Launch-scheduler policy: ``sequential`` (paper-faithful Figure 4
    #: barrier orchestration), ``overlap`` (per-launch task DAG, copy
    #: engines overlap compute), ``overlap+p2p`` (additionally routes
    #: device-to-device copies over direct peer DMA), or ``auto`` (pick one
    #: of the three per launch from the plan's transfer/compute ratio). All
    #: policies are bitwise-equivalent functionally; they only reschedule
    #: device work.
    schedule: str = "sequential"
    #: Cross-launch pipelining: fuse up to this many consecutive kernel
    #: launches into one rolling task DAG. Each launch's functional work
    #: (buffer copies, kernel interpretation, tracker updates) still happens
    #: eagerly at submit time, but the *simulated* device issue is deferred
    #: until the window closes or a host-visible operation (D2H memcpy,
    #: ``cudaDeviceSynchronize``, user tracker queries) flushes it. On a
    #: cluster the fused window issues inter-node halo copies before
    #: intra-node and interior transfers. The default 1 reproduces the
    #: per-launch orchestration exactly, event for event.
    pipeline_window: int = 1
    #: Irredundant transfer sets (MAIRS): trim every synchronization copy
    #: to the byte ranges the dataflow analyzer proves the partition
    #: actually reads, dropping the bounding-range slack of the paper's
    #: per-row enumerators (strided reads, over-approximated guards). Sound
    #: because dropped bytes are provably never read — they simply stay
    #: stale in the tracker; bitwise-invisible on outputs. The default
    #: False ships every planned byte, reproducing §6.1 exactly.
    irredundant_transfers: bool = False
    #: Fingerprint-keyed plan-skeleton cache (repro.runtime.plancache):
    #: launches whose fingerprint was seen before reuse the cached
    #: partition intervals, enumerated access ranges and DAG shape, and
    #: only re-derive the tracker-dependent residual (stale-segment
    #: copies). Bitwise-invisible — cold and warm paths produce identical
    #: outputs, traces and tracker state — so False exists purely for the
    #: overhead ablation and as a debugging escape hatch.
    plan_cache: bool = True
    #: Maximum number of plan skeletons the fingerprint-keyed LRU keeps per
    #: runtime. Iteration loops use a handful of fingerprints (one per
    #: buffer parity); the bound only matters for pathological launch
    #: streams where every launch has a fresh shape.
    plan_cache_capacity: int = 512
    #: Residual replay cache (the tracker-*dependent* complement of
    #: ``plan_cache``): memoize the fully materialized residual — planned
    #: sync copies, ReadSync counters, segment counts — per
    #: ``(launch fingerprint, tracker footprint digest)``. A launch whose
    #: read-footprint coherence state recurs (any converged iteration loop)
    #: skips every tracker query and ``plan_stale_copies_tiered`` call and
    #: replays the memoized plan; direct mutations (memcpy, memset, free)
    #: change the digest and miss automatically. Bitwise-invisible — only
    #: the ``residual_cache_*`` counters may differ — so False exists for
    #: the overhead ablation and as a debugging escape hatch.
    residual_cache: bool = True
    #: Maximum number of memoized residuals kept per runtime. Each entry is
    #: a few tuples per read scan; converged loops use one entry per
    #: recurring (fingerprint, tracker state) pair.
    residual_cache_capacity: int = 512
    #: Debug audit (functional mode only): execute each partition with the
    #: instrumented interpreter and verify the scanned write set equals the
    #: cells the kernel actually wrote. Catches compiler bugs at the launch
    #: that would otherwise corrupt trackers silently.
    debug_validate_writes: bool = False

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise RuntimeApiError("runtime needs at least one GPU")
        if self.h2d_distribution not in H2D_DISTRIBUTIONS:
            raise RuntimeApiError(
                f"unsupported H2D distribution {self.h2d_distribution!r} "
                f"(choose from {', '.join(H2D_DISTRIBUTIONS)})"
            )
        from repro.sched.policy import SCHEDULES

        if self.schedule != "auto" and self.schedule not in SCHEDULES:
            raise RuntimeApiError(
                f"unknown schedule {self.schedule!r} "
                f"(choose from {', '.join(SCHEDULES)}, auto)"
            )
        if not isinstance(self.pipeline_window, int) or self.pipeline_window < 1:
            raise RuntimeApiError(
                f"pipeline_window must be a positive integer, got {self.pipeline_window!r}"
            )
        for name in ("plan_cache_capacity", "residual_cache_capacity"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise RuntimeApiError(
                    f"{name} must be a positive integer, got {value!r}"
                )

    @property
    def sync_transfers_active(self) -> bool:
        return self.transfers_enabled and self.tracking_enabled

    # -- the three measurement configurations (§9.2) -------------------------

    def alpha(self) -> "RuntimeConfig":
        """Regular execution."""
        return replace(self, transfers_enabled=True, tracking_enabled=True)

    def beta(self) -> "RuntimeConfig":
        """Transfers disabled; dependency resolution still performed."""
        return replace(self, transfers_enabled=False, tracking_enabled=True)

    def gamma(self) -> "RuntimeConfig":
        """Dependency resolution and tracker updates disabled."""
        return replace(self, transfers_enabled=False, tracking_enabled=False)
