"""``repro.runtime`` — the multi-GPU runtime library (paper §8).

High-level, application-independent primitives:

* :mod:`~repro.runtime.btree` — the B-tree map underlying segment trackers;
* :mod:`~repro.runtime.tracker` — per-buffer segment trackers (§8.1);
* :mod:`~repro.runtime.vbuffer` — virtual buffers (one device-local instance
  per GPU plus a tracker);
* :mod:`~repro.runtime.memcpy` — direction-translated memcopies (§8.2);
* :mod:`~repro.runtime.sync` — buffer synchronization and tracker updates
  driven by the generated enumerators (§8.3);
* :mod:`~repro.runtime.launch` — the kernel-launch replacement (Figure 4);
* :mod:`~repro.runtime.api` — CUDA Runtime replacements with identical
  prototypes (§8.4);
* :mod:`~repro.runtime.config` — runtime flags, including the α/β/γ
  measurement configurations of §9.2.
"""

from repro.runtime.btree import BTreeMap
from repro.runtime.tracker import SegmentTracker, Segment
from repro.runtime.vbuffer import VirtualBuffer
from repro.runtime.config import RuntimeConfig
from repro.runtime.api import MultiGpuApi

__all__ = [
    "BTreeMap",
    "SegmentTracker",
    "Segment",
    "VirtualBuffer",
    "RuntimeConfig",
    "MultiGpuApi",
]
