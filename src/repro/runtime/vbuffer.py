"""Virtual buffers (paper §8.1).

"Instead of allocating a single buffer on a single GPU, the partitioned
application allocates one device buffer per device, creates a tracker
component, and bundles them into a 'virtual buffer'."

Each instance is a full-size device-local allocation; the tracker maps every
byte to the device holding its most recently written copy.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cuda.device import HOST, DevPtr, Device
from repro.errors import RuntimeApiError
from repro.runtime.tracker import SegmentTracker

__all__ = ["VirtualBuffer"]


class VirtualBuffer:
    """One logical GPU buffer backed by per-device instances plus a tracker."""

    def __init__(self, vb_id: int, nbytes: int, devices: Sequence[Device]) -> None:
        if nbytes <= 0:
            raise RuntimeApiError(f"virtual buffer of non-positive size {nbytes}")
        self.vb_id = vb_id
        self.nbytes = nbytes
        self._devices: Dict[int, Device] = {d.device_id: d for d in devices}
        self.instances: Dict[int, DevPtr] = {
            d.device_id: d.alloc(nbytes) for d in devices
        }
        self.tracker = SegmentTracker(nbytes, initial_owner=devices[0].device_id)
        self.freed = False
        #: Host-resident staging copy, created on first use. The tracker may
        #: name ``HOST`` as a segment owner (first-touch H2D distribution);
        #: this array backs those segments until the first kernel pulls them.
        self._host_mirror: Optional[np.ndarray] = None
        #: Invoked when the host observes this buffer's coherence state —
        #: the runtime wires the pipelined executor's flush here so a user
        #: tracker query is a pipeline drain point.
        self.on_host_query: Optional[Callable[[], None]] = None

    def instance(self, device_id: int) -> DevPtr:
        self._check()
        try:
            return self.instances[device_id]
        except KeyError:
            raise RuntimeApiError(
                f"virtual buffer {self.vb_id} has no instance on device {device_id}"
            ) from None

    def host_mirror(self) -> np.ndarray:
        """The host-resident staging copy (lazily allocated)."""
        self._check()
        if self._host_mirror is None:
            self._host_mirror = np.zeros(self.nbytes, dtype=np.uint8)
        return self._host_mirror

    def bytes_on(self, device_id: int) -> np.ndarray:
        """Mutable byte view of the instance on one device (functional mode).

        ``HOST`` resolves to the host mirror, so transfers sourced from
        host-owned tracker segments read through the same interface.
        """
        self._check()
        if device_id == HOST:
            return self.host_mirror()
        return self._devices[device_id].bytes_view(self.instance(device_id))

    def typed_on(self, device_id: int, np_dtype: np.dtype, shape) -> np.ndarray:
        self._check()
        return self._devices[device_id].typed_view(self.instance(device_id), np_dtype, shape)

    def coherence_state(self) -> List[tuple]:
        """Comparable snapshot of the tracker: (start, end, owner, sharers).

        Sharers are sorted tuples so two runs may be compared for exact
        coherence-state equality regardless of schedule policy. Reading the
        snapshot does not count as tracker operations.
        """
        if self.on_host_query is not None:
            self.on_host_query()
        return [
            (s.start, s.end, s.owner, tuple(sorted(s.sharers)))
            for s in self.tracker.segments()
        ]

    def free(self) -> None:
        self._check()
        for dev_id, ptr in self.instances.items():
            self._devices[dev_id].free(ptr)
        self.instances.clear()
        self.freed = True

    def _check(self) -> None:
        if self.freed:
            raise RuntimeApiError(f"use of freed virtual buffer {self.vb_id}")

    def __repr__(self) -> str:
        return (
            f"VirtualBuffer(id={self.vb_id}, nbytes={self.nbytes}, "
            f"devices={sorted(self.instances)}, segments={self.tracker.n_segments})"
        )
