"""The paper's reported numbers, for paper-vs-measured comparisons.

Every value is read off the text or the figures of the paper; figure-derived
values are approximate (the paper prints no tables for Figures 6-8).
"""

from __future__ import annotations

__all__ = [
    "MAX_SPEEDUP",
    "MAX_SPEEDUP_GPUS",
    "OVERHEAD_PERCENTILES",
    "SINGLE_GPU_SLOWDOWN",
    "COMPILE_TIME_RATIO",
    "NON_TRANSFER_OVERHEAD_MAX",
]

#: §9.1 / Figure 6: maximum speedup per workload (best size).
MAX_SPEEDUP = {"hotspot": 7.1, "nbody": 12.4, "matmul": 6.3}

#: §9.1: GPU count at which the maximum speedup is reached.
MAX_SPEEDUP_GPUS = {"hotspot": 14, "nbody": 16, "matmul": 14}

#: §9.2 / Figure 8: non-transfer overhead fraction percentiles over all
#: measurements (25th, median, 75th).
OVERHEAD_PERCENTILES = {"p25": 0.00001, "median": 0.0051, "p75": 0.035}

#: §9.2: maximum non-transfer overhead over all measurements.
NON_TRANSFER_OVERHEAD_MAX = 0.068

#: §9.2: slowdown of the partitioned binary on a single GPU
#: (25th percentile, median, 75th percentile).
SINGLE_GPU_SLOWDOWN = {"p25": 0.0013, "median": 0.021, "p75": 0.031}

#: §3: compile-time increase of the two-pass pipeline.
COMPILE_TIME_RATIO = (1.9, 2.2)
