"""Plain-text reporting: tables, ASCII charts, CSV export.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output readable in a terminal and diffable in CI.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "ascii_series", "to_csv"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(line + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def ascii_series(
    series: Dict[str, Dict[int, float]],
    *,
    width: int = 60,
    title: str = "",
    y_label: str = "",
) -> str:
    """Horizontal-bar rendering of one or more (x -> y) series."""
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    peak = max((v for ys in series.values() for v in ys.values()), default=1.0)
    for name, ys in series.items():
        out.write(f"[{name}]\n")
        for x in sorted(ys):
            bar = "#" * max(1, int(round(ys[x] / peak * width)))
            out.write(f"  {x:>4}  {bar} {ys[x]:.2f}{y_label}\n")
    return out.getvalue()


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting; values must be comma-free)."""
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for row in rows:
        out.write(",".join(_fmt(c) for c in row) + "\n")
    return out.getvalue()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
