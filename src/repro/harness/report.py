"""Plain-text reporting: tables, ASCII charts, CSV export, self-checks.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output readable in a terminal and diffable in CI. The
self-checking benches (``repro bench cluster/redundancy/pipeline/serve``)
share one exit-code convention — :func:`finish_self_checks` — and one JSON
artifact convention — :func:`write_json_report` — so every bench fails CI
the same way and lands its payload in the same place.
"""

from __future__ import annotations

import io
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "format_table",
    "ascii_series",
    "to_csv",
    "finish_self_checks",
    "write_json_report",
]


def finish_self_checks(failures: Sequence[str], passed_message: str) -> int:
    """Turn a bench's self-check outcome into its process exit code.

    Prints one ``FAIL: ...`` line per failure to stderr and returns 1, or
    prints ``checks passed: <passed_message>`` and returns 0 — the shared
    contract every self-checking bench (and its CI smoke job) relies on.
    """
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"checks passed: {passed_message}")
    return 0


def write_json_report(json_arg: object, default_path: str, payload: object) -> str:
    """Write one bench's machine-readable payload, honouring ``--json``.

    ``json_arg`` is argparse's value for the optional-path flag: a string
    overrides the destination, any other truthy value (bare ``--json``)
    selects ``default_path``. Parent directories are created as needed;
    the chosen path is printed and returned.
    """
    path = json_arg if isinstance(json_arg, str) else default_path
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")
    return path


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(line + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def ascii_series(
    series: Dict[str, Dict[int, float]],
    *,
    width: int = 60,
    title: str = "",
    y_label: str = "",
) -> str:
    """Horizontal-bar rendering of one or more (x -> y) series."""
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    peak = max((v for ys in series.values() for v in ys.values()), default=1.0)
    for name, ys in series.items():
        out.write(f"[{name}]\n")
        for x in sorted(ys):
            bar = "#" * max(1, int(round(ys[x] / peak * width)))
            out.write(f"  {x:>4}  {bar} {ys[x]:.2f}{y_label}\n")
    return out.getvalue()


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting; values must be comma-free)."""
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for row in rows:
        out.write(",".join(_fmt(c) for c in row) + "\n")
    return out.getvalue()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
