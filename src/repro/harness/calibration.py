"""Calibration of the simulated machine to the paper's testbed class.

The paper's system: Supermicro X10DRG, 2x Xeon E5-2667, 8 NVIDIA K80 boards
(16 GPUs), PCIe 3.0, 256 GiB DDR4 (§9). Constants below are documented
estimates for that hardware generation; the reproduction targets the *shape*
of Figures 6-8, not absolute runtimes, and EXPERIMENTS.md records the
paper-vs-measured comparison for every reported number.

Notable choices:

* ``p2p_enabled=False`` with ``staging_factor=2`` — peer copies between K80
  boards (and across the two sockets) are staged through host memory.
* Host-side per-call costs are dominated by ``cudaSetDevice`` context
  switching and driver call overhead when orchestrating 16 devices from one
  thread; ``partition_setup_cost`` carries that per-GPU-per-loop cost.
"""

from __future__ import annotations

from repro.cluster.topology import ClusterSpec
from repro.sim.topology import MachineSpec

__all__ = ["K80_NODE_SPEC", "K80_CLUSTER_SPEC", "GPU_COUNTS", "k80_cluster"]

#: GPU counts evaluated in Figure 6 of the paper.
GPU_COUNTS = (1, 2, 4, 6, 8, 10, 12, 14, 16)

K80_NODE_SPEC = MachineSpec(
    n_gpus=16,
    flops_per_gpu=2.4e12,
    mem_bw_per_gpu=1.7e11,
    pcie_bw=1.0e10,
    host_bus_bw=1.3e10,
    pcie_latency=25e-6,
    staging_latency=60e-6,
    p2p_enabled=False,
    staging_factor=2.0,
    cache_reuse_factor=64.0,
    issue_overhead=10e-6,
    enumerator_call_cost=1.0e-6,
    per_range_cost=5e-9,
    tracker_op_cost=0.2e-6,
    partition_setup_cost=5e-6,
    sync_overhead=100e-6,
)

#: The K80 node behind the FDR-InfiniBand network tier of that hardware
#: generation: 56 Gb/s NICs (~6.8 GB/s sustained payload), one rail per
#: node, a switch that sustains a handful of concurrent streams, and ~30 µs
#: of per-message latency (wire + host-side rendezvous).
K80_CLUSTER_SPEC = ClusterSpec(
    n_nodes=2,
    node=K80_NODE_SPEC.with_gpus(8),
    nic_bw=6.8e9,
    nic_lanes=1,
    fabric_bw=2.5e10,
    net_latency=30e-6,
)


def k80_cluster(n_nodes: int, gpus_per_node: int) -> ClusterSpec:
    """The calibrated K80 cluster reshaped to ``n_nodes`` x ``gpus_per_node``."""
    return K80_CLUSTER_SPEC.with_shape(n_nodes, gpus_per_node)
