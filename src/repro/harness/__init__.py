"""``repro.harness`` — experiment drivers for the paper's evaluation (§9)."""

from repro.harness.calibration import K80_NODE_SPEC, GPU_COUNTS
from repro.harness.experiments import (
    run_timed,
    reference_time,
    figure6,
    figure7,
    figure8,
    single_gpu_overhead,
    compile_time_ratio,
    table1_rows,
)
from repro.harness.overhead import (
    OverheadPoint,
    identity_sweep,
    launch_overhead_study,
    overhead_failures,
)

__all__ = [
    "K80_NODE_SPEC",
    "GPU_COUNTS",
    "run_timed",
    "reference_time",
    "figure6",
    "figure7",
    "figure8",
    "single_gpu_overhead",
    "compile_time_ratio",
    "table1_rows",
    "OverheadPoint",
    "identity_sweep",
    "launch_overhead_study",
    "overhead_failures",
]
