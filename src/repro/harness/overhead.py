"""Host launch-overhead study of the staged planner (plan cache).

``repro bench overhead`` drives two self-checking studies on top of the
paper's single-GPU slowdown table:

* :func:`launch_overhead_study` — pure host cost per launch. Each workload
  runs its iteration loop in timing mode with no machine attached
  (``machine=None, functional=False``), so wall-clock measures *only* the
  orchestration path: fingerprint, skeleton (partitioning + enumerator
  scans), tracker residual, and submit. A :class:`~repro.runtime.profiler.
  LaunchProfiler` splits per-launch microseconds by stage for the cold
  (plan-cache miss) and warm (hit) paths; a third run with
  ``plan_cache=False`` gives the every-launch-pays-full-price baseline.
* :func:`identity_sweep` — the cache must be bitwise-invisible. Functional
  hotspot runs with the plan cache on vs off are compared on outputs,
  the full simulated trace, final tracker/sharer state, and every stats
  counter outside :data:`~repro.runtime.api.HOST_PLANNER_COUNTERS`, across
  the ``schedule x shared_copies x pipeline_window`` matrix on both a flat
  node and a 2x2 cluster.

:func:`overhead_failures` turns the study into exit-1 self-checks: the
warm path must beat the cold path by :data:`MIN_WARM_REDUCTION`, cache
arithmetic must balance, and the vectorized enumerator backend must have
engaged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.pipeline import CompiledApp, compile_app
from repro.runtime.api import HOST_PLANNER_COUNTERS, MultiGpuApi, host_planner_counters
from repro.runtime.config import RuntimeConfig
from repro.runtime.profiler import LaunchProfiler
from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS
from repro.workloads.common import ProblemConfig

__all__ = [
    "OVERHEAD_WORKLOADS",
    "MIN_WARM_REDUCTION",
    "MIN_NOCACHE_REDUCTION",
    "OverheadPoint",
    "launch_overhead_study",
    "overhead_failures",
    "identity_sweep",
]

#: Workloads of the overhead study with their (size, iterations): the two
#: Table 1 iteration loops plus the task-graph image pipeline, whose
#: per-band launches exercise many distinct fingerprints per iteration.
OVERHEAD_WORKLOADS: Dict[str, Tuple[int, int]] = {
    "hotspot": (1024, 40),
    "nbody": (2048, 20),
    "imgpipe": (256, 3),
}

#: Factor by which the warm (plan-cache hit) path must undercut the cold
#: path in host microseconds per launch. Measured headroom is an order of
#: magnitude above this on every study workload.
MIN_WARM_REDUCTION = 5.0

#: Factor by which the warm path must undercut the ``plan_cache=False``
#: steady state. This bar is intentionally far lower than
#: :data:`MIN_WARM_REDUCTION`: the per-enumerator range memo keeps even
#: uncached repeat launches off the scan path, so the skeleton cache's
#: remaining win there is partitioning, validation and plan assembly.
MIN_NOCACHE_REDUCTION = 1.2


@dataclass(frozen=True)
class OverheadPoint:
    """Host per-launch cost of one workload, cold vs warm vs uncached."""

    workload: str
    size: int
    iterations: int
    #: Launches that built a skeleton (cold) vs reused one (warm) on the
    #: cached run. Fallback launches bypass the planner and count in
    #: neither.
    cold_launches: int
    warm_launches: int
    #: Host microseconds per launch by stage (plus ``"total"``) on the
    #: cached run, split by path, and on the ``plan_cache=False`` baseline.
    cold_us: Dict[str, float]
    warm_us: Dict[str, float]
    nocache_us: Dict[str, float]
    #: The :data:`~repro.runtime.api.HOST_PLANNER_COUNTERS` slice of the
    #: cached run's stats.
    counters: Dict[str, int]

    @property
    def warm_reduction(self) -> float:
        """Cold-path total over warm-path total (per-launch microseconds)."""
        return self.cold_us["total"] / max(self.warm_us["total"], 1e-12)

    @property
    def nocache_reduction(self) -> float:
        """Uncached per-launch total over the warm-path total."""
        return self.nocache_us["total"] / max(self.warm_us["total"], 1e-12)

    def as_dict(self) -> Dict[str, Any]:
        row = asdict(self)
        row["warm_reduction"] = self.warm_reduction
        row["nocache_reduction"] = self.nocache_reduction
        return row


def _timed_run(
    app: CompiledApp, workload, n_gpus: int, plan_cache: bool
) -> Tuple[LaunchProfiler, MultiGpuApi]:
    """One machine-less timing-mode run with the launch profiler attached."""
    api = MultiGpuApi(
        app,
        RuntimeConfig(n_gpus=n_gpus, plan_cache=plan_cache),
        machine=None,
        functional=False,
    )
    profiler = LaunchProfiler()
    api.profiler = profiler
    workload.run(api, None)
    return profiler, api


def launch_overhead_study(
    workloads: Optional[Sequence[str]] = None,
    n_gpus: int = 4,
    sizes: Optional[Dict[str, Tuple[int, int]]] = None,
) -> List[OverheadPoint]:
    """Measure per-launch host microseconds, cold vs warm vs uncached.

    ``sizes`` overrides the per-workload ``(size, iterations)`` table
    (:data:`OVERHEAD_WORKLOADS`); unknown workload names raise ``KeyError``
    against it. Device work never runs — there is no machine — so the
    numbers isolate exactly the host path the staged planner restructured.
    """
    table = dict(OVERHEAD_WORKLOADS)
    if sizes:
        table.update(sizes)
    names = list(workloads) if workloads is not None else list(OVERHEAD_WORKLOADS)
    registry = {**ALL_WORKLOADS, **EXTRA_WORKLOADS}
    points: List[OverheadPoint] = []
    for name in names:
        size, iterations = table[name]
        cfg = ProblemConfig(name, "overhead", size, iterations)
        workload = registry[name](cfg)
        app = compile_app(workload.build_kernels())
        profiler, api = _timed_run(app, workload, n_gpus, plan_cache=True)
        baseline_prof, _ = _timed_run(app, registry[name](cfg), n_gpus, plan_cache=False)
        points.append(
            OverheadPoint(
                workload=name,
                size=size,
                iterations=iterations,
                cold_launches=profiler.launches.get(False, 0),
                warm_launches=profiler.launches.get(True, 0),
                cold_us=profiler.per_launch_us(False),
                warm_us=profiler.per_launch_us(True),
                nocache_us=baseline_prof.per_launch_us(False),
                counters=host_planner_counters(api.stats),
            )
        )
    return points


def overhead_failures(points: Sequence[OverheadPoint]) -> List[str]:
    """Exit-1 self-checks over the study (empty list = all pass)."""
    failures: List[str] = []
    if not points:
        return ["overhead study produced no points"]
    for p in points:
        if p.warm_launches == 0 or p.cold_launches == 0:
            failures.append(
                f"coverage: {p.workload} saw {p.cold_launches} cold / "
                f"{p.warm_launches} warm launches; both paths must run"
            )
            continue
        if p.warm_reduction < MIN_WARM_REDUCTION:
            failures.append(
                f"headline: {p.workload} warm path {p.warm_us['total']:.1f}us "
                f"per launch is only {p.warm_reduction:.1f}x below the cold "
                f"path {p.cold_us['total']:.1f}us (need >= {MIN_WARM_REDUCTION:g}x)"
            )
        if p.nocache_reduction < MIN_NOCACHE_REDUCTION:
            failures.append(
                f"baseline: {p.workload} warm path {p.warm_us['total']:.1f}us "
                f"per launch is only {p.nocache_reduction:.2f}x below the "
                f"plan_cache=False steady state {p.nocache_us['total']:.1f}us "
                f"(need >= {MIN_NOCACHE_REDUCTION:g}x)"
            )
        hits, misses = p.counters["plan_cache_hits"], p.counters["plan_cache_misses"]
        if hits != p.warm_launches or misses != p.cold_launches:
            failures.append(
                f"arithmetic: {p.workload} cache counted {hits} hits / "
                f"{misses} misses but the profiler saw {p.warm_launches} "
                f"warm / {p.cold_launches} cold launches"
            )
        if p.counters["plan_cache_evictions"] != 0:
            failures.append(
                f"capacity: {p.workload} evicted "
                f"{p.counters['plan_cache_evictions']} skeletons; the study "
                "working set must fit the cache"
            )
        if p.counters["enumerator_specialized"] == 0:
            failures.append(
                f"backend: {p.workload} never ran the vectorized enumerator "
                "backend (all scans fell back to the interpreter)"
            )
        # A cache hit skips the skeleton stage entirely.
        if p.warm_us.get("skeleton", 0.0) != 0.0:
            failures.append(
                f"staging: {p.workload} charged skeleton time "
                f"{p.warm_us['skeleton']:.1f}us on the warm path"
            )
    return failures


def _tracker_state(api: MultiGpuApi) -> List[Tuple[int, Tuple]]:
    """Canonical final tracker/sharer state of every live virtual buffer."""
    state = []
    for vb_id, vb in sorted(api._live_buffers.items()):
        segs = tuple(
            (s.start, s.end, s.owner, tuple(sorted(s.sharers)))
            for s in vb.tracker.segments()
        )
        state.append((vb_id, segs))
    return state


def _comparable_stats(api: MultiGpuApi) -> Dict[str, Any]:
    """Stats dict minus the planner counters the cache legitimately moves."""
    stats = asdict(api.stats)
    for name in HOST_PLANNER_COUNTERS:
        stats.pop(name)
    return stats


def identity_sweep(
    workload: str = "hotspot",
    n_gpus: int = 4,
    windows: Sequence[int] = (1, 4),
    schedules: Optional[Sequence[str]] = None,
    cluster_shape: Optional[Tuple[int, int]] = (2, 2),
) -> List[str]:
    """Prove the plan cache is invisible; returns failure strings.

    For every ``schedule x shared_copies x pipeline_window`` cell, on a
    flat simulated node and (by default) a 2x2 cluster, the same
    functional run executes with ``plan_cache`` on and off. The two runs
    must agree bitwise on outputs, on the full simulated trace (every
    interval, in order), on final tracker/sharer state, and on all stats
    outside :data:`~repro.runtime.api.HOST_PLANNER_COUNTERS`.
    """
    from repro.cluster.engine import ClusterSimMachine
    from repro.harness.calibration import K80_NODE_SPEC, k80_cluster
    from repro.sched.policy import SCHEDULES
    from repro.sim.engine import SimMachine
    from repro.workloads import functional_config

    if schedules is None:
        schedules = list(SCHEDULES) + ["auto"]
    registry = {**ALL_WORKLOADS, **EXTRA_WORKLOADS}
    wl = registry[workload](functional_config(workload))
    inputs = wl.make_inputs(seed=0)
    app = compile_app(wl.build_kernels())

    machines = [("flat", lambda: SimMachine(K80_NODE_SPEC.with_gpus(n_gpus)))]
    if cluster_shape is not None:
        nodes, gpn = cluster_shape
        if nodes * gpn != n_gpus:
            raise ValueError(
                f"cluster shape {nodes}x{gpn} must total n_gpus={n_gpus}"
            )
        machines.append(
            (f"{nodes}x{gpn}", lambda: ClusterSimMachine(k80_cluster(nodes, gpn)))
        )

    failures: List[str] = []
    for topo, make_machine in machines:
        for schedule in schedules:
            for shared in (False, True):
                for window in windows:
                    runs = {}
                    for cached in (True, False):
                        cfg = RuntimeConfig(
                            n_gpus=n_gpus,
                            schedule=schedule,
                            shared_copies=shared,
                            pipeline_window=window,
                            plan_cache=cached,
                        )
                        api = MultiGpuApi(app, cfg, machine=make_machine())
                        out = wl.run(api, inputs)
                        runs[cached] = (
                            out,
                            api.machine.trace.intervals,
                            _tracker_state(api),
                            _comparable_stats(api),
                        )
                    where = (
                        f"{workload} [{topo}] schedule={schedule!r} "
                        f"shared_copies={shared} window={window}"
                    )
                    on, off = runs[True], runs[False]
                    for key in off[0]:
                        if not np.array_equal(on[0][key], off[0][key]):
                            failures.append(
                                f"bitwise: output {key!r} differs with the "
                                f"plan cache at {where}"
                            )
                    if on[1] != off[1]:
                        failures.append(f"trace: intervals differ at {where}")
                    if on[2] != off[2]:
                        failures.append(f"tracker: final state differs at {where}")
                    if on[3] != off[3]:
                        drift = {
                            k: (off[3][k], on[3][k])
                            for k in off[3]
                            if off[3][k] != on[3][k]
                        }
                        failures.append(f"stats: {drift} differ at {where}")
    return failures
