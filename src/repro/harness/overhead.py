"""Host launch-overhead study of the staged planner (plan + replay caches).

``repro bench overhead`` drives three self-checking studies on top of the
paper's single-GPU slowdown table:

* :func:`launch_overhead_study` — pure host cost per launch. Each workload
  runs its iteration loop in timing mode with no machine attached
  (``machine=None, functional=False``), so wall-clock measures *only* the
  orchestration path: fingerprint, skeleton (partitioning + enumerator
  scans), tracker residual, and submit. A :class:`~repro.runtime.profiler.
  LaunchProfiler` splits per-launch microseconds by temperature — cold
  (plan-cache miss), warm (skeleton hit, residual re-derived) and replay
  (skeleton + residual-cache hit) — and a run with every cache off,
  *including the per-enumerator scan memo*, gives the honest
  every-launch-pays-full-price baseline.
* :func:`identity_sweep` — both caches must be bitwise-invisible.
  Functional hotspot runs with (a) the plan cache alone and (b) plan +
  residual replay are each compared against the all-caches-off oracle on
  outputs, the full simulated trace, final tracker/sharer state, and every
  stats counter outside :data:`~repro.runtime.api.HOST_PLANNER_COUNTERS`,
  across the ``schedule x shared_copies x pipeline_window`` matrix on both
  a flat node and a 2x2 cluster.
* :func:`mutation_identity_failures` — adversarial interleavings. An
  iteration loop is punctuated with direct tracker mutations (cudaMemset,
  host-to-device memcpy, cudaFree + fresh allocation); the replayed run
  must stay bitwise-identical to the replay-off oracle *and* every
  mutation must have changed the footprint digest (visible as extra
  residual-cache misses vs the unmutated loop).

:func:`overhead_failures` turns the study into exit-1 self-checks: the
warm path must beat the cold path by :data:`MIN_WARM_REDUCTION`, replay
must cut the hotspot residual stage by :data:`MIN_REPLAY_REDUCTION`, cache
arithmetic must balance, and the vectorized enumerator backend must have
engaged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.pipeline import CompiledApp, compile_app
from repro.runtime.api import HOST_PLANNER_COUNTERS, MultiGpuApi, host_planner_counters
from repro.runtime.config import RuntimeConfig
from repro.runtime.profiler import LaunchProfiler
from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS
from repro.workloads.common import ProblemConfig

__all__ = [
    "OVERHEAD_WORKLOADS",
    "MIN_WARM_REDUCTION",
    "MIN_NOCACHE_REDUCTION",
    "MIN_REPLAY_REDUCTION",
    "OverheadPoint",
    "launch_overhead_study",
    "overhead_failures",
    "identity_sweep",
    "mutation_identity_failures",
]

#: Workloads of the overhead study with their (size, iterations): the two
#: Table 1 iteration loops plus the task-graph image pipeline, whose
#: per-band launches exercise many distinct fingerprints per iteration.
OVERHEAD_WORKLOADS: Dict[str, Tuple[int, int]] = {
    "hotspot": (1024, 40),
    "nbody": (2048, 20),
    "imgpipe": (256, 3),
}

#: Factor by which the warm (plan-cache hit, residual re-derived) path must
#: undercut the cold path in host microseconds per launch. Measured
#: headroom is an order of magnitude above this on every study workload.
MIN_WARM_REDUCTION = 5.0

#: Factor by which the warm path must undercut the all-caches-off steady
#: state. The baseline run disables the plan cache, the residual cache
#: *and* the per-enumerator scan memo — every launch re-partitions,
#: re-scans and re-plans — so this bar sits well above the old
#: memo-assisted 1.2x.
MIN_NOCACHE_REDUCTION = 2.0

#: Factor by which a residual-cache hit must cut the *residual* stage
#: (tracker queries + stale-copy planning vs digest + replay) against the
#: warm path on the hotspot iteration loop, whose converged ping-pong is
#: the replay cache's design case.
MIN_REPLAY_REDUCTION = 3.0


@dataclass(frozen=True)
class OverheadPoint:
    """Host per-launch cost of one workload: cold/warm/replay/uncached."""

    workload: str
    size: int
    iterations: int
    #: Launch temperatures on the fully-cached run: cold built a skeleton,
    #: warm reused one but re-derived the residual, replay hit the residual
    #: cache too. Fallback launches bypass the planner and count in none.
    cold_launches: int
    warm_launches: int
    replay_launches: int
    #: Host microseconds per launch by stage (plus ``"total"``). The warm
    #: column comes from a ``residual_cache=False`` run — with replay on, a
    #: converged loop leaves the warm temperature almost empty — and the
    #: replay column from the fully-cached run. ``nocache_us`` is the
    #: baseline with the plan cache, residual cache and enumerator memo all
    #: disabled. Any column may be empty when no launch of that
    #: temperature occurred.
    cold_us: Dict[str, float]
    warm_us: Dict[str, float]
    replay_us: Dict[str, float]
    nocache_us: Dict[str, float]
    #: The :data:`~repro.runtime.api.HOST_PLANNER_COUNTERS` slice of the
    #: fully-cached run's stats.
    counters: Dict[str, int]

    @property
    def warm_reduction(self) -> float:
        """Cold-path total over warm-path total (per-launch microseconds)."""
        return self.cold_us["total"] / max(self.warm_us["total"], 1e-12)

    @property
    def nocache_reduction(self) -> float:
        """Uncached per-launch total over the warm-path total."""
        return self.nocache_us["total"] / max(self.warm_us["total"], 1e-12)

    @property
    def replay_residual_reduction(self) -> Optional[float]:
        """Warm residual-stage µs over replay residual-stage µs.

        The replay cache's headline: how much cheaper digest + replay is
        than live tracker queries + stale-copy planning. None when the
        workload never replayed.
        """
        if not self.replay_us:
            return None
        return self.warm_us["residual"] / max(self.replay_us["residual"], 1e-12)

    def as_dict(self) -> Dict[str, Any]:
        row = asdict(self)
        row["warm_reduction"] = self.warm_reduction
        row["nocache_reduction"] = self.nocache_reduction
        row["replay_residual_reduction"] = self.replay_residual_reduction
        return row


def _timed_run(
    app: CompiledApp,
    workload,
    n_gpus: int,
    *,
    plan_cache: bool = True,
    residual_cache: bool = True,
    enum_memo: bool = True,
) -> Tuple[LaunchProfiler, MultiGpuApi]:
    """One machine-less timing-mode run with the launch profiler attached.

    ``enum_memo=False`` additionally bypasses the per-enumerator scan memo
    for the duration of the run (restored afterwards): the memo predates
    the plan cache and survives ``plan_cache=False``, so leaving it warm
    would understate the no-cache baseline.
    """
    api = MultiGpuApi(
        app,
        RuntimeConfig(
            n_gpus=n_gpus, plan_cache=plan_cache, residual_cache=residual_cache
        ),
        machine=None,
        functional=False,
    )
    profiler = LaunchProfiler()
    api.profiler = profiler
    enums = app.enumerators.all()
    try:
        for enum in enums:
            enum.memo = enum_memo
        workload.run(api, None)
    finally:
        for enum in enums:
            enum.memo = True
    return profiler, api


def launch_overhead_study(
    workloads: Optional[Sequence[str]] = None,
    n_gpus: int = 4,
    sizes: Optional[Dict[str, Tuple[int, int]]] = None,
) -> List[OverheadPoint]:
    """Measure per-launch host microseconds: cold/warm/replay/uncached.

    ``sizes`` overrides the per-workload ``(size, iterations)`` table
    (:data:`OVERHEAD_WORKLOADS`); unknown workload names raise ``KeyError``
    against it. Device work never runs — there is no machine — so the
    numbers isolate exactly the host path the staged planner restructured.
    Three runs per workload: fully cached (cold + replay temperatures),
    ``residual_cache=False`` (the warm column) and everything off including
    the enumerator memo (the honest baseline).
    """
    table = dict(OVERHEAD_WORKLOADS)
    if sizes:
        table.update(sizes)
    names = list(workloads) if workloads is not None else list(OVERHEAD_WORKLOADS)
    registry = {**ALL_WORKLOADS, **EXTRA_WORKLOADS}
    points: List[OverheadPoint] = []
    for name in names:
        size, iterations = table[name]
        cfg = ProblemConfig(name, "overhead", size, iterations)
        workload = registry[name](cfg)
        app = compile_app(workload.build_kernels())
        full_prof, api = _timed_run(app, workload, n_gpus)
        warm_prof, _ = _timed_run(
            app, registry[name](cfg), n_gpus, residual_cache=False
        )
        base_prof, _ = _timed_run(
            app, registry[name](cfg), n_gpus,
            plan_cache=False, residual_cache=False, enum_memo=False,
        )
        points.append(
            OverheadPoint(
                workload=name,
                size=size,
                iterations=iterations,
                cold_launches=full_prof.launches.get("cold", 0),
                warm_launches=full_prof.launches.get("warm", 0),
                replay_launches=full_prof.launches.get("replay", 0),
                cold_us=full_prof.per_launch_us("cold"),
                warm_us=warm_prof.per_launch_us("warm"),
                replay_us=full_prof.per_launch_us("replay"),
                nocache_us=base_prof.per_launch_us("cold"),
                counters=host_planner_counters(api.stats),
            )
        )
    return points


def overhead_failures(points: Sequence[OverheadPoint]) -> List[str]:
    """Exit-1 self-checks over the study (empty list = all pass)."""
    failures: List[str] = []
    if not points:
        return ["overhead study produced no points"]
    for p in points:
        steady = p.warm_launches + p.replay_launches
        if p.cold_launches == 0 or steady == 0 or not p.warm_us:
            failures.append(
                f"coverage: {p.workload} saw {p.cold_launches} cold / "
                f"{p.warm_launches} warm / {p.replay_launches} replay "
                "launches; the cold and a steady path must both run"
            )
            continue
        if p.warm_reduction < MIN_WARM_REDUCTION:
            failures.append(
                f"headline: {p.workload} warm path {p.warm_us['total']:.1f}us "
                f"per launch is only {p.warm_reduction:.1f}x below the cold "
                f"path {p.cold_us['total']:.1f}us (need >= {MIN_WARM_REDUCTION:g}x)"
            )
        if p.nocache_reduction < MIN_NOCACHE_REDUCTION:
            failures.append(
                f"baseline: {p.workload} warm path {p.warm_us['total']:.1f}us "
                f"per launch is only {p.nocache_reduction:.2f}x below the "
                f"all-caches-off steady state {p.nocache_us['total']:.1f}us "
                f"(need >= {MIN_NOCACHE_REDUCTION:g}x)"
            )
        if p.workload == "hotspot":
            ratio = p.replay_residual_reduction
            if p.replay_launches == 0 or ratio is None:
                failures.append(
                    "replay: hotspot never hit the residual cache; its "
                    "converged ping-pong is the design case and must replay"
                )
            elif ratio < MIN_REPLAY_REDUCTION:
                failures.append(
                    f"replay: hotspot residual stage {p.replay_us['residual']:.1f}us "
                    f"on replay is only {ratio:.1f}x below the warm path's "
                    f"{p.warm_us['residual']:.1f}us (need >= {MIN_REPLAY_REDUCTION:g}x)"
                )
        hits, misses = p.counters["plan_cache_hits"], p.counters["plan_cache_misses"]
        if hits != steady or misses != p.cold_launches:
            failures.append(
                f"arithmetic: {p.workload} plan cache counted {hits} hits / "
                f"{misses} misses but the profiler saw {p.warm_launches} warm "
                f"+ {p.replay_launches} replay / {p.cold_launches} cold launches"
            )
        rhits = p.counters["residual_cache_hits"]
        rmisses = p.counters["residual_cache_misses"]
        if rhits != p.replay_launches or rmisses != p.cold_launches + p.warm_launches:
            failures.append(
                f"arithmetic: {p.workload} residual cache counted {rhits} hits "
                f"/ {rmisses} misses but the profiler saw {p.replay_launches} "
                f"replay / {p.cold_launches + p.warm_launches} non-replay launches"
            )
        evicted = (
            p.counters["plan_cache_evictions"]
            + p.counters["residual_cache_evictions"]
        )
        if evicted != 0:
            failures.append(
                f"capacity: {p.workload} evicted {evicted} entries; the "
                "study working set must fit both caches"
            )
        if p.counters["enumerator_specialized"] == 0:
            failures.append(
                f"backend: {p.workload} never ran the vectorized enumerator "
                "backend (all scans fell back to the interpreter)"
            )
        # A cache hit skips the skeleton stage entirely, on both hit paths.
        if p.warm_us.get("skeleton", 0.0) != 0.0:
            failures.append(
                f"staging: {p.workload} charged skeleton time "
                f"{p.warm_us['skeleton']:.1f}us on the warm path"
            )
        if p.replay_us.get("skeleton", 0.0) != 0.0:
            failures.append(
                f"staging: {p.workload} charged skeleton time "
                f"{p.replay_us['skeleton']:.1f}us on the replay path"
            )
    return failures


def _tracker_state(api: MultiGpuApi) -> List[Tuple[int, Tuple]]:
    """Canonical final tracker/sharer state of every live virtual buffer."""
    state = []
    for vb_id, vb in sorted(api._live_buffers.items()):
        segs = tuple(
            (s.start, s.end, s.owner, tuple(sorted(s.sharers)))
            for s in vb.tracker.segments()
        )
        state.append((vb_id, segs))
    return state


def _comparable_stats(api: MultiGpuApi) -> Dict[str, Any]:
    """Stats dict minus the planner counters the caches legitimately move."""
    stats = asdict(api.stats)
    for name in HOST_PLANNER_COUNTERS:
        stats.pop(name)
    return stats


#: The cache configurations of one identity-sweep cell: the all-off oracle
#: and the two cached modes that must match it bitwise.
_SWEEP_MODES = (
    ("oracle", False, False),
    ("plan", True, False),
    ("replay", True, True),
)


def identity_sweep(
    workload: str = "hotspot",
    n_gpus: int = 4,
    windows: Sequence[int] = (1, 4),
    schedules: Optional[Sequence[str]] = None,
    cluster_shape: Optional[Tuple[int, int]] = (2, 2),
) -> List[str]:
    """Prove both planner caches are invisible; returns failure strings.

    For every ``schedule x shared_copies x pipeline_window`` cell, on a
    flat simulated node and (by default) a 2x2 cluster, the same
    functional run executes in three modes — all caches off (the oracle),
    plan cache only, and plan + residual replay. Each cached mode must
    agree with the oracle bitwise on outputs, on the full simulated trace
    (every interval, in order), on final tracker/sharer state, and on all
    stats outside :data:`~repro.runtime.api.HOST_PLANNER_COUNTERS`.
    """
    from repro.cluster.engine import ClusterSimMachine
    from repro.harness.calibration import K80_NODE_SPEC, k80_cluster
    from repro.sched.policy import SCHEDULES
    from repro.sim.engine import SimMachine
    from repro.workloads import functional_config

    if schedules is None:
        schedules = list(SCHEDULES) + ["auto"]
    registry = {**ALL_WORKLOADS, **EXTRA_WORKLOADS}
    wl = registry[workload](functional_config(workload))
    inputs = wl.make_inputs(seed=0)
    app = compile_app(wl.build_kernels())

    machines = [("flat", lambda: SimMachine(K80_NODE_SPEC.with_gpus(n_gpus)))]
    if cluster_shape is not None:
        nodes, gpn = cluster_shape
        if nodes * gpn != n_gpus:
            raise ValueError(
                f"cluster shape {nodes}x{gpn} must total n_gpus={n_gpus}"
            )
        machines.append(
            (f"{nodes}x{gpn}", lambda: ClusterSimMachine(k80_cluster(nodes, gpn)))
        )

    failures: List[str] = []
    for topo, make_machine in machines:
        for schedule in schedules:
            for shared in (False, True):
                for window in windows:
                    runs = {}
                    for mode, plan_on, residual_on in _SWEEP_MODES:
                        cfg = RuntimeConfig(
                            n_gpus=n_gpus,
                            schedule=schedule,
                            shared_copies=shared,
                            pipeline_window=window,
                            plan_cache=plan_on,
                            residual_cache=residual_on,
                        )
                        api = MultiGpuApi(app, cfg, machine=make_machine())
                        out = wl.run(api, inputs)
                        runs[mode] = (
                            out,
                            api.machine.trace.intervals,
                            _tracker_state(api),
                            _comparable_stats(api),
                        )
                    where = (
                        f"{workload} [{topo}] schedule={schedule!r} "
                        f"shared_copies={shared} window={window}"
                    )
                    oracle = runs["oracle"]
                    for mode in ("plan", "replay"):
                        on = runs[mode]
                        for key in oracle[0]:
                            if not np.array_equal(on[0][key], oracle[0][key]):
                                failures.append(
                                    f"bitwise: output {key!r} differs in "
                                    f"{mode} mode at {where}"
                                )
                        if on[1] != oracle[1]:
                            failures.append(
                                f"trace: intervals differ in {mode} mode at {where}"
                            )
                        if on[2] != oracle[2]:
                            failures.append(
                                f"tracker: final state differs in {mode} "
                                f"mode at {where}"
                            )
                        if on[3] != oracle[3]:
                            drift = {
                                k: (oracle[3][k], on[3][k])
                                for k in oracle[3]
                                if oracle[3][k] != on[3][k]
                            }
                            failures.append(
                                f"stats: {drift} differ in {mode} mode at {where}"
                            )
    return failures


def _mutated_hotspot_run(
    api: MultiGpuApi, kernel, n: int, iterations: int, temp, mutate: bool
):
    """A hotspot ping-pong loop punctuated with direct tracker mutations.

    When ``mutate`` is set, iteration boundaries inject the three
    operations that bypass the launch path yet change coherence state: a
    device memset of the next input's first half, a host-to-device
    re-upload, and a free + fresh allocation of the next output buffer.
    Each invalidates the footprint digest the replay cache keys on, so a
    replayed residual can never be served across one.
    """
    from repro.cuda.api import MemcpyKind
    from repro.cuda.dim3 import Dim3
    from repro.workloads.hotspot import BLOCK

    nbytes = n * n * 4
    blocks = -(-n // BLOCK.x)
    grid = Dim3(x=blocks, y=blocks)
    d_a = api.cudaMalloc(nbytes)
    d_b = api.cudaMalloc(nbytes)
    api.cudaMemcpy(d_a, temp, nbytes, MemcpyKind.HostToDevice)
    third = max(1, iterations // 4)
    for i in range(iterations):
        api.launch(kernel, grid, BLOCK, [d_a, d_b])
        d_a, d_b = d_b, d_a
        if mutate:
            if i == third:
                api.cudaMemset(d_a, 0, nbytes // 2)
            elif i == 2 * third:
                api.cudaMemcpy(d_a, temp, nbytes, MemcpyKind.HostToDevice)
            elif i == 3 * third:
                api.cudaFree(d_b)
                d_b = api.cudaMalloc(nbytes)
    out = np.empty((n, n), dtype=np.float32)
    api.cudaMemcpy(out, d_a, nbytes, MemcpyKind.DeviceToHost)
    api.cudaDeviceSynchronize()
    return out


def mutation_identity_failures(
    n_gpus: int = 4,
    size: int = 128,
    iterations: int = 12,
    schedules: Sequence[str] = ("sequential", "overlap"),
) -> List[str]:
    """Adversarial replay soundness: direct mutations must miss, bitwise.

    For each schedule, a hotspot loop interleaved with cudaMemset, H2D
    memcpy and cudaFree/cudaMalloc runs with the residual cache on and
    off; the two must agree on outputs, trace, tracker state and all
    non-planner stats. The replayed run is additionally compared against
    an unmutated loop to prove the mutations *changed the digest*: they
    must force strictly more residual-cache misses while steady-state
    iterations still replay.
    """
    from repro.harness.calibration import K80_NODE_SPEC
    from repro.sim.engine import SimMachine
    from repro.workloads.hotspot import build_hotspot_kernel

    kernel = build_hotspot_kernel(size)
    app = compile_app([kernel])
    rng = np.random.default_rng(7)
    temp = rng.random((size, size), dtype=np.float32)

    failures: List[str] = []
    for schedule in schedules:
        runs = {}
        for label, residual_on, mutate in (
            ("replay", True, True),
            ("oracle", False, True),
            ("unmutated", True, False),
        ):
            cfg = RuntimeConfig(
                n_gpus=n_gpus, schedule=schedule, residual_cache=residual_on
            )
            api = MultiGpuApi(
                app, cfg, machine=SimMachine(K80_NODE_SPEC.with_gpus(n_gpus))
            )
            out = _mutated_hotspot_run(api, kernel, size, iterations, temp, mutate)
            runs[label] = (
                out,
                api.machine.trace.intervals,
                _tracker_state(api),
                _comparable_stats(api),
                host_planner_counters(api.stats),
            )
        where = f"hotspot-mutated schedule={schedule!r}"
        replayed, oracle = runs["replay"], runs["oracle"]
        if not np.array_equal(replayed[0], oracle[0]):
            failures.append(f"bitwise: mutated outputs differ at {where}")
        if replayed[1] != oracle[1]:
            failures.append(f"trace: intervals differ at {where}")
        if replayed[2] != oracle[2]:
            failures.append(f"tracker: final state differs at {where}")
        if replayed[3] != oracle[3]:
            drift = {
                k: (oracle[3][k], replayed[3][k])
                for k in oracle[3]
                if oracle[3][k] != replayed[3][k]
            }
            failures.append(f"stats: {drift} differ at {where}")
        mutated_misses = replayed[4]["residual_cache_misses"]
        clean_misses = runs["unmutated"][4]["residual_cache_misses"]
        if mutated_misses <= clean_misses:
            failures.append(
                f"digest: mutations left residual-cache misses at "
                f"{mutated_misses} (unmutated loop: {clean_misses}) at {where}; "
                "every direct mutation must change the footprint digest"
            )
        if replayed[4]["residual_cache_hits"] == 0:
            failures.append(
                f"digest: mutated loop never replayed between mutations at {where}"
            )
    return failures
