"""Experiment drivers reproducing the paper's evaluation (§9).

All performance runs are *timing-only*: the runtime's orchestration
(partitioning, enumerators, trackers) executes for real, while device work
and transfers are costed on the simulated machine. Correctness is covered
separately by the functional test suite.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.topology import ClusterSpec
from repro.compiler.costmodel import KernelCostModel
from repro.compiler.pipeline import CompiledApp, baseline_compile, compile_app
from repro.cuda.api import CudaApi
from repro.cuda.device import Device
from repro.harness.calibration import GPU_COUNTS, K80_CLUSTER_SPEC, K80_NODE_SPEC
from repro.runtime.api import MultiGpuApi, host_planner_counters
from repro.runtime.config import RuntimeConfig
from repro.sim.engine import SimMachine
from repro.sim.topology import MachineSpec
from repro.sim.trace import Category
from repro.workloads.common import ProblemConfig, Workload, table1_configs
from repro.workloads import ALL_WORKLOADS

__all__ = [
    "SpeedupPoint",
    "BreakdownRow",
    "SchedulePoint",
    "ClusterPoint",
    "RedundancyPoint",
    "PipelinePoint",
    "run_timed",
    "run_timed_cluster",
    "reference_time",
    "figure6",
    "figure7",
    "figure8",
    "schedule_comparison",
    "cluster_scaling",
    "redundancy_study",
    "pipeline_study",
    "single_gpu_overhead",
    "compile_time_ratio",
    "table1_rows",
]

_APP_CACHE: Dict[str, CompiledApp] = {}

#: Iteration caps for the steady-state extrapolation (see
#: :func:`_extrapolated`): simulate M1 and M2 iterations, derive the exact
#: per-iteration steady-state time from their difference, extrapolate to the
#: configured count. Exact because the simulation is deterministic and every
#: iteration after the first performs identical work.
_EXTRAPOLATE_M1 = 24
_EXTRAPOLATE_M2 = 12


def _compiled(workload: Workload) -> CompiledApp:
    # Kernels bake in the problem size (one build per Table 1 size, like the
    # paper's benchmarks), so the cache key includes it.
    key = f"{workload.name}/{workload.cfg.size}"
    app = _APP_CACHE.get(key)
    if app is None:
        app = compile_app(workload.build_kernels())
        _APP_CACHE[key] = app
    return app


def _with_iterations(cfg: ProblemConfig, iterations: int) -> ProblemConfig:
    return ProblemConfig(cfg.workload, cfg.size_label, cfg.size, iterations)


def _extrapolated(cfg: ProblemConfig, run_once) -> Tuple[float, object]:
    """Total simulated time, extrapolating steady-state iterations.

    ``run_once(cfg) -> (elapsed, payload)`` must be deterministic. For
    iteration counts above the cap we run M1 and M2 iterations; since every
    iteration past the first is identical, ``(T(M1) - T(M2)) / (M1 - M2)``
    is the exact steady-state per-iteration time.
    """
    if cfg.iterations <= _EXTRAPOLATE_M1:
        return run_once(cfg)
    t1, payload = run_once(_with_iterations(cfg, _EXTRAPOLATE_M1))
    t2, _ = run_once(_with_iterations(cfg, _EXTRAPOLATE_M2))
    per_iter = (t1 - t2) / (_EXTRAPOLATE_M1 - _EXTRAPOLATE_M2)
    total = t1 + (cfg.iterations - _EXTRAPOLATE_M1) * per_iter
    return total, payload


def reference_time(cfg: ProblemConfig, spec: MachineSpec = K80_NODE_SPEC) -> float:
    """Simulated runtime of the single-GPU reference binary (nvcc baseline)."""

    def run_once(c: ProblemConfig):
        workload = ALL_WORKLOADS[c.workload](c)
        machine = SimMachine(spec.with_gpus(1))
        api = CudaApi(
            Device(0, functional=False),
            machine=machine,
            kernel_cost=KernelCostModel(spec),
            functional=False,
        )
        workload.run(api, None)
        return machine.elapsed(), api

    total, _ = _extrapolated(cfg, run_once)
    return total


def run_timed(
    cfg: ProblemConfig,
    n_gpus: int,
    spec: MachineSpec = K80_NODE_SPEC,
    *,
    config: Optional[RuntimeConfig] = None,
    schedule: Optional[str] = None,
) -> Tuple[float, MultiGpuApi]:
    """Simulated runtime of the partitioned application on ``n_gpus``.

    ``schedule`` selects the launch-scheduler policy (overriding whatever
    ``config`` carries); all other ``config`` fields are preserved.
    """
    if config is None:
        config = RuntimeConfig(n_gpus=n_gpus)
    else:
        config = replace(config, n_gpus=n_gpus)
    if schedule is not None:
        config = replace(config, schedule=schedule)

    def run_once(c: ProblemConfig):
        workload = ALL_WORKLOADS[c.workload](c)
        app = _compiled(workload)
        machine = SimMachine(spec.with_gpus(max(n_gpus, 1)))
        api = MultiGpuApi(app, config, machine=machine, functional=False)
        workload.run(api, None)
        # api.elapsed(), not machine.elapsed(): reading the clock through
        # the api drains any pipelined launches still buffered.
        return api.elapsed(), api

    return _extrapolated(cfg, run_once)


def run_timed_cluster(
    cfg: ProblemConfig,
    cluster: ClusterSpec,
    *,
    config: Optional[RuntimeConfig] = None,
    schedule: Optional[str] = None,
) -> Tuple[float, MultiGpuApi]:
    """Simulated runtime of the partitioned application on a cluster.

    Same contract as :func:`run_timed`, but the machine is a
    :class:`ClusterSimMachine` over ``cluster`` and the runtime spans all
    ``cluster.total_gpus`` devices (hierarchical partitioning, cross-node
    halos over the NIC/fabric tier).
    """
    n_gpus = cluster.total_gpus
    if config is None:
        config = RuntimeConfig(n_gpus=n_gpus)
    else:
        config = replace(config, n_gpus=n_gpus)
    if schedule is not None:
        config = replace(config, schedule=schedule)

    def run_once(c: ProblemConfig):
        workload = ALL_WORKLOADS[c.workload](c)
        app = _compiled(workload)
        machine = ClusterSimMachine(cluster)
        api = MultiGpuApi(app, config, machine=machine, functional=False)
        workload.run(api, None)
        return api.elapsed(), api

    return _extrapolated(cfg, run_once)


# ---------------------------------------------------------------------------
# Figure 6: speedup over the single-GPU reference
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpeedupPoint:
    workload: str
    size_label: str
    n_gpus: int
    time: float
    reference: float

    @property
    def speedup(self) -> float:
        return self.reference / self.time


def figure6(
    workloads: Sequence[str] = ("hotspot", "nbody", "matmul"),
    sizes: Sequence[str] = ("small", "medium", "large"),
    gpu_counts: Sequence[int] = GPU_COUNTS,
    spec: MachineSpec = K80_NODE_SPEC,
    schedule: Optional[str] = None,
) -> List[SpeedupPoint]:
    """Speedup of every workload/size over 1..16 GPUs (paper Figure 6)."""
    points: List[SpeedupPoint] = []
    for name in workloads:
        for size in sizes:
            cfg = next(c for c in table1_configs(name) if c.size_label == size)
            ref = reference_time(cfg, spec)
            for g in gpu_counts:
                elapsed, _ = run_timed(cfg, g, spec, schedule=schedule)
                points.append(SpeedupPoint(name, size, g, elapsed, ref))
    return points


# ---------------------------------------------------------------------------
# Figure 7: execution-time breakdown via the alpha/beta/gamma scheme (§9.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BreakdownRow:
    workload: str
    n_gpus: int
    alpha: float
    beta: float
    gamma: float

    @property
    def t_application(self) -> float:
        return self.gamma / self.alpha

    @property
    def t_transfers(self) -> float:
        return (self.alpha - self.beta) / self.alpha

    @property
    def t_patterns(self) -> float:
        return (self.beta - self.gamma) / self.alpha


def measure_breakdown(
    cfg: ProblemConfig,
    n_gpus: int,
    spec: MachineSpec = K80_NODE_SPEC,
    schedule: Optional[str] = None,
) -> BreakdownRow:
    base = RuntimeConfig(n_gpus=n_gpus)
    if schedule is not None:
        base = replace(base, schedule=schedule)
    alpha, _ = run_timed(cfg, n_gpus, spec, config=base.alpha())
    beta, _ = run_timed(cfg, n_gpus, spec, config=base.beta())
    gamma, _ = run_timed(cfg, n_gpus, spec, config=base.gamma())
    return BreakdownRow(cfg.workload, n_gpus, alpha, beta, gamma)


def figure7(
    workloads: Sequence[str] = ("hotspot", "matmul", "nbody"),
    gpu_counts: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16),
    spec: MachineSpec = K80_NODE_SPEC,
    size: str = "medium",
    schedule: Optional[str] = None,
) -> List[BreakdownRow]:
    """Relative Application/Transfers/Patterns times (paper Figure 7)."""
    rows: List[BreakdownRow] = []
    for name in workloads:
        cfg = next(c for c in table1_configs(name) if c.size_label == size)
        for g in gpu_counts:
            rows.append(measure_breakdown(cfg, g, spec, schedule=schedule))
    return rows


# ---------------------------------------------------------------------------
# Schedule comparison: sequential vs overlap vs overlap+p2p (what-if study)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulePoint:
    """One (workload, gpu count, schedule) sample of the what-if study."""

    workload: str
    size_label: str
    n_gpus: int
    schedule: str
    time: float
    reference: float
    #: Coherence-transfer busy time overlapped with kernel execution vs
    #: left on the critical path (seconds on the *sampled* — not
    #: extrapolated — run; use the ratio, not the absolute values).
    hidden_transfer_time: float
    exposed_transfer_time: float

    @property
    def speedup(self) -> float:
        return self.reference / self.time

    @property
    def hidden_fraction(self) -> float:
        total = self.hidden_transfer_time + self.exposed_transfer_time
        return self.hidden_transfer_time / total if total > 0 else 0.0


def schedule_comparison(
    workloads: Sequence[str] = ("hotspot",),
    gpu_counts: Sequence[int] = (1, 4, 16),
    spec: MachineSpec = K80_NODE_SPEC,
    size: str = "medium",
    schedules: Optional[Sequence[str]] = None,
) -> List[SchedulePoint]:
    """Run every workload under each launch-scheduler policy.

    This replaces the old analytical what-if P2P model: the ``overlap`` and
    ``overlap+p2p`` rows come from actually executing the task-DAG scheduler
    on the simulated machine, not from subtracting estimated staging costs.
    """
    from repro.sched.policy import SCHEDULES

    if schedules is None:
        schedules = SCHEDULES
    points: List[SchedulePoint] = []
    for name in workloads:
        cfg = next(c for c in table1_configs(name) if c.size_label == size)
        ref = reference_time(cfg, spec)
        for g in gpu_counts:
            for sched in schedules:
                elapsed, api = run_timed(cfg, g, spec, schedule=sched)
                exposure = api.machine.trace.transfer_exposure()
                points.append(
                    SchedulePoint(
                        name,
                        size,
                        g,
                        sched,
                        elapsed,
                        ref,
                        exposure["hidden"],
                        exposure["exposed"],
                    )
                )
    return points


# ---------------------------------------------------------------------------
# Cluster scaling: equal total GPUs across node/GPU shapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterPoint:
    """One (workload, cluster shape, schedule) sample of the scaling study."""

    workload: str
    size_label: str
    n_nodes: int
    gpus_per_node: int
    schedule: str
    time: float
    reference: float
    #: Coherence-transfer busy time split by interconnect tier (seconds on
    #: the *sampled* — not extrapolated — run; use ratios, not absolutes).
    intra_hidden: float
    intra_exposed: float
    inter_hidden: float
    inter_exposed: float
    #: Sync transfers whose endpoints live on different nodes (sampled run).
    inter_node_transfers: int
    inter_node_bytes: int
    #: Total TRANSFERS busy time of the sampled run — the four exposure
    #: buckets must sum to exactly this (α/β/γ accounting identity).
    transfers_busy: float
    #: Staged-planner counters of the sampled run (:data:`~repro.runtime.
    #: api.HOST_PLANNER_COUNTERS`): plan/residual cache hit rates witness
    #: that the launch hot path stayed warm across the scaling sweep.
    host_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def speedup(self) -> float:
        return self.reference / self.time

    @property
    def exposure_identity_error(self) -> float:
        """Absolute drift of the tier split from ``busy_time(TRANSFERS)``."""
        split = (
            self.intra_hidden
            + self.intra_exposed
            + self.inter_hidden
            + self.inter_exposed
        )
        return abs(split - self.transfers_busy)


def cluster_scaling(
    workloads: Sequence[str] = ("hotspot", "matmul", "nbody"),
    shapes: Sequence[Tuple[int, int]] = ((1, 16), (2, 8), (4, 4)),
    base: ClusterSpec = K80_CLUSTER_SPEC,
    size: str = "medium",
    schedules: Optional[Sequence[str]] = None,
) -> List[ClusterPoint]:
    """Run every workload over cluster shapes with equal total GPU counts.

    The interesting comparison holds ``n_nodes * gpus_per_node`` constant:
    a 1xN shape pays zero network traffic (the whole split is intra-node),
    while NxG shapes push every node-boundary halo over the NIC/fabric tier
    — the per-shape intra/inter exposure split quantifies exactly what the
    network costs.
    """
    from repro.sched.policy import SCHEDULES

    if schedules is None:
        schedules = SCHEDULES
    points: List[ClusterPoint] = []
    for name in workloads:
        cfg = next(c for c in table1_configs(name) if c.size_label == size)
        ref = reference_time(cfg, base.node)
        for n_nodes, gpus_per_node in shapes:
            cluster = base.with_shape(n_nodes, gpus_per_node)
            for sched in schedules:
                elapsed, api = run_timed_cluster(cfg, cluster, schedule=sched)
                trace = api.machine.trace
                tiers = trace.transfer_exposure_by_tier()
                points.append(
                    ClusterPoint(
                        name,
                        size,
                        n_nodes,
                        gpus_per_node,
                        sched,
                        elapsed,
                        ref,
                        tiers["intra"]["hidden"],
                        tiers["intra"]["exposed"],
                        tiers["inter"]["hidden"],
                        tiers["inter"]["exposed"],
                        api.stats.inter_node_transfers,
                        api.stats.inter_node_bytes,
                        trace.busy_time(Category.TRANSFERS),
                        host_planner_counters(api.stats),
                    )
                )
    return points


# ---------------------------------------------------------------------------
# Cross-launch pipelining: fused launch windows vs per-launch orchestration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelinePoint:
    """One (workload, topology, schedule, window) sample of the study."""

    workload: str
    size_label: str
    #: "flat" (single node, ``n_nodes`` is 1) or "cluster".
    topology: str
    n_nodes: int
    gpus_per_node: int
    schedule: str
    pipeline_window: int
    time: float
    reference: float
    #: Transfer busy time overlapped with kernels vs left on the critical
    #: path (seconds on the *sampled* — not extrapolated — run).
    hidden_transfer_time: float
    exposed_transfer_time: float
    #: Pipelined-executor counters from the sampled run.
    pipeline_flushes: int
    pipeline_max_batch: int
    estimate_cache_hits: int
    estimate_cache_misses: int

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def speedup(self) -> float:
        return self.reference / self.time

    @property
    def hidden_fraction(self) -> float:
        total = self.hidden_transfer_time + self.exposed_transfer_time
        return self.hidden_transfer_time / total if total > 0 else 0.0


def pipeline_study(
    workloads: Sequence[str] = ("hotspot", "nbody"),
    windows: Sequence[int] = (1, 2, 4),
    n_gpus: int = 16,
    cluster_shape: Optional[Tuple[int, int]] = (2, 4),
    spec: MachineSpec = K80_NODE_SPEC,
    base: ClusterSpec = K80_CLUSTER_SPEC,
    size: str = "medium",
) -> List[PipelinePoint]:
    """Fused-window pipelining vs per-launch orchestration.

    For each workload and topology (flat ``n_gpus`` node, and optionally a
    cluster shape) the study runs:

    * the **baseline**: ``pipeline_window=1`` under the paper-faithful
      ``sequential`` policy — each launch drains its own barrier-structured
      schedule before the next is built;
    * ``overlap+p2p`` at every requested window, including 1, so the
      incremental benefit of fusing windows is separable from the benefit
      of DAG scheduling itself.
    """
    points: List[PipelinePoint] = []

    def run(cfg, make_config, runner, topology, n_nodes, gpn, sched, window):
        config = make_config(sched, window)
        elapsed, api = runner(cfg, config)
        exposure = api.machine.trace.transfer_exposure()
        points.append(
            PipelinePoint(
                cfg.workload,
                size,
                topology,
                n_nodes,
                gpn,
                sched,
                window,
                elapsed,
                ref,
                exposure["hidden"],
                exposure["exposed"],
                api.stats.pipeline_flushes,
                api.stats.pipeline_max_batch,
                api.stats.estimate_cache_hits,
                api.stats.estimate_cache_misses,
            )
        )

    for name in workloads:
        cfg = next(c for c in table1_configs(name) if c.size_label == size)
        ref = reference_time(cfg, spec)

        def flat_config(sched: str, window: int) -> RuntimeConfig:
            return RuntimeConfig(n_gpus=n_gpus, schedule=sched, pipeline_window=window)

        def flat_runner(c, config):
            return run_timed(c, n_gpus, spec, config=config)

        run(cfg, flat_config, flat_runner, "flat", 1, n_gpus, "sequential", 1)
        for w in windows:
            run(cfg, flat_config, flat_runner, "flat", 1, n_gpus, "overlap+p2p", w)

        if cluster_shape is not None:
            n_nodes, gpn = cluster_shape
            cluster = base.with_shape(n_nodes, gpn)

            def cluster_config(sched: str, window: int) -> RuntimeConfig:
                return RuntimeConfig(
                    n_gpus=cluster.total_gpus, schedule=sched, pipeline_window=window
                )

            def cluster_runner(c, config):
                return run_timed_cluster(c, cluster, config=config)

            run(cfg, cluster_config, cluster_runner, "cluster", n_nodes, gpn, "sequential", 1)
            for w in windows:
                run(
                    cfg, cluster_config, cluster_runner, "cluster", n_nodes, gpn,
                    "overlap+p2p", w,
                )
    return points


# ---------------------------------------------------------------------------
# Redundant-transfer study: shared-copy tracking vs sole-owner (§8.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RedundancyPoint:
    """One (kernel, shared-copies setting, cluster shape) redundancy sample.

    The study runs the same iterative kernel twice — sole-owner trackers
    (the paper's §8.3 behaviour) vs shared-copy trackers — and records the
    coherence traffic per iteration plus a checksum of the final output
    buffer, so redundancy elimination can be asserted *and* shown to be
    bitwise-neutral.
    """

    kernel: str
    shared_copies: bool
    #: Whether the run trimmed bounding-range slack off planned copies
    #: (:attr:`~repro.runtime.config.RuntimeConfig.irredundant_transfers`).
    irredundant: bool
    schedule: str
    n_nodes: int
    gpus_per_node: int
    iterations: int
    #: Coherence bytes of the warm-up (first) and last (steady) iteration.
    first_iter_bytes: int
    steady_bytes: int
    total_sync_bytes: int
    redundant_bytes_avoided: int
    #: Share of ``redundant_bytes_avoided`` whose sole-owner re-transfer
    #: would have crossed the node fabric.
    redundant_bytes_avoided_inter: int
    #: Bounding-range slack bytes the irredundant path trimmed, and the
    #: share that would have crossed the node fabric.
    overapprox_bytes_avoided: int
    overapprox_bytes_avoided_inter: int
    inter_node_bytes: int
    tracker_share_ops: int
    tracker_invalidate_ops: int
    #: SHA-256 over the final output buffer — identical across settings.
    checksum: str

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node


def _redundancy_kernels(n: int):
    """(aligned, broadcast) kernels over an ``n``-element read-only table.

    ``aligned`` reads only the thread's own element (the linear H2D
    distribution matches, so steady-state coherence traffic is zero either
    way); ``broadcast`` reduces over the whole table, the §8.3 worst case a
    sole-owner tracker re-transfers every iteration.
    """
    from repro.cuda import f32
    from repro.cuda.ir import KernelBuilder

    kb = KernelBuilder("aligned")
    table = kb.array("table", f32, (n,))
    out = kb.array("out", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        out[gi,] = out[gi,] + table[gi,]
    aligned = kb.finish()

    kb = KernelBuilder("broadcast")
    table = kb.array("table", f32, (n,))
    out = kb.array("out", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        acc = kb.let("acc", kb.f32const(0.0))
        with kb.for_range("j", 0, n) as j:
            kb.assign(acc, acc + table[j,])
        out[gi,] = acc
    broadcast = kb.finish()
    return aligned, broadcast


def redundancy_study(
    n: int = 4096,
    iterations: int = 8,
    shapes: Sequence[Tuple[int, int]] = ((1, 4),),
    schedules: Sequence[str] = ("sequential",),
    base: ClusterSpec = K80_CLUSTER_SPEC,
    irredundant: Sequence[bool] = (False,),
    stencil: bool = False,
    stencil_side: int = 64,
) -> List[RedundancyPoint]:
    """Coherence traffic of broadcast vs aligned reads, shared copies on/off.

    Functional runs (bitwise-checkable) on a simulated machine per cluster
    shape: a 1-node shape uses the flat :class:`SimMachine`, multi-node
    shapes a :class:`ClusterSimMachine` so the inter-node byte reduction of
    nearest-copy routing shows up in the stats.

    ``irredundant`` adds the RP602 remedy as a study dimension (each value
    runs the whole sweep with that ``irredundant_transfers`` setting);
    ``stencil`` adds the decimating-stencil workload
    (:mod:`repro.workloads.dstencil`), whose strided reads give the
    irredundant path actual bounding-range slack to trim.
    """
    import hashlib

    import numpy as np

    from repro.cuda.api import MemcpyKind
    from repro.cuda.dim3 import Dim3

    aligned, broadcast = _redundancy_kernels(n)
    table = np.linspace(0.0, 1.0, n, dtype=np.float32)
    zeros = np.zeros(n, dtype=np.float32)
    # One case per kernel: (kernel, grid, block, host arrays in array-param
    # order — each is H2D'd before the iteration loop — output param index).
    grid1d, block1d = Dim3(n // 128), Dim3(128)
    cases = [
        (aligned, grid1d, block1d, [table, zeros], 1),
        (broadcast, grid1d, block1d, [table, zeros], 1),
    ]
    if stencil:
        from repro.workloads.dstencil import BLOCK, build_dstencil_kernel, src_shape

        rows, cols = src_shape(stencil_side)
        src = np.linspace(0.0, 1.0, rows * cols, dtype=np.float32).reshape(rows, cols)
        blocks = -(-stencil_side // BLOCK.x)
        cases.append(
            (
                build_dstencil_kernel(stencil_side),
                Dim3(x=blocks, y=blocks),
                BLOCK,
                [src, np.zeros((stencil_side, stencil_side), dtype=np.float32)],
                1,
            )
        )
    points: List[RedundancyPoint] = []
    for kernel, grid, block, inputs, out_idx in cases:
        app = compile_app([kernel])
        for n_nodes, gpus_per_node in shapes:
            total = n_nodes * gpus_per_node
            for schedule in schedules:
                for shared in (False, True):
                    for irr in irredundant:
                        config = RuntimeConfig(
                            n_gpus=total,
                            schedule=schedule,
                            shared_copies=shared,
                            irredundant_transfers=irr,
                        )
                        if n_nodes > 1:
                            machine = ClusterSimMachine(
                                base.with_shape(n_nodes, gpus_per_node)
                            )
                        else:
                            machine = SimMachine(base.node.with_gpus(total))
                        api = MultiGpuApi(app, config, machine=machine)
                        devs = []
                        for host in inputs:
                            d = api.cudaMalloc(host.nbytes)
                            api.cudaMemcpy(d, host, host.nbytes, MemcpyKind.HostToDevice)
                            devs.append(d)
                        first = steady = 0
                        for it in range(iterations):
                            before = api.stats.sync_bytes
                            api.launch(kernel, grid, block, devs)
                            steady = api.stats.sync_bytes - before
                            if it == 0:
                                first = steady
                        result = np.zeros_like(inputs[out_idx])
                        api.cudaMemcpy(
                            result, devs[out_idx], result.nbytes, MemcpyKind.DeviceToHost
                        )
                        points.append(
                            RedundancyPoint(
                                kernel.name,
                                shared,
                                irr,
                                schedule,
                                n_nodes,
                                gpus_per_node,
                                iterations,
                                first,
                                steady,
                                api.stats.sync_bytes,
                                api.stats.redundant_bytes_avoided,
                                api.stats.redundant_bytes_avoided_inter,
                                api.stats.overapprox_bytes_avoided,
                                api.stats.overapprox_bytes_avoided_inter,
                                api.stats.inter_node_bytes,
                                api.stats.tracker_share_ops,
                                api.stats.tracker_invalidate_ops,
                                hashlib.sha256(result.tobytes()).hexdigest(),
                            )
                        )
    return points


# ---------------------------------------------------------------------------
# Figure 8: distribution of the non-transfer overhead
# ---------------------------------------------------------------------------


@dataclass
class OverheadStats:
    n_gpus: int
    fractions: List[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        return statistics.median(self.fractions)

    def percentile(self, q: float) -> float:
        data = sorted(self.fractions)
        if not data:
            return float("nan")
        idx = q * (len(data) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(data) - 1)
        frac = idx - lo
        return data[lo] * (1 - frac) + data[hi] * frac


def figure8(
    gpu_counts: Sequence[int] = GPU_COUNTS,
    spec: MachineSpec = K80_NODE_SPEC,
    sizes: Sequence[str] = ("small", "medium", "large"),
) -> List[OverheadStats]:
    """Non-transfer overhead fraction (β−γ)/α per GPU count (Figure 8)."""
    out: List[OverheadStats] = []
    for g in gpu_counts:
        stats = OverheadStats(g)
        for cfg in table1_configs():
            if cfg.size_label not in sizes:
                continue
            row = measure_breakdown(cfg, g, spec)
            stats.fractions.append(row.t_patterns)
        out.append(stats)
    return out


# ---------------------------------------------------------------------------
# Single-GPU overhead of the partitioned binary (§9.2 opening)
# ---------------------------------------------------------------------------


def single_gpu_overhead(
    spec: MachineSpec = K80_NODE_SPEC,
    sizes: Sequence[str] = ("small", "medium", "large"),
) -> List[Tuple[ProblemConfig, float]]:
    """Slowdown of the partitioned application on one GPU vs the reference.

    The paper reports a median of 2.1 % with p25 = 0.13 % and p75 = 3.1 %.
    """
    out = []
    for cfg in table1_configs():
        if cfg.size_label not in sizes:
            continue
        ref = reference_time(cfg, spec)
        part, _ = run_timed(cfg, 1, spec)
        out.append((cfg, part / ref - 1.0))
    return out


# ---------------------------------------------------------------------------
# Compile-time increase (§3)
# ---------------------------------------------------------------------------


def compile_time_ratio(repeats: int = 3) -> Dict[str, float]:
    """Compile-time increase caused by the two-pass pipeline (§3).

    The paper drives gpucc twice — pass 1 exists only to extract the memory
    models, then the rewritten application is compiled for real — and
    reports a 1.9x-2.2x compile-time increase. The measured analogue here is
    the full pipeline's wall time over a hypothetical *single-pass* compiler
    that performed the same final compilation (pass 2, including analysis,
    partitioning and enumerator generation) plus the rewrite, but did not
    repeat pass 1. (Comparing against a bare validate-and-print "compile"
    would be meaningless: this reproduction has no LLVM backend whose cost
    dominates the way it does in gpucc.)
    """
    from repro.workloads.common import functional_config

    ratios: Dict[str, float] = {}
    for name, cls in ALL_WORKLOADS.items():
        workload = cls(functional_config(name))
        kernels = workload.build_kernels()
        host_source = f"{kernels[0].name}<<<grid, block>>>(args);"
        best = None
        for _ in range(repeats):
            app = compile_app(kernels, host_source=host_source)
            single_pass = app.timings.rewrite + app.timings.pass2
            ratio = app.timings.total / single_pass
            if best is None or ratio < best:
                best = ratio
        ratios[name] = best
    return ratios


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def table1_rows() -> List[Tuple[str, int, int, int, str]]:
    """(benchmark, small, medium, large, iterations) rows of Table 1."""
    rows = []
    from repro.workloads.common import TABLE1

    for name, sizes in TABLE1.items():
        iters = sizes["small"].iterations
        rows.append(
            (
                name,
                sizes["small"].size,
                sizes["medium"].size,
                sizes["large"].size,
                "N/A" if name == "matmul" else str(iters),
            )
        )
    return rows
