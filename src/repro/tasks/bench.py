"""Self-checking benchmark of the dynamic task-graph frontend.

``repro bench taskgraph`` runs three studies per workload (tiled Cholesky
and the overlapped-tiling image pipeline) and *fails the process* (exit 1)
when any of its claims does not hold:

* **Identity sweep** — dependency-driven (``graph``) execution, barrier
  ``serialized`` execution, and an adversarial alternative topological
  order must produce bitwise-identical outputs *and* identical final
  tracker/sharer states across the full ``schedule x shared_copies x
  pipeline_window`` configuration matrix.
* **Overlap study** — on a simulated 16-GPU machine, graph execution must
  beat barrier-serialized execution by ``>= 1.3x`` makespan (the barriers
  flush the launch pipeline after every task, serializing transfers that
  dependence-driven execution packs side by side), transfer *busy* time
  must be bitwise-conserved across the two modes (same transfers, only
  earlier), and the :meth:`~repro.sim.trace.Trace.transfer_exposure`
  accounting identity ``hidden + exposed == busy(TRANSFERS)`` must hold
  on both runs.
* **Evidence checks** — Cholesky must match ``numpy.linalg.cholesky``
  within float32 tolerance; the image pipeline's deliberately opaque stats
  task must demonstrably degrade (``RP701``/``RP702`` diagnostics, a
  whole-buffer graph barrier, and one kernel-level single-GPU fallback
  launch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.config import RuntimeConfig
from repro.sched.policy import SCHEDULES
from repro.sim.trace import Category

__all__ = [
    "TaskGraphPoint",
    "IdentityCell",
    "TaskGraphStudy",
    "taskgraph_study",
    "TASKGRAPH_WORKLOADS",
]

#: Workloads the study accepts, with (identity size, overlap size).
TASKGRAPH_WORKLOADS: Dict[str, Tuple[int, int]] = {
    "cholesky": (32, 256),
    "imgpipe": (64, 256),
}

#: Critical-path (makespan) improvement the overlap study must demonstrate.
MIN_MAKESPAN_WIN = 1.3


@dataclass(frozen=True)
class TaskGraphPoint:
    """One timed 16-GPU execution (graph or serialized) of one workload."""

    workload: str
    mode: str
    n_gpus: int
    tasks: int
    edges: int
    time: float
    exposed_transfer_time: float
    hidden_transfer_time: float
    transfer_busy_time: float

    @property
    def hidden_fraction(self) -> float:
        total = self.hidden_transfer_time + self.exposed_transfer_time
        return self.hidden_transfer_time / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "n_gpus": self.n_gpus,
            "tasks": self.tasks,
            "edges": self.edges,
            "time": self.time,
            "exposed_transfer_time": self.exposed_transfer_time,
            "hidden_transfer_time": self.hidden_transfer_time,
            "transfer_busy_time": self.transfer_busy_time,
            "hidden_fraction": self.hidden_fraction,
        }


@dataclass(frozen=True)
class IdentityCell:
    """One configuration of the bitwise-identity sweep."""

    workload: str
    schedule: str
    shared_copies: bool
    pipeline_window: int
    mode: str
    identical: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "schedule": self.schedule,
            "shared_copies": self.shared_copies,
            "pipeline_window": self.pipeline_window,
            "mode": self.mode,
            "identical": self.identical,
        }


@dataclass
class TaskGraphStudy:
    """Everything ``repro bench taskgraph`` prints and self-checks."""

    workloads: List[str]
    n_gpus: int
    points: List[TaskGraphPoint] = field(default_factory=list)
    identity: List[IdentityCell] = field(default_factory=list)
    graph_stats: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    diagnostics: Dict[str, List[str]] = field(default_factory=dict)
    #: Staged-planner counters (:data:`~repro.runtime.api.
    #: HOST_PLANNER_COUNTERS`) of the overlap study's graph-mode run,
    #: per workload — the dependence-driven path reuses plan skeletons
    #: across bands/tiles, so hits dominate misses here.
    host_counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    cholesky_max_err: Optional[float] = None
    failures: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workloads": self.workloads,
            "n_gpus": self.n_gpus,
            "points": [p.as_dict() for p in self.points],
            "identity": [c.as_dict() for c in self.identity],
            "graph_stats": self.graph_stats,
            "diagnostics": self.diagnostics,
            "host_counters": self.host_counters,
            "cholesky_max_err": self.cholesky_max_err,
            "failures": self.failures,
        }


def _tracker_state(api) -> List[Tuple[int, Tuple]]:
    """Canonical final tracker/sharer state of every live virtual buffer."""
    state = []
    for vb_id, vb in sorted(api._live_buffers.items()):
        segs = tuple(
            (s.start, s.end, s.owner, tuple(sorted(s.sharers)))
            for s in vb.tracker.segments()
        )
        state.append((vb_id, segs))
    return state


def _alternative_order(graph) -> List[int]:
    """A valid topological order maximally unlike creation order.

    Kahn's algorithm popping the *highest* creation index first — the
    adversarial counterpart of the scheduler's lowest-first priority.
    """
    indeg = {t.index: 0 for t in graph.tasks}
    succs: Dict[int, List[int]] = {t.index: [] for t in graph.tasks}
    for e in graph.edges:
        indeg[e.dst] += 1
        succs[e.src].append(e.dst)
    ready = sorted(i for i, d in indeg.items() if d == 0)
    order: List[int] = []
    while ready:
        i = ready.pop()  # highest index first
        order.append(i)
        for j in succs[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
                ready.sort()
    return order


def _identity_sweep(study: TaskGraphStudy, name: str, windows=(1, 4)) -> None:
    """Bitwise identity of graph / serialized / permuted execution."""
    from repro.compiler.pipeline import compile_app
    from repro.runtime.api import MultiGpuApi
    from repro.workloads import EXTRA_WORKLOADS, functional_config

    size, _ = TASKGRAPH_WORKLOADS[name]
    wl = EXTRA_WORKLOADS[name](functional_config(name, size=size))
    inputs = wl.make_inputs(seed=7)
    app = compile_app(wl.build_kernels())

    # Outputs are compared against one global reference (the very first
    # serialized run): every configuration must agree bitwise on *results*.
    # Tracker/sharer state is compared only within a configuration (its own
    # serialized run as baseline): shared_copies legitimately changes which
    # devices hold read replicas, so final sharer sets differ *across*
    # configs while remaining a pure function of the config itself.
    reference: Optional[Dict[str, np.ndarray]] = None
    for schedule in list(SCHEDULES) + ["auto"]:
        for shared in (False, True):
            for window in windows:
                cfg = RuntimeConfig(
                    n_gpus=4,
                    schedule=schedule,
                    shared_copies=shared,
                    pipeline_window=window,
                )
                modes = [("serialized", None), ("graph", None)]
                if schedule == "auto" and shared and window == max(windows):
                    api = MultiGpuApi(app, cfg)
                    wl.run(api, inputs, mode="graph")
                    modes.append(("order", _alternative_order(wl.last_graph)))
                cfg_state = None
                for mode, order in modes:
                    api = MultiGpuApi(app, cfg)
                    got = wl.run(
                        api,
                        inputs,
                        mode="graph" if mode == "order" else mode,
                        order=order,
                    )
                    state = _tracker_state(api)
                    if reference is None:
                        reference = got
                    if cfg_state is None:
                        cfg_state = state  # serialized run of this config
                        identical = all(
                            np.array_equal(reference[k], got[k]) for k in reference
                        )
                    else:
                        identical = (
                            all(
                                np.array_equal(reference[k], got[k])
                                for k in reference
                            )
                            and state == cfg_state
                        )
                    study.identity.append(
                        IdentityCell(name, schedule, shared, window, mode, identical)
                    )
                    if not identical:
                        study.failures.append(
                            f"identity: {name} {mode} differs from serialized "
                            f"baseline at schedule={schedule!r} shared={shared} "
                            f"window={window}"
                        )
                    if mode == "graph":
                        # Waves/ready-peak only mean something in graph mode;
                        # replayed orders would report them as zero.
                        study.graph_stats[name] = wl.last_graph.summary()
    study.diagnostics[name] = sorted({d.code for d in wl.last_graph.report.diagnostics})


def _overlap_study(study: TaskGraphStudy, name: str) -> None:
    """Timed 16-GPU graph-vs-serialized comparison plus accounting checks."""
    from repro.compiler.pipeline import compile_app
    from repro.harness.calibration import K80_NODE_SPEC
    from repro.runtime.api import MultiGpuApi
    from repro.sim.engine import SimMachine
    from repro.workloads import EXTRA_WORKLOADS
    from repro.workloads.common import ProblemConfig

    _, size = TASKGRAPH_WORKLOADS[name]
    iterations = 4 if name == "imgpipe" else 1
    cfg = ProblemConfig(name, "bench", size, iterations)
    rt = RuntimeConfig(n_gpus=study.n_gpus, schedule="overlap+p2p", pipeline_window=4)

    per_mode: Dict[str, TaskGraphPoint] = {}
    for mode in ("serialized", "graph"):
        wl = EXTRA_WORKLOADS[name](cfg)
        app = compile_app(wl.build_kernels())
        machine = SimMachine(K80_NODE_SPEC.with_gpus(study.n_gpus))
        api = MultiGpuApi(app, rt, machine=machine, functional=False)
        wl.run(api, None, mode=mode)
        elapsed = api.elapsed()
        exposure = machine.trace.transfer_exposure()
        busy = machine.trace.busy_time(Category.TRANSFERS)
        point = TaskGraphPoint(
            workload=name,
            mode=mode,
            n_gpus=study.n_gpus,
            tasks=wl.last_graph.stats.tasks,
            edges=wl.last_graph.stats.edges,
            time=elapsed,
            exposed_transfer_time=exposure["exposed"],
            hidden_transfer_time=exposure["hidden"],
            transfer_busy_time=busy,
        )
        per_mode[mode] = point
        study.points.append(point)
        if mode == "graph":
            from repro.runtime.api import host_planner_counters

            study.host_counters[name] = host_planner_counters(api.stats)
        if abs(exposure["hidden"] + exposure["exposed"] - busy) > 1e-9 * max(busy, 1.0):
            study.failures.append(
                f"accounting: {name}/{mode} hidden+exposed != transfer busy time "
                f"({exposure['hidden']:.9f}+{exposure['exposed']:.9f} vs {busy:.9f})"
            )

    # Both modes issue the identical set of kernels and transfers (identity
    # sweep above proves the outputs bitwise equal); the graph merely
    # removes the inter-launch barriers.  Transfer *busy* time is therefore
    # conserved across modes, and all the win shows up on the critical
    # path: the same transfer seconds pack into fewer wall-clock seconds.
    ser, gra = per_mode["serialized"], per_mode["graph"]
    win = ser.time / max(gra.time, 1e-18)
    if win < MIN_MAKESPAN_WIN:
        study.failures.append(
            f"overlap: {name} graph makespan {gra.time:.6f}s vs serialized "
            f"{ser.time:.6f}s — {win:.2f}x win, need >= {MIN_MAKESPAN_WIN}x"
        )
    rel = abs(ser.transfer_busy_time - gra.transfer_busy_time)
    if rel > 1e-9 * max(ser.transfer_busy_time, 1.0):
        study.failures.append(
            f"conservation: {name} transfer busy time differs across modes "
            f"({ser.transfer_busy_time:.9f}s serialized vs "
            f"{gra.transfer_busy_time:.9f}s graph) — the graph must issue "
            "the same transfers, only earlier"
        )


def _evidence_checks(study: TaskGraphStudy, name: str) -> None:
    """Workload-specific claims: numerics and the degradation story."""
    from repro.compiler.pipeline import compile_app
    from repro.runtime.api import MultiGpuApi
    from repro.workloads import EXTRA_WORKLOADS, functional_config

    wl = EXTRA_WORKLOADS[name](functional_config(name))
    inputs = wl.make_inputs(seed=13)
    app = compile_app(wl.build_kernels())
    api = MultiGpuApi(app, RuntimeConfig(n_gpus=4))
    got = wl.run(api, inputs)
    graph = wl.last_graph

    if name == "cholesky":
        ref = wl.reference(inputs)["factor"]
        err = float(np.max(np.abs(got["factor"] - ref)))
        study.cholesky_max_err = err
        if not np.allclose(got["factor"], ref, atol=2e-4, rtol=2e-4):
            study.failures.append(
                f"numerics: cholesky deviates from numpy.linalg.cholesky "
                f"(max abs err {err:.3e})"
            )
        if api.stats.fallback_launches != 0:
            study.failures.append(
                "degrade: cholesky is fully affine but took "
                f"{api.stats.fallback_launches} fallback launches"
            )
        if graph.stats.nonaffine_tasks != 0 or graph.stats.whole_buffer_syncs != 0:
            study.failures.append("degrade: cholesky graph reports opaque tasks")
    else:
        codes = {d.code for d in graph.report.diagnostics}
        if "RP701" not in codes or "RP702" not in codes:
            study.failures.append(
                f"degrade: imgpipe opaque stats task emitted {sorted(codes)}, "
                "expected RP701 and RP702"
            )
        if graph.stats.nonaffine_tasks < 1 or graph.stats.whole_buffer_syncs < 1:
            study.failures.append(
                "degrade: imgpipe graph did not whole-buffer-sync its opaque task"
            )
        if api.stats.fallback_launches < 1:
            study.failures.append(
                "degrade: imgpipe stats kernel did not take the runtime's "
                "single-GPU fallback path"
            )


def taskgraph_study(
    workloads: Optional[List[str]] = None, n_gpus: int = 16
) -> TaskGraphStudy:
    """Run the full task-graph benchmark; see the module docstring."""
    names = list(workloads or TASKGRAPH_WORKLOADS)
    unknown = [n for n in names if n not in TASKGRAPH_WORKLOADS]
    if unknown:
        raise ValueError(f"unknown taskgraph workload(s): {', '.join(unknown)}")
    study = TaskGraphStudy(workloads=names, n_gpus=n_gpus)
    for name in names:
        _identity_sweep(study, name)
        _overlap_study(study, name)
        _evidence_checks(study, name)
    return study
