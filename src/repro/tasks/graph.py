"""The task-graph runtime: dependence derivation and dependency-driven runs.

``TaskGraph`` collects tasks (:mod:`repro.tasks.spec`), lowers their
declared accesses to byte intervals (:mod:`repro.tasks.footprints`), and
derives the dependence edges between tasks the same way the launch
scheduler derives cross-launch edges — by interval intersection:

* **RAW** — an earlier task writes bytes a later task reads,
* **WAR** — an earlier task reads bytes a later task overwrites,
* **WAW** — two tasks write overlapping bytes (program order is kept).

Explicit ``deps=[...]`` entries add control edges on top.  Cycles (which
are constructible through :class:`~repro.tasks.spec.TaskSpace` forward
references) and dangling references raise
:class:`~repro.errors.TaskGraphError`.

Execution turns the graph into a stream of launches against an existing
runtime API.  ``mode="graph"`` executes the graph as *dependence waves*:
every currently-ready task (in deterministic creation-index order) runs as
one wave with *no* inter-task barriers — each body's launches flow through
the normal ``api.launch`` path into the scheduler's pipelined executor, so
a dependence-free ready set fuses into one pipeline window.  Because any
read/write overlap between two tasks induces an edge, the members of a
wave are provably pairwise footprint-disjoint; the wave id is stamped onto
their launches so the scheduler's dataflow log
(:class:`~repro.sched.executor.DataflowLog`) can let them overlap instead
of conservatively serializing disjoint tiles of one shared buffer.  The
machine keeps cross-wave ordering through the interval-precise dataflow
events, so any topological order is bitwise-identical to
``mode="serialized"``, which runs one task at a time behind a device
barrier — the baseline the ``repro bench taskgraph`` self-checks compare
against.

Non-affine tasks (opaque footprints, ``RP701``) degrade to whole-buffer
synchronization: the graph drains the pipeline and synchronizes the device
before and after the task's body, mirroring the runtime's whole-buffer
fallback discipline for unpartitionable kernels.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import make_diagnostic
from repro.analysis.passes import LintReport
from repro.errors import TaskGraphError
from repro.poly.intervals import Interval, intersect_intervals, total_bytes
from repro.tasks.footprints import Footprint, lower_access
from repro.tasks.spec import _GRAPH_STACK, Task, TaskHandle

__all__ = ["TaskEdge", "TaskGraph", "TaskGraphStats"]

_PASS_NAME = "taskgraph"

#: Process-unique dependence-wave ids: two graphs run against one API must
#: never reuse a wave id, or the dataflow log would skip true dependencies.
_WAVE_IDS = itertools.count(1)


@dataclass(frozen=True)
class TaskEdge:
    """One dependence edge between two tasks."""

    src: int  # creation index of the earlier task
    dst: int  # creation index of the later task
    kinds: FrozenSet[str]  # subset of {"RAW", "WAR", "WAW", "control"}
    #: Bytes of footprint overlap behind the edge (0 for pure control edges).
    overlap_bytes: int = 0
    #: True when the overlap involves a non-affine (whole-buffer) footprint.
    opaque: bool = False


@dataclass
class TaskGraphStats:
    """Structural and execution counters of one graph."""

    tasks: int = 0
    edges: int = 0
    edge_kinds: Dict[str, int] = field(default_factory=dict)
    nonaffine_tasks: int = 0
    #: Barrier synchronizations inserted for non-affine tasks (graph mode).
    whole_buffer_syncs: int = 0
    executed: int = 0
    #: Largest simultaneously-ready set seen while scheduling (graph mode).
    ready_peak: int = 0
    #: Dependence waves executed (graph mode; 0 in serialized/order runs).
    waves: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for the bench payload."""
        return {
            "tasks": self.tasks,
            "edges": self.edges,
            "edge_kinds": dict(sorted(self.edge_kinds.items())),
            "nonaffine_tasks": self.nonaffine_tasks,
            "whole_buffer_syncs": self.whole_buffer_syncs,
            "executed": self.executed,
            "ready_peak": self.ready_peak,
            "waves": self.waves,
        }


class TaskGraph:
    """A data-driven task graph executed against a runtime API."""

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self.tasks: List[Task] = []
        self.edges: List[TaskEdge] = []
        #: RP701/RP702 findings, rendered with the standard lint renderers.
        self.report = LintReport()
        self.stats = TaskGraphStats()
        self._finalized = False

    # -- construction --------------------------------------------------------

    def __enter__(self) -> "TaskGraph":
        _GRAPH_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _GRAPH_STACK.pop()

    def add_task(
        self,
        fn: Callable[..., Any],
        *,
        handle: Optional[TaskHandle] = None,
        deps: Sequence[Any] = (),
        reads: Sequence[Any] = (),
        writes: Sequence[Any] = (),
        placement: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Task:
        """Create a task node; see :func:`repro.tasks.spec.task`."""
        label = name or (handle.label if handle is not None else getattr(fn, "__name__", "task"))
        t = Task(
            index=len(self.tasks),
            name=label,
            fn=fn,
            reads=[lower_access(s) for s in reads],
            writes=[lower_access(s) for s in writes],
            deps=tuple(deps),
            placement=placement,
        )
        if handle is not None:
            if handle.task is not None:
                raise TaskGraphError(
                    f"task-space slot {handle.label} is already bound to "
                    f"task #{handle.task.index}"
                )
            handle.task = t
        self.tasks.append(t)
        if t.name not in self.report.kernels:
            self.report.kernels.append(t.name)
        for fp in t.reads + t.writes:
            if not fp.affine:
                self.report.diagnostics.append(
                    make_diagnostic(
                        "RP701",
                        f"task {t.name!r}: {fp.note}; degraded to a "
                        f"whole-buffer footprint of {total_bytes(fp.intervals)} "
                        "bytes with barrier synchronization",
                        kernel=t.name,
                        witness={
                            "task": t.index,
                            "nbytes": total_bytes(fp.intervals),
                            "note": fp.note,
                        },
                        pass_name=_PASS_NAME,
                    )
                )
        self._finalized = False
        return t

    def task(self, handle: Optional[TaskHandle] = None, **kwargs) -> Callable[[Callable], Task]:
        """Decorator form of :meth:`add_task` bound to this graph."""

        def decorate(fn: Callable) -> Task:
            return self.add_task(fn, handle=handle, **kwargs)

        return decorate

    # -- dependence derivation ----------------------------------------------

    def _resolve_dep(self, t: Task, dep: Any) -> Task:
        if isinstance(dep, Task):
            return dep
        if isinstance(dep, TaskHandle):
            if dep.task is None:
                raise TaskGraphError(
                    f"task {t.name!r} depends on unbound slot {dep.label}"
                )
            return dep.task
        if isinstance(dep, str):
            for cand in self.tasks:
                if cand.name == dep:
                    return cand
            raise TaskGraphError(f"task {t.name!r} depends on unknown task {dep!r}")
        raise TaskGraphError(
            f"task {t.name!r}: dependency {dep!r} is not a Task, TaskHandle or name"
        )

    @staticmethod
    def _overlap(a: Sequence[Footprint], b: Sequence[Footprint]) -> Tuple[int, bool]:
        """(overlapping bytes, any side non-affine) between two footprint sets."""
        nbytes = 0
        opaque = False
        by_key: Dict[Any, List[Tuple[List[Interval], bool]]] = {}
        for fp in a:
            by_key.setdefault(fp.key, []).append((fp.intervals, fp.affine))
        for fp in b:
            for intervals, affine in by_key.get(fp.key, ()):
                common = intersect_intervals(intervals, fp.intervals)
                if common:
                    nbytes += total_bytes(common)
                    opaque = opaque or not affine or not fp.affine
        return nbytes, opaque

    def finalize(self) -> "TaskGraph":
        """Derive all edges and check the graph is executable (acyclic).

        Idempotent; called automatically by :meth:`run`.  Raises
        :class:`~repro.errors.TaskGraphError` for dangling references and
        dependency cycles.
        """
        if self._finalized:
            return self
        self.edges = []
        self.report.diagnostics = [
            d for d in self.report.diagnostics if d.code != "RP702"
        ]
        pairs: Dict[Tuple[int, int], Dict[str, Any]] = {}

        def note(src: Task, dst: Task, kind: str, nbytes: int, opaque: bool) -> None:
            rec = pairs.setdefault(
                (src.index, dst.index), {"kinds": set(), "bytes": 0, "opaque": False}
            )
            rec["kinds"].add(kind)
            rec["bytes"] += nbytes
            rec["opaque"] = rec["opaque"] or opaque

        for t in self.tasks:
            for dep in t.deps:
                src = self._resolve_dep(t, dep)
                if src.index == t.index:
                    raise TaskGraphError(f"task {t.name!r} depends on itself")
                note(src, t, "control", 0, False)
            for s in self.tasks[: t.index]:
                raw, raw_op = self._overlap(s.writes, t.reads)
                war, war_op = self._overlap(s.reads, t.writes)
                waw, waw_op = self._overlap(s.writes, t.writes)
                if raw:
                    note(s, t, "RAW", raw, raw_op)
                if war:
                    note(s, t, "WAR", war, war_op)
                if waw:
                    note(s, t, "WAW", waw, waw_op)

        for (src, dst), rec in sorted(pairs.items()):
            edge = TaskEdge(
                src, dst, frozenset(rec["kinds"]), rec["bytes"], rec["opaque"]
            )
            self.edges.append(edge)
            if edge.opaque:
                self.report.diagnostics.append(
                    make_diagnostic(
                        "RP702",
                        f"edge {self.tasks[src].name!r} -> "
                        f"{self.tasks[dst].name!r} "
                        f"({'/'.join(sorted(edge.kinds))}) is ordered through "
                        "a conservative whole-buffer footprint",
                        kernel=self.tasks[dst].name,
                        witness={"src": src, "dst": dst, "bytes": edge.overlap_bytes},
                        pass_name=_PASS_NAME,
                    )
                )

        self._check_acyclic()
        self.stats.tasks = len(self.tasks)
        self.stats.edges = len(self.edges)
        kinds: Dict[str, int] = {}
        for e in self.edges:
            for k in e.kinds:
                kinds[k] = kinds.get(k, 0) + 1
        self.stats.edge_kinds = kinds
        self.stats.nonaffine_tasks = sum(1 for t in self.tasks if not t.affine)
        self._finalized = True
        return self

    def _check_acyclic(self) -> None:
        indegree = [0] * len(self.tasks)
        succs: List[List[int]] = [[] for _ in self.tasks]
        for e in self.edges:
            indegree[e.dst] += 1
            succs[e.src].append(e.dst)
        ready = [i for i, d in enumerate(indegree) if d == 0]
        seen = 0
        while ready:
            seen += 1
            for nxt in succs[ready.pop()]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if seen != len(self.tasks):
            stuck = sorted(i for i, d in enumerate(indegree) if d > 0)
            names = ", ".join(self.tasks[i].name for i in stuck[:4])
            raise TaskGraphError(
                f"dependency cycle through {len(stuck)} task(s): {names}"
                + ("..." if len(stuck) > 4 else "")
            )

    # -- execution -----------------------------------------------------------

    def _run_task(self, api, t: Task) -> None:
        # The placement hint applies in *every* mode (it is task metadata,
        # not a scheduling decision), so serialized/graph/order runs build
        # identical partitions and stay bitwise-comparable.
        api._placement_offset = t.placement
        try:
            if not t.affine:
                # Whole-buffer degrade: drain pipelined launches and barrier
                # the machine around the opaque body (the fallback-path
                # discipline).
                api.cudaDeviceSynchronize()
                t.fn(api)
                api.cudaDeviceSynchronize()
                self.stats.whole_buffer_syncs += 1
            else:
                t.fn(api)
        finally:
            api._placement_offset = None
        self.stats.executed += 1

    def run(
        self,
        api,
        mode: str = "graph",
        order: Optional[Sequence[Any]] = None,
    ) -> "TaskGraph":
        """Execute every task against ``api``.

        ``mode="graph"`` streams dependence waves (every currently-ready
        task, creation-index order) with no inter-task barriers;
        ``mode="serialized"`` runs one task at a time behind a device
        barrier (the identity baseline).  ``order`` (graph mode only)
        overrides the default wave schedule with an explicit execution
        order, which must be topological — the property test's entry point.
        """
        if mode not in ("graph", "serialized"):
            raise TaskGraphError(f"unknown execution mode {mode!r}")
        self.finalize()
        if order is not None:
            if mode != "graph":
                raise TaskGraphError("an explicit order requires mode='graph'")
            return self._run_in_order(api, order)
        if mode == "serialized":
            for t in self.tasks:
                self._run_task(api, t)
                api.cudaDeviceSynchronize()
            return self
        indegree = [0] * len(self.tasks)
        succs: List[List[int]] = [[] for _ in self.tasks]
        for e in self.edges:
            indegree[e.dst] += 1
            succs[e.src].append(e.dst)
        ready = sorted(i for i, d in enumerate(indegree) if d == 0)
        try:
            while ready:
                self.stats.ready_peak = max(self.stats.ready_peak, len(ready))
                self.stats.waves += 1
                # Every member of a wave was ready simultaneously, so any
                # pair is either footprint-disjoint or RAR-only — there is
                # no edge between them by construction. The shared wave id
                # tells the dataflow log their launches may overlap.
                wave = next(_WAVE_IDS)
                unlocked: List[int] = []
                for i in ready:
                    t = self.tasks[i]
                    # Opaque tasks barrier anyway; keep them wave-less so
                    # their whole-buffer events are never skipped.
                    api._dataflow_wave = wave if t.affine else None
                    self._run_task(api, t)
                    for nxt in succs[i]:
                        indegree[nxt] -= 1
                        if indegree[nxt] == 0:
                            unlocked.append(nxt)
                ready = sorted(unlocked)
        finally:
            api._dataflow_wave = None
        return self

    def _run_in_order(self, api, order: Sequence[Any]) -> "TaskGraph":
        indices = []
        for item in order:
            if isinstance(item, Task):
                indices.append(item.index)
            elif isinstance(item, int):
                indices.append(item)
            else:
                raise TaskGraphError(f"order entry {item!r} is not a Task or index")
        if sorted(indices) != list(range(len(self.tasks))):
            raise TaskGraphError(
                "execution order must be a permutation of all tasks"
            )
        position = {idx: pos for pos, idx in enumerate(indices)}
        for e in self.edges:
            if position[e.src] > position[e.dst]:
                raise TaskGraphError(
                    f"execution order violates {'/'.join(sorted(e.kinds))} edge "
                    f"{self.tasks[e.src].name!r} -> {self.tasks[e.dst].name!r}"
                )
        for idx in indices:
            self._run_task(api, self.tasks[idx])
        return self

    # -- introspection -------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Structure + diagnostics digest for reports and the bench JSON."""
        self.finalize()
        return {
            "name": self.name,
            **self.stats.as_dict(),
            "diagnostic_codes": sorted({d.code for d in self.report.diagnostics}),
        }
