"""``repro.tasks`` — the dynamic task-graph frontend.

A Parla-style dependency-driven layer over the multi-GPU runtime: tasks
declare byte-interval read/write footprints (lowered through the same
interval algebra the launch scheduler uses, :mod:`repro.poly.intervals`),
the graph derives RAW/WAR/WAW edges by intersection, and execution streams
ready tasks' launches through the ordinary ``api.launch`` path so the
pipelined executor overlaps independent tasks.  Accesses the affine model
cannot analyze degrade to whole-buffer synchronization with ``RP701``/
``RP702`` diagnostics.  See docs/taskgraph.md for the full API walkthrough
and ``repro bench taskgraph`` for the self-checking benchmark.
"""

from repro.tasks.footprints import (
    AccessSpec,
    Footprint,
    Opaque,
    Region2D,
    Span,
    Whole,
    lower_access,
    opaque,
    region2d,
    span,
    whole,
)
from repro.tasks.graph import TaskEdge, TaskGraph, TaskGraphStats
from repro.tasks.spec import Task, TaskHandle, TaskSpace, task

__all__ = [
    "AccessSpec",
    "Footprint",
    "Opaque",
    "Region2D",
    "Span",
    "Whole",
    "lower_access",
    "opaque",
    "region2d",
    "span",
    "whole",
    "Task",
    "TaskHandle",
    "TaskSpace",
    "task",
    "TaskEdge",
    "TaskGraph",
    "TaskGraphStats",
]
