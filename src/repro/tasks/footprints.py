"""Task-level access footprints lowered to byte-interval lists.

A task declares what it reads and writes as *access specs*; the graph layer
lowers every spec to a flat list of half-open byte intervals over the
underlying buffer (the same algebra the launch scheduler uses —
:mod:`repro.poly.intervals`) and derives RAW/WAR/WAW edges by interval
intersection.  Three spec forms lower exactly:

* :func:`span` — an explicit ``[lo, hi)`` byte range,
* :func:`region2d` — a rectangular tile of a row-major 2-D array, lowered
  to one interval per row (the task-level analogue of the per-row
  enumerators of paper §6.1),
* :func:`whole` / a bare buffer object — the full allocation.

Anything else is *opaque*: :func:`opaque` marks an access the affine model
cannot analyze (data-dependent gathers, host-computed index sets).  Opaque
specs degrade to a whole-buffer footprint, carry an ``RP701`` diagnostic
(:mod:`repro.analysis.codes`), and make the owning task non-affine — the
graph serializes it against every overlapping task and brackets it with
barrier synchronization, mirroring the runtime's whole-buffer fallback for
unpartitionable kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import TaskGraphError
from repro.poly.intervals import Interval, normalize_intervals

__all__ = [
    "AccessSpec",
    "Span",
    "Region2D",
    "Whole",
    "Opaque",
    "span",
    "region2d",
    "whole",
    "opaque",
    "Footprint",
    "buffer_key",
    "buffer_nbytes",
    "lower_access",
]


def buffer_key(buf: Any) -> Any:
    """Stable identity of a buffer object across specs.

    Multi-GPU virtual buffers carry a ``vb_id``; any other allocation
    (e.g. the single-device reference API's pointers) is keyed by object
    identity, which is stable for the lifetime of the graph.
    """
    vb_id = getattr(buf, "vb_id", None)
    return ("vb", vb_id) if vb_id is not None else ("obj", id(buf))


def buffer_nbytes(buf: Any) -> Optional[int]:
    """Allocation size in bytes when the buffer object knows it."""
    nbytes = getattr(buf, "nbytes", None)
    return int(nbytes) if isinstance(nbytes, int) else None


@dataclass(frozen=True)
class AccessSpec:
    """Base class of the declarative access forms (see module docstring)."""

    buffer: Any


@dataclass(frozen=True)
class Span(AccessSpec):
    """An explicit half-open byte range ``[lo, hi)`` of a buffer."""

    lo: int = 0
    hi: int = 0


@dataclass(frozen=True)
class Region2D(AccessSpec):
    """A rectangular tile of a row-major 2-D array.

    ``shape`` is the full array shape ``(rows, cols)`` in elements; ``rows``
    and ``cols`` are half-open element ranges of the tile.  Out-of-range
    tile bounds are clipped to the array — halo reads at the image border
    simply shrink.
    """

    shape: Tuple[int, int] = (0, 0)
    rows: Tuple[int, int] = (0, 0)
    cols: Tuple[int, int] = (0, 0)
    itemsize: int = 4


@dataclass(frozen=True)
class Whole(AccessSpec):
    """The entire allocation, as an exact (affine) footprint."""

    nbytes: Optional[int] = None


@dataclass(frozen=True)
class Opaque(AccessSpec):
    """An access the affine interval model cannot analyze.

    Lowered to a whole-buffer footprint with an ``RP701`` diagnostic; the
    owning task degrades to whole-buffer barrier synchronization.
    """

    nbytes: Optional[int] = None
    note: str = "unanalyzable access"


def span(buf: Any, lo: int, hi: int) -> Span:
    """Declare an exact byte range ``[lo, hi)`` of ``buf``."""
    return Span(buf, int(lo), int(hi))


def region2d(
    buf: Any,
    shape: Tuple[int, int],
    rows: Tuple[int, int],
    cols: Tuple[int, int],
    itemsize: int = 4,
) -> Region2D:
    """Declare a rectangular element tile of a row-major 2-D array."""
    return Region2D(buf, tuple(shape), tuple(rows), tuple(cols), int(itemsize))


def whole(buf: Any, nbytes: Optional[int] = None) -> Whole:
    """Declare the entire allocation (exact, affine)."""
    return Whole(buf, nbytes)


def opaque(buf: Any, nbytes: Optional[int] = None, note: str = "unanalyzable access") -> Opaque:
    """Declare an access the affine model cannot analyze (degrades, RP701)."""
    return Opaque(buf, nbytes, note)


@dataclass
class Footprint:
    """One lowered access: a buffer plus its flat byte intervals."""

    key: Any
    buffer: Any
    intervals: List[Interval] = field(default_factory=list)
    #: False when the spec was opaque and the intervals over-approximate.
    affine: bool = True
    #: Human-readable reason for a non-affine footprint.
    note: str = ""


def _whole_intervals(buf: Any, nbytes: Optional[int], what: str) -> List[Interval]:
    size = nbytes if nbytes is not None else buffer_nbytes(buf)
    if size is None:
        raise TaskGraphError(
            f"{what} needs the buffer size: the object carries no .nbytes; "
            "pass nbytes= explicitly"
        )
    return [(0, int(size))]


def lower_access(spec: Any) -> Footprint:
    """Lower one access spec (or bare buffer) to a :class:`Footprint`."""
    if isinstance(spec, Span):
        if spec.hi <= spec.lo:
            raise TaskGraphError(f"empty span [{spec.lo}, {spec.hi}) declared")
        return Footprint(buffer_key(spec.buffer), spec.buffer, [(spec.lo, spec.hi)])
    if isinstance(spec, Region2D):
        n_rows, n_cols = spec.shape
        r0 = max(0, spec.rows[0])
        r1 = min(n_rows, spec.rows[1])
        c0 = max(0, spec.cols[0])
        c1 = min(n_cols, spec.cols[1])
        if r1 <= r0 or c1 <= c0:
            raise TaskGraphError(
                f"region rows={spec.rows} cols={spec.cols} is empty after "
                f"clipping to shape {spec.shape}"
            )
        row_base = spec.itemsize * n_cols
        intervals = normalize_intervals(
            (r * row_base + c0 * spec.itemsize, r * row_base + c1 * spec.itemsize)
            for r in range(r0, r1)
        )
        return Footprint(buffer_key(spec.buffer), spec.buffer, intervals)
    if isinstance(spec, Whole):
        return Footprint(
            buffer_key(spec.buffer),
            spec.buffer,
            _whole_intervals(spec.buffer, spec.nbytes, "whole-buffer access"),
        )
    if isinstance(spec, Opaque):
        return Footprint(
            buffer_key(spec.buffer),
            spec.buffer,
            _whole_intervals(spec.buffer, spec.nbytes, "opaque access"),
            affine=False,
            note=spec.note,
        )
    if isinstance(spec, AccessSpec):  # pragma: no cover - future spec forms
        raise TaskGraphError(f"unknown access spec {type(spec).__name__}")
    # A bare buffer object: whole-buffer when the size is known, opaque
    # otherwise (an object we cannot size is by definition unanalyzable).
    size = buffer_nbytes(spec)
    if size is not None:
        return Footprint(buffer_key(spec), spec, [(0, size)])
    raise TaskGraphError(
        f"cannot lower access spec {spec!r}: not an AccessSpec and the "
        "object carries no .nbytes; wrap it in span()/region2d()/whole() "
        "or mark it opaque(buf, nbytes=...)"
    )
