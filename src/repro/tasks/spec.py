"""Task declarations: the ``@task`` decorator and ``TaskSpace`` handles.

A *task* is a host-side callable (``fn(api)``) plus declared access
footprints and explicit control dependencies.  Tasks are created through
the :func:`task` decorator against an ambient :class:`~repro.tasks.graph.
TaskGraph` (entered as a context manager) or through
``TaskGraph.add_task`` directly.  Task bodies submit kernels through the
normal ``api.launch`` path; the graph layer decides *when* each body runs.

A :class:`TaskSpace` is a named, lazily-populated family of task slots
(``ts[k]``, ``ts[i, j]``).  Slots can be referenced in ``deps=[...]``
before they are bound — forward references are resolved when the graph is
finalized, which is also what makes dependency cycles constructible (and
detectable: :class:`~repro.errors.TaskGraphError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import TaskGraphError
from repro.tasks.footprints import Footprint

__all__ = ["Task", "TaskSpace", "TaskHandle", "task"]


@dataclass
class Task:
    """One node of a task graph (created via the ``@task`` decorator)."""

    index: int  # creation order; the deterministic scheduling priority
    name: str
    fn: Callable[..., Any]
    reads: List[Footprint] = field(default_factory=list)
    writes: List[Footprint] = field(default_factory=list)
    deps: Tuple[Any, ...] = ()
    #: Advisory device-affinity hint recorded on the task (the runtime's
    #: partitioner owns actual placement; see docs/taskgraph.md).
    placement: Optional[int] = None

    @property
    def affine(self) -> bool:
        """True when every declared footprint lowered exactly."""
        return all(f.affine for f in self.reads + self.writes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(#{self.index} {self.name!r})"


class TaskHandle:
    """A (possibly forward) reference to one slot of a :class:`TaskSpace`."""

    __slots__ = ("space", "key", "task")

    def __init__(self, space: "TaskSpace", key: Any) -> None:
        self.space = space
        self.key = key
        self.task: Optional[Task] = None

    @property
    def label(self) -> str:
        """The slot's display name, e.g. ``chol[2, 1]``."""
        key = self.key if isinstance(self.key, tuple) else (self.key,)
        return f"{self.space.name}[{', '.join(map(repr, key))}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "bound" if self.task is not None else "unbound"
        return f"TaskHandle({self.label}, {state})"


class TaskSpace:
    """A named family of task slots indexed by arbitrary hashable keys."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._handles: Dict[Any, TaskHandle] = {}

    def __getitem__(self, key: Any) -> TaskHandle:
        if key not in self._handles:
            self._handles[key] = TaskHandle(self, key)
        return self._handles[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._handles and self._handles[key].task is not None

    def handles(self) -> List[TaskHandle]:
        """Every slot referenced so far, bound or not."""
        return list(self._handles.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = sum(1 for h in self._handles.values() if h.task is not None)
        return f"TaskSpace({self.name!r}, {bound}/{len(self._handles)} bound)"


#: Ambient graph stack maintained by ``TaskGraph.__enter__``/``__exit__``.
_GRAPH_STACK: List[Any] = []


def _current_graph():
    if not _GRAPH_STACK:
        raise TaskGraphError(
            "@task used outside a TaskGraph context; enter one with "
            "`with TaskGraph() as g:` or use g.task(...) directly"
        )
    return _GRAPH_STACK[-1]


def task(
    handle: Optional[TaskHandle] = None,
    *,
    deps: Sequence[Any] = (),
    reads: Sequence[Any] = (),
    writes: Sequence[Any] = (),
    placement: Optional[int] = None,
    name: Optional[str] = None,
) -> Callable[[Callable], Task]:
    """Declare a task in the ambient :class:`~repro.tasks.graph.TaskGraph`.

    ``handle`` optionally binds the task to a :class:`TaskSpace` slot so
    other tasks can depend on it by reference (including forward
    references).  ``reads``/``writes`` are access specs
    (:mod:`repro.tasks.footprints`); ``deps`` adds explicit control edges
    (tasks, handles, or task names).  The decorated function is replaced by
    the created :class:`Task`.
    """
    graph = _current_graph()

    def decorate(fn: Callable) -> Task:
        return graph.add_task(
            fn,
            handle=handle,
            deps=deps,
            reads=reads,
            writes=writes,
            placement=placement,
            name=name,
        )

    return decorate
