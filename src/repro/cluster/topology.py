"""Cluster specification: N nodes behind a network fabric.

A :class:`ClusterSpec` composes ``n_nodes`` identical single-node
:class:`~repro.sim.topology.MachineSpec` machines with a network tier:
per-node NICs (bandwidth, lane count) behind a shared switch fabric with a
per-message latency. Devices keep *global* ids ``0 .. total_gpus-1``; the
spec owns the global-device <-> (node, local GPU) mapping.

A cross-node copy takes the route

    device -> host memory -> NIC -> fabric -> NIC -> host memory -> device

so it occupies the source and destination PCIe lanes, both nodes' host
staging buses, one NIC lane on each side, and the shared fabric — the
congestible resources :class:`~repro.cluster.engine.ClusterSimMachine`
schedules. Host memory (``HOST`` endpoints) lives on the *head node*
(node 0): the orchestrating process and its staging buffers are there, so
H2D/D2H traffic to devices of other nodes crosses the network too.

The default network constants model the FDR-InfiniBand generation that
matched the paper's K80 testbed era: ~56 Gb/s per NIC (~6.8 GB/s sustained),
a few microseconds of wire latency plus host-side rendezvous, and a switch
that sustains a handful of concurrent streams at full rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import CalibrationError
from repro.sim.topology import MachineSpec, Route

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """Calibration constants for a simulated multi-node cluster."""

    #: Number of simulated nodes (gang members).
    n_nodes: int = 2
    #: The per-node machine (``node.n_gpus`` GPUs each).
    node: MachineSpec = MachineSpec()
    #: Sustained per-NIC bandwidth (B/s). FDR InfiniBand: 56 Gb/s line rate,
    #: ~6.8 GB/s sustained payload.
    nic_bw: float = 6.8e9
    #: NIC lanes (rails) per node; a copy occupies one lane end to end.
    nic_lanes: int = 1
    #: Aggregate switch-fabric bandwidth shared by *all* concurrent
    #: cross-node traffic — the congestible resource that throttles
    #: all-to-all redistributions.
    fabric_bw: float = 2.5e10
    #: Per-message network latency (wire + rendezvous handshake), paid once
    #: per cross-node copy on top of the host-staging setup.
    net_latency: float = 30e-6
    #: Node whose host memory holds the application's staging buffers
    #: (``HOST`` transfer endpoints resolve to this node).
    head_node: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise CalibrationError("cluster needs at least one node")
        if self.nic_lanes < 1:
            raise CalibrationError("cluster needs at least one NIC lane per node")
        for name in ("nic_bw", "fabric_bw"):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if self.net_latency < 0:
            raise CalibrationError("net_latency must be non-negative")
        if not (0 <= self.head_node < self.n_nodes):
            raise CalibrationError(
                f"head_node {self.head_node} out of range (n_nodes={self.n_nodes})"
            )

    # -- shape ----------------------------------------------------------------

    @property
    def gpus_per_node(self) -> int:
        return self.node.n_gpus

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.node.n_gpus

    def with_shape(self, n_nodes: int, gpus_per_node: int) -> "ClusterSpec":
        """The same cluster reshaped to ``n_nodes`` x ``gpus_per_node``."""
        return replace(self, n_nodes=n_nodes, node=self.node.with_gpus(gpus_per_node))

    # -- global-device <-> (node, local GPU) mapping --------------------------

    def node_of(self, dev: int) -> int:
        """The node owning global device ``dev``."""
        if not (0 <= dev < self.total_gpus):
            raise CalibrationError(
                f"device id {dev} out of range (total_gpus={self.total_gpus})"
            )
        return dev // self.node.n_gpus

    def local_of(self, dev: int) -> int:
        """``dev``'s local index within its node."""
        self.node_of(dev)  # range check
        return dev % self.node.n_gpus

    def global_device(self, node: int, local: int) -> int:
        """Global device id of ``(node, local GPU)``."""
        if not (0 <= node < self.n_nodes):
            raise CalibrationError(f"node id {node} out of range (n_nodes={self.n_nodes})")
        if not (0 <= local < self.node.n_gpus):
            raise CalibrationError(
                f"local GPU {local} out of range (gpus_per_node={self.node.n_gpus})"
            )
        return node * self.node.n_gpus + local

    def devices_of(self, node: int) -> Tuple[int, ...]:
        """Global device ids of one node, in order."""
        if not (0 <= node < self.n_nodes):
            raise CalibrationError(f"node id {node} out of range (n_nodes={self.n_nodes})")
        base = node * self.node.n_gpus
        return tuple(range(base, base + self.node.n_gpus))

    def endpoint_node(self, endpoint: int) -> int:
        """Node of a transfer endpoint (``HOST`` resolves to the head node)."""
        if endpoint < 0:
            return self.head_node
        return self.node_of(endpoint)

    def same_node(self, a: int, b: int) -> bool:
        return self.endpoint_node(a) == self.endpoint_node(b)

    # -- routing --------------------------------------------------------------

    def route(self, src: int, dst: int, *, p2p: Optional[bool] = None) -> Route:
        """The route one copy takes, network hop included.

        Same-node copies delegate to the node spec (host / p2p / staged);
        cross-node copies take the ``network`` route: staged through both
        hosts (``bus_factor`` per side) and across the NIC/fabric tier once.
        ``p2p`` only affects same-node device pairs — there is no peer DMA
        across the network.
        """
        if self.same_node(src, dst):
            return self.node.route(src, dst, p2p=p2p)
        return Route(
            "network",
            lane_factor=1.0,
            bus_factor=self.node.staging_factor,
            extra_latency=self.node.staging_latency + self.net_latency,
            net_factor=1.0,
        )

    def network_transfer_time(self, nbytes: int) -> float:
        """End-to-end duration of one cross-node copy (uncongested).

        The pipeline is store-and-forward through host memory on both
        sides; the slowest link (PCIe lane vs NIC) bounds the streaming
        rate, and the copy pays PCIe setup, staging setup, and the network
        round latency once.
        """
        bw = min(self.node.pcie_bw, self.nic_bw)
        return (
            self.node.pcie_latency
            + self.node.staging_latency
            + self.net_latency
            + float(nbytes) / bw
        )
