"""Multi-node cluster simulation: hierarchical partitioning + gang execution.

Composes the single-node machinery into an N-node cluster behind a network
fabric: :class:`~repro.cluster.topology.ClusterSpec` (shape, NIC/fabric
tier, global-device <-> (node, GPU) mapping),
:class:`~repro.cluster.engine.ClusterSimMachine` (per-node buses, NIC lanes
and a shared fabric as congestible resources),
:func:`~repro.cluster.partition.hierarchical_partitions` (node intervals
first, then per-GPU ranges), and
:func:`~repro.cluster.gang.build_gang_plan` (per-node DAGs + cross-node
halo transfers).
"""

from repro.cluster.engine import ClusterSimMachine
from repro.cluster.gang import (
    GangPlan,
    HaloTierSummary,
    NodePlan,
    build_gang_plan,
    halo_tier_summary,
)
from repro.cluster.partition import (
    balanced_intervals,
    hierarchical_partitions,
    node_intervals,
)
from repro.cluster.topology import ClusterSpec

__all__ = [
    "ClusterSpec",
    "ClusterSimMachine",
    "GangPlan",
    "HaloTierSummary",
    "NodePlan",
    "build_gang_plan",
    "halo_tier_summary",
    "balanced_intervals",
    "hierarchical_partitions",
    "node_intervals",
]
