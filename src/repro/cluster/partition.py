"""Hierarchical two-level grid partitioning for cluster runs.

The single-node pipeline splits the thread grid into ``n_gpus`` balanced
contiguous block ranges along the strategy's axis. On a cluster the same
axis is split *twice*: first into ``n_nodes`` node intervals, then each
node interval into ``gpus_per_node`` per-GPU ranges. Both levels use the
same balanced ``divmod`` rule the flat split uses, so

* partitions stay contiguous along the axis — neighbouring GPUs of one
  node share intra-node halos, and only the two GPUs at each node-interval
  seam exchange data across the network;
* a 1-node cluster degenerates to *exactly* the flat split (the node level
  is the identity interval), which is what makes the cluster path bitwise
  equivalent to the single-node scheduler.

The result is ordered by global device id — index ``i`` of the returned
list is global GPU ``i`` = (node ``i // G``, local ``i % G``) — matching
what :func:`repro.sched.graph.build_launch_plan` expects.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.topology import ClusterSpec
from repro.compiler.strategy import Partition, PartitionStrategy
from repro.cuda.dim3 import Dim3

__all__ = ["balanced_intervals", "node_intervals", "hierarchical_partitions"]


def balanced_intervals(start: int, stop: int, k: int) -> List[Tuple[int, int]]:
    """Split ``[start, stop)`` into ``k`` balanced contiguous intervals.

    The same ``divmod`` rule as the flat split: the first ``extent % k``
    intervals get one extra element; trailing intervals may be empty when
    the range is shorter than ``k``.
    """
    base, extra = divmod(stop - start, k)
    out: List[Tuple[int, int]] = []
    lo = start
    for i in range(k):
        hi = lo + base + (1 if i < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def node_intervals(
    strategy: PartitionStrategy, grid: Dim3, cluster: ClusterSpec
) -> List[Tuple[int, int]]:
    """The top-level per-node block intervals along the split axis."""
    return balanced_intervals(0, grid.axis(strategy.axis), cluster.n_nodes)


def hierarchical_partitions(
    strategy: PartitionStrategy, grid: Dim3, cluster: ClusterSpec
) -> List[Partition]:
    """Two-level split of ``grid`` over the cluster, in global-device order.

    Equals ``strategy.partitions(grid, G)`` exactly when ``n_nodes == 1``.
    """
    axis = strategy.axis
    full = Partition.whole(grid)
    out: List[Partition] = []
    for node_lo, node_hi in node_intervals(strategy, grid, cluster):
        for r in balanced_intervals(node_lo, node_hi, cluster.gpus_per_node):
            out.append(
                Partition(
                    z=r if axis == "z" else full.z,
                    y=r if axis == "y" else full.y,
                    x=r if axis == "x" else full.x,
                )
            )
    return out
