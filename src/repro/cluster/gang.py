"""Gang view of a launch plan: one DAG per node plus cross-node halos.

The launch scheduler builds a single :class:`~repro.sched.graph.LaunchPlan`
over global device ids. On a cluster that plan is *executed* unchanged (the
executor and the cluster machine handle routing), but scheduling decisions
and reporting want the gang structure: which tasks are node-local, and
which transfers cross the network. :func:`build_gang_plan` projects one
launch plan onto the cluster:

* each node gets a :class:`NodePlan` — its kernel tasks and the transfers
  that stay inside the node;
* every cross-node transfer becomes a *halo*: it appears in the source
  node's ``halo_out`` and the destination node's ``halo_in`` (the same
  :class:`~repro.sched.graph.TransferTask` object — the gang plan is a
  view, not a copy).

``HOST`` endpoints live on the cluster's head node, so H2D traffic into a
remote node's GPUs is a halo too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.topology import ClusterSpec
from repro.errors import SimulationError
from repro.sched.graph import KernelTask, LaunchPlan, TransferTask, merge_event_ranges

__all__ = [
    "NodePlan",
    "GangPlan",
    "HaloTierSummary",
    "build_gang_plan",
    "halo_tier_summary",
    "transfer_priority_tiers",
]


@dataclass
class NodePlan:
    """One node's share of a launch plan."""

    node: int
    kernels: List[KernelTask] = field(default_factory=list)
    #: Transfers whose endpoints both live on this node.
    local_transfers: List[TransferTask] = field(default_factory=list)
    #: Cross-node transfers arriving at this node's GPUs.
    halo_in: List[TransferTask] = field(default_factory=list)
    #: Cross-node transfers leaving this node (sourced from its GPUs, or
    #: from host memory when this is the head node).
    halo_out: List[TransferTask] = field(default_factory=list)


@dataclass
class GangPlan:
    """A launch plan projected onto the cluster's gang structure."""

    cluster: ClusterSpec
    plan: LaunchPlan
    nodes: List[NodePlan]

    @property
    def halo_transfers(self) -> List[TransferTask]:
        """All cross-node transfers, by destination node then plan order."""
        return [t for np in self.nodes for t in np.halo_in]

    @property
    def halo_bytes(self) -> int:
        return sum(t.nbytes for t in self.halo_transfers)

    def halo_intervals(self) -> Dict[int, List[Tuple[int, int]]]:
        """Merged byte intervals per virtual buffer that cross the network.

        The interval-keyed view of the halo exchange: for each buffer, the
        coalesced ``[lo, hi)`` runs whose copies leave their node. With
        shared-copy tracking these shrink launch over launch — a segment a
        remote sharer already holds produces no halo transfer at all.
        """
        by_vb: Dict[int, List[Tuple[int, int]]] = {}
        for t in self.halo_transfers:
            by_vb.setdefault(t.vb.vb_id, []).append((t.start, t.end))
        return {
            vb_id: merge_event_ranges(sorted(ranges))
            for vb_id, ranges in by_vb.items()
        }

    def validate(self) -> None:
        """Structural invariants (tests): the projection is a partition.

        Every plan transfer lands in exactly one of {one node's locals} or
        {one halo_out and one halo_in on different nodes}; every kernel
        dependency resolves inside its own node plan.
        """
        c = self.cluster
        n_local = sum(len(np.local_transfers) for np in self.nodes)
        n_in = sum(len(np.halo_in) for np in self.nodes)
        n_out = sum(len(np.halo_out) for np in self.nodes)
        if n_in != n_out:
            raise SimulationError(f"halo mismatch: {n_out} out vs {n_in} in")
        if n_local + n_in != len(self.plan.transfers):
            raise SimulationError(
                f"gang projection lost transfers: {n_local}+{n_in} of "
                f"{len(self.plan.transfers)}"
            )
        if sum(len(np.kernels) for np in self.nodes) != len(self.plan.kernels):
            raise SimulationError("gang projection lost kernel tasks")
        for np_ in self.nodes:
            resident = {t.node for t in np_.local_transfers}
            resident.update(t.node for t in np_.halo_in)
            for t in np_.local_transfers:
                if not c.same_node(t.owner, t.gpu):
                    raise SimulationError(
                        f"cross-node transfer {t.node} classified as local"
                    )
                if c.endpoint_node(t.gpu) != np_.node:
                    raise SimulationError(f"transfer {t.node} on the wrong node plan")
            for t in np_.halo_in:
                if c.same_node(t.owner, t.gpu):
                    raise SimulationError(f"local transfer {t.node} classified as halo")
            for k in np_.kernels:
                if c.node_of(k.gpu) != np_.node:
                    raise SimulationError(f"kernel {k.node} on the wrong node plan")
                for dep in k.transfer_deps:
                    if dep not in resident:
                        raise SimulationError(
                            f"kernel {k.node} depends on transfer {dep} "
                            f"outside node {np_.node}"
                        )


@dataclass(frozen=True)
class HaloTierSummary:
    """Per-tier byte accounting of one launch plan's coherence traffic.

    Splits every would-be transfer byte of the plan the way the dataflow
    analyzer classifies it (see ``docs/static-analysis.md``): bytes the
    plan actually ships, bytes shared-copy tracking proved already valid
    on the destination (*avoided*, RP601), and bounding-range slack the
    irredundant path trimmed (*trimmed*, RP602) — each divided into the
    intra-node and inter-node (fabric) tier.
    """

    intra_bytes: int = 0
    inter_bytes: int = 0
    avoided_intra: int = 0
    avoided_inter: int = 0
    trimmed_intra: int = 0
    trimmed_inter: int = 0

    @property
    def transferred(self) -> int:
        return self.intra_bytes + self.inter_bytes


def halo_tier_summary(plan: LaunchPlan, cluster: ClusterSpec) -> HaloTierSummary:
    """Classify one plan's coherence bytes by transfer tier.

    Transferred bytes come from the plan's materialized transfer tasks
    (endpoint nodes decide the tier); avoided/trimmed bytes come from the
    read-sync counters, whose ``*_inter`` halves were tiered at planning
    time against the would-be source.
    """
    intra = inter = 0
    for t in plan.transfers:
        if cluster.same_node(t.owner, t.gpu):
            intra += t.nbytes
        else:
            inter += t.nbytes
    avoided = avoided_inter = trimmed = trimmed_inter = 0
    for syncs in plan.reads:
        for rs in syncs:
            avoided += rs.avoided
            avoided_inter += rs.avoided_inter
            trimmed += rs.overapprox
            trimmed_inter += rs.overapprox_inter
    return HaloTierSummary(
        intra_bytes=intra,
        inter_bytes=inter,
        avoided_intra=avoided - avoided_inter,
        avoided_inter=avoided_inter,
        trimmed_intra=trimmed - trimmed_inter,
        trimmed_inter=trimmed_inter,
    )


def transfer_priority_tiers(plan: LaunchPlan, cluster: ClusterSpec) -> Dict[int, int]:
    """Issue priority per transfer node id: lower tiers go to the lanes first.

    The pipelined executor drains a fused window's copies halo-first:

    * tier 0 — inter-node halo copies (they occupy the scarce NIC/fabric
      tier, and a seam partition of the *next* launch blocks on them);
    * tier 1 — node-seam feeders: intra-node copies whose byte interval
      overlaps this launch's :meth:`GangPlan.halo_intervals` (the same
      buffer regions that cross the network — e.g. the intra-node leg of a
      seam exchange);
    * tier 2 — interior copies, which only ever feed their own node's
      partitions and can backfill any remaining lane gaps.

    Within a tier the executor preserves plan order, so a flat machine (or
    a halo-free launch) degenerates to the legacy issue order exactly.
    """
    gang = build_gang_plan(plan, cluster)
    halo_nodes = {t.node for t in gang.halo_transfers}
    intervals = gang.halo_intervals()
    tiers: Dict[int, int] = {}
    for t in plan.transfers:
        if t.node in halo_nodes:
            tiers[t.node] = 0
        elif any(
            lo < t.end and hi > t.start
            for lo, hi in intervals.get(t.vb.vb_id, ())
        ):
            tiers[t.node] = 1
        else:
            tiers[t.node] = 2
    return tiers


def build_gang_plan(plan: LaunchPlan, cluster: ClusterSpec) -> GangPlan:
    """Project ``plan`` onto the cluster: per-node DAGs + halo exchange."""
    nodes = [NodePlan(n) for n in range(cluster.n_nodes)]
    for t in plan.transfers:
        dst = cluster.endpoint_node(t.gpu)
        src = cluster.endpoint_node(t.owner)
        if src == dst:
            nodes[dst].local_transfers.append(t)
        else:
            nodes[src].halo_out.append(t)
            nodes[dst].halo_in.append(t)
    for k in plan.kernels:
        nodes[cluster.node_of(k.gpu)].kernels.append(k)
    return GangPlan(cluster, plan, nodes)
