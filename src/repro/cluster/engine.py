"""The cluster machine: N simulated nodes behind a shared network fabric.

:class:`ClusterSimMachine` extends :class:`~repro.sim.engine.SimMachine`
with the cluster's resource set:

* devices keep global ids — compute queues and PCIe lanes are inherited
  unchanged from the flat base machine;
* each node gets its *own* host staging bus (staged intra-node copies of
  different nodes no longer contend);
* each node gets ``nic_lanes`` NIC lanes, and all cross-node traffic shares
  one *fabric* lane — the congestible network resource.

A cross-node copy (device -> host -> NIC -> fabric -> NIC -> host ->
device) occupies both endpoint PCIe lanes, both nodes' staging buses, one
NIC lane per side, and the fabric; its trace interval is recorded on the
``net`` resource, which is what
:meth:`~repro.sim.trace.Trace.transfer_exposure_by_tier` uses to split
exposed transfer time into intra-node vs inter-node buckets.

With ``n_nodes=1`` every copy takes the inherited single-node path against
the same resource set, so a 1-node cluster is *identical* — functionally
and in simulated time — to the plain :class:`SimMachine` the single-node
pipeline uses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.topology import ClusterSpec
from repro.constants import HOST
from repro.sim.engine import SimMachine, _Lane
from repro.sim.trace import Trace

__all__ = ["ClusterSimMachine"]


class ClusterSimMachine(SimMachine):
    """Simulated clock and resources for one cluster run."""

    def __init__(self, cluster: ClusterSpec, *, trace: Optional[Trace] = None) -> None:
        super().__init__(cluster.node.with_gpus(cluster.total_gpus), trace=trace)
        self.cluster = cluster
        #: Per-node host staging buses; node 0 aliases the inherited bus so
        #: the 1-node cluster runs byte-identically to the base machine.
        self._node_buses: List[_Lane] = [self._bus] + [
            _Lane() for _ in range(cluster.n_nodes - 1)
        ]
        self._nics: List[List[_Lane]] = [
            [_Lane() for _ in range(cluster.nic_lanes)] for _ in range(cluster.n_nodes)
        ]
        self._fabric = _Lane()

    def _shared_lanes(self) -> List[_Lane]:
        lanes: List[_Lane] = list(self._node_buses)
        for node_nics in self._nics:
            lanes.extend(node_nics)
        lanes.append(self._fabric)
        return lanes

    def node_resource_avail(self, node: int) -> float:
        """Drain time of one node's own resources (a gang barrier's floor).

        Covers the node's device compute queues, their PCIe lanes, the
        node's staging bus and its NIC lanes — everything the node owns
        exclusively. Deliberately excludes the shared fabric: a gang
        barrier on one node must not wait out other nodes' in-flight
        fabric traffic; copies that *do* touch this node are accounted via
        their completion events by the caller.
        """
        c = self.cluster
        t = self.host_time
        for dev in c.devices_of(node):
            t = max(t, self._dev_avail[dev], self._lanes[dev].avail)
        t = max(t, self._node_buses[node].avail)
        for lane in self._nics[node]:
            t = max(t, lane.avail)
        return t

    def _pick_nic(self, node: int) -> _Lane:
        """The least-loaded NIC lane of one node (deterministic tie-break)."""
        return min(self._nics[node], key=lambda lane: lane.avail)

    def _copy_resources(
        self, src: int, dst: int, nbytes: int, p2p: Optional[bool]
    ) -> Tuple[float, List[Tuple[_Lane, float]], str]:
        c = self.cluster
        src_node = c.endpoint_node(src)
        dst_node = c.endpoint_node(dst)
        if src_node == dst_node:
            # Intra-node: the inherited route against this node's bus.
            return self._local_copy_resources(
                src, dst, nbytes, p2p, self._node_buses[src_node]
            )

        route = c.route(src, dst)
        spec = self.spec
        duration = c.network_transfer_time(nbytes)
        lanes: List[Tuple[_Lane, float]] = []
        lane_time = spec.pcie_latency + nbytes * route.lane_factor / spec.pcie_bw
        if src != HOST:
            lanes.append((self._lanes[src], lane_time))
        if dst != HOST:
            lanes.append((self._lanes[dst], lane_time))
        # Staging through host memory on both sides (DMA in + NIC drain).
        bus_time = nbytes * route.bus_factor / spec.host_bus_bw
        lanes.append((self._node_buses[src_node], bus_time))
        lanes.append((self._node_buses[dst_node], bus_time))
        # The network tier: one NIC lane per side plus the shared fabric.
        nic_time = nbytes * route.net_factor / c.nic_bw
        lanes.append((self._pick_nic(src_node), nic_time))
        lanes.append((self._pick_nic(dst_node), nic_time))
        lanes.append((self._fabric, nbytes * route.net_factor / c.fabric_bw))
        return duration, lanes, "net"
