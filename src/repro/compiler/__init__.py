"""``repro.compiler`` — the paper's compilation toolchain.

Pipeline stages (paper section in parentheses):

1. :mod:`~repro.compiler.blockoff` — recognize the non-affine
   ``blockIdx.w * blockDim.w`` product and encapsulate it in the synthetic
   ``blockOff.w`` dimension (§4.1).
2. :mod:`~repro.compiler.access_analysis` — build polyhedral read/write maps
   ``Z^6 -> Z^d`` for every kernel array argument (§4).
3. :mod:`~repro.compiler.legality` — prove write maps exact and injective,
   or reject the kernel for partitioning (§4).
4. :mod:`~repro.compiler.strategy` — pick the grid axis to partition along.
5. :mod:`~repro.compiler.kernel_partition` — clone kernels with the
   partition argument and ``blockIdx``/``gridDim`` substitution (§7).
6. :mod:`~repro.compiler.enumerators` — generate per-(kernel, argument,
   mode) access-range enumerator functions from the maps (§6).
7. :mod:`~repro.compiler.model` — the on-disk application model (§4).
8. :mod:`~repro.compiler.rewriter` — the regex source-to-source host
   rewriter (§5).
9. :mod:`~repro.compiler.pipeline` — the two-pass gpucc-style driver (§3).
"""

from repro.compiler.access_analysis import analyze_kernel, KernelAccessInfo, ArrayAccess
from repro.compiler.legality import check_partitionable
from repro.compiler.strategy import choose_strategy, PartitionStrategy
from repro.compiler.kernel_partition import partition_kernel
from repro.compiler.enumerators import build_enumerator, Enumerator, EnumeratorTable
from repro.compiler.model import KernelModel, AppModel
from repro.compiler.pipeline import compile_app, CompiledApp

__all__ = [
    "analyze_kernel",
    "KernelAccessInfo",
    "ArrayAccess",
    "check_partitionable",
    "choose_strategy",
    "PartitionStrategy",
    "partition_kernel",
    "build_enumerator",
    "Enumerator",
    "EnumeratorTable",
    "KernelModel",
    "AppModel",
    "compile_app",
    "CompiledApp",
]
