"""Programmer-supplied write-pattern annotations (paper §11).

The paper's primary limitation is the need for an accurate model of each
kernel's writes; §11 names "annotation of the source code with write
patterns by the programmer" as one remedy. This module implements it: for a
kernel whose write subscripts the analysis cannot model (data-dependent or
non-affine), the programmer supplies the write map in isl notation, e.g.::

    compile_app([kernel], write_annotations={
        "scatter": {"dst": "[n, bd_x] -> { [bo_z, bo_y, bo_x, bi_z, bi_y,"
                           " bi_x] -> [a0] : bo_x <= a0 < bo_x + bd_x"
                           " and a0 < n }"},
    })

The annotated map replaces the analyzed one; it is trusted (marked exact,
legality checks are skipped for it — the programmer asserts accuracy and
injectivity, exactly the contract §11 proposes), and the usual enumerators,
strategy selection and runtime coherence are generated from it.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.compiler.access_analysis import GRID_PARAMS, IN_DIMS6, ArrayAccess, KernelAccessInfo
from repro.errors import AnalysisError
from repro.poly.map_ import BasicMap, Map
from repro.poly.parser import parse_map
from repro.poly.space import Space

__all__ = ["parse_write_annotation", "apply_annotations"]

#: kernel name -> { array name -> isl map text }
AnnotationDict = Mapping[str, Mapping[str, str]]


def parse_write_annotation(info: KernelAccessInfo, array: str, text: str) -> Map:
    """Parse and validate one annotation against the kernel's signature."""
    kernel = info.kernel
    param = kernel.param(array)
    raw = parse_map(text)
    if raw.space.n_in != 6:
        raise AnalysisError(
            f"annotation for {array!r}: expected 6 input dimensions "
            f"(blockOff.zyx, blockIdx.zyx), got {raw.space.n_in}"
        )
    if raw.space.n_out != param.ndim:
        raise AnalysisError(
            f"annotation for {array!r}: array has {param.ndim} dimensions, "
            f"map has {raw.space.n_out}"
        )
    scalar_names = {p.name for p in kernel.scalar_params}
    allowed = set(GRID_PARAMS) | scalar_names
    unknown = set(raw.space.params) - allowed
    if unknown:
        raise AnalysisError(
            f"annotation for {array!r} references unknown parameters {sorted(unknown)}"
        )
    # Canonicalize: rename dims positionally, align parameter lists.
    rename = dict(zip(raw.space.in_dims, IN_DIMS6))
    rename.update({d: f"a{j}" for j, d in enumerate(raw.space.out_dims)})
    canonical_params = GRID_PARAMS + tuple(
        p.name for p in kernel.scalar_params if not p.dtype.is_float
    )
    disjuncts = []
    space6 = Space.map_space(IN_DIMS6, tuple(f"a{j}" for j in range(param.ndim)), canonical_params)
    from repro.poly.basic_set import _rebind_constraint

    for d in raw.disjuncts:
        renamed = d.rename(rename)
        disjuncts.append(
            BasicMap(
                space6,
                [
                    _rebind_constraint(c, renamed.space.to_set(), space6.to_set())
                    for c in renamed.constraints
                ],
            )
        )
    return Map(space6, disjuncts)


def apply_annotations(info: KernelAccessInfo, annotations: Mapping[str, str]) -> None:
    """Install annotated write maps on an analysis result (in place)."""
    for array, text in annotations.items():
        kernel_param = info.kernel.param(array)  # raises for unknown arrays
        access_map = parse_write_annotation(info, array, text)
        info.writes[array] = ArrayAccess(
            array=array,
            mode="write",
            access_map=access_map,
            exact=True,  # asserted by the programmer (§11 contract)
            may=False,
            gid_map=None,
            coverage=None,
            annotated=True,
        )
    # If every previously unmodellable write is now annotated, the kernel
    # becomes partitionable.
    remaining = info.nonaffine_write_arrays - set(annotations)
    if not remaining:
        info.partitionable = True
        info.reject_reason = None
