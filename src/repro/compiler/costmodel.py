"""Analytical kernel cost model for the timing simulation.

Derives per-thread work from the kernel IR itself: arithmetic operations are
weighted by rough instruction costs, loads/stores contribute global-memory
bytes, and loop bodies multiply by trip counts evaluated from the launch's
scalar arguments. Kernel time on one device then follows the roofline
``max(flops / peak_flops, bytes / peak_bandwidth)``.

This replaces measuring real kernels on the paper's K80s; only relative
magnitudes matter for reproducing the speedup *shapes*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.cuda.dim3 import Dim3
from repro.cuda.exec.interpreter import eval_scalar_expr
from repro.cuda.ir.exprs import BinOp, Call, Expr, Load, Select, UnOp
from repro.cuda.ir.kernel import ArrayParam, Kernel
from repro.cuda.ir.stmts import Assign, Body, For, If, Let, Store
from repro.errors import AnalysisError
from repro.sim.topology import MachineSpec

__all__ = ["ThreadCost", "KernelCostModel"]

_FLOP_WEIGHT = {
    "add": 1.0,
    "sub": 1.0,
    "mul": 1.0,
    "min": 1.0,
    "max": 1.0,
    "div": 4.0,
    "fdiv": 4.0,
    "mod": 4.0,
}
_CALL_WEIGHT = {
    "sqrt": 8.0,
    "rsqrt": 8.0,
    "abs": 1.0,
    "exp": 12.0,
    "log": 12.0,
    "pow": 16.0,
    "floor": 1.0,
}


@dataclass(frozen=True)
class ThreadCost:
    """Per-thread work: weighted float ops and global-memory bytes."""

    flops: float
    bytes: float

    def __add__(self, other: "ThreadCost") -> "ThreadCost":
        return ThreadCost(self.flops + other.flops, self.bytes + other.bytes)

    def scaled(self, k: float) -> "ThreadCost":
        return ThreadCost(self.flops * k, self.bytes * k)


_ZERO = ThreadCost(0.0, 0.0)


class KernelCostModel:
    """Callable matching :data:`repro.cuda.api.KernelCostFn`."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    # -- IR walking --------------------------------------------------------------

    def _expr_cost(self, expr: Expr, elem_sizes: Mapping[str, int]) -> ThreadCost:
        total = _ZERO
        if isinstance(expr, BinOp):
            total = total + self._expr_cost(expr.lhs, elem_sizes)
            total = total + self._expr_cost(expr.rhs, elem_sizes)
            weight = _FLOP_WEIGHT.get(expr.op, 0.5)
            total = total + ThreadCost(weight, 0.0)
        elif isinstance(expr, UnOp):
            total = total + self._expr_cost(expr.operand, elem_sizes) + ThreadCost(0.5, 0.0)
        elif isinstance(expr, Call):
            for a in expr.args:
                total = total + self._expr_cost(a, elem_sizes)
            total = total + ThreadCost(_CALL_WEIGHT.get(expr.fn, 4.0), 0.0)
        elif isinstance(expr, Select):
            for sub in (expr.cond, expr.on_true, expr.on_false):
                total = total + self._expr_cost(sub, elem_sizes)
            total = total + ThreadCost(1.0, 0.0)
        elif isinstance(expr, Load):
            for i in expr.indices:
                total = total + self._expr_cost(i, elem_sizes)
            total = total + ThreadCost(0.0, float(elem_sizes[expr.array]))
        return total

    def _body_cost(
        self, body: Body, scalars: Mapping[str, object], elem_sizes: Mapping[str, int]
    ) -> ThreadCost:
        total = _ZERO
        for stmt in body:
            if isinstance(stmt, (Let, Assign)):
                total = total + self._expr_cost(stmt.value, elem_sizes)
            elif isinstance(stmt, Store):
                for i in stmt.indices:
                    total = total + self._expr_cost(i, elem_sizes)
                total = total + self._expr_cost(stmt.value, elem_sizes)
                total = total + ThreadCost(0.0, float(elem_sizes[stmt.array]))
            elif isinstance(stmt, If):
                cond = self._expr_cost(stmt.cond, elem_sizes)
                then = self._body_cost(stmt.then, scalars, elem_sizes)
                orelse = self._body_cost(stmt.orelse, scalars, elem_sizes)
                # Divergent warps execute both paths in the worst case; the
                # common whole-grid guard makes `max` the better estimate.
                branch = then if then.flops + then.bytes >= orelse.flops + orelse.bytes else orelse
                total = total + cond + branch
            elif isinstance(stmt, For):
                trips = self._trip_count(stmt, scalars)
                inner = self._body_cost(stmt.body, scalars, elem_sizes)
                # Loads repeated across loop iterations hit caches / shared
                # memory in the tiled kernels the paper evaluates; discount
                # their global traffic accordingly.
                inner = ThreadCost(
                    inner.flops, inner.bytes / max(1.0, self.spec.cache_reuse_factor)
                )
                total = total + inner.scaled(trips)
            else:
                raise AnalysisError(f"unknown statement {stmt!r} in cost model")
        return total

    def _trip_count(self, stmt: For, scalars: Mapping[str, object]) -> float:
        try:
            lo = float(eval_scalar_expr(stmt.lo, scalars))
            hi = float(eval_scalar_expr(stmt.hi, scalars))
            return max(0.0, hi - lo)
        except Exception:
            # Data-dependent trip count: assume one iteration (documented
            # limitation; none of the evaluated workloads hit this).
            return 1.0

    # -- public API ----------------------------------------------------------------

    def thread_cost(self, kernel: Kernel, scalars: Mapping[str, object]) -> ThreadCost:
        elem_sizes: Dict[str, int] = {p.name: p.dtype.size for p in kernel.array_params}
        return self._body_cost(kernel.body, scalars, elem_sizes)

    def __call__(
        self,
        kernel: Kernel,
        n_blocks: int,
        block: Dim3,
        scalars: Mapping[str, object],
    ) -> float:
        """Modelled on-device duration of one launch."""
        per_thread = self.thread_cost(kernel, scalars)
        n_threads = float(n_blocks) * float(block.volume)
        flop_time = per_thread.flops * n_threads / self.spec.flops_per_gpu
        mem_time = per_thread.bytes * n_threads / self.spec.mem_bw_per_gpu
        return max(flop_time, mem_time)
