"""The source-to-source host-code rewriter (paper §5).

The paper transforms CUDA host code with plain-text regular-expression
substitutions (a lua preprocessor): "This allows for a simple implementation
at the cost of not supporting all possible CUDA applications." This module
reproduces that component for CUDA-C-like host source. Three substitution
types are made, exactly as in §5:

1. information inserted at the very top of the source file (runtime header,
   application-model registration);
2. CUDA API calls replaced by multi-GPU primitives with identical
   prototypes (§8.4);
3. kernel launches ``k<<<grid, block>>>(args)`` expanded to the runtime's
   partitioned-launch primitive, which performs the four tasks of Figure 4.

Python host programs don't need this pass (they receive the runtime API
object directly); the rewriter exists because the paper's pipeline has it,
and it is exercised by the compile-time benchmark and the rewriter demo.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import RewriteError

__all__ = ["RewriteResult", "rewrite_source", "API_REPLACEMENTS"]

#: CUDA Runtime API entry points and their multi-GPU replacements (§8.4).
API_REPLACEMENTS = {
    "cudaMalloc": "mgpuMalloc",
    "cudaFree": "mgpuFree",
    "cudaMemcpyAsync": "mgpuMemcpyAsync",
    "cudaMemcpy": "mgpuMemcpy",
    "cudaDeviceSynchronize": "mgpuDeviceSynchronize",
    "cudaGetDeviceCount": "mgpuGetDeviceCount",
}

_HEADER = (
    '#include "mgpu_runtime.h"\n'
    'MGPU_REGISTER_MODEL("{model}");\n'
)

_LAUNCH_RE = re.compile(
    r"(?P<name>[A-Za-z_]\w*)\s*<<<\s*(?P<grid>[^,>]+)\s*,\s*(?P<block>[^>]+?)\s*>>>"
    r"\s*\((?P<args>[^;]*)\)\s*;"
)


@dataclass
class RewriteResult:
    """Rewritten source plus per-substitution-type statistics."""

    source: str
    header_insertions: int = 0
    api_substitutions: Dict[str, int] = field(default_factory=dict)
    launch_substitutions: List[str] = field(default_factory=list)

    @property
    def total_substitutions(self) -> int:
        return (
            self.header_insertions
            + sum(self.api_substitutions.values())
            + len(self.launch_substitutions)
        )


def rewrite_source(
    source: str,
    *,
    model_path: str = "app_model.json",
    kernel_names: Optional[Sequence[str]] = None,
) -> RewriteResult:
    """Apply the three substitution classes to CUDA-like host source."""
    if "<<<" in source and ">>>" not in source:
        raise RewriteError("malformed kernel launch: '<<<' without matching '>>>'")

    result = RewriteResult(source="")
    out = source

    # Substitution type 3: kernel launches (done before renames so the
    # launch arguments keep their original spelling inside MGPU_ARGS).
    def replace_launch(m: re.Match) -> str:
        name = m.group("name")
        if kernel_names is not None and name not in kernel_names:
            raise RewriteError(
                f"launch of unknown kernel {name!r} (expected one of {sorted(kernel_names)})"
            )
        grid = m.group("grid").strip()
        block = m.group("block").strip()
        args = m.group("args").strip()
        result.launch_substitutions.append(name)
        return (
            f'mgpuLaunchKernel("{name}", {grid}, {block}, '
            f"MGPU_ARGS({args}));"
        )

    out = _LAUNCH_RE.sub(replace_launch, out)
    if "<<<" in out:
        raise RewriteError("unrewritten kernel launch remains (unsupported syntax)")

    # Substitution type 2: API renames.
    for cuda_name, mgpu_name in API_REPLACEMENTS.items():
        pattern = re.compile(rf"\b{re.escape(cuda_name)}\b")
        out, n = pattern.subn(mgpu_name, out)
        if n:
            result.api_substitutions[cuda_name] = n

    # Substitution type 1: top-of-file insertion.
    header = _HEADER.format(model=model_path)
    out = header + out
    result.header_insertions = 1

    result.source = out
    return result
