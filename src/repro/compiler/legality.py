"""Partitioning legality: write-map exactness and injectivity (paper §4).

"While read maps can always be over-approximated without compromising
correctness, write maps need to be accurate [...] Additionally, write maps
must be injective" — two distinct threads writing the same address is a
write-after-write hazard that multi-GPU execution cannot replicate, so such
kernels are rejected (they fall back to single-GPU execution).

Injectivity is proven polyhedrally: the relation "two *different* input
tuples produce the same output tuple" is built explicitly and shown empty.
Inputs are compared at global-thread granularity when every access fits the
``blockOff + threadIdx`` pattern (the ``gid_map`` from the analysis); for
kernels addressing blocks directly, a concrete-block-size check is provided
— the hybrid static/dynamic scheme the paper's Section 4 alludes to
("provided the constraint blockOff = blockId * blockDim is satisfied").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.compiler.access_analysis import (
    GID_DIMS,
    IN_DIMS6,
    ArrayAccess,
    KernelAccessInfo,
)
from repro.errors import InjectivityError, PartitioningError
from repro.poly.affine import Aff
from repro.poly.basic_set import BasicSet, _rebind_constraint
from repro.poly.constraint import Constraint
from repro.poly.map_ import BasicMap, Map
from repro.poly.space import Space

__all__ = [
    "is_map_injective",
    "check_write_access",
    "check_partitionable",
    "substitute_block_dims",
]


def involved_dims(access_map: Map, in_dims: Tuple[str, ...]) -> Tuple[str, ...]:
    """Input dimensions the map's *outputs* depend on (transitively).

    A dimension that only occurs in domain constraints (e.g. the synthetic
    ``g >= 0`` bounds) does not affect which cell is written: two threads
    differing only there hit the same cell, so such axes are excluded here
    and handled via the unit-extent launch requirement instead.
    """
    connected = set()
    for d in access_map.disjuncts:
        space = d.space
        out_set = set(space.out_dims)
        # Fixpoint: grow the set of names connected to an output through
        # shared constraints.
        reach = set(out_set)
        changed = True
        while changed:
            changed = False
            for c in d.constraints:
                names = {
                    name
                    for i, name in enumerate(space.all_names)
                    if c.vec[i + 1] != 0
                }
                if names & reach and not names <= reach:
                    reach |= names
                    changed = True
        connected |= reach & set(in_dims)
    return tuple(d for d in in_dims if d in connected)


def is_map_injective(access_map: Map, in_dims: Tuple[str, ...]) -> bool:
    """Polyhedral injectivity proof over the given input dimensions.

    Builds, for every pair of disjuncts and every strict-order case of every
    input dimension, the set of ``(in_a, in_b, out)`` with ``in_a != in_b``
    and both related to ``out``; the map is injective iff all are empty.
    A rationally non-empty but integer-empty case is conservatively treated
    as a collision (sound: we only ever *reject* more kernels).

    Distinctness is only tested along the dimensions listed in ``in_dims``;
    callers pass the dimensions the map involves and separately guarantee
    the remaining axes have unit extent at launch (see
    :func:`check_write_access`).
    """
    space = access_map.space
    out_dims = space.out_dims
    ren_a = {d: f"{d}__A" for d in in_dims}
    ren_b = {d: f"{d}__B" for d in in_dims}
    # Input dims not under test stay shared between both copies — i.e. they
    # are assumed equal, which the unit-extent launch requirement enforces.
    shared = tuple(d for d in space.in_dims if d not in in_dims)
    joint = Space.set_space(
        tuple(ren_a.values()) + tuple(ren_b.values()) + shared + out_dims, space.params
    )

    for p in access_map.disjuncts:
        for q in access_map.disjuncts:
            base: List[Constraint] = []
            pa = p.rename(ren_a)
            qb = q.rename(ren_b)
            base.extend(_rebind_constraint(c, pa.space.to_set(), joint) for c in pa.constraints)
            base.extend(_rebind_constraint(c, qb.space.to_set(), joint) for c in qb.constraints)
            for d in in_dims:
                a = Aff.var(joint, ren_a[d])
                b = Aff.var(joint, ren_b[d])
                for diff in (a - b - 1, b - a - 1):  # a > b, a < b
                    collision = BasicSet(joint, base + [Constraint.ineq(diff)])
                    if not collision.is_empty():
                        return False
    return True


def substitute_block_dims(access: ArrayAccess, block_dim: Tuple[int, int, int]) -> Map:
    """Specialize a Z^6 map to a concrete block size.

    Substitutes ``blockOff.w := blockDim.w * blockIdx.w`` (affine once the
    block dimension is a known integer) and fixes the ``bd_w`` parameters,
    yielding a map whose only inputs are the three block indices.
    """
    bz, by, bx = block_dim
    values = {"bd_z": bz, "bd_y": by, "bd_x": bx}
    out_disjuncts = []
    space3 = None
    for d in access.access_map.disjuncts:
        bs = d.bset
        for w, bd_val in (("z", bz), ("y", by), ("x", bx)):
            bi = Aff.var(bs.space, f"bi_{w}")
            bs = bs.substitute(f"bo_{w}", bi * bd_val)
        for name, v in values.items():
            if bs.space.has(name):
                bs = bs.fix(name, v)
        space3 = Space.map_space(
            ("bi_z", "bi_y", "bi_x"), d.space.out_dims, bs.space.params
        )
        out_disjuncts.append(
            BasicMap(
                space3,
                [_rebind_constraint(c, bs.space, space3) for c in bs.constraints],
                exact=bs.exact,
            )
        )
    assert space3 is not None
    return Map(space3, out_disjuncts)


_AXIS_OF = {
    "g_z": "z",
    "g_y": "y",
    "g_x": "x",
    "bi_z": "z",
    "bi_y": "y",
    "bi_x": "x",
    "bo_z": "z",
    "bo_y": "y",
    "bo_x": "x",
}


def check_write_access(
    access: ArrayAccess, *, block_dim: Optional[Tuple[int, int, int]] = None
) -> Tuple[frozenset, bool]:
    """Prove one write access legal.

    Returns ``(unit_axes, needs_runtime_coverage)``: the grid axes that must
    have unit extent at launch (axes the write map does not distinguish),
    and whether the launch must validate scan exactness with the concrete
    launch configuration (:mod:`repro.compiler.coverage`) — the case of
    flat 1-D subscripts whose Fourier-Motzkin projection could not be
    proven exact statically.

    Raises :class:`PartitioningError` on over-approximated maps with no
    runtime-validation path and :class:`InjectivityError` when two distinct
    threads can write the same cell. Injectivity is proven via the
    global-thread-id map when available, else via the concrete
    ``block_dim`` specialization.
    """
    if access.annotated:
        # Programmer-supplied write pattern (§11): accuracy and injectivity
        # are asserted by the annotation; no axes are constrained.
        return frozenset(), False
    needs_coverage = False
    if not access.exact:
        if access.coverage is None or access.gid_map is None:
            raise PartitioningError(
                f"write map of {access.array!r} is over-approximated; "
                "partitioning would be unsound",
                code="RP202",
            )
        needs_coverage = True
    if access.gid_map is not None:
        dims = involved_dims(access.gid_map, GID_DIMS)
        if not is_map_injective(access.gid_map, dims):
            raise InjectivityError(
                f"write map of {access.array!r} is not injective over threads"
            )
        return frozenset(_AXIS_OF[d] for d in GID_DIMS if d not in dims), needs_coverage
    if block_dim is None:
        raise InjectivityError(
            f"write map of {access.array!r} addresses blocks directly; "
            "injectivity needs a concrete block size (pass block_dim)",
            code="RP203",
        )
    specialized = substitute_block_dims(access, block_dim)
    block_dims_names = ("bi_z", "bi_y", "bi_x")
    dims = involved_dims(specialized, block_dims_names)
    if not is_map_injective(specialized, dims):
        raise InjectivityError(
            f"write map of {access.array!r} is not injective over blocks "
            f"for block size {block_dim}"
        )
    return frozenset(_AXIS_OF[d] for d in block_dims_names if d not in dims), needs_coverage


def check_partitionable(
    info: KernelAccessInfo, *, block_dim: Optional[Tuple[int, int, int]] = None
) -> Tuple[frozenset, bool]:
    """Prove a kernel partitionable.

    Returns ``(unit_axes, needs_runtime_coverage)``; raises
    :class:`PartitioningError` otherwise (the paper's fallback is single-GPU
    execution for such kernels).
    """
    if not info.partitionable:
        raise PartitioningError(
            f"kernel {info.kernel.name!r}: {info.reject_reason or 'not partitionable'}",
            code="RP202",
        )
    unit_axes: frozenset = frozenset()
    needs_coverage = False
    for access in info.writes.values():
        axes, cov = check_write_access(access, block_dim=block_dim)
        unit_axes = unit_axes | axes
        needs_coverage = needs_coverage or cov
    return unit_axes, needs_coverage
