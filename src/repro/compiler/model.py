"""The on-disk application model (paper §4, last paragraph).

"After performing these checks, the application model is saved to disk. For
each kernel, a record is created that contains the kernel's name, suggested
partitioning strategy, and a list of its arguments. The read and write maps
of arrays are stored per-argument."

Maps serialize to isl notation (via :mod:`repro.poly.pretty`) and parse back
(via :mod:`repro.poly.parser`), so the JSON model is a faithful, lossless
hand-off between the two compiler passes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.access_analysis import KernelAccessInfo
from repro.compiler.strategy import PartitionStrategy
from repro.cuda.ir.kernel import ArrayParam, Kernel, ScalarParam
from repro.cuda.ir.printer import expr_to_cuda
from repro.errors import AnalysisError
from repro.poly.map_ import Map
from repro.poly.parser import parse_map
from repro.poly.pretty import map_to_str

__all__ = ["AccessRecord", "ArgRecord", "KernelModel", "AppModel"]


@dataclass
class AccessRecord:
    """One serialized access map."""

    map_str: str
    exact: bool
    may: bool

    def to_map(self) -> Map:
        return parse_map(self.map_str)


@dataclass
class ArgRecord:
    """One kernel argument: kind, type, and (for arrays) shape and maps."""

    name: str
    kind: str  # "array" | "scalar"
    dtype: str
    shape: Tuple[str, ...] = ()
    read: Optional[AccessRecord] = None
    write: Optional[AccessRecord] = None


@dataclass
class KernelModel:
    """The per-kernel record stored in the application model."""

    name: str
    strategy_axis: str
    strategy_kind: str
    args: List[ArgRecord]
    partitionable: bool
    reject_reason: Optional[str] = None
    #: Grid axes that must have unit extent at launch for the injectivity
    #: proof to hold (axes the write maps do not distinguish).
    unit_axes: Tuple[str, ...] = ()
    #: Whether the runtime must validate write-scan exactness with the
    #: concrete launch configuration (flat 1-D subscripts; see
    #: :mod:`repro.compiler.coverage`).
    runtime_coverage: bool = False

    @staticmethod
    def from_analysis(
        info: KernelAccessInfo, strategy: PartitionStrategy, *, partitionable: bool = True,
        reject_reason: Optional[str] = None, unit_axes: Tuple[str, ...] = (),
        runtime_coverage: bool = False,
    ) -> "KernelModel":
        args: List[ArgRecord] = []
        for p in info.kernel.params:
            if isinstance(p, ArrayParam):
                read = info.reads.get(p.name)
                write = info.writes.get(p.name)
                args.append(
                    ArgRecord(
                        name=p.name,
                        kind="array",
                        dtype=p.dtype.name,
                        shape=tuple(expr_to_cuda(e) for e in p.shape),
                        read=AccessRecord(map_to_str(read.access_map), read.exact, read.may)
                        if read
                        else None,
                        write=AccessRecord(map_to_str(write.access_map), write.exact, write.may)
                        if write
                        else None,
                    )
                )
            elif isinstance(p, ScalarParam):
                args.append(ArgRecord(name=p.name, kind="scalar", dtype=p.dtype.name))
        return KernelModel(
            name=info.kernel.name,
            strategy_axis=strategy.axis,
            strategy_kind=strategy.kind,
            args=args,
            partitionable=partitionable and info.partitionable,
            reject_reason=reject_reason or info.reject_reason,
            unit_axes=tuple(sorted(unit_axes)),
            runtime_coverage=runtime_coverage,
        )

    def strategy(self) -> PartitionStrategy:
        return PartitionStrategy(axis=self.strategy_axis, kind=self.strategy_kind)


@dataclass
class AppModel:
    """The whole application's model: one record per kernel."""

    kernels: Dict[str, KernelModel] = field(default_factory=dict)

    def add(self, model: KernelModel) -> None:
        self.kernels[model.name] = model

    def get(self, name: str) -> KernelModel:
        try:
            return self.kernels[name]
        except KeyError:
            raise AnalysisError(f"application model has no kernel {name!r}") from None

    # -- (de)serialization ----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "kernels": {name: asdict(m) for name, m in sorted(self.kernels.items())},
        }
        return json.dumps(payload, indent=2)

    @staticmethod
    def from_json(text: str) -> "AppModel":
        payload = json.loads(text)
        if payload.get("version") != 1:
            raise AnalysisError(f"unsupported model version {payload.get('version')!r}")
        app = AppModel()
        for name, m in payload["kernels"].items():
            args = []
            for a in m["args"]:
                read = AccessRecord(**a["read"]) if a.get("read") else None
                write = AccessRecord(**a["write"]) if a.get("write") else None
                args.append(
                    ArgRecord(
                        name=a["name"],
                        kind=a["kind"],
                        dtype=a["dtype"],
                        shape=tuple(a.get("shape", ())),
                        read=read,
                        write=write,
                    )
                )
            app.add(
                KernelModel(
                    name=m["name"],
                    strategy_axis=m["strategy_axis"],
                    strategy_kind=m["strategy_kind"],
                    args=args,
                    partitionable=m["partitionable"],
                    reject_reason=m.get("reject_reason"),
                    unit_axes=tuple(m.get("unit_axes", ())),
                    runtime_coverage=m.get("runtime_coverage", False),
                )
            )
        return app

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @staticmethod
    def load(path: Union[str, Path]) -> "AppModel":
        return AppModel.from_json(Path(path).read_text())
