"""Human-readable compilation reports.

``describe_app`` renders everything the pipeline derived for an application
— kernels, access maps, strategies, legality verdicts, generated enumerator
sources — as markdown-ish text. Used by ``python -m repro analyze
--verbose`` and handy when debugging why a kernel was rejected.
"""

from __future__ import annotations

from typing import List

from repro.compiler.pipeline import CompiledApp, CompiledKernel
from repro.cuda.ir.printer import kernel_to_cuda

__all__ = ["describe_app", "describe_kernel"]


def describe_kernel(app: CompiledApp, ck: CompiledKernel, *, sources: bool = False) -> str:
    """One kernel's section of the compile report."""
    lines: List[str] = []
    lines.append(f"## kernel `{ck.kernel.name}`")
    lines.append("")
    lines.append("```cuda")
    lines.append(kernel_to_cuda(ck.kernel).rstrip())
    lines.append("```")
    lines.append("")
    if not ck.partitionable:
        lines.append(f"**NOT partitionable** — {ck.model.reject_reason}")
        lines.append("(launches fall back to single-GPU execution)")
        return "\n".join(lines)

    lines.append(f"- partition strategy: contiguous block split along axis "
                 f"`{ck.strategy.axis}`")
    if ck.model.unit_axes:
        lines.append(
            f"- launch requirement: unit extent on axes {list(ck.model.unit_axes)} "
            "(write maps do not distinguish them)"
        )
    if ck.model.runtime_coverage:
        lines.append("- write-scan exactness validated per launch (flat subscripts)")
    lines.append("")
    lines.append("| argument | kind | access maps |")
    lines.append("|---|---|---|")
    for arg in ck.model.args:
        if arg.kind == "scalar":
            lines.append(f"| `{arg.name}` | scalar `{arg.dtype}` | — |")
            continue
        cells = []
        if arg.read:
            exact = "" if arg.read.exact else " *(over-approx)*"
            cells.append(f"read{exact}: `{arg.read.map_str}`")
        if arg.write:
            exact = "" if arg.write.exact else " *(validated at launch)*"
            cells.append(f"write{exact}: `{arg.write.map_str}`")
        lines.append(
            f"| `{arg.name}` | array `{arg.dtype}[{', '.join(arg.shape)}]` | "
            + "<br>".join(cells or ["(unused)"])
            + " |"
        )

    if sources:
        lines.append("")
        lines.append("### generated enumerators (§6)")
        for mode in ("read", "write"):
            for enum in app.enumerators.for_kernel(ck.kernel.name, mode):
                src = getattr(enum.scan, "__poly_source__", None)
                lines.append("")
                lines.append(f"`{enum.name}` (exact={enum.exact}):")
                if src is not None:
                    lines.append("```python")
                    lines.append(src.rstrip())
                    lines.append("```")
                else:
                    lines.append("(interpreted scanner — no generated source)")
    return "\n".join(lines)


def describe_app(app: CompiledApp, *, sources: bool = False) -> str:
    """The full compile report for an application."""
    lines = [
        "# compile report",
        "",
        f"- kernels: {len(app.kernels)}"
        f" ({sum(1 for k in app.kernels.values() if k.partitionable)} partitionable)",
        f"- enumerators generated: {len(app.enumerators)}",
        f"- pipeline wall time: pass1 {app.timings.pass1 * 1e3:.1f} ms, "
        f"rewrite {app.timings.rewrite * 1e3:.1f} ms, "
        f"pass2 {app.timings.pass2 * 1e3:.1f} ms",
        "",
    ]
    for name in sorted(app.kernels):
        lines.append(describe_kernel(app, app.kernels[name], sources=sources))
        lines.append("")
    return "\n".join(lines)
