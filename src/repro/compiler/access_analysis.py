"""Polyhedral memory-access analysis of kernels (paper §4).

For every kernel and every array argument this pass derives polyhedral
*read* and *write* maps from thread-grid coordinates to array elements.

Modelling follows the paper exactly:

* Thread coordinates are the nine dimensions ``blockOff.{z,y,x}``,
  ``blockIdx.{z,y,x}``, ``threadIdx.{z,y,x}`` (after the §4.1 blockOff
  rewrite removed the non-affine ``blockIdx*blockDim`` product).
* ``threadIdx`` dimensions are constrained by ``0 <= threadIdx.w <
  blockDim.w`` and then projected out, yielding maps that are subsets of
  ``Z^6 -> Z^d`` (block granularity — a thread block is the atomic unit).
* Block dimensions, grid dimensions and the kernel's integer scalar
  arguments are map *parameters*.
* Loop iterators become existentially projected extra input dimensions;
  affine guard conditions restrict the access domain (in disjunctive normal
  form, so ``||`` produces unions).
* A read whose subscript is not affine is over-approximated by the whole
  array (sound, marked inexact). A write that cannot be modelled exactly
  makes the kernel non-partitionable — the paper's fallback is single-GPU
  execution and so is ours.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.blockoff import encapsulate_block_offsets
from repro.cuda.ir.exprs import (
    BinOp,
    Call,
    Const,
    Expr,
    GridIdx,
    Load,
    LocalRef,
    Param,
    Select,
    UnOp,
)
from repro.cuda.ir.kernel import ArrayParam, Kernel, ScalarParam
from repro.cuda.ir.stmts import Assign, Body, For, If, Let, Store
from repro.errors import AnalysisError, NonAffineError
from repro.poly.affine import Aff
from repro.poly.constraint import Constraint, Kind
from repro.poly.map_ import BasicMap, Map
from repro.poly.space import Space

__all__ = [
    "IN_DIMS9",
    "IN_DIMS6",
    "GID_DIMS",
    "GRID_PARAMS",
    "ArrayAccess",
    "KernelAccessInfo",
    "RawAccess",
    "analyze_kernel",
]

#: Input dimensions of the pre-projection access relations.
IN_DIMS9 = ("bo_z", "bo_y", "bo_x", "bi_z", "bi_y", "bi_x", "ti_z", "ti_y", "ti_x")
#: Input dimensions after projecting out ``threadIdx`` (paper's Z^6).
IN_DIMS6 = IN_DIMS9[:6]
#: Global-thread-id dimensions used by the injectivity check.
GID_DIMS = ("g_z", "g_y", "g_x")
#: Launch-configuration parameters available to every map.
GRID_PARAMS = ("bd_z", "bd_y", "bd_x", "gd_z", "gd_y", "gd_x")

_REGISTER_DIM = {
    ("blockOff", "z"): "bo_z",
    ("blockOff", "y"): "bo_y",
    ("blockOff", "x"): "bo_x",
    ("blockIdx", "z"): "bi_z",
    ("blockIdx", "y"): "bi_y",
    ("blockIdx", "x"): "bi_x",
    ("threadIdx", "z"): "ti_z",
    ("threadIdx", "y"): "ti_y",
    ("threadIdx", "x"): "ti_x",
    ("blockDim", "z"): "bd_z",
    ("blockDim", "y"): "bd_y",
    ("blockDim", "x"): "bd_x",
    ("gridDim", "z"): "gd_z",
    ("gridDim", "y"): "gd_y",
    ("gridDim", "x"): "gd_x",
}


# ---------------------------------------------------------------------------
# Symbolic affine forms (space-free; bound to a Space when maps are built)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymAff:
    """``const + sum(coeff * name)`` with names resolved later."""

    const: int
    terms: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def constant(c: int) -> "SymAff":
        return SymAff(int(c))

    @staticmethod
    def of(name: str) -> "SymAff":
        return SymAff(0, ((name, 1),))

    def _tmap(self) -> Dict[str, int]:
        return dict(self.terms)

    def add(self, other: "SymAff") -> "SymAff":
        t = self._tmap()
        for name, c in other.terms:
            t[name] = t.get(name, 0) + c
        return SymAff(self.const + other.const, _norm(t))

    def sub(self, other: "SymAff") -> "SymAff":
        return self.add(other.scale(-1))

    def scale(self, k: int) -> "SymAff":
        return SymAff(self.const * k, _norm({n: c * k for n, c in self.terms}))

    def is_constant(self) -> bool:
        return not self.terms

    def coeff(self, name: str) -> int:
        return self._tmap().get(name, 0)

    def names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.terms)

    def rename(self, mapping: Mapping[str, str]) -> "SymAff":
        t: Dict[str, int] = {}
        for name, c in self.terms:
            nn = mapping.get(name, name)
            t[nn] = t.get(nn, 0) + c
        return SymAff(self.const, _norm(t))

    def to_aff(self, space: Space) -> Aff:
        return Aff.from_terms(space, self._tmap(), self.const)


def _norm(t: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((n, c) for n, c in t.items() if c != 0))


#: A symbolic constraint: ``aff >= 0`` (INEQ) or ``aff == 0`` (EQ).
SymConstraint = Tuple[Kind, SymAff]
#: A conjunction of symbolic constraints.
Conj = Tuple[SymConstraint, ...]
#: Disjunctive normal form: a union of conjunctions.
Dnf = Tuple[Conj, ...]

_TRUE_DNF: Dnf = ((),)


def _dnf_and(a: Dnf, b: Dnf) -> Dnf:
    return tuple(ca + cb for ca in a for cb in b)


def _dnf_or(a: Dnf, b: Dnf) -> Dnf:
    return a + b


# ---------------------------------------------------------------------------
# Expression -> affine form
# ---------------------------------------------------------------------------


class _AffineEnv:
    """Maps local names to symbolic affine values (None = not affine)."""

    def __init__(self, int_scalars: Sequence[str]) -> None:
        self.int_scalars = set(int_scalars)
        self.locals: Dict[str, Optional[SymAff]] = {}


def _affine(expr: Expr, env: _AffineEnv) -> SymAff:
    """Symbolic affine value of an integer expression.

    Raises :class:`NonAffineError` when the expression cannot be represented.
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, bool) or expr._dtype.is_float:
            raise NonAffineError(f"non-integer constant {expr.value!r}")
        return SymAff.constant(int(expr.value))
    if isinstance(expr, GridIdx):
        return SymAff.of(_REGISTER_DIM[(expr.register, expr.axis)])
    if isinstance(expr, Param):
        if expr._dtype.is_float:
            raise NonAffineError(f"float parameter {expr.name!r} in index expression")
        if expr.name not in env.int_scalars:
            raise NonAffineError(f"unknown scalar {expr.name!r}")
        return SymAff.of(expr.name)
    if isinstance(expr, LocalRef):
        val = env.locals.get(expr.name)
        if val is None:
            raise NonAffineError(f"local {expr.name!r} has no affine value")
        return val
    if isinstance(expr, UnOp):
        if expr.op == "neg":
            return _affine(expr.operand, env).scale(-1)
        raise NonAffineError(f"boolean op {expr.op!r} in index expression")
    if isinstance(expr, BinOp):
        if expr.op == "add":
            return _affine(expr.lhs, env).add(_affine(expr.rhs, env))
        if expr.op == "sub":
            return _affine(expr.lhs, env).sub(_affine(expr.rhs, env))
        if expr.op == "mul":
            lhs = _affine(expr.lhs, env)
            rhs = _affine(expr.rhs, env)
            if lhs.is_constant():
                return rhs.scale(lhs.const)
            if rhs.is_constant():
                return lhs.scale(rhs.const)
            raise NonAffineError("product of two non-constant expressions")
        raise NonAffineError(f"operator {expr.op!r} is not affine")
    raise NonAffineError(f"expression {type(expr).__name__} is not affine")


def _cond_dnf(expr: Expr, env: _AffineEnv, *, negate: bool = False) -> Optional[Dnf]:
    """Condition expression -> DNF of affine constraints (None = non-affine)."""
    if isinstance(expr, UnOp) and expr.op == "not":
        return _cond_dnf(expr.operand, env, negate=not negate)
    if isinstance(expr, Const) and isinstance(expr.value, bool):
        value = expr.value != negate
        return _TRUE_DNF if value else ()
    if isinstance(expr, BinOp):
        op = expr.op
        if op == "and":
            a = _cond_dnf(expr.lhs, env, negate=negate)
            b = _cond_dnf(expr.rhs, env, negate=negate)
            if a is None or b is None:
                return None
            # De Morgan: !(x && y) == !x || !y
            return _dnf_or(a, b) if negate else _dnf_and(a, b)
        if op == "or":
            a = _cond_dnf(expr.lhs, env, negate=negate)
            b = _cond_dnf(expr.rhs, env, negate=negate)
            if a is None or b is None:
                return None
            return _dnf_and(a, b) if negate else _dnf_or(a, b)
        if op in ("lt", "le", "gt", "ge", "eq", "ne"):
            if negate:
                op = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}[op]
            return _cmp_dnf(op, expr.lhs, expr.rhs, env)
    return None


def _cmp_dnf(op: str, lhs: Expr, rhs: Expr, env: _AffineEnv) -> Optional[Dnf]:
    """One comparison as a DNF, expanding affine ``min``/``max`` operands.

    ``x < min(a, b)`` is ``x < a and x < b``; ``x < max(a, b)`` is
    ``x < a or x < b`` — and dually for ``>``/``>=``. Equality against a
    min/max is not expanded (returns None, treated as non-affine).
    """
    if isinstance(rhs, BinOp) and rhs.op in ("min", "max"):
        a = _cmp_dnf(op, lhs, rhs.lhs, env)
        b = _cmp_dnf(op, lhs, rhs.rhs, env)
        if a is None or b is None or op in ("eq", "ne"):
            return None
        conjunctive = (rhs.op == "min") == (op in ("lt", "le"))
        return _dnf_and(a, b) if conjunctive else _dnf_or(a, b)
    if isinstance(lhs, BinOp) and lhs.op in ("min", "max"):
        flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}[op]
        return _cmp_dnf(flipped, rhs, lhs, env)
    try:
        l = _affine(lhs, env)
        r = _affine(rhs, env)
    except NonAffineError:
        return None
    diff = r.sub(l)  # rhs - lhs
    if op == "lt":  # lhs < rhs  <=>  rhs - lhs - 1 >= 0
        return (((Kind.INEQ, diff.add(SymAff.constant(-1))),),)
    if op == "le":
        return (((Kind.INEQ, diff),),)
    if op == "gt":  # lhs > rhs  <=>  lhs - rhs - 1 >= 0
        return (((Kind.INEQ, diff.scale(-1).add(SymAff.constant(-1))),),)
    if op == "ge":
        return (((Kind.INEQ, diff.scale(-1)),),)
    if op == "eq":
        return (((Kind.EQ, diff),),)
    # ne: lhs < rhs || lhs > rhs
    return (
        ((Kind.INEQ, diff.add(SymAff.constant(-1))),),
        ((Kind.INEQ, diff.scale(-1).add(SymAff.constant(-1))),),
    )


# ---------------------------------------------------------------------------
# Raw access collection
# ---------------------------------------------------------------------------


@dataclass
class RawAccess:
    """One source-level access in pre-projection (thread-granular) form.

    The polyhedral maps of :class:`ArrayAccess` are block-granular (the
    ``threadIdx`` dimensions are projected out, paper §4); the raw form
    keeps per-thread identity and is what the static race detector
    (:mod:`repro.analysis.races`) and out-of-bounds prover
    (:mod:`repro.analysis.bounds`) reason about.
    """

    array: str
    mode: str  # "read" | "write"
    indices: Optional[Tuple[SymAff, ...]]  # None = non-affine subscript
    domain: Dnf  # guard conditions + loop bounds, DNF
    iterators: Tuple[str, ...]  # loop dims in scope
    may: bool  # under any control flow
    approx_domain: bool  # a guard was dropped because it was non-affine


#: Backwards-compatible private alias (the class predates its export).
_RawAccess = RawAccess


#: Cap on the number of (guard, affine) cases a Select-bearing subscript may
#: expand into before the analysis falls back to "non-affine".
_MAX_SELECT_CASES = 16


def _affine_cases(expr: Expr, env: _AffineEnv) -> Optional[List[Tuple[Dnf, SymAff]]]:
    """Piecewise-affine value of an index expression.

    A ``select`` with an affine condition and affine branches is *exactly*
    representable as a union: one case per branch, guarded by the condition
    (resp. its negation). Returns a list of ``(guard_dnf, value)`` cases, or
    None when the expression is genuinely non-affine.
    """
    if isinstance(expr, Select):
        cond = _cond_dnf(expr.cond, env)
        ncond = _cond_dnf(expr.cond, env, negate=True)
        if cond is None or ncond is None:
            return None
        on_true = _affine_cases(expr.on_true, env)
        on_false = _affine_cases(expr.on_false, env)
        if on_true is None or on_false is None:
            return None
        out = [(_dnf_and(cond, g), aff) for g, aff in on_true]
        out += [(_dnf_and(ncond, g), aff) for g, aff in on_false]
        return out if len(out) <= _MAX_SELECT_CASES else None
    if isinstance(expr, BinOp) and expr.op in ("add", "sub", "mul"):
        lhs = _affine_cases(expr.lhs, env)
        rhs = _affine_cases(expr.rhs, env)
        if lhs is None or rhs is None:
            return None
        out: List[Tuple[Dnf, SymAff]] = []
        for gl, al in lhs:
            for gr, ar in rhs:
                if expr.op == "add":
                    val = al.add(ar)
                elif expr.op == "sub":
                    val = al.sub(ar)
                else:
                    if al.is_constant():
                        val = ar.scale(al.const)
                    elif ar.is_constant():
                        val = al.scale(ar.const)
                    else:
                        return None
                out.append((_dnf_and(gl, gr), val))
        return out if len(out) <= _MAX_SELECT_CASES else None
    if isinstance(expr, UnOp) and expr.op == "neg":
        inner = _affine_cases(expr.operand, env)
        if inner is None:
            return None
        return [(g, a.scale(-1)) for g, a in inner]
    try:
        return [(_TRUE_DNF, _affine(expr, env))]
    except NonAffineError:
        return None


class _Collector:
    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        int_scalars = [p.name for p in kernel.scalar_params if not p.dtype.is_float]
        self.env = _AffineEnv(int_scalars)
        self.accesses: List[_RawAccess] = []
        self._iter_count = itertools.count()

    # -- expression side: collect loads ------------------------------------

    def _loads_in(self, expr: Expr, ctx: "_Ctx") -> None:
        for node in _walk(expr):
            if isinstance(node, Load):
                self._record(node.array, "read", node.indices, ctx)

    def _record(self, array: str, mode: str, indices: Tuple[Expr, ...], ctx: "_Ctx") -> None:
        per_index = [_affine_cases(i, self.env) for i in indices]
        total_cases = 1
        for cases in per_index:
            total_cases *= len(cases) if cases else 1
        if any(c is None for c in per_index) or total_cases > _MAX_SELECT_CASES:
            self.accesses.append(
                _RawAccess(
                    array=array,
                    mode=mode,
                    indices=None,
                    domain=ctx.dnf,
                    iterators=ctx.iterators,
                    may=ctx.depth > 0,
                    approx_domain=ctx.approx,
                )
            )
            return
        for combo in itertools.product(*per_index):
            domain = ctx.dnf
            for guard, _ in combo:
                domain = _dnf_and(domain, guard)
            self.accesses.append(
                _RawAccess(
                    array=array,
                    mode=mode,
                    indices=tuple(aff for _, aff in combo),
                    domain=domain,
                    iterators=ctx.iterators,
                    may=ctx.depth > 0,
                    approx_domain=ctx.approx,
                )
            )

    # -- statement walk ------------------------------------------------------

    def run(self) -> None:
        self._body(self.kernel.body, _Ctx(_TRUE_DNF, (), 0, False))

    def _body(self, body: Body, ctx: "_Ctx") -> None:
        for stmt in body:
            if isinstance(stmt, Let):
                self._loads_in(stmt.value, ctx)
                try:
                    self.env.locals[stmt.name] = _affine(stmt.value, self.env)
                except NonAffineError:
                    self.env.locals[stmt.name] = None
            elif isinstance(stmt, Assign):
                self._loads_in(stmt.value, ctx)
                # A rebound local's value is control-flow dependent; treat as
                # non-affine from here on (conservative).
                self.env.locals[stmt.name] = None
            elif isinstance(stmt, Store):
                for idx in stmt.indices:
                    self._loads_in(idx, ctx)
                self._loads_in(stmt.value, ctx)
                self._record(stmt.array, "write", stmt.indices, ctx)
            elif isinstance(stmt, If):
                self._loads_in(stmt.cond, ctx)
                dnf = _cond_dnf(stmt.cond, self.env)
                if dnf is None:
                    then_ctx = ctx.deeper(approx=True)
                    else_ctx = ctx.deeper(approx=True)
                else:
                    then_ctx = ctx.with_dnf(_dnf_and(ctx.dnf, dnf)).deeper()
                    neg = _cond_dnf(stmt.cond, self.env, negate=True)
                    else_ctx = (
                        ctx.with_dnf(_dnf_and(ctx.dnf, neg)).deeper()
                        if neg is not None
                        else ctx.deeper(approx=True)
                    )
                self._body(stmt.then, then_ctx)
                if stmt.orelse:
                    self._body(stmt.orelse, else_ctx)
            elif isinstance(stmt, For):
                self._loads_in(stmt.lo, ctx)
                self._loads_in(stmt.hi, ctx)
                it = f"it{next(self._iter_count)}"
                try:
                    lo = _affine(stmt.lo, self.env)
                    hi = _affine(stmt.hi, self.env)
                    bounds: Conj = (
                        (Kind.INEQ, SymAff.of(it).sub(lo)),  # it >= lo
                        (Kind.INEQ, hi.sub(SymAff.of(it)).add(SymAff.constant(-1))),  # it < hi
                    )
                    inner = ctx.with_dnf(_dnf_and(ctx.dnf, (bounds,)))
                    inner = inner.with_iterators(ctx.iterators + (it,)).deeper()
                except NonAffineError:
                    inner = ctx.with_iterators(ctx.iterators + (it,)).deeper(approx=True)
                saved = self.env.locals.get(stmt.var)
                self.env.locals[stmt.var] = SymAff.of(it)
                self._body(stmt.body, inner)
                if saved is None:
                    self.env.locals.pop(stmt.var, None)
                else:  # pragma: no cover - shadowing is rejected by the validator
                    self.env.locals[stmt.var] = saved
            else:
                raise AnalysisError(f"unknown statement {stmt!r}")


@dataclass(frozen=True)
class _Ctx:
    dnf: Dnf
    iterators: Tuple[str, ...]
    depth: int
    approx: bool

    def with_dnf(self, dnf: Dnf) -> "_Ctx":
        return _Ctx(dnf, self.iterators, self.depth, self.approx)

    def with_iterators(self, iterators: Tuple[str, ...]) -> "_Ctx":
        return _Ctx(self.dnf, iterators, self.depth, self.approx)

    def deeper(self, approx: bool = False) -> "_Ctx":
        return _Ctx(self.dnf, self.iterators, self.depth + 1, self.approx or approx)


def _walk(expr: Expr):
    yield expr
    if isinstance(expr, BinOp):
        yield from _walk(expr.lhs)
        yield from _walk(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from _walk(expr.operand)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from _walk(a)
    elif isinstance(expr, Select):
        yield from _walk(expr.cond)
        yield from _walk(expr.on_true)
        yield from _walk(expr.on_false)
    elif isinstance(expr, Load):
        for i in expr.indices:
            yield from _walk(i)


# ---------------------------------------------------------------------------
# Raw accesses -> polyhedral maps
# ---------------------------------------------------------------------------


@dataclass
class ArrayAccess:
    """The combined polyhedral access map of one (array, mode) pair."""

    array: str
    mode: str
    access_map: Map  # Z^6 -> Z^d
    exact: bool
    may: bool
    #: The same relation over global-thread-id inputs, when every access
    #: fits the gid pattern (coeff(blockOff.w) == coeff(threadIdx.w),
    #: coeff(blockIdx.w) == 0); used by the injectivity check.
    gid_map: Optional[Map] = None
    #: For inexact 1-D write maps: the term structure needed by the
    #: launch-time coverage validation (:mod:`repro.compiler.coverage`).
    #: None when the accesses don't qualify for runtime validation.
    coverage: Optional["CoverageSpec"] = None
    #: True when this map was supplied by the programmer
    #: (:mod:`repro.compiler.annotations`, the paper's §11 remedy);
    #: legality trusts annotated maps.
    annotated: bool = False


@dataclass
class KernelAccessInfo:
    """Result of :func:`analyze_kernel` for one kernel."""

    kernel: Kernel
    reads: Dict[str, ArrayAccess]
    writes: Dict[str, ArrayAccess]
    partitionable: bool
    reject_reason: Optional[str] = None
    #: Arrays whose writes could not be modelled (candidates for the
    #: programmer annotations of :mod:`repro.compiler.annotations`).
    nonaffine_write_arrays: frozenset = frozenset()
    #: The thread-granular accesses the maps were built from, in source
    #: order (consumed by the static-analysis passes of :mod:`repro.analysis`).
    raw_accesses: Tuple[RawAccess, ...] = ()

    @property
    def written_arrays(self) -> Tuple[str, ...]:
        return tuple(sorted(self.writes))

    @property
    def read_arrays(self) -> Tuple[str, ...]:
        return tuple(sorted(self.reads))


def _kernel_params(kernel: Kernel) -> Tuple[str, ...]:
    scalars = tuple(p.name for p in kernel.scalar_params if not p.dtype.is_float)
    return GRID_PARAMS + scalars


def _shape_affs(array: ArrayParam, env: _AffineEnv) -> Optional[Tuple[SymAff, ...]]:
    try:
        return tuple(_affine(e, env) for e in array.shape)
    except NonAffineError:
        return None


def _full_array_map(
    space: Space, shape: Optional[Tuple[SymAff, ...]]
) -> BasicMap:
    """The over-approximation 'touches every element of the array'."""
    cons: List[Constraint] = []
    if shape is not None:
        for j, extent in enumerate(shape):
            a = Aff.var(space, f"a{j}")
            cons.append(Constraint.ineq(a))
            cons.append(Constraint.ineq(extent.to_aff(space) - a - 1))
    bm = BasicMap(space, cons)
    return BasicMap._wrap(space, bm.bset._with_exact(False))


def _ti_box(space: Space) -> List[Constraint]:
    cons = []
    for w in ("z", "y", "x"):
        ti = Aff.var(space, f"ti_{w}")
        bd = Aff.var(space, f"bd_{w}")
        cons.append(Constraint.ineq(ti))
        cons.append(Constraint.ineq(bd - ti - 1))
    return cons


def _build_maps(
    raw: _RawAccess,
    ndim: int,
    params: Tuple[str, ...],
    shape: Optional[Tuple[SymAff, ...]],
) -> Tuple[Map, Optional[Map], bool]:
    """One raw access -> (Z^6 map, gid map or None, exact)."""
    out_dims = tuple(f"a{j}" for j in range(ndim))
    space9 = Space.map_space(IN_DIMS9 + raw.iterators, out_dims, params)

    disjuncts: List[BasicMap] = []
    exact = not raw.approx_domain
    if raw.indices is None:
        full = _full_array_map(Space.map_space(IN_DIMS6, out_dims, params), shape)
        return Map.from_basic(full), None, False

    for conj in raw.domain:
        cons: List[Constraint] = []
        for j, idx in enumerate(raw.indices):
            cons.append(
                Constraint.eq(Aff.var(space9, f"a{j}") - idx.to_aff(space9))
            )
        for kind, aff in conj:
            cons.append(Constraint(kind, aff.to_aff(space9).vec))
        cons.extend(_ti_box(space9))
        if shape is not None:
            for j, extent in enumerate(shape):
                a = Aff.var(space9, f"a{j}")
                cons.append(Constraint.ineq(a))
                cons.append(Constraint.ineq(extent.to_aff(space9) - a - 1))
        bm = BasicMap(space9, cons)
        projected = bm.bset.project_out(raw.iterators + ("ti_z", "ti_y", "ti_x"))
        exact = exact and projected.exact
        space6 = Space.map_space(IN_DIMS6, out_dims, params)
        from repro.poly.basic_set import _rebind_constraint

        disjuncts.append(
            BasicMap(
                space6,
                [_rebind_constraint(c, projected.space, space6) for c in projected.constraints],
                exact=projected.exact and not raw.approx_domain,
            )
        )

    space6 = Space.map_space(IN_DIMS6, out_dims, params)
    z6 = Map(space6, disjuncts)

    gid = _gid_map(raw, ndim, params, shape)
    return z6, gid, exact


def _gid_fits(aff: SymAff) -> bool:
    """True if an affine form uses grid dims only through bo+ti pairs."""
    for w in ("z", "y", "x"):
        if aff.coeff(f"bi_{w}") != 0:
            return False
        if aff.coeff(f"bo_{w}") != aff.coeff(f"ti_{w}"):
            return False
    return True


def _gid_rename(aff: SymAff) -> SymAff:
    """Rewrite ``c*(bo_w + ti_w)`` into ``c*g_w`` (requires :func:`_gid_fits`)."""
    out = aff
    for w in ("z", "y", "x"):
        c = out.coeff(f"bo_{w}")
        t = dict(out.terms)
        t.pop(f"bo_{w}", None)
        t.pop(f"ti_{w}", None)
        if c != 0:
            t[f"g_{w}"] = t.get(f"g_{w}", 0) + c
        out = SymAff(out.const, _norm(t))
    return out


def _gid_map(
    raw: _RawAccess,
    ndim: int,
    params: Tuple[str, ...],
    shape: Optional[Tuple[SymAff, ...]],
) -> Optional[Map]:
    if raw.indices is None:
        return None
    for idx in raw.indices:
        if not _gid_fits(idx):
            return None
    for conj in raw.domain:
        for _, aff in conj:
            if not _gid_fits(aff):
                return None
    out_dims = tuple(f"a{j}" for j in range(ndim))
    space = Space.map_space(GID_DIMS + raw.iterators, out_dims, params)
    disjuncts = []
    for conj in raw.domain:
        cons: List[Constraint] = []
        # Global ids are non-negative in every launch (blockOff >= 0 and
        # threadIdx >= 0); flat-indexed kernels need this for injectivity.
        for g in GID_DIMS:
            cons.append(Constraint.ineq(Aff.var(space, g)))
        for j, idx in enumerate(raw.indices):
            cons.append(
                Constraint.eq(Aff.var(space, f"a{j}") - _gid_rename(idx).to_aff(space))
            )
        for kind, aff in conj:
            cons.append(Constraint(kind, _gid_rename(aff).to_aff(space).vec))
        if shape is not None:
            for j, extent in enumerate(shape):
                a = Aff.var(space, f"a{j}")
                cons.append(Constraint.ineq(a))
                cons.append(Constraint.ineq(extent.to_aff(space) - a - 1))
        bm = BasicMap(space, cons)
        if raw.iterators:
            projected = bm.bset.project_out(raw.iterators)
            space3 = Space.map_space(GID_DIMS, out_dims, params)
            from repro.poly.basic_set import _rebind_constraint

            bm = BasicMap(
                space3,
                [_rebind_constraint(c, projected.space, space3) for c in projected.constraints],
                exact=projected.exact,
            )
        disjuncts.append(bm)
    space3 = Space.map_space(GID_DIMS, out_dims, params)
    return Map(space3, disjuncts)


def _coverage_disjuncts(raw: _RawAccess):
    """CoverageDisjuncts for one raw write access, or None if unsupported.

    Qualification: 1-D affine subscript over grid dimensions only (no loop
    iterators, no symbolic parameters) with grid-dimension-only guards.
    """
    from repro.compiler.coverage import CoverageDisjunct, CoverageTerm, GuardSpec
    from repro.poly.constraint import Kind as _Kind

    if raw.indices is None or len(raw.indices) != 1 or raw.approx_domain:
        return None
    idx = raw.indices[0]
    if any(name not in IN_DIMS9 for name in idx.names()):
        return None
    terms = tuple(CoverageTerm(d, c) for d, c in idx.terms)
    out = []
    for conj in raw.domain:
        guards = []
        for kind, aff in conj:
            if any(name not in IN_DIMS9 for name in aff.names()):
                return None
            gterms = tuple(CoverageTerm(d, c) for d, c in aff.terms)
            guards.append(GuardSpec(aff.const, gterms))
            if kind is _Kind.EQ:
                guards.append(
                    GuardSpec(-aff.const, tuple(CoverageTerm(t.dim, -t.coeff) for t in gterms))
                )
        out.append(CoverageDisjunct(idx.const, terms, tuple(guards)))
    return out


def analyze_kernel(kernel: Kernel) -> KernelAccessInfo:
    """Build the polyhedral application model of one kernel (paper §4)."""
    kernel = encapsulate_block_offsets(kernel)
    collector = _Collector(kernel)
    collector.run()

    params = _kernel_params(kernel)
    arrays = {p.name: p for p in kernel.array_params}
    env = _AffineEnv([p.name for p in kernel.scalar_params if not p.dtype.is_float])

    reads: Dict[str, ArrayAccess] = {}
    writes: Dict[str, ArrayAccess] = {}
    partitionable = True
    reason: Optional[str] = None

    coverage_lists: Dict[str, Optional[list]] = {}
    nonaffine_writes: set = set()
    for raw in collector.accesses:
        array = arrays[raw.array]
        shape = _shape_affs(array, env)
        z6, gid, exact = _build_maps(raw, array.ndim, params, shape)
        if raw.mode == "write":
            disjuncts = _coverage_disjuncts(raw)
            if raw.array not in coverage_lists:
                coverage_lists[raw.array] = [] if disjuncts is not None else None
            if disjuncts is None:
                coverage_lists[raw.array] = None
            elif coverage_lists[raw.array] is not None:
                coverage_lists[raw.array].extend(disjuncts)
        bucket = reads if raw.mode == "read" else writes
        if raw.array in bucket:
            prev = bucket[raw.array]
            prev.access_map = prev.access_map.union(z6)
            prev.exact = prev.exact and exact
            prev.may = prev.may or raw.may
            if prev.gid_map is not None and gid is not None:
                prev.gid_map = prev.gid_map.union(gid)
            else:
                prev.gid_map = None
        else:
            bucket[raw.array] = ArrayAccess(
                array=raw.array,
                mode=raw.mode,
                access_map=z6,
                exact=exact,
                may=raw.may,
                gid_map=gid,
            )
        if raw.mode == "write" and (raw.indices is None or raw.approx_domain):
            partitionable = False
            nonaffine_writes.add(raw.array)
            reason = (
                f"write to {raw.array!r} cannot be modelled exactly "
                f"({'non-affine subscript' if raw.indices is None else 'non-affine guard'})"
            )

    from repro.compiler.coverage import CoverageSpec

    for name, disjuncts in coverage_lists.items():
        if disjuncts is not None and name in writes:
            writes[name].coverage = CoverageSpec(name, tuple(disjuncts))

    return KernelAccessInfo(
        kernel=kernel,
        reads=reads,
        writes=writes,
        partitionable=partitionable,
        reject_reason=reason,
        nonaffine_write_arrays=frozenset(nonaffine_writes),
        raw_accesses=tuple(collector.accesses),
    )
