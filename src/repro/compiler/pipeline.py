"""The two-pass compilation driver (paper §3).

The paper drives gpucc twice: pass 1 only extracts the memory-behaviour
models (all other results are discarded); after the source-to-source
rewriter runs, pass 2 compiles the transformed application, generates the
communication code (enumerators), creates the partitioned kernel clones and
links against the runtime library. "This repeated invocation of gpucc
introduces redundant work, resulting in a compile time increase from 1.9x -
2.2x for the tested applications" — the compile-time benchmark reproduces
that ratio against :func:`baseline_compile`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.access_analysis import KernelAccessInfo, analyze_kernel
from repro.compiler.enumerators import EnumeratorTable
from repro.compiler.kernel_partition import partition_kernel
from repro.compiler.legality import check_partitionable
from repro.compiler.model import AppModel, KernelModel
from repro.compiler.rewriter import RewriteResult, rewrite_source
from repro.compiler.strategy import PartitionStrategy, choose_strategy
from repro.cuda.ir.kernel import Kernel
from repro.cuda.ir.printer import kernel_to_cuda
from repro.cuda.ir.validate import validate_kernel
from repro.errors import PartitioningError, format_with_code

__all__ = ["PipelineTimings", "CompiledKernel", "CompiledApp", "compile_app", "baseline_compile"]


@dataclass
class PipelineTimings:
    """Wall-clock seconds of the pipeline stages."""

    pass1: float = 0.0
    rewrite: float = 0.0
    pass2: float = 0.0

    @property
    def total(self) -> float:
        return self.pass1 + self.rewrite + self.pass2


@dataclass
class CompiledKernel:
    """Everything the runtime needs about one kernel."""

    kernel: Kernel
    info: KernelAccessInfo
    model: KernelModel
    strategy: PartitionStrategy
    partitioned: Optional[Kernel]  # None when the kernel was rejected

    @property
    def partitionable(self) -> bool:
        return self.partitioned is not None


@dataclass
class CompiledApp:
    """Result of the full pipeline: the multi-GPU application image."""

    kernels: Dict[str, CompiledKernel]
    model: AppModel
    enumerators: EnumeratorTable
    timings: PipelineTimings
    rewrite_result: Optional[RewriteResult] = None

    def kernel(self, name: str) -> CompiledKernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise PartitioningError(f"application has no kernel {name!r}") from None


def baseline_compile(kernels: Sequence[Kernel]) -> float:
    """Stand-in for a plain (single-GPU) gpucc compile; returns seconds.

    Performs the device-side work a normal compile does in this
    reproduction: IR validation and code emission — but no polyhedral
    analysis, no partitioning, no enumerator generation.
    """
    start = time.perf_counter()
    for k in kernels:
        validate_kernel(k)
        kernel_to_cuda(k)
    return time.perf_counter() - start


def compile_app(
    kernels: Sequence[Kernel],
    *,
    host_source: Optional[str] = None,
    model_path: Optional[Union[str, Path]] = None,
    use_codegen: bool = True,
    block_dim: Optional[Tuple[int, int, int]] = None,
    write_annotations: Optional[Dict[str, Dict[str, str]]] = None,
) -> CompiledApp:
    """Run the full two-pass pipeline on an application's kernels.

    Args:
        kernels: the application's kernels (pre-partitioning).
        host_source: optional CUDA-like host source to rewrite (§5); Python
            host programs skip this and bind the runtime API directly.
        model_path: where pass 1 saves the application model JSON.
        use_codegen: compile enumerators to Python and let cache-missing
            scans run the vectorized numpy backend (True), or interpret
            the scanner ASTs scalar-only (False; ablation — also disables
            enumerator specialization so the ablation measures the
            tree-walking cost it claims to).
        block_dim: concrete block size for the injectivity fallback check.
        write_annotations: programmer-supplied write maps in isl notation,
            ``{kernel_name: {array_name: map_text}}`` (paper §11; see
            :mod:`repro.compiler.annotations`).
    """
    from repro.compiler.annotations import apply_annotations

    timings = PipelineTimings()

    def annotate(info: KernelAccessInfo) -> KernelAccessInfo:
        if write_annotations and info.kernel.name in write_annotations:
            apply_annotations(info, write_annotations[info.kernel.name])
        return info

    # ---- pass 1: analysis only; everything else is discarded (§3) ----
    start = time.perf_counter()
    model = AppModel()
    for k in kernels:
        validate_kernel(k)
        kernel_to_cuda(k)  # the discarded device compile work
        info = annotate(analyze_kernel(k))
        strategy = choose_strategy(info)
        partitionable = True
        reason = None
        unit_axes: frozenset = frozenset()
        needs_coverage = False
        try:
            unit_axes, needs_coverage = check_partitionable(info, block_dim=block_dim)
        except PartitioningError as exc:
            partitionable = False
            reason = format_with_code(exc)
        model.add(
            KernelModel.from_analysis(
                info,
                strategy,
                partitionable=partitionable,
                reject_reason=reason,
                unit_axes=tuple(sorted(unit_axes)),
                runtime_coverage=needs_coverage,
            )
        )
    if model_path is not None:
        model.save(model_path)
    timings.pass1 = time.perf_counter() - start

    # ---- source-to-source rewrite (§5) ----
    start = time.perf_counter()
    rewrite_result = None
    if host_source is not None:
        rewrite_result = rewrite_source(
            host_source,
            model_path=str(model_path) if model_path else "app_model.json",
            kernel_names=[k.name for k in kernels],
        )
    timings.rewrite = time.perf_counter() - start

    # ---- pass 2: partitioning, communication codegen, linking (§3) ----
    start = time.perf_counter()
    compiled: Dict[str, CompiledKernel] = {}
    table = EnumeratorTable()
    for k in kernels:
        validate_kernel(k)
        kernel_to_cuda(k)
        info = annotate(analyze_kernel(k))  # the paper's "redundant work"
        km = model.get(k.name)
        strategy = km.strategy()
        partitioned: Optional[Kernel] = None
        if km.partitionable:
            partitioned = partition_kernel(k)
            kernel_table = EnumeratorTable.build(info, use_codegen=use_codegen)
            for key, enum in kernel_table._table.items():
                table._table[key] = enum
        compiled[k.name] = CompiledKernel(
            kernel=k, info=info, model=km, strategy=strategy, partitioned=partitioned
        )
    timings.pass2 = time.perf_counter() - start

    return CompiledApp(
        kernels=compiled,
        model=model,
        enumerators=table,
        timings=timings,
        rewrite_result=rewrite_result,
    )
