"""Recognition of the ``blockIdx.w * blockDim.w`` idiom (paper §4.1).

The global position of a thread along grid axis ``w`` is computed as
``threadIdx.w + blockIdx.w * blockDim.w``. The product of the two variables
is not affine, so the analysis (following Moll et al. [24] and §4.1 of the
paper) introduces the synthetic dimension ``blockOff.w`` to stand for it.
This pass rewrites every such product — in either operand order, at any
depth — into a ``GridIdx("blockOff", w)`` reference. Products of *mismatched*
axes (``blockIdx.x * blockDim.y``) are left alone and will be reported as
non-affine by the access analysis.
"""

from __future__ import annotations

from repro.cuda.ir.exprs import BinOp, Expr, GridIdx
from repro.cuda.ir.kernel import Kernel
from repro.cuda.ir.visitors import transform_kernel, walk_body, walk_expr

__all__ = ["encapsulate_block_offsets", "contains_blockoff"]


def _match_product(expr: Expr):
    """Return the axis if ``expr`` is ``blockIdx.w * blockDim.w``, else None."""
    if not (isinstance(expr, BinOp) and expr.op == "mul"):
        return None
    a, b = expr.lhs, expr.rhs
    if not (isinstance(a, GridIdx) and isinstance(b, GridIdx)):
        return None
    regs = {a.register, b.register}
    if regs != {"blockIdx", "blockDim"}:
        return None
    if a.axis != b.axis:
        return None
    return a.axis


def encapsulate_block_offsets(kernel: Kernel) -> Kernel:
    """Rewrite all ``blockIdx.w * blockDim.w`` products into ``blockOff.w``."""

    def rewrite(expr: Expr) -> Expr:
        axis = _match_product(expr)
        if axis is not None:
            return GridIdx("blockOff", axis)
        return expr

    return transform_kernel(kernel, rewrite)


def contains_blockoff(kernel: Kernel) -> bool:
    """True if any expression in the kernel references ``blockOff``."""
    for stmt in walk_body(kernel.body):
        for attr in ("value", "cond", "lo", "hi"):
            expr = getattr(stmt, attr, None)
            if expr is None:
                continue
            for node in walk_expr(expr):
                if isinstance(node, GridIdx) and node.register == "blockOff":
                    return True
        for attr in ("indices",):
            for expr in getattr(stmt, attr, ()):
                for node in walk_expr(expr):
                    if isinstance(node, GridIdx) and node.register == "blockOff":
                        return True
    return False
