"""The kernel partitioning transform (paper §7).

Clones a kernel, appends the partition argument, and applies the two
substitution rules:

* Equation (8): ``blockIdx.w  ->  partition.min_w + blockIdx.w``
* Equation (9): ``gridDim.w   ->  partition.max_w``

With the launch grid updated to ``partition.max_w - partition.min_w``
(Equation 10, :meth:`repro.compiler.strategy.Partition.grid`), the clone
behaves exactly as if it executed only the thread blocks inside
``[min_w, max_w)`` of the original grid.

``blockOff.w`` references (present if a kernel was partitioned *after* the
§4.1 rewrite) expand back to ``(partition.min_w + blockIdx.w) * blockDim.w``.
"""

from __future__ import annotations

from typing import Dict

from repro.cuda.dtypes import i64
from repro.cuda.ir.exprs import BinOp, Expr, GridIdx, Param
from repro.cuda.ir.kernel import Kernel, PartitionParam, partition_field_name
from repro.cuda.ir.visitors import transform_kernel
from repro.errors import PartitioningError

__all__ = ["partition_kernel", "PARTITION_SUFFIX"]

PARTITION_SUFFIX = "__partitioned"


def partition_kernel(kernel: Kernel) -> Kernel:
    """Clone ``kernel`` into its partitioned form (Section 7)."""
    if kernel.is_partitioned:
        raise PartitioningError(f"kernel {kernel.name!r} is already partitioned")
    part = PartitionParam("partition")

    def pmin(axis: str) -> Param:
        return Param(partition_field_name(part.name, f"min_{axis}"), i64)

    def pmax(axis: str) -> Param:
        return Param(partition_field_name(part.name, f"max_{axis}"), i64)

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, GridIdx):
            if expr.register == "blockIdx":
                return BinOp("add", pmin(expr.axis), GridIdx("blockIdx", expr.axis))
            if expr.register == "gridDim":
                return pmax(expr.axis)
            if expr.register == "blockOff":
                shifted = BinOp("add", pmin(expr.axis), GridIdx("blockIdx", expr.axis))
                return BinOp("mul", shifted, GridIdx("blockDim", expr.axis))
        return expr

    return transform_kernel(
        kernel, rewrite, name=kernel.name + PARTITION_SUFFIX, extra_params=(part,)
    )
