"""Access-set enumerator generation (paper §6).

For every (kernel, array argument, read/write) access map we generate a
function that — given a grid partition and the scalar kernel arguments —
enumerates the accessed array elements as per-row ``[first, last]`` ranges
(the paper scans only the first and last element of each row of the image,
§6.1). Unions are scanned per convex piece and the resulting ranges merged.

Interface (paper §6.2): each enumerator is named
``<kernel>__arg<i>__<read|write>``; inputs arrive as flat integer tuples
(the partition box plus the launch configuration plus scalar arguments) and
output ranges are delivered through a callback — here additionally wrapped
into a convenience method producing merged, flat (row-major) element ranges.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.access_analysis import (
    GRID_PARAMS,
    IN_DIMS6,
    ArrayAccess,
    KernelAccessInfo,
)
from repro.compiler.strategy import Partition
from repro.cuda.dim3 import Dim3
from repro.errors import AnalysisError
from repro.poly.affine import Aff
from repro.poly.basic_set import BasicSet, _rebind_constraint
from repro.poly.codegen import (
    ScanFn,
    compile_scanner,
    interpreted_scanner,
    prepare_scanner,
)
from repro.poly.vectorize import VectorizeError, vector_program
from repro.poly.constraint import Constraint
from repro.poly.set_ import Set
from repro.poly.space import Space

__all__ = ["PARTITION_PARAMS", "Enumerator", "EnumeratorTable", "build_enumerator"]

#: Parameters describing the partition box: half-open ``blockOff`` and
#: ``blockIdx`` intervals per axis (the paper's 6-tuple of thread-block
#: intervals; blockOff bounds are derived from them at runtime since the
#: block dimension is then known).
PARTITION_PARAMS = (
    "pbo_min_z",
    "pbo_max_z",
    "pbo_min_y",
    "pbo_max_y",
    "pbo_min_x",
    "pbo_max_x",
    "pbi_min_z",
    "pbi_max_z",
    "pbi_min_y",
    "pbi_max_y",
    "pbi_min_x",
    "pbi_max_x",
)

_BO_BOUNDS = tuple(zip(("bo_z", "bo_y", "bo_x"), PARTITION_PARAMS[0:6:2], PARTITION_PARAMS[1:6:2]))
_BI_BOUNDS = tuple(
    zip(("bi_z", "bi_y", "bi_x"), PARTITION_PARAMS[6:12:2], PARTITION_PARAMS[7:12:2])
)

FlatRange = Tuple[int, int]  # half-open element range


def _partitioned_image(access: ArrayAccess) -> Set:
    """Image of the access map restricted to a parametric partition box."""
    out_sets = []
    out_space: Optional[Space] = None
    for d in access.access_map.disjuncts:
        space = d.space.add_params(PARTITION_PARAMS)
        cons = [_rebind_constraint(c, d.space.to_set(), space.to_set()) for c in d.constraints]
        for dim, lo, hi in _BO_BOUNDS + _BI_BOUNDS:
            v = Aff.var(space.to_set(), dim)
            cons.append(Constraint.ineq(v - Aff.var(space.to_set(), lo)))
            cons.append(Constraint.ineq(Aff.var(space.to_set(), hi) - v - 1))
        boxed = BasicSet(space.to_set(), cons, exact=d.exact)
        projected = boxed.project_out(IN_DIMS6)
        if out_space is None:
            out_space = Space.set_space(d.space.out_dims, space.params)
        out_sets.append(
            BasicSet(
                out_space,
                [_rebind_constraint(c, projected.space, out_space) for c in projected.constraints],
                exact=projected.exact,
            )
        )
    if out_space is None:
        raise AnalysisError("access map has no disjuncts")
    return Set(out_space, out_sets)


@dataclass
class Enumerator:
    """A compiled access-set enumerator for one (kernel, argument, mode)."""

    name: str
    kernel_name: str
    array: str
    arg_index: int
    mode: str  # "read" | "write"
    ndim: int
    image: Set
    scan: ScanFn
    param_order: Tuple[str, ...]
    exact: bool
    #: Memoized scan results ``(ranges, emitted, vectorized)``: iterative
    #: applications re-enumerate identical partitions every launch; the real
    #: runtime's generated C code does so cheaply, here we cache the Python
    #: scan (host *cost* is still charged per call by the runtime, from the
    #: recorded emit count). The third slot remembers which backend produced
    #: the entry so repeat requests attribute to the same counter.
    _cache: Dict[Tuple, Tuple[List[FlatRange], int, bool]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Whether cache misses may scan through the vectorized numpy backend
    #: (repro.poly.vectorize). False pins the scalar scanner — the ablation
    #: path — and is also set when an interpreted table is requested.
    specialize: bool = True
    #: Whether scans may be served from (and stored into) the memo above.
    #: False re-scans every request — the no-cache overhead ablation, which
    #: would otherwise understate the staged planner's savings because the
    #: memo predates (and survives) ``plan_cache=False``.
    memo: bool = True
    #: Vectorized-backend state: "unbuilt" until the first miss, then
    #: "ready" or "disabled" (program construction or a scan raised
    #: VectorizeError; scalar fallback from then on).
    _vec_state: str = field(default="unbuilt", repr=False, compare=False)
    _vec: Optional[object] = field(default=None, repr=False, compare=False)

    def pack_params(
        self,
        partition: Partition,
        block: Dim3,
        grid: Dim3,
        scalars: Mapping[str, int],
    ) -> Tuple[int, ...]:
        """Flatten runtime values into the scanner's parameter tuple."""
        bo = {}
        bi = {}
        for axis in ("z", "y", "x"):
            lo, hi = partition.range_of(axis)
            bd = block.axis(axis)
            # The box is spanned between the first and the *last* block's
            # coordinates (paper §6): blockOff ranges over
            # [lo*bd, (hi-1)*bd] inclusive — using hi*bd as the upper corner
            # would admit phantom offsets inside the last block and widen
            # every image by up to one block extent.
            bo[axis] = (lo * bd, (hi - 1) * bd + 1)
            bi[axis] = (lo, hi)
        values: Dict[str, int] = {
            "pbo_min_z": bo["z"][0],
            "pbo_max_z": bo["z"][1],
            "pbo_min_y": bo["y"][0],
            "pbo_max_y": bo["y"][1],
            "pbo_min_x": bo["x"][0],
            "pbo_max_x": bo["x"][1],
            "pbi_min_z": bi["z"][0],
            "pbi_max_z": bi["z"][1],
            "pbi_min_y": bi["y"][0],
            "pbi_max_y": bi["y"][1],
            "pbi_min_x": bi["x"][0],
            "pbi_max_x": bi["x"][1],
            "bd_z": block.z,
            "bd_y": block.y,
            "bd_x": block.x,
            "gd_z": grid.z,
            "gd_y": grid.y,
            "gd_x": grid.x,
        }
        out = []
        for name in self.param_order:
            if name in values:
                out.append(int(values[name]))
            elif name in scalars:
                out.append(int(scalars[name]))
            else:
                raise AnalysisError(f"enumerator {self.name}: no value for parameter {name!r}")
        return tuple(out)

    def element_ranges(
        self,
        partition: Partition,
        block: Dim3,
        grid: Dim3,
        scalars: Mapping[str, int],
        shape: Sequence[int],
        stats=None,
    ) -> Tuple[List[FlatRange], int]:
        """Merged flat (row-major) element ranges accessed by ``partition``.

        Returns ``(ranges, n_emitted)`` where ``n_emitted`` counts raw
        callback invocations (the runtime's per-range host cost driver) —
        the vectorized backend reproduces the same count without invoking a
        callback. ``stats`` (a ``RunStats``, optional) receives one
        ``enumerator_specialized``/``enumerator_fallback`` tick per request,
        attributed to the backend that produced the result — deterministic
        per call sequence even when another runtime already warmed the scan
        cache.
        """
        if partition.is_empty:
            return [], 0
        params = self.pack_params(partition, block, grid, scalars)
        key = (params, tuple(shape))
        cached = self._cache.get(key) if self.memo else None
        if cached is not None:
            ranges, count, vectorized = cached
            self._count(stats, vectorized)
            return ranges, count
        strides = [1] * len(shape)
        for d in range(len(shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        result = self._scan_vectorized(params, strides)
        vectorized = result is not None
        if result is None:
            raw: List[FlatRange] = []
            count = 0

            def emit(row: Tuple[int, ...], lo: int, hi: int) -> None:
                nonlocal count
                count += 1
                base = sum(r * s for r, s in zip(row, strides[:-1]))
                raw.append((base + lo, base + hi + 1))

            self.scan(params, emit)
            result = (merge_ranges(raw), count)
        self._count(stats, vectorized)
        if self.memo and len(self._cache) < 4096:
            self._cache[key] = (result[0], result[1], vectorized)
        return result

    @staticmethod
    def _count(stats, vectorized: bool) -> None:
        if stats is None:
            return
        if vectorized:
            stats.enumerator_specialized += 1
        else:
            stats.enumerator_fallback += 1

    def _scan_vectorized(
        self, params: Tuple[int, ...], strides: Sequence[int]
    ) -> Optional[Tuple[List[FlatRange], int]]:
        """One scan through the memoized numpy program; None means fall back."""
        if not self.specialize or self._vec_state == "disabled":
            return None
        if self._vec_state == "unbuilt":
            try:
                node, names = prepare_scanner(self.image, self.param_order)
                self._vec = vector_program(node, names)
            except VectorizeError:
                self._vec_state = "disabled"
                return None
            self._vec_state = "ready"
        try:
            return self._vec.run(params, strides)
        except VectorizeError:
            self._vec_state = "disabled"
            return None


def merge_ranges(ranges: List[FlatRange]) -> List[FlatRange]:
    """Sort and coalesce overlapping/adjacent half-open ranges."""
    if not ranges:
        return []
    ranges = sorted(ranges)
    out = [ranges[0]]
    for lo, hi in ranges[1:]:
        last_lo, last_hi = out[-1]
        if lo <= last_hi:
            if hi > last_hi:
                out[-1] = (last_lo, hi)
        else:
            out.append((lo, hi))
    return out


def build_enumerator(
    info: KernelAccessInfo,
    array: str,
    mode: str,
    *,
    use_codegen: bool = True,
) -> Enumerator:
    """Generate the enumerator for one (kernel, array, mode) access map."""
    bucket = info.reads if mode == "read" else info.writes
    if array not in bucket:
        raise AnalysisError(f"kernel {info.kernel.name!r} has no {mode} access to {array!r}")
    access = bucket[array]
    image = _partitioned_image(access)
    param_order = PARTITION_PARAMS + tuple(
        p for p in image.space.params if p not in PARTITION_PARAMS
    )
    factory = compile_scanner if use_codegen else interpreted_scanner
    scan = factory(image, param_order)
    arg_index = info.kernel.param_index(array)
    return Enumerator(
        name=f"{info.kernel.name}__arg{arg_index}__{mode}",
        kernel_name=info.kernel.name,
        array=array,
        arg_index=arg_index,
        mode=mode,
        ndim=len(image.space.out_dims),
        image=image,
        scan=scan,
        param_order=param_order,
        exact=access.exact and image.exact,
        # The interpreted ablation quantifies scalar tree-walking; letting
        # it silently vectorize would measure nothing.
        specialize=use_codegen,
    )


class EnumeratorTable:
    """All enumerators of one application, keyed by (kernel, array, mode)."""

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str, str], Enumerator] = {}

    def add(self, enum: Enumerator) -> None:
        self._table[(enum.kernel_name, enum.array, enum.mode)] = enum

    def get(self, kernel_name: str, array: str, mode: str) -> Optional[Enumerator]:
        return self._table.get((kernel_name, array, mode))

    def for_kernel(self, kernel_name: str, mode: str) -> List[Enumerator]:
        return [
            e
            for (k, _, m), e in sorted(self._table.items())
            if k == kernel_name and m == mode
        ]

    def all(self) -> List[Enumerator]:
        """Every enumerator in the table, in deterministic key order."""
        return [e for _, e in sorted(self._table.items())]

    def __len__(self) -> int:
        return len(self._table)

    @staticmethod
    def build(info: KernelAccessInfo, *, use_codegen: bool = True) -> "EnumeratorTable":
        table = EnumeratorTable()
        for array in info.reads:
            table.add(build_enumerator(info, array, "read", use_codegen=use_codegen))
        for array in info.writes:
            table.add(build_enumerator(info, array, "write", use_codegen=use_codegen))
        return table
