"""Partitioning strategy selection and grid partitions.

The analysis stores a "suggested partitioning strategy" with each kernel
model (paper §4). The strategy implemented — and the only one the paper's
prototype uses — splits the thread grid into contiguous block ranges along
one axis. The axis is chosen so that grid locality translates into memory
locality: prefer the axis that drives the *slowest-varying* (row) dimension
of the written arrays, since then each partition writes a contiguous
row-major region and the buffer trackers stay at one segment per device
(paper §8.1 discusses exactly this effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.access_analysis import KernelAccessInfo
from repro.cuda.dim3 import Dim3
from repro.errors import PartitioningError

__all__ = ["Partition", "PartitionStrategy", "choose_strategy"]

_AXIS_OF_DIM = {"bo_z": "z", "bi_z": "z", "bo_y": "y", "bi_y": "y", "bo_x": "x", "bi_x": "x"}
_GID_AXIS = {"g_z": "z", "g_y": "y", "g_x": "x"}


@dataclass(frozen=True)
class Partition:
    """A box of thread blocks: half-open index ranges per grid axis."""

    z: Tuple[int, int]
    y: Tuple[int, int]
    x: Tuple[int, int]

    def range_of(self, axis: str) -> Tuple[int, int]:
        return getattr(self, axis)

    @property
    def n_blocks(self) -> int:
        return (
            (self.z[1] - self.z[0]) * (self.y[1] - self.y[0]) * (self.x[1] - self.x[0])
        )

    @property
    def is_empty(self) -> bool:
        return self.n_blocks <= 0

    def grid(self) -> Dim3:
        """The partition-local launch grid (Equation 10 of the paper)."""
        return Dim3(
            x=max(1, self.x[1] - self.x[0]),
            y=max(1, self.y[1] - self.y[0]),
            z=max(1, self.z[1] - self.z[0]),
        )

    @staticmethod
    def whole(grid: Dim3) -> "Partition":
        return Partition(z=(0, grid.z), y=(0, grid.y), x=(0, grid.x))

    def as_tuple(self) -> Tuple[int, int, int, int, int, int]:
        """(min_z, max_z, min_y, max_y, min_x, max_x)."""
        return (self.z[0], self.z[1], self.y[0], self.y[1], self.x[0], self.x[1])


@dataclass(frozen=True)
class PartitionStrategy:
    """Contiguous block split along one grid axis."""

    axis: str  # 'z' | 'y' | 'x'
    kind: str = "block_linear"

    def partitions(self, grid: Dim3, n_parts: int) -> List[Partition]:
        """Split ``grid`` into ``n_parts`` balanced contiguous partitions.

        When there are fewer blocks than parts along the split axis, the
        trailing partitions are empty (callers skip them).
        """
        if n_parts < 1:
            raise PartitioningError(f"cannot split a grid into {n_parts} partitions")
        extent = grid.axis(self.axis)
        base, extra = divmod(extent, n_parts)
        ranges: List[Tuple[int, int]] = []
        start = 0
        for i in range(n_parts):
            size = base + (1 if i < extra else 0)
            ranges.append((start, start + size))
            start += size
        out = []
        full = Partition.whole(grid)
        for r in ranges:
            out.append(
                Partition(
                    z=r if self.axis == "z" else full.z,
                    y=r if self.axis == "y" else full.y,
                    x=r if self.axis == "x" else full.x,
                )
            )
        return out


def _coupled_axes(info: KernelAccessInfo) -> Dict[str, int]:
    """For each grid axis, the smallest written-array dim it addresses."""
    coupling: Dict[str, int] = {}
    for access in info.writes.values():
        for disjunct in access.access_map.disjuncts:
            space = disjunct.space
            for c in disjunct.constraints:
                # A constraint ties axis w to out dim j when both appear.
                axes = set()
                dims = set()
                for i, name in enumerate(space.all_names):
                    if c.vec[i + 1] == 0:
                        continue
                    if name in _AXIS_OF_DIM:
                        axes.add(_AXIS_OF_DIM[name])
                    elif name.startswith("a") and name[1:].isdigit():
                        dims.add(int(name[1:]))
                for axis in axes:
                    for j in dims:
                        coupling[axis] = min(coupling.get(axis, j), j)
    return coupling


def choose_strategy(info: KernelAccessInfo) -> PartitionStrategy:
    """Pick the split axis from the kernel's write maps.

    Prefers the axis coupled to the slowest-varying written dimension; ties
    are broken toward ``y`` then ``x`` then ``z`` (matching the 2-D row-split
    the paper's workloads use). Kernels that write nothing partition along
    ``x``.
    """
    coupling = _coupled_axes(info)
    if not coupling:
        return PartitionStrategy(axis="x")
    best_dim = min(coupling.values())
    candidates = [a for a, j in coupling.items() if j == best_dim]
    for preferred in ("y", "x", "z"):
        if preferred in candidates:
            return PartitionStrategy(axis=preferred)
    return PartitionStrategy(axis=candidates[0])
