"""Runtime exactness validation of write-set scans (hybrid static/dynamic).

Fourier-Motzkin projection reports a write map as possibly over-approximated
whenever it eliminates ``threadIdx`` dimensions that carry non-unit
coefficients — the signature of flat (1-D) CUDA indexing like
``row * N + col``. The scan of such a map is the *rational hull* of the
written elements; soundness requires that every element of the hull is
really written.

This module proves exactly that, at launch time, with concrete launch
values (the paper's §4 notes its maps are valid "provided the constraint
blockOff = blockId * blockDim is satisfied" — the same hybrid compile-time /
launch-time split):

* Per disjunct, the written values of a 1-D affine index
  ``c + sum(K_i * x_i)`` over box-shaped variable ranges form an arithmetic
  progression of stride ``s = gcd(K_i)`` *without gaps* iff the mixed-radix
  coverage condition holds: sorting terms by ``|K_i|``, each ``|K_i|/s``
  must not exceed the width already covered.
* The union of disjuncts is contiguous iff they share the stride and their
  offsets cover all residues mod ``s`` (e.g. the four field offsets of an
  N-Body float4 record).

If validation fails the runtime falls back to single-GPU execution for
that launch — never to an unsound partitioned run.

Limitations (checked, not assumed): only 1-D arrays, no loop iterators in
the subscript, and guards may only trim the ends of the index range (true
for the ubiquitous ``if (gid < n)`` pattern; multi-sided interior guards
are only supported through multi-dimensional subscripts, which are exact
in the first place).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.strategy import Partition
from repro.cuda.dim3 import Dim3

__all__ = ["CoverageTerm", "CoverageDisjunct", "CoverageSpec", "coverage_validates"]


@dataclass(frozen=True)
class CoverageTerm:
    """One ``K * dim`` term of a write subscript (dim in the 9-D grid space)."""

    dim: str  # one of IN_DIMS9
    coeff: int


@dataclass(frozen=True)
class GuardSpec:
    """One affine guard ``const + sum(terms) >= 0`` over grid dimensions."""

    const: int
    terms: Tuple[CoverageTerm, ...]


@dataclass(frozen=True)
class CoverageDisjunct:
    """One write access: ``const + sum(terms)`` into a 1-D array."""

    const: int
    terms: Tuple[CoverageTerm, ...]
    guards: Tuple[GuardSpec, ...] = ()


@dataclass(frozen=True)
class CoverageSpec:
    """All write accesses of one (kernel, array) pair needing validation."""

    array: str
    disjuncts: Tuple[CoverageDisjunct, ...]


def _dim_extent(dim: str, partition: Partition, block: Dim3, grid: Dim3) -> Optional[int]:
    """Number of integer values the scanners assume for one grid dimension.

    Must match the box the enumerators constrain (see
    ``repro.compiler.enumerators.Enumerator.pack_params``): ``blockOff``
    spans ``[lo*bd, (hi-1)*bd]`` as *integers* (the box over-approximation),
    ``blockIdx`` spans ``[lo, hi)``, ``threadIdx`` spans ``[0, bd)``.
    """
    kind, _, axis = dim.partition("_")
    bd = block.axis(axis)
    lo, hi = partition.range_of(axis)
    if kind == "ti":
        return bd
    if kind == "bi":
        return hi - lo
    if kind == "bo":
        return (hi - 1) * bd - lo * bd + 1
    return None


def _dim_interval(
    dim: str, partition: Partition, block: Dim3, grid: Dim3
) -> Optional[Tuple[int, int]]:
    """Inclusive [lo, hi] a dimension spans under the scanners' box."""
    kind, _, axis = dim.partition("_")
    bd = block.axis(axis)
    lo, hi = partition.range_of(axis)
    if kind == "ti":
        return (0, bd - 1)
    if kind == "bi":
        return (lo, hi - 1)
    if kind == "bo":
        return (lo * bd, (hi - 1) * bd)
    return None


def _guard_admissible(
    guard: GuardSpec,
    index: CoverageDisjunct,
    partition: Partition,
    block: Dim3,
    grid: Dim3,
) -> bool:
    """A guard is safe iff it trims only the ends of the whole progression
    (its term vector is proportional to the index's) or it is redundant over
    the partition box (its minimum there is already non-negative)."""
    g = {t.dim: t.coeff for t in guard.terms}
    ix = {t.dim: t.coeff for t in index.terms}
    if g and set(g) == set(ix):
        # Proportionality g = q * ix (the same rational q for every dim):
        # cross-multiplication must agree pairwise.
        dims = list(g)
        d0 = dims[0]
        if all(g[d0] * ix[d] == g[d] * ix[d0] for d in dims):
            return True
    # Redundancy: min of the guard affine over the box is >= 0.
    total = guard.const
    for t in guard.terms:
        interval = _dim_interval(t.dim, partition, block, grid)
        if interval is None:
            return False
        lo, hi = interval
        total += t.coeff * (lo if t.coeff > 0 else hi)
    return total >= 0


def _disjunct_progression(
    d: CoverageDisjunct, partition: Partition, block: Dim3, grid: Dim3
) -> Optional[Tuple[int, int]]:
    """(stride, width) of the values a disjunct writes, or None.

    The achievable values are ``{base + s*t : 0 <= t < width}`` where ``s``
    is the gcd of the coefficients — *iff* the mixed-radix condition holds;
    otherwise the value set has gaps coarser than ``s`` and we give up.
    """
    for guard in d.guards:
        if not _guard_admissible(guard, d, partition, block, grid):
            return None
    if not d.terms:
        return (1, 1)
    sizes: List[Tuple[int, int]] = []  # (|K|, extent)
    stride = 0
    for t in d.terms:
        extent = _dim_extent(t.dim, partition, block, grid)
        if extent is None:
            return None
        if extent <= 0:
            return None
        if extent > 1:
            stride = gcd(stride, abs(t.coeff))
            sizes.append((abs(t.coeff), extent))
    if not sizes:
        return (1, 1)
    sizes.sort()
    width = 1  # in units of `stride`
    for k, extent in sizes:
        k //= stride
        if k > width:
            return None  # gap coarser than the stride
        width += k * (extent - 1)
    return (stride, width)


def coverage_validates(
    spec: CoverageSpec, partition: Partition, block: Dim3, grid: Dim3
) -> bool:
    """True when the union of the write disjuncts is provably contiguous.

    Contiguity of the union (given per-disjunct stride-``s`` progressions)
    requires a shared stride, offsets covering every residue class mod
    ``s``, and per-residue extents that tile without holes. Together with
    the exact interval endpoints the rational scan produces, this implies
    the scanned union equals the true write set.
    """
    progressions = []
    for d in spec.disjuncts:
        prog = _disjunct_progression(d, partition, block, grid)
        if prog is None:
            return False
        progressions.append(prog)
    strides = {s for s, _ in progressions}
    if len(strides) != 1:
        return False
    stride = strides.pop()
    if stride == 1:
        return True
    # Residues mod stride must be fully covered with equal widths.
    residues: Dict[int, int] = {}
    for d, (s, width) in zip(spec.disjuncts, progressions):
        r = d.const % s
        residues[r] = max(residues.get(r, 0), width)
    if set(residues) != set(range(stride)):
        return False
    return len(set(residues.values())) == 1
