"""Exception hierarchy for the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can distinguish "this kernel cannot be partitioned" (an expected, recoverable
analysis outcome) from genuine programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PolyhedralError",
    "NonAffineError",
    "SpaceMismatchError",
    "ParseError",
    "KernelIRError",
    "ValidationError",
    "ExecutionError",
    "AnalysisError",
    "PartitioningError",
    "InjectivityError",
    "RewriteError",
    "RuntimeApiError",
    "UnsupportedMemcpyError",
    "TrackerError",
    "SimulationError",
    "CalibrationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class PolyhedralError(ReproError):
    """Base class for errors in the polyhedral library (:mod:`repro.poly`)."""


class NonAffineError(PolyhedralError):
    """An expression required to be affine is not affine.

    Raised both by the polyhedral layer (e.g. multiplying two symbolic
    affine expressions) and by the compiler's access analysis when a kernel
    subscript cannot be modelled.
    """


class SpaceMismatchError(PolyhedralError):
    """Two polyhedral objects live in incompatible spaces."""


class ParseError(PolyhedralError):
    """Malformed isl-notation input to :func:`repro.poly.parser.parse_set`."""


class KernelIRError(ReproError):
    """Base class for errors in the mini-CUDA kernel IR."""


class ValidationError(KernelIRError):
    """A kernel failed IR validation (type errors, malformed structure)."""


class ExecutionError(KernelIRError):
    """A kernel failed during (vectorized) execution."""


class AnalysisError(ReproError):
    """The polyhedral access analysis could not model a kernel."""


class PartitioningError(ReproError):
    """A kernel is not legal to partition across devices.

    This is the expected outcome for kernels whose write accesses cannot be
    modelled exactly; the paper falls back to single-GPU execution in this
    case and so do we.
    """


class InjectivityError(PartitioningError):
    """The write map of a kernel could not be proven injective."""


class RewriteError(ReproError):
    """The source-to-source host rewriter could not transform an input."""


class RuntimeApiError(ReproError):
    """Misuse of the runtime library's CUDA-replacement API."""


class UnsupportedMemcpyError(RuntimeApiError):
    """A memcpy direction that the runtime does not support (device-to-device)."""


class TrackerError(RuntimeApiError):
    """Inconsistent state in a virtual buffer's segment tracker."""


class SimulationError(ReproError):
    """Errors in the discrete-event machine simulator."""


class CalibrationError(SimulationError):
    """Invalid machine-model calibration constants."""
