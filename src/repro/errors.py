"""Exception hierarchy for the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can distinguish "this kernel cannot be partitioned" (an expected, recoverable
analysis outcome) from genuine programming errors.

Two pieces of metadata ride on every error class:

* ``exit_code`` — the process exit status the CLI maps the error to.  Every
  concrete error class has a *distinct* nonzero code (asserted by the test
  suite), so scripts driving ``python -m repro`` can tell a validation
  failure from a partitioning rejection without parsing stderr.
* ``diagnostic_code`` — the stable ``RPxxx`` diagnostic code of the static
  analysis layer (:mod:`repro.analysis`), when the error corresponds to a
  lint finding.  Raise sites may override it per-instance via the ``code=``
  keyword; :func:`format_with_code` renders the canonical
  ``"RPxxx message"`` form used in kernel-model reject reasons.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "PolyhedralError",
    "NonAffineError",
    "SpaceMismatchError",
    "ParseError",
    "KernelIRError",
    "ValidationError",
    "ExecutionError",
    "AnalysisError",
    "LintError",
    "PartitioningError",
    "InjectivityError",
    "RewriteError",
    "RuntimeApiError",
    "UnsupportedMemcpyError",
    "TrackerError",
    "SimulationError",
    "CalibrationError",
    "ServeError",
    "AdmissionError",
    "TaskGraphError",
    "exit_code_for",
    "format_with_code",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""

    #: Process exit status the CLI maps this error class to.
    exit_code: int = 9
    #: Stable ``RPxxx`` diagnostic code of the static-analysis layer, when
    #: this error corresponds to a lint finding (class default; instances
    #: may override via the ``code=`` keyword).
    diagnostic_code: Optional[str] = None

    def __init__(self, *args: object, code: Optional[str] = None) -> None:
        super().__init__(*args)
        if code is not None:
            self.diagnostic_code = code


class PolyhedralError(ReproError):
    """Base class for errors in the polyhedral library (:mod:`repro.poly`)."""

    exit_code = 10


class NonAffineError(PolyhedralError):
    """An expression required to be affine is not affine.

    Raised both by the polyhedral layer (e.g. multiplying two symbolic
    affine expressions) and by the compiler's access analysis when a kernel
    subscript cannot be modelled.
    """

    exit_code = 11


class SpaceMismatchError(PolyhedralError):
    """Two polyhedral objects live in incompatible spaces."""

    exit_code = 12


class ParseError(PolyhedralError):
    """Malformed isl-notation input to :func:`repro.poly.parser.parse_set`."""

    exit_code = 13


class KernelIRError(ReproError):
    """Base class for errors in the mini-CUDA kernel IR."""

    exit_code = 20


class ValidationError(KernelIRError):
    """A kernel failed IR validation (type errors, malformed structure)."""

    exit_code = 21


class ExecutionError(KernelIRError):
    """A kernel failed during (vectorized) execution."""

    exit_code = 22


class AnalysisError(ReproError):
    """The polyhedral access analysis could not model a kernel."""

    exit_code = 30


class LintError(AnalysisError):
    """A static-analysis pass itself failed (not a finding — a pass bug or
    an input the pass framework cannot process)."""

    exit_code = 31


class PartitioningError(ReproError):
    """A kernel is not legal to partition across devices.

    This is the expected outcome for kernels whose write accesses cannot be
    modelled exactly; the paper falls back to single-GPU execution in this
    case and so do we.
    """

    exit_code = 40


class InjectivityError(PartitioningError):
    """The write map of a kernel could not be proven injective."""

    exit_code = 41
    diagnostic_code = "RP201"


class RewriteError(ReproError):
    """The source-to-source host rewriter could not transform an input."""

    exit_code = 50


class RuntimeApiError(ReproError):
    """Misuse of the runtime library's CUDA-replacement API."""

    exit_code = 60


class UnsupportedMemcpyError(RuntimeApiError):
    """A memcpy direction that the runtime does not support (device-to-device)."""

    exit_code = 61


class TrackerError(RuntimeApiError):
    """Inconsistent state in a virtual buffer's segment tracker."""

    exit_code = 62


class SimulationError(ReproError):
    """Errors in the discrete-event machine simulator."""

    exit_code = 70


class CalibrationError(SimulationError):
    """Invalid machine-model calibration constants."""

    exit_code = 71


class ServeError(ReproError):
    """Errors in the multi-tenant serving runtime (:mod:`repro.serve`)."""

    exit_code = 80


class AdmissionError(ServeError):
    """A job was rejected by admission control (bounded-queue backpressure).

    Carries a stable machine-readable ``reason`` code so clients can
    distinguish load shedding from programming errors without parsing the
    message text.
    """

    exit_code = 81
    #: Stable reason code for queue-full rejections.
    QUEUE_FULL = "SERVE_QUEUE_FULL"

    def __init__(self, *args: object, reason: str = QUEUE_FULL) -> None:
        super().__init__(*args)
        self.reason = reason


class TaskGraphError(ReproError):
    """Errors in the dynamic task-graph frontend (:mod:`repro.tasks`).

    Raised for malformed graphs: dependency cycles (including cycles closed
    through :class:`~repro.tasks.spec.TaskSpace` forward references),
    dependencies on task-space slots that were never bound to a task, and
    execution orders that violate the derived RAW/WAR/WAW edges.
    """

    exit_code = 82


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit status for an exception (1 for non-:class:`ReproError`)."""
    return exc.exit_code if isinstance(exc, ReproError) else 1


def format_with_code(exc: BaseException) -> str:
    """Render an error as ``"RPxxx message"`` when it carries a diagnostic code.

    Used for kernel-model reject reasons so that ``repro analyze`` and
    ``repro lint`` agree on the code identifying a rejection.  Errors without
    a diagnostic code (and messages that already start with their code)
    render unchanged.
    """
    text = str(exc)
    code = getattr(exc, "diagnostic_code", None)
    if code and not text.startswith(code):
        return f"{code} {text}"
    return text
