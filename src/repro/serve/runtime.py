"""The serving orchestrator: tenants, fair-share scheduling, admission.

:class:`ServeRuntime` wires the package together. Construction builds one
:class:`~repro.serve.tenant.TenantRuntime` per tenant, all sharing one
simulated machine and one tenant-keyed
:class:`~repro.sched.executor.DataflowLog`; ``submit`` runs admission
control and enqueues a :class:`~repro.serve.scheduler.Job`; ``step``
services the next WDRR pick under the submitting tenant's runtime, with
the machine trace stamped by tenant for per-tenant attribution;
``drain`` services everything queued and flushes every tenant's pipeline.

Isolation is by construction, not by locking: each tenant's functional
state (buffers, trackers, coherence) lives in its own namespaced runtime,
so interleaving tenants' jobs in *any* order yields bitwise-identical
per-tenant results — only the shared simulated clock and lanes contend.
A property test pins this, and a single tenant through this path
reproduces the direct ``MultiGpuApi`` run exactly (trace included, modulo
the tenant tag — see :func:`untenanted`).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.compiler.pipeline import CompiledApp
from repro.cuda.api import KernelCostFn
from repro.errors import ServeError
from repro.runtime.api import RunStats
from repro.runtime.config import RuntimeConfig
from repro.runtime.plancache import PlanCache
from repro.sched.executor import DataflowLog
from repro.serve.admission import AdmissionController
from repro.serve.scheduler import FairShareScheduler, Job
from repro.serve.tenant import TenantRuntime, TenantSpec
from repro.sim.engine import SimMachine
from repro.sim.trace import Interval

__all__ = ["ServeRuntime", "untenanted"]


def untenanted(intervals: Sequence[Interval]) -> List[Interval]:
    """The same intervals with the tenant tag cleared.

    The serve path records every interval under the serving tenant's id;
    the direct single-job path records None. This normalization is what
    the single-tenant identity tests compare under: serve(tenant 0) and
    ``api.run`` must produce *equal* interval sequences once the tag — the
    only serve-path addition — is removed.
    """
    return [replace(iv, tenant=None) for iv in intervals]


class ServeRuntime:
    """N tenants' launch streams multiplexed onto one shared machine."""

    def __init__(
        self,
        app: CompiledApp,
        config: RuntimeConfig,
        tenants: Union[int, Sequence[TenantSpec]],
        *,
        machine: Optional[SimMachine] = None,
        functional: bool = True,
        kernel_cost: Optional[KernelCostFn] = None,
        quantum: float = 1.0,
        queue_capacity: int = 64,
        shared_plan_cache: bool = False,
    ) -> None:
        if isinstance(tenants, int):
            if tenants < 1:
                raise ServeError(f"need at least one tenant, got {tenants}")
            specs = [TenantSpec(t) for t in range(tenants)]
        else:
            specs = list(tenants)
        if not specs:
            raise ServeError("need at least one tenant")
        ids = [s.tenant_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ServeError(f"duplicate tenant ids: {sorted(ids)}")
        self.machine = machine
        #: One dataflow log shared by every tenant: namespaced buffer ids
        #: keep tenants' (vb_id, dev) key ranges disjoint, so cross-launch
        #: dependency queries never couple two tenants' streams.
        self.dataflow = DataflowLog()
        #: With ``shared_plan_cache``, one skeleton cache serves every
        #: tenant: skeletons are fingerprint-determined and buffer-free,
        #: so N tenants running the same kernels compile, enumerate and
        #: partition once between them (per-tenant hit/miss counters are
        #: unaffected — they live in each tenant's stats). Tenants whose
        #: own config disables the plan cache stay uncached; residual
        #: replay caches remain strictly per-tenant.
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(config.plan_cache_capacity) if shared_plan_cache else None
        )
        self.runtimes: Dict[int, TenantRuntime] = {}
        for spec in specs:
            self.runtimes[spec.tenant_id] = TenantRuntime(
                spec.tenant_id,
                app,
                spec.config if spec.config is not None else config,
                machine=machine,
                functional=functional,
                kernel_cost=kernel_cost,
                dataflow=self.dataflow,
                plan_cache=self.plan_cache,
            )
        self.scheduler = FairShareScheduler(
            {s.tenant_id: s.weight for s in specs}, quantum=quantum
        )
        self.admission = AdmissionController(queue_capacity)
        self._job_ids = itertools.count()
        #: Jobs serviced to completion, in service order.
        self.completed: List[Job] = []
        #: Total WDRR cost serviced per tenant (the fairness measure).
        self.serviced_cost: Dict[int, float] = {t: 0.0 for t in self.runtimes}

    # -- introspection ------------------------------------------------------

    def api(self, tenant_id: int) -> TenantRuntime:
        """The namespaced runtime of one tenant (for setup/teardown calls)."""
        try:
            return self.runtimes[tenant_id]
        except KeyError:
            raise ServeError(f"unknown tenant {tenant_id}") from None

    @property
    def now(self) -> float:
        """Current simulated host time (0.0 for machine-less runs)."""
        return self.machine.now if self.machine else 0.0

    def aggregate_stats(self) -> RunStats:
        """All tenants' counters folded into one record via ``merge``."""
        return RunStats.merged(
            [self.runtimes[t].stats for t in sorted(self.runtimes)]
        )

    def queueing_delays(self, tenant_id: Optional[int] = None) -> List[float]:
        """Delays of completed jobs, optionally for one tenant."""
        return [
            job.queueing_delay
            for job in self.completed
            if tenant_id is None or job.tenant_id == tenant_id
        ]

    # -- the serving loop ---------------------------------------------------

    def submit(
        self,
        tenant_id: int,
        work: Callable[[TenantRuntime], None],
        *,
        cost: float = 1.0,
        arrival: Optional[float] = None,
        strict: bool = True,
    ) -> Optional[Job]:
        """Admit and enqueue one job for a tenant.

        ``strict=True`` raises :class:`~repro.errors.AdmissionError`
        (reason ``SERVE_QUEUE_FULL``) when the tenant's bounded queue is
        full; ``strict=False`` sheds the job instead (returns None, the
        shed is counted) — the open-loop benchmark's behaviour, where no
        client is waiting on the exception. ``arrival`` defaults to the
        current simulated time and feeds queueing-delay accounting.
        """
        self.api(tenant_id)  # validates the id
        pending = self.scheduler.pending(tenant_id)
        if strict:
            self.admission.require(tenant_id, pending)
        elif not self.admission.try_admit(tenant_id, pending):
            return None
        job = Job(
            job_id=next(self._job_ids),
            tenant_id=tenant_id,
            work=work,
            cost=cost,
            arrival=self.now if arrival is None else arrival,
        )
        self.scheduler.enqueue(job)
        return job

    def _trace(self):
        return self.machine.trace if self.machine is not None else None

    def step(self) -> Optional[Job]:
        """Service the next WDRR pick; None when every queue is empty."""
        job = self.scheduler.next_job()
        if job is None:
            return None
        api = self.runtimes[job.tenant_id]
        trace = self._trace()
        job.service_start = self.now
        if trace is not None:
            trace.current_tenant = job.tenant_id
        try:
            job.work(api)
        finally:
            if trace is not None:
                trace.current_tenant = None
        job.service_end = self.now
        self.completed.append(job)
        self.serviced_cost[job.tenant_id] += job.cost
        return job

    def drain(self) -> None:
        """Service every queued job, then flush every tenant's pipeline.

        Pipelined launches a tenant left buffered are issued under that
        tenant's trace attribution, in tenant-id order (deterministic).
        """
        while self.step() is not None:
            pass
        trace = self._trace()
        for tenant_id in sorted(self.runtimes):
            if trace is not None:
                trace.current_tenant = tenant_id
            try:
                self.runtimes[tenant_id].pipeline.flush()
            finally:
                if trace is not None:
                    trace.current_tenant = None
