"""Open-loop saturation benchmark behind ``repro bench serve``.

The study drives N tenants' launch streams at a controlled *offered load*
against one shared (cluster) machine and measures what a serving system
must get right at saturation:

* **throughput** (jobs/sec of simulated time) must *plateau* at the
  machine's capacity as offered load exceeds it — not collapse;
* **queueing delay** (p50/p99 of service start minus arrival) must stay
  bounded for admitted work — bounded queues + shedding, not unbounded
  backlog;
* **backpressure** must engage exactly when needed: zero shed under light
  load, nonzero shed when offered load exceeds capacity.

Arrivals are deterministic (job ``i`` arrives at ``i / rate``, tenants
round-robin), the scheduler is deterministic WDRR, and the clock is the
discrete-event simulator's — runs are exactly reproducible. Offered rates
are expressed as multiples of the measured capacity: a calibration pass
serves a back-to-back batch through one tenant and takes the mean per-job
service time.

:func:`single_tenant_identity_failures` is the other half of the bench's
self-check: one tenant through the serve path must reproduce the direct
:class:`~repro.runtime.api.MultiGpuApi` run bitwise — same output bytes,
same trace (modulo the tenant tag), same simulated clock, same stats.
:func:`shared_skeleton_identity_failures` extends it to the shared
skeleton cache: N tenants with one shared plan cache must be bitwise
identical to the same tenants with per-tenant caches, with only the
planner counters allowed to differ (and differ they must — the check
also proves the sharing engaged).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.pipeline import CompiledApp, compile_app
from repro.cuda.api import MemcpyKind
from repro.cuda.dim3 import Dim3
from repro.errors import ServeError
from repro.runtime.api import (
    HOST_PLANNER_COUNTERS,
    MultiGpuApi,
    RunStats,
    host_planner_counters,
)
from repro.runtime.config import RuntimeConfig
from repro.serve.runtime import ServeRuntime, untenanted
from repro.serve.tenant import TenantRuntime
from repro.sim.engine import SimMachine

__all__ = [
    "ServePoint",
    "build_serve_kernel",
    "saturation_study",
    "saturation_failures",
    "single_tenant_identity_failures",
    "shared_skeleton_identity_failures",
]

#: Problem size of one serve job (elements per launch).
JOB_ELEMS = 1 << 15
_BLOCK = 128


def build_serve_kernel():
    """The per-job kernel: a partition-aligned elementwise update.

    Reads match the linear distribution, so steady-state coherence traffic
    is zero and the saturation curves measure scheduling and compute
    contention, not transfer artifacts.
    """
    from repro.cuda.dtypes import f32
    from repro.cuda.ir.builder import KernelBuilder

    kb = KernelBuilder("serve_step")
    n = kb.scalar("n")
    x = kb.array("x", f32, (n,))
    y = kb.array("y", f32, (n,))
    gi = kb.global_id("x")
    with kb.if_(gi < n):
        y[gi,] = y[gi,] + x[gi,] * 0.5
    return kb.finish()


@dataclass(frozen=True)
class ServePoint:
    """One (tenant count, offered load) sample of the saturation sweep."""

    tenants: int
    n_nodes: int
    gpus_per_node: int
    #: Offered load as a multiple of measured capacity (1.0 = arrivals at
    #: exactly the rate one saturated server completes jobs).
    load: float
    #: Arrival rate in jobs per simulated second.
    offered_rate: float
    #: Calibrated mean per-job service time (seconds) the rates are
    #: expressed against.
    service_time: float
    queue_capacity: int
    submitted: int
    completed: int
    shed: int
    #: Simulated seconds from first arrival to full drain.
    wall: float
    #: Completed jobs per simulated second over the serving window.
    throughput: float
    p50_delay: float
    p99_delay: float
    #: Completed-job count per tenant (fairness witness).
    per_tenant_completed: Dict[int, int]
    #: Serviced WDRR cost per tenant.
    serviced_cost: Dict[int, float]
    #: Staged-planner counters (:data:`~repro.runtime.api.
    #: HOST_PLANNER_COUNTERS`) merged across all tenants' runtimes.
    host_counters: Dict[str, int] = field(default_factory=dict)


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[idx]


def _machine(n_nodes: int, gpus_per_node: int) -> SimMachine:
    from repro.harness.calibration import K80_NODE_SPEC, k80_cluster

    if n_nodes > 1:
        from repro.cluster.engine import ClusterSimMachine

        return ClusterSimMachine(k80_cluster(n_nodes, gpus_per_node))
    return SimMachine(K80_NODE_SPEC.with_gpus(gpus_per_node))


def _setup_tenant(api: MultiGpuApi, host_x: np.ndarray, host_y: np.ndarray):
    dx = api.cudaMalloc(host_x.nbytes)
    api.cudaMemcpy(dx, host_x, host_x.nbytes, MemcpyKind.HostToDevice)
    dy = api.cudaMalloc(host_y.nbytes)
    api.cudaMemcpy(dy, host_y, host_y.nbytes, MemcpyKind.HostToDevice)
    return dx, dy


def _job_work(kernel, grid, block, devs) -> Callable[[TenantRuntime], None]:
    def work(api: TenantRuntime) -> None:
        # One request-response cycle: launch, then wait for the results to
        # be observable (the response). The device sync is what couples
        # offered load to the machine's actual capacity.
        api.launch(kernel, grid, block, [JOB_ELEMS, *devs])
        api.cudaDeviceSynchronize()

    return work


def _drive(
    runtime: ServeRuntime,
    arrivals: Sequence[Tuple[float, int]],
    work_of: Dict[int, Callable[[TenantRuntime], None]],
) -> int:
    """Open-loop serve: admit arrivals as simulated time passes them.

    Returns the number of submissions that were admitted.
    """
    machine = runtime.machine
    assert machine is not None
    admitted = 0
    i = 0
    while True:
        now = machine.now
        while i < len(arrivals) and arrivals[i][0] <= now + 1e-12:
            at, tenant = arrivals[i]
            if runtime.submit(tenant, work_of[tenant], arrival=at, strict=False):
                admitted += 1
            i += 1
        if runtime.step() is None:
            if i < len(arrivals):
                machine.wait_until(arrivals[i][0], label="serve-idle", charge=False)
            else:
                break
    runtime.drain()
    return admitted


def _calibrate_service_time(
    app: CompiledApp,
    config: RuntimeConfig,
    n_nodes: int,
    gpus_per_node: int,
    kernel,
    grid,
    block,
    host_x,
    host_y,
    probe_jobs: int = 8,
) -> float:
    """Mean per-job service time of one tenant served back to back."""
    machine = _machine(n_nodes, gpus_per_node)
    runtime = ServeRuntime(app, config, 1, machine=machine, functional=False)
    devs = _setup_tenant(runtime.api(0), host_x, host_y)
    work = _job_work(kernel, grid, block, devs)
    # One warm-up job absorbs first-launch distribution traffic.
    runtime.submit(0, work)
    runtime.drain()
    start = machine.elapsed()
    for _ in range(probe_jobs):
        runtime.submit(0, work)
    runtime.drain()
    service = (machine.elapsed() - start) / probe_jobs
    if not (service > 0):
        raise ServeError("serve calibration produced a non-positive service time")
    return service


def saturation_study(
    tenants: int = 4,
    loads: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    jobs: int = 48,
    n_nodes: int = 2,
    gpus_per_node: int = 2,
    queue_capacity: int = 8,
    quantum: float = 1.0,
    schedule: str = "sequential",
) -> List[ServePoint]:
    """Sweep offered load against one shared machine; see module docstring.

    Each load point runs on a fresh machine and serve runtime (points are
    independent samples, not a continuation); ``jobs`` arrivals are offered
    per point, round-robin across ``tenants`` equal-weight tenants.
    """
    total = n_nodes * gpus_per_node
    config = RuntimeConfig(n_gpus=total, schedule=schedule)
    kernel = build_serve_kernel()
    app = compile_app([kernel])
    grid, block = Dim3(JOB_ELEMS // _BLOCK), Dim3(_BLOCK)
    host_x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)
    host_y = np.zeros(JOB_ELEMS, dtype=np.float32)

    service = _calibrate_service_time(
        app, config, n_nodes, gpus_per_node, kernel, grid, block, host_x, host_y
    )
    capacity_rate = 1.0 / service

    points: List[ServePoint] = []
    for load in loads:
        rate = load * capacity_rate
        machine = _machine(n_nodes, gpus_per_node)
        runtime = ServeRuntime(
            app,
            config,
            tenants,
            machine=machine,
            functional=False,
            quantum=quantum,
            queue_capacity=queue_capacity,
        )
        work_of = {}
        for t in sorted(runtime.runtimes):
            devs = _setup_tenant(runtime.api(t), host_x, host_y)
            work_of[t] = _job_work(kernel, grid, block, devs)
        serve_start = machine.elapsed()
        arrivals = [(serve_start + i / rate, i % tenants) for i in range(jobs)]
        _drive(runtime, arrivals, work_of)
        wall = machine.elapsed() - serve_start
        # Round float-epsilon residue (arrival == service start) to zero.
        delays = sorted(0.0 if abs(d) < 1e-12 else d for d in runtime.queueing_delays())
        per_tenant = {t: 0 for t in sorted(runtime.runtimes)}
        for job in runtime.completed:
            per_tenant[job.tenant_id] += 1
        points.append(
            ServePoint(
                tenants=tenants,
                n_nodes=n_nodes,
                gpus_per_node=gpus_per_node,
                load=load,
                offered_rate=rate,
                service_time=service,
                queue_capacity=queue_capacity,
                submitted=jobs,
                completed=len(runtime.completed),
                shed=runtime.admission.total_shed,
                wall=wall,
                throughput=len(runtime.completed) / wall if wall > 0 else 0.0,
                p50_delay=_quantile(delays, 0.50),
                p99_delay=_quantile(delays, 0.99),
                per_tenant_completed=per_tenant,
                serviced_cost=dict(runtime.serviced_cost),
                host_counters=host_planner_counters(
                    RunStats.merged(
                        [runtime.api(t).stats for t in sorted(runtime.runtimes)]
                    )
                ),
            )
        )
    return points


def saturation_failures(points: Sequence[ServePoint]) -> List[str]:
    """Self-checks proving graceful saturation (empty list = all pass)."""
    failures: List[str] = []
    if not points:
        return ["saturation study produced no points"]
    peak = max(p.throughput for p in points)
    top = max(points, key=lambda p: p.load)
    for p in points:
        if p.completed + p.shed != p.submitted:
            failures.append(
                f"conservation: load {p.load:g}: {p.completed} completed + "
                f"{p.shed} shed != {p.submitted} submitted"
            )
        if any(d < -1e-12 for d in (p.p50_delay, p.p99_delay)):
            failures.append(f"negative queueing delay at load {p.load:g}")
        if p.load <= 0.5 and p.shed:
            failures.append(
                f"backpressure misfire: {p.shed} jobs shed at light load {p.load:g}"
            )
        # Bounded p99 for admitted work: an admitted job waits behind at
        # most its tenant's bounded queue, and WDRR guarantees its tenant
        # at least a 1/tenants service share — so capacity * tenants
        # service times (2x margin for quantization) bounds the delay.
        bound = p.service_time * (p.queue_capacity + 2) * p.tenants * 2.0
        if p.p99_delay > bound:
            failures.append(
                f"unbounded delay: p99 {p.p99_delay:.4f}s exceeds the "
                f"admission-control bound {bound:.4f}s at load {p.load:g}"
            )
    if top.load > 1.0:
        if top.throughput < 0.85 * peak:
            failures.append(
                f"collapse: throughput at load {top.load:g} "
                f"({top.throughput:.2f} jobs/s) fell below 85% of the peak "
                f"({peak:.2f} jobs/s)"
            )
        if top.shed == 0:
            failures.append(
                f"backpressure never engaged: zero shed at overload {top.load:g}"
            )
        fair_share = top.completed / top.tenants
        for tenant, done in sorted(top.per_tenant_completed.items()):
            if done < 0.5 * fair_share:
                failures.append(
                    f"fairness: tenant {tenant} completed {done} jobs at load "
                    f"{top.load:g}, below half the fair share {fair_share:.1f}"
                )
    return failures


def single_tenant_identity_failures(
    n_nodes: int = 2,
    gpus_per_node: int = 2,
    schedule: str = "sequential",
    pipeline_window: int = 1,
    shared_copies: bool = False,
    iterations: int = 6,
) -> List[str]:
    """One tenant through the serve path must equal the direct api path.

    Runs the same call sequence (malloc, H2D, ``iterations`` launches,
    D2H) once on a plain :class:`~repro.runtime.api.MultiGpuApi` and once
    as a serve job of the only tenant, on identically-shaped machines, and
    compares output bytes, the full trace (modulo the tenant tag), the
    simulated clock and the stats record. Returns human-readable failures.
    """
    total = n_nodes * gpus_per_node
    config = RuntimeConfig(
        n_gpus=total,
        schedule=schedule,
        pipeline_window=pipeline_window,
        shared_copies=shared_copies,
    )
    kernel = build_serve_kernel()
    app = compile_app([kernel])
    grid, block = Dim3(JOB_ELEMS // _BLOCK), Dim3(_BLOCK)
    host_x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)
    host_y = np.zeros(JOB_ELEMS, dtype=np.float32)

    def sequence(api: MultiGpuApi) -> np.ndarray:
        dx, dy = _setup_tenant(api, host_x, host_y)
        for _ in range(iterations):
            api.launch(kernel, grid, block, [JOB_ELEMS, dx, dy])
        out = np.zeros_like(host_y)
        api.cudaMemcpy(out, dy, out.nbytes, MemcpyKind.DeviceToHost)
        return out

    direct_machine = _machine(n_nodes, gpus_per_node)
    direct = MultiGpuApi(app, config, machine=direct_machine)
    reference = sequence(direct)
    direct_elapsed = direct_machine.elapsed()

    serve_machine = _machine(n_nodes, gpus_per_node)
    runtime = ServeRuntime(app, config, 1, machine=serve_machine)
    results: Dict[str, np.ndarray] = {}
    runtime.submit(0, lambda api: results.__setitem__("out", sequence(api)))
    runtime.drain()
    serve_elapsed = serve_machine.elapsed()

    label = f"{n_nodes}x{gpus_per_node} {schedule} window={pipeline_window}"
    failures: List[str] = []
    if not np.array_equal(reference, results["out"]):
        failures.append(f"identity: serve output differs bitwise ({label})")
    if untenanted(serve_machine.trace.intervals) != direct_machine.trace.intervals:
        failures.append(f"identity: serve trace differs from direct trace ({label})")
    if serve_elapsed != direct_elapsed:
        failures.append(
            f"identity: serve clock {serve_elapsed!r} != direct clock "
            f"{direct_elapsed!r} ({label})"
        )
    if runtime.api(0).stats != direct.stats:
        failures.append(f"identity: serve stats differ from direct stats ({label})")
    if any(iv.tenant != 0 for iv in serve_machine.trace.intervals):
        failures.append(f"attribution: serve trace interval missing tenant tag ({label})")
    return failures


def shared_skeleton_identity_failures(
    n_gpus: int = 4,
    schedule: str = "sequential",
    tenants: int = 2,
    iterations: int = 6,
) -> List[str]:
    """The shared skeleton cache must be bitwise invisible per tenant.

    Runs the same N-tenant job sequence twice — once with per-tenant plan
    caches, once with one :class:`~repro.runtime.plancache.PlanCache`
    shared across all tenants — and compares per-tenant output bytes, the
    full machine trace (tenant tags included), the simulated clock, and
    each tenant's stats with the planner-counter slice masked out. The
    counters themselves prove the sharing engaged: follower tenants must
    rebuild nothing (zero skeleton misses) while their per-tenant hit
    counters keep counting.
    """
    config = RuntimeConfig(n_gpus=n_gpus, schedule=schedule)
    kernel = build_serve_kernel()
    app = compile_app([kernel])
    grid, block = Dim3(JOB_ELEMS // _BLOCK), Dim3(_BLOCK)
    host_x = np.linspace(0.0, 1.0, JOB_ELEMS, dtype=np.float32)
    host_y = np.zeros(JOB_ELEMS, dtype=np.float32)

    def run(shared: bool):
        machine = _machine(1, n_gpus)
        runtime = ServeRuntime(
            app, config, tenants, machine=machine, shared_plan_cache=shared
        )
        outs: Dict[int, np.ndarray] = {}

        def job_for(tenant: int) -> Callable[[TenantRuntime], None]:
            def work(api: TenantRuntime) -> None:
                dx, dy = _setup_tenant(api, host_x, host_y)
                for _ in range(iterations):
                    api.launch(kernel, grid, block, [JOB_ELEMS, dx, dy])
                out = np.zeros_like(host_y)
                api.cudaMemcpy(out, dy, out.nbytes, MemcpyKind.DeviceToHost)
                outs[tenant] = out

            return work

        for t in sorted(runtime.runtimes):
            runtime.submit(t, job_for(t))
        runtime.drain()
        stats = {t: runtime.api(t).stats for t in sorted(runtime.runtimes)}
        return outs, list(machine.trace.intervals), machine.elapsed(), stats

    shared_outs, shared_trace, shared_clock, shared_stats = run(True)
    solo_outs, solo_trace, solo_clock, solo_stats = run(False)

    failures: List[str] = []
    for t in sorted(solo_outs):
        if not np.array_equal(shared_outs[t], solo_outs[t]):
            failures.append(
                f"identity: tenant {t} output differs bitwise under the "
                f"shared skeleton cache"
            )
    if shared_trace != solo_trace:
        failures.append("identity: trace differs under the shared skeleton cache")
    if shared_clock != solo_clock:
        failures.append(
            f"identity: shared-cache clock {shared_clock!r} != per-tenant "
            f"clock {solo_clock!r}"
        )
    mask = {name: 0 for name in HOST_PLANNER_COUNTERS}
    for t in sorted(solo_stats):
        if dataclasses.replace(shared_stats[t], **mask) != dataclasses.replace(
            solo_stats[t], **mask
        ):
            failures.append(
                f"identity: tenant {t} stats differ beyond the planner "
                f"counters under the shared skeleton cache"
            )
    leader = min(shared_stats)
    for t in sorted(shared_stats):
        if t != leader and shared_stats[t].plan_cache_misses:
            failures.append(
                f"sharing: tenant {t} rebuilt "
                f"{shared_stats[t].plan_cache_misses} skeleton(s) despite "
                f"the shared cache"
            )
        if shared_stats[t].plan_cache_hits != solo_stats[t].plan_cache_hits + (
            0 if t == leader else solo_stats[t].plan_cache_misses
        ):
            failures.append(
                f"sharing: tenant {t} per-tenant hit counter lost "
                f"attribution under the shared cache"
            )
    return failures
