"""Per-tenant runtimes: namespaced views of one shared machine.

Every tenant gets its own :class:`TenantRuntime` — a full
:class:`~repro.runtime.api.MultiGpuApi` with its own virtual buffers,
trackers, stats, pipeline and (optionally overridden) config — all issuing
onto the *same* simulated machine. Isolation across tenants reduces to id
namespacing: virtual-buffer ids and launch indices are drawn from
tenant-qualified counters, so the shared
:class:`~repro.sched.executor.DataflowLog` (keyed by ``(vb_id, dev)``) and
the per-launch trace attribution can never alias two tenants' state.

Tenant 0's namespace is *exactly* the default single-job namespace
(``vb_ids`` from 1, launch indices from 0), which is what makes a single
tenant through the serve path bitwise- and trace-identical to the direct
``api.run`` path — the identity the serve tests pin.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.compiler.pipeline import CompiledApp
from repro.cuda.api import KernelCostFn
from repro.errors import ServeError
from repro.runtime.api import MultiGpuApi
from repro.runtime.config import RuntimeConfig
from repro.runtime.plancache import PlanCache
from repro.sched.executor import DataflowLog
from repro.sim.engine import SimMachine

__all__ = ["VB_NAMESPACE", "LAUNCH_NAMESPACE", "TenantSpec", "TenantRuntime"]

#: Stride between tenants' virtual-buffer id ranges. A tenant allocating
#: this many buffers in one run would collide with its neighbour; 2^24
#: buffers is far beyond any workload here (allocation itself would OOM
#: first), and the ids stay comfortably inside an int64.
VB_NAMESPACE = 1 << 24

#: Stride between tenants' launch-index ranges (same reasoning).
LAUNCH_NAMESPACE = 1 << 24


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant in a serving runtime.

    ``weight`` steers the fair-share scheduler: under saturation a tenant
    receives service in proportion to its weight. ``config`` overrides the
    serve runtime's base :class:`~repro.runtime.config.RuntimeConfig` for
    this tenant only (e.g. a different schedule or pipeline window); the
    GPU count must match the shared machine and therefore cannot vary per
    tenant.
    """

    tenant_id: int
    weight: float = 1.0
    config: Optional[RuntimeConfig] = None

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ServeError(f"tenant_id must be non-negative, got {self.tenant_id}")
        if not (self.weight > 0):
            raise ServeError(
                f"tenant {self.tenant_id}: weight must be positive, got {self.weight}"
            )


class TenantRuntime(MultiGpuApi):
    """One tenant's CUDA-replacement API on a shared machine.

    Behaves exactly like :class:`~repro.runtime.api.MultiGpuApi` — same
    orchestration, same stats, same pipeline — except that

    * virtual-buffer ids come from ``tenant_id * VB_NAMESPACE + 1`` up,
    * launch indices come from ``tenant_id * LAUNCH_NAMESPACE`` up,
    * the cross-launch :class:`~repro.sched.executor.DataflowLog` may be a
      *shared* instance handed in by the serve runtime: because its keys
      embed the namespaced buffer ids, tenants' dependency records live in
      disjoint key ranges of one log,
    * the plan-skeleton cache may likewise be a shared
      :class:`~repro.runtime.plancache.PlanCache`: skeletons are
      fingerprint-determined and buffer-free, so N tenants running the
      same kernels enumerate and partition once between them. The residual
      replay cache is *never* shared — residuals encode one runtime's
      coherence state.

    For ``tenant_id=0`` both counters degenerate to the defaults, so a
    lone tenant reproduces the single-job runtime exactly.
    """

    def __init__(
        self,
        tenant_id: int,
        app: CompiledApp,
        config: RuntimeConfig,
        *,
        machine: Optional[SimMachine] = None,
        functional: bool = True,
        kernel_cost: Optional[KernelCostFn] = None,
        dataflow: Optional[DataflowLog] = None,
        plan_cache: Optional["PlanCache"] = None,
    ) -> None:
        if tenant_id < 0:
            raise ServeError(f"tenant_id must be non-negative, got {tenant_id}")
        super().__init__(
            app, config, machine=machine, functional=functional, kernel_cost=kernel_cost
        )
        self.tenant_id = tenant_id
        if tenant_id:
            self._vb_ids = itertools.count(tenant_id * VB_NAMESPACE + 1)
            self._launch_counter = itertools.count(tenant_id * LAUNCH_NAMESPACE)
        if dataflow is not None:
            self.dataflow = dataflow
        # A shared skeleton cache only replaces a live per-tenant cache:
        # a tenant whose own config disabled plan caching keeps it off.
        if plan_cache is not None and self.plan_cache is not None:
            self.plan_cache = plan_cache
