"""Weighted deficit-round-robin (WDRR) fair-share scheduling.

Each tenant owns a FIFO ready queue of :class:`Job` items and a *deficit
counter*. The scheduler visits tenants in a fixed cyclic order; on the
first visit of a round it credits the tenant ``quantum * weight``, then
serves jobs from the head of that tenant's queue while the head job's
``cost`` fits the remaining deficit. A tenant whose queue drains forfeits
its leftover deficit (classic DRR — an idle tenant cannot bank service).

The result is weighted max-min fairness over job cost: under saturation
each backlogged tenant receives service in proportion to its weight,
regardless of how bursty the other tenants' submissions are, while an
uncontended tenant simply runs at its arrival rate. Deterministic by
construction — the visit order is tenant-id order and there is no
randomness — so serve runs are exactly reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional

from repro.errors import ServeError

__all__ = ["Job", "FairShareScheduler"]


@dataclass
class Job:
    """One unit of tenant work: a callable against the tenant's runtime.

    ``cost`` is the WDRR currency (1.0 for unit jobs; callers may pass
    e.g. an estimated service time so fairness is over time, not job
    count). Timestamps are stamped by the serve runtime: ``arrival`` at
    submission, ``service_start``/``service_end`` around execution —
    ``queueing_delay`` is the scheduler-induced wait the saturation
    benchmark reports p50/p99 over.
    """

    job_id: int
    tenant_id: int
    work: Callable[[object], None]
    cost: float = 1.0
    arrival: float = 0.0
    service_start: Optional[float] = None
    service_end: Optional[float] = None

    @property
    def queueing_delay(self) -> Optional[float]:
        """Seconds between arrival and service start (None until served)."""
        if self.service_start is None:
            return None
        return self.service_start - self.arrival


@dataclass
class _TenantState:
    weight: float
    queue: Deque[Job] = field(default_factory=deque)
    deficit: float = 0.0
    #: Whether this tenant already received its quantum for the current
    #: visit (cleared when the scheduler moves past it).
    credited: bool = False


class FairShareScheduler:
    """WDRR over per-tenant ready queues (see module docstring)."""

    def __init__(self, weights: Mapping[int, float], quantum: float = 1.0) -> None:
        if not weights:
            raise ServeError("scheduler needs at least one tenant")
        if not (quantum > 0):
            raise ServeError(f"quantum must be positive, got {quantum}")
        for tenant_id, weight in weights.items():
            if not (weight > 0):
                raise ServeError(
                    f"tenant {tenant_id}: weight must be positive, got {weight}"
                )
        self.quantum = quantum
        self._order: List[int] = sorted(weights)
        self._states: Dict[int, _TenantState] = {
            t: _TenantState(weight=weights[t]) for t in self._order
        }
        self._cursor = 0
        self._pending = 0

    def __len__(self) -> int:
        return self._pending

    def pending(self, tenant_id: int) -> int:
        """Jobs currently queued for one tenant."""
        return len(self._state_of(tenant_id).queue)

    def enqueue(self, job: Job) -> None:
        """Append a job to its tenant's ready queue (admission already done)."""
        if not (job.cost > 0):
            raise ServeError(f"job {job.job_id}: cost must be positive, got {job.cost}")
        self._state_of(job.tenant_id).queue.append(job)
        self._pending += 1

    def _state_of(self, tenant_id: int) -> _TenantState:
        try:
            return self._states[tenant_id]
        except KeyError:
            raise ServeError(f"unknown tenant {tenant_id}") from None

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._order)

    def next_job(self) -> Optional[Job]:
        """Pop the next job under WDRR, or None when every queue is empty."""
        if self._pending == 0:
            return None
        # Every full cycle credits each backlogged tenant quantum*weight, so
        # the head job of *some* queue becomes affordable after at most
        # ceil(max_cost / (quantum * min_weight)) cycles; the bound below is
        # a defensive backstop, not a real limit.
        max_cost = max(
            s.queue[0].cost for s in self._states.values() if s.queue
        )
        min_rate = self.quantum * min(s.weight for s in self._states.values())
        max_visits = (int(max_cost / min_rate) + 2) * len(self._order) + len(self._order)
        for _ in range(max_visits):
            tenant_id = self._order[self._cursor]
            state = self._states[tenant_id]
            if not state.queue:
                state.deficit = 0.0
                state.credited = False
                self._advance()
                continue
            if not state.credited:
                state.deficit += self.quantum * state.weight
                state.credited = True
            head = state.queue[0]
            if head.cost <= state.deficit:
                state.deficit -= head.cost
                state.queue.popleft()
                self._pending -= 1
                if not state.queue:
                    # Classic DRR: an emptied queue forfeits its leftover
                    # deficit — idle tenants cannot bank service credit.
                    state.deficit = 0.0
                    state.credited = False
                    self._advance()
                return head
            state.credited = False
            self._advance()
        raise ServeError("WDRR failed to converge (internal invariant broken)")
