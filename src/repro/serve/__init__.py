"""Multi-tenant serving runtime: concurrent launch streams on one machine.

One :class:`~repro.runtime.api.MultiGpuApi` owns the whole machine — the
paper's Figure 4 assumes a single job. This package multiplexes N
independent *tenants* onto one shared simulated machine:

* :mod:`repro.serve.tenant` — per-tenant runtimes with namespaced
  virtual-buffer ids, so trackers, coherence state and the shared
  :class:`~repro.sched.executor.DataflowLog` never alias across tenants;
* :mod:`repro.serve.scheduler` — a weighted deficit-round-robin fair-share
  scheduler over per-tenant ready queues;
* :mod:`repro.serve.admission` — bounded-queue admission control with a
  stable backpressure error code;
* :mod:`repro.serve.runtime` — the :class:`ServeRuntime` orchestrator tying
  the three together, with per-tenant stats and queueing-delay accounting;
* :mod:`repro.serve.bench` — the open-loop saturation benchmark behind
  ``repro bench serve``.

See ``docs/serving.md`` for the tenancy model and the saturation study.
"""

from repro.serve.admission import AdmissionController
from repro.serve.runtime import ServeRuntime, untenanted
from repro.serve.scheduler import FairShareScheduler, Job
from repro.serve.tenant import TenantRuntime, TenantSpec

__all__ = [
    "AdmissionController",
    "FairShareScheduler",
    "Job",
    "ServeRuntime",
    "TenantRuntime",
    "TenantSpec",
    "untenanted",
]
