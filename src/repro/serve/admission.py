"""Bounded-queue admission control with backpressure accounting.

A serving runtime that accepts unbounded work does not saturate gracefully
— queues (and queueing delay) grow without bound and p99 latency collapses
for *everyone*. The :class:`AdmissionController` caps each tenant's ready
queue: a submission against a full queue is rejected with the stable
:class:`~repro.errors.AdmissionError` reason code
``SERVE_QUEUE_FULL`` (strict mode) or counted as *shed* (open-loop mode,
used by the saturation benchmark, where the client is not waiting for an
exception). Either way the work already admitted keeps its latency bound:
a tenant's queue never holds more than ``capacity`` jobs, so the delay of
any admitted job is bounded by the time to drain ``capacity`` jobs per
backlogged tenant.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AdmissionError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Per-tenant bounded-queue admission with shed counters."""

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise AdmissionError(
                f"queue capacity must be a positive integer, got {capacity!r}",
                reason="SERVE_BAD_CAPACITY",
            )
        self.capacity = capacity
        #: Rejected submissions per tenant (both strict and shed paths).
        self.shed: Dict[int, int] = {}

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    def try_admit(self, tenant_id: int, pending: int) -> bool:
        """Admit one submission given the tenant's current queue length.

        Returns False — and counts the shed — when the queue is full.
        """
        if pending >= self.capacity:
            self.shed[tenant_id] = self.shed.get(tenant_id, 0) + 1
            return False
        return True

    def require(self, tenant_id: int, pending: int) -> None:
        """Strict admission: raise :class:`AdmissionError` when full."""
        if not self.try_admit(tenant_id, pending):
            raise AdmissionError(
                f"tenant {tenant_id}: ready queue full "
                f"({pending}/{self.capacity} jobs pending)",
                reason=AdmissionError.QUEUE_FULL,
            )
