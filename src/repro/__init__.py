"""Automated partitioning of data-parallel kernels using polyhedral compilation.

A from-scratch Python reproduction of Matz, Doerfert & Fröning (ICPP
Workshops 2020): an automatically partitioning compiler for data-parallel
kernels, its runtime system, and the simulated multi-GPU machine the
evaluation runs on.

Top-level convenience re-exports cover the quickstart path; see the
subpackages for the full API:

* :mod:`repro.poly` — the integer set library,
* :mod:`repro.cuda` — the mini-CUDA substrate,
* :mod:`repro.compiler` — the partitioning toolchain,
* :mod:`repro.runtime` — the multi-GPU runtime library,
* :mod:`repro.sim` — the machine timing model,
* :mod:`repro.workloads` — the paper's benchmarks,
* :mod:`repro.harness` — the evaluation harness.
"""

from repro._version import __version__
from repro.compiler import compile_app
from repro.cuda import CudaApi, Dim3, MemcpyKind, f32, f64, i32, i64
from repro.cuda.ir import KernelBuilder
from repro.runtime import MultiGpuApi, RuntimeConfig

__all__ = [
    "__version__",
    "compile_app",
    "CudaApi",
    "Dim3",
    "MemcpyKind",
    "f32",
    "f64",
    "i32",
    "i64",
    "KernelBuilder",
    "MultiGpuApi",
    "RuntimeConfig",
]
