"""Issue a launch plan onto the (simulated) machine, per policy.

The executor walks one :class:`~repro.sched.graph.LaunchPlan` and performs

* the **functional** work (numpy segment copies, interpreter kernel runs,
  tracker updates) — identical byte-for-byte in every policy, in the same
  host order, which is what makes the three policies bitwise-equivalent;
* the **simulated** work — where the policies differ:

  - ``sequential`` replays Figure 4 exactly: barrier-coupled transfers
    (:meth:`SimMachine.transfer`), a global device barrier, then the
    kernel launches;
  - ``overlap`` drops the barrier and issues transfers on the copy
    engines (:meth:`SimMachine.stream_transfer`) gated only by dataflow
    events, and each kernel partition waits only for the transfers
    feeding *its* read set;
  - ``overlap+p2p`` additionally routes device-to-device copies over
    direct peer DMA instead of staging them through host memory.

Cross-launch dependencies are carried by :class:`DataflowLog`: per
(virtual buffer, device instance) it remembers the last completion events
that wrote or read each *byte interval* of that instance. A transfer out
of an instance must wait for the kernel that produced those bytes (RAW); a
transfer into an instance must wait for the last reader/writer of the
overwritten bytes (WAR/WAW). Keying events by interval instead of whole
buffer means non-overlapping writes to the same instance no longer falsely
serialize — e.g. two partitions' halo copies into disjoint rows of one
neighbour's buffer proceed concurrently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cuda.exec.interpreter import run_kernel
from repro.cuda.ir.kernel import partition_field_name
from repro.runtime.sync import register_sharer
from repro.sched.graph import (
    KernelTask,
    LaunchPlan,
    PipelinedPlan,
    ReadSync,
    TransferTask,
)
from repro.sched.policy import SchedulePolicy
from repro.sim.trace import Category

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.api import MultiGpuApi

__all__ = [
    "DataflowLog",
    "execute_plan",
    "apply_plan_functional",
    "issue_plan_sim",
    "PipelineExecutor",
]

#: Interval lists longer than this collapse to their envelope — sound
#: (conservative) and keeps per-event queries O(small).
_MAX_EVENT_INTERVALS = 64

_Key = Tuple[int, int]
_Event = Tuple[int, int, float, Optional[int]]


class DataflowLog:
    """Last read/write completion events per (buffer, device, byte interval).

    Each table maps ``(vb_id, dev)`` to a short list of
    ``(lo, hi, event, wave)`` records. Noting an interval drops records it
    strictly dominates (contained, no later, same wave); querying takes the
    max event over overlapping records. Whole-buffer callers (fallback
    launches) simply pass the full byte range.

    **Waves.** A *dependence wave* groups launches that the task-graph
    frontend (:mod:`repro.tasks`) proved pairwise footprint-disjoint: any
    read/write or write/write overlap between two tasks induces a graph
    edge, so two tasks ready *simultaneously* cannot conflict. Kernel
    events are recorded under the issuing launch's wave and queries skip
    records of the *querying* wave — without this, the envelope collapse
    above would falsely serialize disjoint tiles of one shared buffer (the
    records of a whole wave collapse to a whole-buffer envelope that every
    peer then appears to conflict with). Transfer events are always
    recorded wave-less: a same-wave peer may legitimately consume a copy's
    bytes (overlapping *reads* carry no edge, and the sharer registry
    dedups the second copy), so copies must stay visible inside their own
    wave. Collapse is per-wave so the skip survives it; ``wave=None``
    everywhere (the default) reproduces the legacy single-envelope
    behavior bit for bit.
    """

    def __init__(self) -> None:
        self._write: Dict[_Key, List[_Event]] = {}
        self._read: Dict[_Key, List[_Event]] = {}

    @staticmethod
    def _note(
        table: Dict[_Key, List[_Event]],
        key: _Key,
        lo: int,
        hi: int,
        event: float,
        wave: Optional[int],
    ) -> None:
        if lo >= hi:
            return
        records = table.get(key)
        if records is None:
            table[key] = [(lo, hi, event, wave)]
            return
        # Cross-wave domination is unsound: a same-wave query skips the
        # dominating record but must still see the dominated one.
        kept = [
            r
            for r in records
            if not (lo <= r[0] and r[1] <= hi and r[2] <= event and r[3] == wave)
        ]
        kept.append((lo, hi, event, wave))
        if len(kept) > _MAX_EVENT_INTERVALS:
            by_wave: Dict[Optional[int], List[_Event]] = {}
            for r in kept:
                by_wave.setdefault(r[3], []).append(r)
            kept = [
                (
                    min(r[0] for r in grp),
                    max(r[1] for r in grp),
                    max(r[2] for r in grp),
                    w,
                )
                for w, grp in by_wave.items()
            ]
            if len(kept) > _MAX_EVENT_INTERVALS:
                # Pathologically many distinct waves: fold every wave but
                # the newest into one never-skipped envelope. Only the
                # current (newest) wave is ever queried for skipping.
                newest = max((w for w in by_wave if w is not None), default=None)
                old = [r for r in kept if r[3] != newest]
                kept = [r for r in kept if r[3] == newest] + [
                    (
                        min(r[0] for r in old),
                        max(r[1] for r in old),
                        max(r[2] for r in old),
                        None,
                    )
                ]
        table[key] = kept

    @staticmethod
    def _query(
        table: Dict[_Key, List[_Event]], key: _Key, lo: int, hi: int, wave: Optional[int]
    ) -> float:
        records = table.get(key)
        if not records:
            return 0.0
        return max(
            (
                e
                for l, h, e, w in records
                if l < hi and h > lo and (w is None or w != wave)
            ),
            default=0.0,
        )

    def note_write(
        self, vb_id: int, dev: int, lo: int, hi: int, event: float,
        wave: Optional[int] = None,
    ) -> None:
        self._note(self._write, (vb_id, dev), lo, hi, event, wave)

    def note_read(
        self, vb_id: int, dev: int, lo: int, hi: int, event: float,
        wave: Optional[int] = None,
    ) -> None:
        self._note(self._read, (vb_id, dev), lo, hi, event, wave)

    def write_event(
        self, vb_id: int, dev: int, lo: int, hi: int, wave: Optional[int] = None
    ) -> float:
        """Event after which the newest data in ``[lo, hi)`` is ready (RAW)."""
        return self._query(self._write, (vb_id, dev), lo, hi, wave)

    def instance_free(
        self, vb_id: int, dev: int, lo: int, hi: int, wave: Optional[int] = None
    ) -> List[float]:
        """Events after which ``[lo, hi)`` may be overwritten (WAR + WAW)."""
        return [
            self._query(self._read, (vb_id, dev), lo, hi, wave),
            self._query(self._write, (vb_id, dev), lo, hi, wave),
        ]

    def copy_deps(self, t: TransferTask, wave: Optional[int] = None) -> List[float]:
        """Dependency events of one stale-segment copy."""
        return [
            self.write_event(t.vb.vb_id, t.owner, t.start, t.end, wave)
        ] + self.instance_free(t.vb.vb_id, t.gpu, t.start, t.end, wave)


def _issue_transfer(
    api: "MultiGpuApi", policy: SchedulePolicy, t: TransferTask, label: str
) -> Optional[float]:
    """Functional copy plus simulated issue of one stale-segment transfer."""
    api.stats.sync_transfers += 1
    api.stats.sync_bytes += t.nbytes
    cluster = getattr(api, "cluster", None)
    if cluster is not None and not cluster.same_node(t.owner, t.gpu):
        api.stats.inter_node_transfers += 1
        api.stats.inter_node_bytes += t.nbytes
    if not api.config.transfers_enabled:
        return None
    if api.functional:
        t.vb.bytes_on(t.gpu)[t.start : t.end] = t.vb.bytes_on(t.owner)[t.start : t.end]
    if api.machine is None:
        return None
    launch = getattr(api, "_launch_index", None)
    wave = getattr(api, "_dataflow_wave", None)
    if policy.overlap:
        end = api.machine.stream_transfer(
            t.owner,
            t.gpu,
            t.nbytes,
            deps=api.dataflow.copy_deps(t, wave),
            category=Category.TRANSFERS,
            label=label,
            p2p=True if policy.p2p else None,
            launch=launch,
        )
    else:
        end = api.machine.transfer(
            t.owner, t.gpu, t.nbytes, category=Category.TRANSFERS, label=label,
            launch=launch,
        )
    # Dataflow events are recorded under every policy so that adjacent
    # launches of an adaptive (auto) run may mix policies soundly: an
    # overlap launch must see the copies its sequential predecessor issued.
    api.dataflow.note_read(t.vb.vb_id, t.owner, t.start, t.end, end)
    api.dataflow.note_write(t.vb.vb_id, t.gpu, t.start, t.end, end)
    return end


def _charge_read_sync(api: "MultiGpuApi", rs: ReadSync) -> None:
    """Host-cost and stats accounting of one read-enumerator evaluation."""
    api.stats.enumerator_calls += 1
    api.stats.ranges_emitted += rs.emitted
    api.stats.tracker_ops += len(rs.ranges)
    api.stats.tracker_query_ops += len(rs.ranges)
    api.stats.redundant_bytes_avoided += rs.avoided
    api.stats.redundant_bytes_avoided_inter += rs.avoided_inter
    api.stats.overapprox_bytes_avoided += rs.overapprox
    api.stats.overapprox_bytes_avoided_inter += rs.overapprox_inter
    if api.spec:
        # One aggregated host interval covering: the enumerator call, the
        # per-emitted-range callback work, and one tracker query per range.
        api.host_pattern_cost(
            api.spec.enumerator_call_cost
            + api.spec.per_range_cost * rs.emitted
            + api.spec.tracker_op_cost * max(len(rs.ranges), rs.n_segments)
        )


def _sequential_barrier(
    api: "MultiGpuApi",
    plan: LaunchPlan,
    transfer_events: Dict[int, float],
) -> Optional[Dict[int, float]]:
    """The post-transfer barrier of a ``barrier`` policy, per gang.

    On a flat machine or a 1-node cluster this is the global
    ``machine.synchronize()`` of Figure 4, unchanged. On a multi-node
    cluster the barrier is *per node*: each node's gang waits for its own
    resources to drain plus the completion of this plan's copies that
    touch the node — one node's interior copies no longer hold up every
    other node's kernels. Returns the per-node barrier events, or None
    when the global barrier ran.
    """
    machine = api.machine
    cluster = getattr(api, "cluster", None)
    if cluster is None or cluster.n_nodes <= 1:
        machine.synchronize()  # all_devs_synchronize()
        return None
    # One host-side barrier charge, exactly as the global path pays.
    machine.host_compute(machine.spec.sync_overhead, Category.HOST, "gang-sync")
    by_dag_node = {t.node: t for t in plan.transfers}
    events = {n: machine.node_resource_avail(n) for n in range(cluster.n_nodes)}
    for dag_node, end in transfer_events.items():
        t = by_dag_node.get(dag_node)
        if t is None:
            continue
        # Completion events, not lane occupancies: a cross-node copy's
        # per-resource busy windows (NIC, bus) can end before the copy's
        # full duration does.
        for n in {cluster.endpoint_node(t.owner), cluster.endpoint_node(t.gpu)}:
            if end > events[n]:
                events[n] = end
    return events


def _kernel_issue_order(
    api: "MultiGpuApi",
    plan: LaunchPlan,
    node_barriers: Optional[Dict[int, float]],
) -> List[Tuple[Optional[float], KernelTask]]:
    """Kernel issue sequence with per-node barrier waits attached.

    With ``node_barriers`` (multi-node sequential policy), kernels group
    by node and nodes issue in barrier-event order; the event rides on
    each node's first kernel, so the host waits for a node's gang barrier
    right before issuing that node's kernels and an early-barrier node
    starts while a late one is still copying. Partitions write disjoint
    ranges (and CUDA gives no cross-block write order anyway), so
    reordering across nodes cannot change functional results. Without
    barriers the plan order is kept with no waits.
    """
    if node_barriers is None:
        return [(None, k) for k in plan.kernels]
    cluster = api.cluster
    by_node: Dict[int, List[KernelTask]] = {}
    for ktask in plan.kernels:
        by_node.setdefault(cluster.node_of(ktask.gpu), []).append(ktask)
    order: List[Tuple[Optional[float], KernelTask]] = []
    for node in sorted(by_node, key=lambda n: (node_barriers.get(n, 0.0), n)):
        gang = by_node[node]
        order.append((node_barriers.get(node, 0.0), gang[0]))
        order.extend((None, ktask) for ktask in gang[1:])
    return order


def execute_plan(api: "MultiGpuApi", plan: LaunchPlan, policy: SchedulePolicy) -> None:
    """Run one launch plan end to end under the given policy."""
    ck = plan.ck
    machine = api.machine
    transfer_events: Dict[int, float] = {}
    node_barriers: Optional[Dict[int, float]] = None

    # ---- transfer phase (Figure 4 lines 2-8) ----------------------------
    if api.config.tracking_enabled:
        for syncs in plan.reads:
            if api.spec:
                api.host_pattern_cost(api.spec.partition_setup_cost)
            for rs in syncs:
                _charge_read_sync(api, rs)
                for t in rs.transfers:
                    end = _issue_transfer(api, policy, t, label=f"sync:{rs.array}")
                    if api.config.transfers_enabled:
                        register_sharer(api, t.vb, t.start, t.end, t.gpu)
                    if end is not None:
                        transfer_events[t.node] = end
        if machine and policy.barrier:
            node_barriers = _sequential_barrier(api, plan, transfer_events)

    # ---- kernel phase (Figure 4 lines 10-19) ----------------------------
    for barrier_event, ktask in _kernel_issue_order(api, plan, node_barriers):
        if barrier_event is not None and machine:
            machine.wait_until(barrier_event, label="node-barrier", charge=False)
        if api.spec:
            api.host_pattern_cost(api.spec.partition_setup_cost)
        if api.functional:
            _run_partition(api, plan, ktask)
        if machine:
            duration = 0.0
            if api.kernel_cost is not None:
                # Cost the *original* kernel: the partition clone only adds
                # loop-invariant offset arithmetic that any real backend
                # hoists (the paper measures a median 2.1 % single-GPU
                # slowdown, i.e. the clone itself is not slower).
                duration = api.kernel_cost(
                    ck.kernel, ktask.part.n_blocks, plan.block, plan.scalars
                )
            wave = getattr(api, "_dataflow_wave", None)
            deps: List[float] = []
            if policy.overlap:
                deps = [
                    transfer_events[n]
                    for n in ktask.transfer_deps
                    if n in transfer_events
                ]
                for vb, runs in ktask.reads:
                    for lo, hi in runs:
                        deps.append(
                            api.dataflow.write_event(vb.vb_id, ktask.gpu, lo, hi, wave)
                        )
                for vb, runs in ktask.writes:
                    for lo, hi in runs:
                        deps.extend(
                            api.dataflow.instance_free(vb.vb_id, ktask.gpu, lo, hi, wave)
                        )
            end = machine.launch_kernel(
                ktask.gpu, duration, label=ck.partitioned.name, deps=deps,
                launch=getattr(api, "_launch_index", None),
            )
            # Recorded under every policy (see _issue_transfer).
            for vb, runs in ktask.reads:
                for lo, hi in runs:
                    api.dataflow.note_read(vb.vb_id, ktask.gpu, lo, hi, end, wave)
            for vb, runs in ktask.writes:
                for lo, hi in runs:
                    api.dataflow.note_write(vb.vb_id, ktask.gpu, lo, hi, end, wave)
        api.stats.partition_launches += 1

    # ---- tracker-update phase (Figure 4 lines 21-26) --------------------
    # Host-side bookkeeping: runs concurrently with the asynchronous
    # kernels in every policy, in partition order, so the final tracker
    # state never depends on the schedule.
    if api.config.tracking_enabled:
        for ups in plan.updates:
            if api.spec:
                api.host_pattern_cost(api.spec.partition_setup_cost)
            for up in ups:
                api.stats.enumerator_calls += 1
                api.stats.ranges_emitted += up.emitted
                api.stats.tracker_ops += len(up.ranges)
                api.stats.tracker_update_ops += len(up.ranges)
                if api.spec:
                    api.host_pattern_cost(
                        api.spec.enumerator_call_cost
                        + api.spec.per_range_cost * up.emitted
                        + api.spec.tracker_op_cost * len(up.ranges)
                    )
                api.stats.tracker_invalidate_ops += up.vb.tracker.update_many(
                    up.ranges, up.gpu
                )


# ---------------------------------------------------------------------------
# Pipelined execution: eager functional phase + deferred simulated issue
# ---------------------------------------------------------------------------
#
# ``execute_plan`` above interleaves bookkeeping (stats, numpy copies,
# interpreter runs, tracker mutations) with simulated machine work. None of
# the bookkeeping touches the machine, so one launch can be split into
#
#   apply_plan_functional(api, plan)        # at submit time
#   issue_plan_sim(api, plan, policy, ...)  # at window flush
#
# with a machine-interaction sequence *identical* to ``execute_plan`` — the
# host charges, issue overheads, barriers and device ops replay in the same
# order with the same magnitudes. That identity is what makes
# ``pipeline_window=1`` reproduce the per-launch trace event for event (a
# property test pins it), while windows > 1 merely delay the whole issue
# sequence of launches k..k+w-1 until the window closes, letting a fused
# flush reorder transfer issue halo-first on clusters.
#
# Keeping the functional phase eager is essential for correctness: launch
# k+1's plan is *built* (tracker queries!) at submit time, so launch k's
# tracker updates and sharer registrations must already be applied — only
# the simulated clock lags behind.


def apply_plan_functional(api: "MultiGpuApi", plan: LaunchPlan) -> None:
    """The submit-time half of one launch: everything but the machine.

    Performs, in ``execute_plan``'s order, the stats accounting, functional
    segment copies, sharer registrations, kernel interpretation and tracker
    updates — and *no* simulated-machine interaction (no host charges, no
    device ops). Pairs with :func:`issue_plan_sim`.
    """
    if api.config.tracking_enabled:
        for syncs in plan.reads:
            for rs in syncs:
                api.stats.enumerator_calls += 1
                api.stats.ranges_emitted += rs.emitted
                api.stats.tracker_ops += len(rs.ranges)
                api.stats.tracker_query_ops += len(rs.ranges)
                api.stats.redundant_bytes_avoided += rs.avoided
                api.stats.redundant_bytes_avoided_inter += rs.avoided_inter
                api.stats.overapprox_bytes_avoided += rs.overapprox
                api.stats.overapprox_bytes_avoided_inter += rs.overapprox_inter
                for t in rs.transfers:
                    api.stats.sync_transfers += 1
                    api.stats.sync_bytes += t.nbytes
                    cluster = getattr(api, "cluster", None)
                    if cluster is not None and not cluster.same_node(t.owner, t.gpu):
                        api.stats.inter_node_transfers += 1
                        api.stats.inter_node_bytes += t.nbytes
                    if api.config.transfers_enabled:
                        if api.functional:
                            t.vb.bytes_on(t.gpu)[t.start : t.end] = t.vb.bytes_on(
                                t.owner
                            )[t.start : t.end]
                        register_sharer(api, t.vb, t.start, t.end, t.gpu, charge=False)

    for ktask in plan.kernels:
        if api.functional:
            _run_partition(api, plan, ktask)
        api.stats.partition_launches += 1

    if api.config.tracking_enabled:
        for ups in plan.updates:
            for up in ups:
                api.stats.enumerator_calls += 1
                api.stats.ranges_emitted += up.emitted
                api.stats.tracker_ops += len(up.ranges)
                api.stats.tracker_update_ops += len(up.ranges)
                api.stats.tracker_invalidate_ops += up.vb.tracker.update_many(
                    up.ranges, up.gpu
                )


def _charge_read_sync_sim(api: "MultiGpuApi", rs: ReadSync) -> None:
    """Host-cost half of :func:`_charge_read_sync` (stats already counted)."""
    if api.spec:
        api.host_pattern_cost(
            api.spec.enumerator_call_cost
            + api.spec.per_range_cost * rs.emitted
            + api.spec.tracker_op_cost * max(len(rs.ranges), rs.n_segments)
        )


def _issue_transfer_sim(
    api: "MultiGpuApi",
    policy: SchedulePolicy,
    t: TransferTask,
    label: str,
    events: Dict[int, float],
    launch: Optional[int],
    wave: Optional[int] = None,
) -> None:
    """Simulated-issue half of :func:`_issue_transfer` (+ sharer host cost)."""
    if not api.config.transfers_enabled:
        return
    if api.machine is not None:
        if policy.overlap:
            end = api.machine.stream_transfer(
                t.owner,
                t.gpu,
                t.nbytes,
                deps=api.dataflow.copy_deps(t, wave),
                category=Category.TRANSFERS,
                label=label,
                p2p=True if policy.p2p else None,
                launch=launch,
            )
        else:
            end = api.machine.transfer(
                t.owner, t.gpu, t.nbytes, category=Category.TRANSFERS, label=label,
                launch=launch,
            )
        api.dataflow.note_read(t.vb.vb_id, t.owner, t.start, t.end, end)
        api.dataflow.note_write(t.vb.vb_id, t.gpu, t.start, t.end, end)
        events[t.node] = end
    # The sharer registration itself happened at submit; its tracker-op
    # host charge belongs here, after the copy's issue, as in execute_plan.
    if api.config.shared_copies and api.config.tracking_enabled and api.spec:
        api.host_pattern_cost(api.spec.tracker_op_cost)


def issue_plan_sim(
    api: "MultiGpuApi",
    plan: LaunchPlan,
    policy: SchedulePolicy,
    *,
    launch: Optional[int] = None,
    wave: Optional[int] = None,
    transfer_order: Optional[Sequence[Tuple[ReadSync, TransferTask]]] = None,
) -> None:
    """The flush-time half of one launch: simulated host charges + device ops.

    Replays exactly the machine-interaction sequence of :func:`execute_plan`
    — pattern-cost charges, transfer issues, the sequential barrier, kernel
    launches, update-phase charges — for a plan whose functional half was
    already applied by :func:`apply_plan_functional`. ``launch`` tags every
    device op for per-launch trace attribution; ``wave`` is the launch's
    dependence wave captured at submit time (see :class:`DataflowLog`).

    ``transfer_order`` overrides the transfer *issue* order (the pipelined
    executor passes the halo-first tiers on clusters): the per-read-sync
    pattern charges are then batched ahead of the reordered copies, since
    every one of them precedes every copy in the fused view. With
    ``transfer_order=None`` the legacy interleaved order is preserved
    exactly.
    """
    machine = api.machine
    transfer_events: Dict[int, float] = {}
    node_barriers: Optional[Dict[int, float]] = None

    if api.config.tracking_enabled:
        if transfer_order is None:
            for syncs in plan.reads:
                if api.spec:
                    api.host_pattern_cost(api.spec.partition_setup_cost)
                for rs in syncs:
                    _charge_read_sync_sim(api, rs)
                    for t in rs.transfers:
                        _issue_transfer_sim(
                            api, policy, t, f"sync:{rs.array}", transfer_events,
                            launch, wave,
                        )
        else:
            for syncs in plan.reads:
                if api.spec:
                    api.host_pattern_cost(api.spec.partition_setup_cost)
                for rs in syncs:
                    _charge_read_sync_sim(api, rs)
            for rs, t in transfer_order:
                _issue_transfer_sim(
                    api, policy, t, f"sync:{rs.array}", transfer_events, launch, wave
                )
        if machine and policy.barrier:
            node_barriers = _sequential_barrier(api, plan, transfer_events)

    ck = plan.ck
    for barrier_event, ktask in _kernel_issue_order(api, plan, node_barriers):
        if barrier_event is not None and machine:
            machine.wait_until(barrier_event, label="node-barrier", charge=False)
        if api.spec:
            api.host_pattern_cost(api.spec.partition_setup_cost)
        if machine:
            duration = 0.0
            if api.kernel_cost is not None:
                duration = api.kernel_cost(
                    ck.kernel, ktask.part.n_blocks, plan.block, plan.scalars
                )
            deps: List[float] = []
            if policy.overlap:
                deps = [
                    transfer_events[n]
                    for n in ktask.transfer_deps
                    if n in transfer_events
                ]
                for vb, runs in ktask.reads:
                    for lo, hi in runs:
                        deps.append(
                            api.dataflow.write_event(vb.vb_id, ktask.gpu, lo, hi, wave)
                        )
                for vb, runs in ktask.writes:
                    for lo, hi in runs:
                        deps.extend(
                            api.dataflow.instance_free(vb.vb_id, ktask.gpu, lo, hi, wave)
                        )
            end = machine.launch_kernel(
                ktask.gpu, duration, label=ck.partitioned.name, deps=deps, launch=launch
            )
            for vb, runs in ktask.reads:
                for lo, hi in runs:
                    api.dataflow.note_read(vb.vb_id, ktask.gpu, lo, hi, end, wave)
            for vb, runs in ktask.writes:
                for lo, hi in runs:
                    api.dataflow.note_write(vb.vb_id, ktask.gpu, lo, hi, end, wave)

    if api.config.tracking_enabled:
        for ups in plan.updates:
            if api.spec:
                api.host_pattern_cost(api.spec.partition_setup_cost)
            for up in ups:
                if api.spec:
                    api.host_pattern_cost(
                        api.spec.enumerator_call_cost
                        + api.spec.per_range_cost * up.emitted
                        + api.spec.tracker_op_cost * len(up.ranges)
                    )


class PipelineExecutor:
    """Rolling-window batcher fusing consecutive launches into one DAG drain.

    ``submit`` applies a launch's functional half eagerly and buffers its
    plan in a :class:`~repro.sched.graph.PipelinedPlan`; once ``window``
    launches accumulate — or any host-visible operation (D2H memcpy,
    device/stream synchronize, memset, free, a user tracker query) calls
    :meth:`flush` — the buffered launches' simulated issue drains in
    program order. Cross-launch dependencies need no special casing: the
    :class:`DataflowLog` events recorded while draining launch k are
    exactly what launch k+1's transfer deps query.

    On clusters each flushed launch's transfers are issued halo-first (see
    :func:`repro.cluster.gang.transfer_priority_tiers`) when the window is
    fused (> 1). Under ``schedule="auto"`` the policy decision is deferred
    to the flush and made once over the *fused* window's transfer/compute
    estimate, so a transfer-light iteration inside a transfer-heavy window
    no longer flips the policy back and forth.
    """

    def __init__(self, api: "MultiGpuApi", window: int) -> None:
        self.api = api
        self.window = max(1, int(window))
        self.pending = PipelinedPlan()
        self._policies: List[Optional[SchedulePolicy]] = []

    @property
    def depth(self) -> int:
        """Number of launches currently buffered."""
        return len(self.pending)

    def submit(self, plan: LaunchPlan, policy: Optional[SchedulePolicy]) -> None:
        """Apply one launch's functional half and buffer its simulated issue.

        ``policy=None`` marks an adaptive (``auto``) launch whose concrete
        policy is chosen at flush time over the fused window.
        """
        apply_plan_functional(self.api, plan)
        self.pending.append(
            plan,
            getattr(self.api, "_launch_index", self.depth),
            wave=getattr(self.api, "_dataflow_wave", None),
        )
        self._policies.append(policy)
        if self.depth >= self.window:
            self.flush()

    #: Halo-first reordering applies only when the node-crossing copies are
    #: a *minority* of the plan's transfer bytes. The priority targets seam
    #: exchanges (a thin halo ahead of a fat interior); when most traffic
    #: crosses nodes anyway — e.g. an all-to-all broadcast — there is no
    #: interior worth backfilling and hoisting the whole network leg only
    #: delays the intra-node copies it was meant to overlap with.
    HALO_MAJORITY_RATIO = 0.5

    def _transfer_order(self, plan: LaunchPlan):
        """Halo-first issue order for one plan, or None to keep plan order."""
        cluster = getattr(self.api, "cluster", None)
        if cluster is None or self.window <= 1:
            return None
        from repro.cluster.gang import transfer_priority_tiers

        tiers = transfer_priority_tiers(plan, cluster)
        if len(set(tiers.values())) <= 1:
            return None
        total = sum(t.nbytes for t in plan.transfers)
        halo = sum(t.nbytes for t in plan.transfers if tiers[t.node] == 0)
        if total == 0 or halo >= self.HALO_MAJORITY_RATIO * total:
            return None
        pairs = [
            (rs, t) for syncs in plan.reads for rs in syncs for t in rs.transfers
        ]
        # Stable sort: within a tier the legacy plan order is preserved.
        return sorted(pairs, key=lambda pair: tiers[pair[1].node])

    def flush(self) -> None:
        """Drain every buffered launch onto the simulated machine, in order."""
        if not self.pending.plans:
            return
        api = self.api
        plans = self.pending.plans
        indices = self.pending.launch_indices
        policies = list(self._policies)
        if any(p is None for p in policies):
            from repro.sched.policy import auto_select_policy_window

            fused = auto_select_policy_window(api, plans)
            for i, p in enumerate(policies):
                if p is None:
                    policies[i] = fused
                    api.stats.auto_choices[fused.name] = (
                        api.stats.auto_choices.get(fused.name, 0) + 1
                    )
        batch = len(plans)
        for plan, launch_index, wave, policy in zip(
            plans, indices, self.pending.waves, policies
        ):
            issue_plan_sim(
                api,
                plan,
                policy,
                launch=launch_index,
                wave=wave,
                transfer_order=self._transfer_order(plan),
            )
        self.pending.clear()
        self._policies.clear()
        api.stats.pipeline_flushes += 1
        api.stats.pipeline_max_batch = max(api.stats.pipeline_max_batch, batch)


def _run_partition(api: "MultiGpuApi", plan: LaunchPlan, ktask) -> None:
    """Interpret one kernel partition (functional mode)."""
    from repro.runtime.launch import _audit_write_scan, _bind_functional_args

    ck = plan.ck
    bound = _bind_functional_args(api, ck, plan.by_name, plan.shapes, ktask.gpu)
    for f, value in zip(
        ("min_z", "max_z", "min_y", "max_y", "min_x", "max_x"), ktask.part.as_tuple()
    ):
        bound[partition_field_name("partition", f)] = value
    trace = None
    if api.config.debug_validate_writes:
        from repro.cuda.exec.interpreter import AccessTrace

        trace = AccessTrace()
    run_kernel(ck.partitioned, ktask.part.grid(), plan.block, bound, trace=trace)
    if trace is not None:
        _audit_write_scan(
            api, ck, trace, ktask.part, plan.block, plan.grid, plan.scalars, plan.shapes
        )
